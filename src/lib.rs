//! Umbrella crate for the iPrune reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so that the runnable
//! examples (in `examples/`) and the cross-crate integration tests (in
//! `tests/`) have a single import surface:
//!
//! ```
//! use iprune_repro::datasets::toy::ToySpec;
//! let ds = ToySpec::default().generate(8, 0);
//! assert_eq!(ds.len(), 8);
//! ```
//!
//! Library users who only need one subsystem should depend on that crate
//! directly (`iprune`, `iprune-hawaii`, `iprune-device`, …).

pub use iprune as pruning;
pub use iprune_datasets as datasets;
pub use iprune_device as device;
pub use iprune_faults as faults;
pub use iprune_fleet as fleet;
pub use iprune_hawaii as hawaii;
pub use iprune_models as models;
pub use iprune_obs as obs;
pub use iprune_serve as serve;
pub use iprune_tensor as tensor;
