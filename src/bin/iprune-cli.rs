//! Command-line front end for the iPrune reproduction.
//!
//! ```text
//! iprune-cli specs
//! iprune-cli characterize <SQN|HAR|CKS>
//! iprune-cli run <APP> [--power continuous|strong|weak] [--mode job|tile|continuous] [--train N] [--seed N]
//! iprune-cli prune <APP> [--method iprune|eprune|magnitude|oneshot] [--train N]
//! iprune-cli fleet <APP> [--devices N] [--shard-size N] [--seed N] [--json PATH]
//!            [--triage] [--top-k N] [--trace-dir DIR] [--triage-json PATH]
//! iprune-cli doctor [APP] [--devices N] [--seed N] [--top-k N] [--trace-dir DIR]
//! iprune-cli serve [APP] [--profile nominal|small-cap|big-cap|slow-fram]
//!            [--power continuous|strong|weak] [--requests N] [--seed N]
//!            [--max-batch N] [--q15] [--bench]
//! iprune-cli history record [--dir D] [--out FILE]
//! iprune-cli history gate [--dir D] [--history FILE] [--max-wall-growth PCT]
//! ```
//!
//! Every subcommand accepts `--threads N` to cap the host-side worker pool
//! (default: the machine's available parallelism). Results are
//! bit-identical at any thread count; the flag only trades wall-clock for
//! cores. The device simulator is always single-threaded.

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::fleet::{
    record_workload, run_triage, FleetCampaign, PopulationSpec, TriageConfig, TriageEntry,
};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::hawaii::plan::{dense_model_acc_outputs, diversity_label, diversity_ratio};
use iprune_repro::models::train::{evaluate, train_sgd};
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::pipeline::{prune, PruneConfig};
use std::process::ExitCode;

fn parse_app(s: &str) -> Option<App> {
    match s.to_ascii_uppercase().as_str() {
        "SQN" => Some(App::Sqn),
        "HAR" => Some(App::Har),
        "CKS" => Some(App::Cks),
        _ => None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Fingerprints every `BENCH_*.json` in `dir`, in file-name order.
fn bench_entries(
    dir: &std::path::Path,
) -> Result<Vec<iprune_repro::obs::history::HistoryEntry>, String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|ent| ent.ok())
        .filter_map(|ent| ent.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    let mut entries = Vec::with_capacity(names.len());
    for n in &names {
        let text =
            std::fs::read_to_string(dir.join(n)).map_err(|e| format!("cannot read {n}: {e}"))?;
        let bench = n.trim_start_matches("BENCH_").trim_end_matches(".json").to_ascii_lowercase();
        entries.push(iprune_repro::obs::history::HistoryEntry::of(&bench, &text));
    }
    Ok(entries)
}

/// `serve`: load pruned variants into the registry and replay a seeded
/// request stream through the batched admission front end.
///
/// With an APP, serves one (app, profile, power) variant; with `--bench`
/// (and no APP) it replays a mixed workload over the full serving catalog
/// and cross-checks batched against sequential execution bit for bit —
/// the CI smoke entry point.
fn run_serve(args: &[String]) -> ExitCode {
    use iprune_repro::serve::{
        DeviceProfile, ExecMode as ServeMode, ModelRegistry, RegistryConfig, Request, ServeConfig,
        Server, VariantKey,
    };
    use std::sync::Arc;

    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    let bench = has_flag(args, "--bench");
    let app = match args.get(1).filter(|s| !s.starts_with("--")) {
        Some(s) => match parse_app(s) {
            Some(app) => Some(app),
            None => return usage(),
        },
        None => None,
    };
    if app.is_none() && !bench {
        return usage();
    }
    let profile = match flag_value(args, "--profile").as_deref() {
        None | Some("nominal") => DeviceProfile::Nominal,
        Some("small-cap") => DeviceProfile::SmallCap,
        Some("big-cap") => DeviceProfile::BigCap,
        Some("slow-fram") => DeviceProfile::SlowFram,
        Some(other) => {
            eprintln!("unknown profile `{other}`");
            return usage();
        }
    };
    let power = match flag_value(args, "--power").as_deref() {
        None | Some("strong") => PowerStrength::Strong,
        Some("continuous") => PowerStrength::Continuous,
        Some("weak") => PowerStrength::Weak,
        Some(other) => {
            eprintln!("unknown power `{other}`");
            return usage();
        }
    };
    let n: usize = flag_value(args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if bench { 64 } else { 32 });
    let seed: u64 = flag_value(args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(0x5E4F);
    let max_batch: usize =
        flag_value(args, "--max-batch").and_then(|v| v.parse().ok()).unwrap_or(16);
    if n == 0 || max_batch == 0 {
        eprintln!("--requests and --max-batch must be positive");
        return usage();
    }
    let q15 = has_flag(args, "--q15");

    let registry =
        Arc::new(ModelRegistry::new(RegistryConfig { quantize: q15, ..Default::default() }));
    let keys: Vec<VariantKey> = match app {
        Some(app) => vec![VariantKey::new(app, profile, power)],
        None => {
            let mut keys = Vec::new();
            for app in App::all() {
                keys.push(VariantKey::new(app, DeviceProfile::Nominal, PowerStrength::Strong));
                keys.push(VariantKey::new(app, DeviceProfile::Nominal, PowerStrength::Weak));
            }
            keys.push(VariantKey::new(App::Har, DeviceProfile::SmallCap, PowerStrength::Strong));
            keys
        }
    };
    // warm every degrade rung so timings measure serving, not lazy builds
    for &key in &keys {
        let mut rung = Some(key);
        while let Some(k) = rung {
            registry.get_or_load(k);
            rung = k.degraded();
        }
    }
    for v in registry.loaded() {
        println!(
            "variant {:<28} keep {:>7} ppm  cost {:>8}/{:>8} MACs  sparse {}/{}",
            v.key.to_string(),
            v.key.keep_ppm(),
            v.plan.cost,
            v.plan.dense_macs,
            v.plan.sparse_layers(),
            v.plan.rows.len()
        );
    }

    let mut pools: std::collections::HashMap<&'static str, iprune_repro::datasets::Dataset> =
        Default::default();
    for &k in &keys {
        pools
            .entry(k.app.name())
            .or_insert_with(|| k.app.dataset(64, seed ^ k.app.name().len() as u64));
    }
    let requests: Vec<Request> = (0..n)
        .map(|i| {
            let h = splitmix(seed ^ i as u64);
            let key = keys[(h % keys.len() as u64) as usize];
            let input = pools[key.app.name()].sample((splitmix(h) % 64) as usize);
            // 50%..650% of the variant's plan cost: tight deadlines reject
            // or degrade, generous ones absorb a round's queue backlog
            let pct = 50 + splitmix(h ^ 0xB0D6E7) % 600;
            let budget = registry.get_or_load(key).plan.cost * pct / 100;
            Request { id: i as u64, key, input, budget }
        })
        .collect();

    let server =
        Server::new(Arc::clone(&registry), ServeConfig { max_batch, q15, ..Default::default() });
    let t0 = std::time::Instant::now();
    let out = server.run(&requests);
    let wall = t0.elapsed();
    let s = &out.stats;
    println!(
        "served {} requests in {:.1} ms ({:.0} req/s): {} admitted / {} degraded / {} rejected over {} batches",
        n,
        wall.as_secs_f64() * 1e3,
        n as f64 / wall.as_secs_f64(),
        s.admitted,
        s.degraded,
        s.rejected,
        s.batches
    );
    println!("  mean batch {}  peak queue {}", s.batch_size.mean(), s.queue_depth.max);

    if bench {
        use iprune_repro::serve::report::logits_checksum;
        server.reset_history();
        let t1 = std::time::Instant::now();
        let seq = server.run_mode(&requests, ServeMode::Sequential);
        let seq_wall = t1.elapsed();
        println!(
            "sequential replay: {:.1} ms ({:.0} req/s)",
            seq_wall.as_secs_f64() * 1e3,
            n as f64 / seq_wall.as_secs_f64()
        );
        let batched = logits_checksum(out.completions.iter().map(|c| c.logits.as_slice()));
        let sequential = logits_checksum(seq.completions.iter().map(|c| c.logits.as_slice()));
        if batched != sequential
            || (s.admitted, s.degraded, s.rejected)
                != (seq.stats.admitted, seq.stats.degraded, seq.stats.rejected)
        {
            eprintln!("serve --bench: batched and sequential execution diverged");
            return ExitCode::FAILURE;
        }
        println!("batched == sequential: logits {batched:016x}, admission identical");
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  iprune-cli specs");
    eprintln!("  iprune-cli characterize <SQN|HAR|CKS>");
    eprintln!("  iprune-cli run <APP> [--power continuous|strong|weak] [--mode job|tile|continuous] [--train N] [--seed N]");
    eprintln!("  iprune-cli prune <APP> [--method iprune|eprune|magnitude|oneshot] [--train N]");
    eprintln!("  iprune-cli fleet <APP> [--devices N] [--shard-size N] [--seed N] [--json PATH]");
    eprintln!("             [--triage] [--top-k N] [--trace-dir DIR] [--triage-json PATH]");
    eprintln!("  iprune-cli doctor [APP] [--devices N] [--seed N] [--top-k N] [--trace-dir DIR]");
    eprintln!("  iprune-cli serve [APP] [--profile nominal|small-cap|big-cap|slow-fram]");
    eprintln!("             [--power continuous|strong|weak] [--requests N] [--seed N]");
    eprintln!("             [--max-batch N] [--q15] [--bench]");
    eprintln!("  iprune-cli history record [--dir D] [--out FILE]");
    eprintln!("  iprune-cli history gate [--dir D] [--history FILE] [--max-wall-growth PCT]");
    eprintln!("options:");
    eprintln!("  --threads N   host-side worker threads (default: available parallelism)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match flag_value(&args, "--threads").map(|v| v.parse::<usize>()) {
        None => {}
        Some(Ok(n)) if n > 0 => iprune_repro::tensor::par::set_threads(n),
        Some(_) => {
            eprintln!("--threads expects a positive integer");
            return usage();
        }
    }
    match args.first().map(|s| s.as_str()) {
        Some("specs") => {
            let spec = iprune_repro::device::DeviceSpec::msp430fr5994();
            println!("{:#?}", spec);
            println!("energy per power cycle: {:.1} uJ", spec.energy_span_j() * 1e6);
            ExitCode::SUCCESS
        }
        Some("characterize") => {
            let Some(app) = args.get(1).and_then(|s| parse_app(s)) else {
                return usage();
            };
            let model = app.build();
            let info = &model.info;
            let (convs, pools, fcs) = info.layer_tally();
            println!("{}: CONV x{convs}, POOL x{pools}, FC x{fcs}", app.name());
            println!("  dense size    {:.1} KB", info.dense_size_bytes() as f64 / 1024.0);
            println!("  MACs          {} K", info.total_macs() / 1000);
            println!("  acc outputs   {} K", dense_model_acc_outputs(info) / 1000);
            println!(
                "  diversity     {} (ratio {:.1})",
                diversity_label(diversity_ratio(info)),
                diversity_ratio(info)
            );
            for p in &info.prunables {
                println!("    {:<20} {:>8} weights {:>10} MACs", p.name, p.weights(), p.macs());
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(app) = args.get(1).and_then(|s| parse_app(s)) else {
                return usage();
            };
            let power = match flag_value(&args, "--power").as_deref() {
                None | Some("strong") => PowerStrength::Strong,
                Some("continuous") => PowerStrength::Continuous,
                Some("weak") => PowerStrength::Weak,
                Some(other) => {
                    eprintln!("unknown power `{other}`");
                    return usage();
                }
            };
            let mode = match flag_value(&args, "--mode").as_deref() {
                None | Some("job") => ExecMode::Intermittent,
                Some("tile") => ExecMode::TileAtomic,
                Some("continuous") => ExecMode::Continuous,
                Some(other) => {
                    eprintln!("unknown mode `{other}`");
                    return usage();
                }
            };
            let train_n: usize =
                flag_value(&args, "--train").and_then(|v| v.parse().ok()).unwrap_or(0);
            let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(1);

            let mut model = app.build();
            let calib = app.dataset(8.max(train_n), 100);
            if train_n > 0 {
                eprintln!("training on {train_n} samples…");
                train_sgd(&mut model, &calib.take(train_n), &app.train_recipe());
            }
            let dm = deploy(&mut model, &calib, 8);
            let mut sim = DeviceSim::new(power, seed);
            match infer(&dm, &calib.sample(0), &mut sim, mode) {
                Ok(out) => {
                    println!("predicted class     {}", out.argmax);
                    println!("latency             {:.3} s", out.latency_s);
                    println!("power cycles        {}", out.power_cycles);
                    println!("jobs committed      {}", out.jobs);
                    println!("preserved partials  {}", out.preserved_partials);
                    println!("NVM written         {} KB", out.stats.nvm_write_bytes / 1024);
                    println!("NVM read            {} KB", out.stats.nvm_read_bytes / 1024);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("inference failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fleet") => {
            let Some(app) = args.get(1).and_then(|s| parse_app(s)) else {
                return usage();
            };
            let devices: u64 =
                flag_value(&args, "--devices").and_then(|v| v.parse().ok()).unwrap_or(200);
            let shard_size: u64 =
                flag_value(&args, "--shard-size").and_then(|v| v.parse().ok()).unwrap_or(100);
            let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
            if devices == 0 || shard_size == 0 {
                eprintln!("--devices and --shard-size must be positive");
                return usage();
            }

            let mut model = app.build();
            let calib = app.dataset(8, 100);
            let dm = deploy(&mut model, &calib, 8);
            let x = calib.sample(0);
            let workload = record_workload(&dm, &x);
            eprintln!(
                "recorded {}: {} activities, {} jobs, nominal {:.3} ms",
                workload.name,
                workload.activities.len(),
                workload.jobs,
                workload.nominal_latency_s * 1e3
            );
            let campaign = FleetCampaign {
                population: PopulationSpec::default_fleet(devices, seed),
                shard_size: shard_size.min(devices),
            };
            let report = campaign.run(std::slice::from_ref(&workload));
            print!("{}", report.summary());
            if let Some(path) = flag_value(&args, "--json") {
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            if has_flag(&args, "--triage") {
                let cfg = TriageConfig {
                    top_k: flag_value(&args, "--top-k").and_then(|v| v.parse().ok()).unwrap_or(8),
                    trace_dir: flag_value(&args, "--trace-dir").map(Into::into),
                    ..Default::default()
                };
                let entries = [TriageEntry { workload: &workload, dm: &dm, input: &x }];
                let triage = run_triage(&campaign, &entries, &report, &cfg);
                println!();
                print!("{}", triage.summary());
                if let Some(path) = flag_value(&args, "--triage-json") {
                    if let Err(e) = std::fs::write(&path, triage.to_json()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("doctor") => {
            let app = match args.get(1).filter(|s| !s.starts_with("--")) {
                Some(s) => match parse_app(s) {
                    Some(app) => app,
                    None => return usage(),
                },
                None => App::Har,
            };
            let devices: u64 =
                flag_value(&args, "--devices").and_then(|v| v.parse().ok()).unwrap_or(200);
            let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(7);
            if devices == 0 {
                eprintln!("--devices must be positive");
                return usage();
            }
            let mut model = app.build();
            let calib = app.dataset(8, 100);
            let dm = deploy(&mut model, &calib, 8);
            let x = calib.sample(0);
            let workload = record_workload(&dm, &x);
            let campaign = FleetCampaign {
                population: PopulationSpec::default_fleet(devices, seed),
                shard_size: 100.min(devices),
            };
            eprintln!("doctor: replaying {} across {} devices/cell…", workload.name, devices);
            let fleet = campaign.run(std::slice::from_ref(&workload));
            let cfg = TriageConfig {
                top_k: flag_value(&args, "--top-k").and_then(|v| v.parse().ok()).unwrap_or(5),
                trace_dir: flag_value(&args, "--trace-dir").map(Into::into),
                ..Default::default()
            };
            let entries = [TriageEntry { workload: &workload, dm: &dm, input: &x }];
            let triage = run_triage(&campaign, &entries, &fleet, &cfg);
            print!("{}", triage.summary());
            if let Some(dir) = &cfg.trace_dir {
                eprintln!("traces under {}", dir.display());
            }
            ExitCode::SUCCESS
        }
        Some("serve") => run_serve(&args),
        Some("history") => {
            let dir = std::path::PathBuf::from(flag_value(&args, "--dir").unwrap_or(".".into()));
            let current = match bench_entries(&dir) {
                Ok(entries) if !entries.is_empty() => entries,
                Ok(_) => {
                    eprintln!("no BENCH_*.json under {}", dir.display());
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            match args.get(1).map(|s| s.as_str()) {
                Some("record") => {
                    let rendered = iprune_repro::obs::history::render_history(&current);
                    print!("{rendered}");
                    let out = flag_value(&args, "--out")
                        .map(Into::into)
                        .unwrap_or_else(|| dir.join("BENCH_HISTORY.jsonl"));
                    if let Err(e) = std::fs::write(&out, rendered) {
                        eprintln!("cannot write {}: {e}", out.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {}", out.display());
                    ExitCode::SUCCESS
                }
                Some("gate") => {
                    let path = flag_value(&args, "--history")
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| dir.join("BENCH_HISTORY.jsonl"));
                    let text = match std::fs::read_to_string(&path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("cannot read {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    };
                    let history = match iprune_repro::obs::history::parse_history(&text) {
                        Ok(h) => h,
                        Err(e) => {
                            eprintln!("malformed {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                    };
                    let max_growth =
                        flag_value(&args, "--max-wall-growth").and_then(|v| v.parse().ok());
                    match iprune_repro::obs::history::gate(&history, &current, max_growth) {
                        Ok(()) => {
                            println!("history gate: {} benches clean", current.len());
                            ExitCode::SUCCESS
                        }
                        Err(violations) => {
                            for v in &violations {
                                eprintln!("history gate: {v}");
                            }
                            ExitCode::FAILURE
                        }
                    }
                }
                _ => usage(),
            }
        }
        Some("prune") => {
            let Some(app) = args.get(1).and_then(|s| parse_app(s)) else {
                return usage();
            };
            let cfg = match flag_value(&args, "--method").as_deref() {
                None | Some("iprune") => PruneConfig::iprune(),
                Some("eprune") => PruneConfig::eprune(),
                Some("magnitude") => PruneConfig::magnitude(),
                Some("oneshot") => PruneConfig::one_shot(0.5),
                Some(other) => {
                    eprintln!("unknown method `{other}`");
                    return usage();
                }
            };
            let train_n: usize =
                flag_value(&args, "--train").and_then(|v| v.parse().ok()).unwrap_or(400);
            let train = app.dataset(train_n, 100);
            let val = app.dataset((train_n / 3).max(60), 200);
            let mut model = app.build();
            eprintln!("training {} on {} samples…", app.name(), train.len());
            train_sgd(&mut model, &train, &app.train_recipe());
            let cfg = PruneConfig { finetune: app.finetune_recipe(), ..cfg };
            let report = prune(&mut model, &train, &val, &cfg);
            println!("baseline accuracy  {:.1}%", report.baseline_accuracy * 100.0);
            for it in &report.iterations {
                println!(
                    "  iter {}: gamma {:.3}, accuracy {:.1}%, density {:.1}%{}",
                    it.iteration,
                    it.gamma,
                    it.accuracy * 100.0,
                    it.density * 100.0,
                    if it.struck { "  (struck)" } else { "" }
                );
            }
            println!("adopted iteration  {:?}", report.adopted_iteration);
            println!("final accuracy     {:.1}%", report.final_accuracy * 100.0);
            println!("final density      {:.1}%", report.final_density * 100.0);
            println!("final val accuracy {:.1}%", evaluate(&mut model, &val, 32) * 100.0);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
