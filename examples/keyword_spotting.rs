//! Keyword spotting (CKS): the paper's high-diversity workload, where
//! intermittent-aware pruning pays off most.
//!
//! Trains the CKS model, prunes it with both frameworks (iPrune and the
//! energy-aware ePrune baseline), and compares what each removed and how
//! fast the result runs on the simulated device under every power strength.
//!
//! ```sh
//! cargo run --release --example keyword_spotting
//! ```

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::train::train_sgd;
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::pipeline::{prune, PruneConfig};
use iprune_repro::pruning::report::characterize;
use iprune_repro::pruning::sa::SaConfig;

fn main() {
    let app = App::Cks;
    let train = app.dataset(800, 1);
    let val = app.dataset(240, 2);

    let mut base = app.build();
    println!("training {} ({} samples)…", app.name(), train.len());
    train_sgd(&mut base, &train, &app.train_recipe());
    let base_weights = base.extract_weights();

    let mut rows = Vec::new();
    let (ch, dm) = characterize(&mut base, &val, "Unpruned");
    rows.push((ch, dm));

    for (label, cfg) in [("ePrune", PruneConfig::eprune()), ("iPrune", PruneConfig::iprune())] {
        let mut model = app.build();
        model.load_weights(&base_weights);
        let cfg = PruneConfig {
            finetune: app.finetune_recipe(),
            max_iterations: 6,
            sa: SaConfig { steps: 600, ..Default::default() },
            ..cfg
        };
        println!("running {label}…");
        let report = prune(&mut model, &train, &val, &cfg);
        println!(
            "  {} iterations, adopted {:?}, density {:.1}%",
            report.iterations.len(),
            report.adopted_iteration,
            100.0 * report.final_density
        );
        let (ch, dm) = characterize(&mut model, &val, label);
        rows.push((ch, dm));
    }

    println!();
    println!("{:<10} {:>8} {:>10} {:>10} {:>14}", "model", "acc", "size", "MACs", "acc outputs");
    for (ch, _) in &rows {
        println!(
            "{:<10} {:>7.1}% {:>7.0} KB {:>8.0} K {:>12.0} K",
            ch.label,
            ch.accuracy * 100.0,
            ch.size_bytes as f64 / 1024.0,
            ch.macs as f64 / 1000.0,
            ch.acc_outputs as f64 / 1000.0
        );
    }

    println!();
    println!("device latency (intermittent engine):");
    let x = val.sample(0);
    for strength in PowerStrength::all() {
        print!("  {:<18}", strength.label());
        for (ch, dm) in &rows {
            let mut sim = DeviceSim::new(strength, 3);
            let out = infer(dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
            print!("  {}: {:.3}s", ch.label, out.latency_s);
        }
        println!();
    }
}
