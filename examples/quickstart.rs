//! Quickstart: train a TinyML model, prune it with iPrune, deploy it to the
//! simulated MSP430, and run intermittent inference under harvested power.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::train::{evaluate, train_sgd};
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::pipeline::{prune, PruneConfig};

fn main() {
    // 1. Train the human-activity-recognition model on the synthetic task.
    let app = App::Har;
    let train = app.dataset(400, 1);
    let val = app.dataset(150, 2);
    let mut model = app.build();
    train_sgd(&mut model, &train, &app.train_recipe());
    println!("trained {}: accuracy {:.1}%", app.name(), 100.0 * evaluate(&mut model, &val, 32));

    // 2. Prune it with iPrune (accelerator-output criterion, block
    //    granularity, iterative with epsilon = 1%).
    let cfg = PruneConfig { finetune: app.finetune_recipe(), ..PruneConfig::iprune() };
    let report = prune(&mut model, &train, &val, &cfg);
    println!(
        "pruned: kept {:.1}% of weights, accuracy {:.1}% (baseline {:.1}%)",
        100.0 * report.final_density,
        100.0 * report.final_accuracy,
        100.0 * report.baseline_accuracy
    );

    // 3. Deploy: quantize to 16-bit fixed point and pack into BSR.
    let dm = deploy(&mut model, &val, 8);
    println!(
        "deployed: {} KB on NVM, {} K MACs, {} K accelerator outputs per inference",
        dm.reported_size_bytes() / 1024,
        dm.total_macs() / 1000,
        dm.total_acc_outputs() / 1000
    );

    // 4. Run one end-to-end intermittent inference under weak solar power.
    let x = val.sample(0);
    let mut sim = DeviceSim::new(PowerStrength::Weak, 7);
    let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
    println!(
        "intermittent inference under {}: {:.3} s across {} power cycles, predicted class {} (label {})",
        PowerStrength::Weak.label(),
        out.latency_s,
        out.power_cycles,
        out.argmax,
        val.labels()[0]
    );
}
