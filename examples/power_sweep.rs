//! Power sweep (extension beyond the paper's two harvested strengths):
//! how intermittent inference latency and power-cycle counts scale as the
//! harvested input power varies, for an unpruned model.
//!
//! Demonstrates driving the device simulator with custom supply levels and
//! the first-order physics the paper relies on: weaker power → longer
//! recharge per cycle → more cycles and recovery → higher latency.
//!
//! ```sh
//! cargo run --release --example power_sweep
//! ```

use iprune_repro::device::power::Supply;
use iprune_repro::device::sim::DeviceSim;
use iprune_repro::device::PowerStrength;
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::zoo::App;

fn main() {
    let app = App::Har;
    let mut model = app.build();
    let calib = app.dataset(8, 5);
    let dm = deploy(&mut model, &calib, 4);
    let x = calib.sample(0);

    println!("{} unpruned, intermittent engine", app.name());
    println!("{:>10} {:>12} {:>14} {:>14}", "power", "latency", "power cycles", "charging time");

    // continuous reference
    let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
    let base = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
    println!(
        "{:>10} {:>10.3} s {:>14} {:>12.3} s",
        "wall", base.latency_s, base.power_cycles, base.stats.charging_s
    );

    // harvested sweep over arbitrary constant supply levels
    for mw in [2.0f64, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0] {
        let supply = Supply::Constant(mw * 1e-3);
        let mut sim = DeviceSim::with_supply(supply, 1);
        let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
        println!(
            "{:>7} mW {:>10.3} s {:>14} {:>12.3} s",
            mw, out.latency_s, out.power_cycles, out.stats.charging_s
        );
    }
    println!();
    println!("Latency decreases monotonically with harvested power; the continuous");
    println!("supply is the asymptote (zero charging time).");
}
