//! Image recognition (SQN): sensitivity analysis and the three-step
//! strategy, step by step.
//!
//! Trains a shortened run of the SqueezeNet-style model, then walks through
//! one iPrune iteration manually — layer-wise criterion estimation,
//! sensitivity analysis, the guideline-1 overall ratio, the
//! simulated-annealing allocation, and the block-level selection — printing
//! what each step decided.
//!
//! ```sh
//! cargo run --release --example image_recognition
//! ```

use iprune_repro::device::energy::EnergyModel;
use iprune_repro::device::timing::TimingModel;
use iprune_repro::models::train::{evaluate, train_sgd, TrainConfig};
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::blocks::build_states;
use iprune_repro::pruning::sa::SaConfig;
use iprune_repro::pruning::sensitivity::analyze;
use iprune_repro::pruning::strategy::{overall_ratio, prune_step};
use iprune_repro::pruning::Criterion;

fn main() {
    let app = App::Sqn;
    let train = app.dataset(800, 1);
    let val = app.dataset(200, 2);
    let mut model = app.build();
    println!("training {} (abridged: 5 epochs on {} samples)…", app.name(), train.len());
    train_sgd(&mut model, &train, &TrainConfig { epochs: 5, ..app.train_recipe() });
    println!("accuracy: {:.1}%", 100.0 * evaluate(&mut model, &val, 32));

    // Step 0: layer-wise criterion estimation
    let timing = TimingModel::default();
    let energy = EnergyModel::default();
    let mut states = build_states(&mut model, Criterion::AccOutputs, &timing, &energy);
    println!();
    println!("layer-wise criterion estimation (accelerator outputs):");
    for (s, p) in states.iter().zip(model.info.prunables.clone()) {
        println!(
            "  {:<18} {:>8} weights {:>9.0} acc outputs  (tile br={} bc={} strip={})",
            p.name,
            s.alive_weights,
            s.alive_cost,
            s.plan.tile.br,
            s.plan.tile.bc,
            s.plan.tile.strip
        );
    }

    // Step 0b: sensitivity analysis
    let sens = analyze(&mut model, &states, &val.take(48), 0.3, 32);
    println!();
    println!("sensitivity (accuracy drop at a 30% probe): ");
    for (p, d) in model.info.prunables.clone().iter().zip(&sens.drops) {
        println!("  {:<18} {:>6.1} pp", p.name, d * 100.0);
    }

    // Step 1: overall ratio by guideline 1
    let gamma = overall_ratio(&states, &sens, 0.4);
    println!();
    println!("guideline 1 → overall ratio Γ = {:.3} (Γ̂ = 0.4)", gamma);

    // Steps 2–3: SA allocation + block selection
    let (masks, gammas) = prune_step(&model, &mut states, &sens, gamma, &SaConfig::default());
    println!("simulated-annealing allocation γᵢ:");
    for (p, g) in model.info.prunables.clone().iter().zip(&gammas) {
        println!("  {:<18} γ = {:.3}", p.name, g);
    }
    model.set_masks(&masks);
    let remaining: f64 = build_states(&mut model, Criterion::AccOutputs, &timing, &energy)
        .iter()
        .map(|s| s.alive_cost)
        .sum();
    println!(
        "after one pruning step: {:.0} K acc outputs remain, accuracy before fine-tune {:.1}%",
        remaining / 1000.0,
        100.0 * evaluate(&mut model, &val, 32)
    );
    train_sgd(&mut model, &train, &app.finetune_recipe());
    println!("after fine-tune: accuracy {:.1}%", 100.0 * evaluate(&mut model, &val, 32));
}
