//! Solar-trace harvesting (extension): run intermittent inference against a
//! time-varying "solar day" power profile instead of the paper's constant
//! emulated levels — the scenario the authors demo in their solar-powered
//! inference system video.
//!
//! ```sh
//! cargo run --release --example solar_harvesting
//! ```

use iprune_repro::device::power::{PowerTrace, Supply};
use iprune_repro::device::sim::DeviceSim;
use iprune_repro::device::PowerStrength;
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::zoo::App;

fn main() {
    let app = App::Har;
    let mut model = app.build();
    let calib = app.dataset(8, 21);
    let dm = deploy(&mut model, &calib, 4);
    let x = calib.sample(0);

    println!("{} unpruned on a synthetic solar day (peak varies, clouds pass)", app.name());
    println!(
        "{:<28} {:>10} {:>9} {:>12} {:>10}",
        "supply", "mean", "latency", "power cycles", "charging"
    );

    // constant references
    for strength in [PowerStrength::Strong, PowerStrength::Weak] {
        let mut sim = DeviceSim::new(strength, 1);
        let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
        println!(
            "{:<28} {:>7.1} mW {:>8.3}s {:>12} {:>9.3}s",
            strength.label(),
            strength.watts() * 1e3,
            out.latency_s,
            out.power_cycles,
            out.stats.charging_s
        );
    }

    // solar traces: same peak, different day lengths and cloud seeds
    for (label, peak_mw, period_s, seed) in [
        ("solar, clear short day", 12.0, 2.0, 1u64),
        ("solar, cloudy short day", 12.0, 2.0, 5),
        ("solar, long dim day", 6.0, 8.0, 1),
    ] {
        let trace = PowerTrace::solar(peak_mw * 1e-3, period_s, 64, seed);
        let mean = trace.mean_w();
        let mut sim = DeviceSim::with_supply(Supply::Trace(trace), 1);
        let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("inference");
        println!(
            "{:<28} {:>7.1} mW {:>8.3}s {:>12} {:>9.3}s",
            label,
            mean * 1e3,
            out.latency_s,
            out.power_cycles,
            out.stats.charging_s
        );
    }
    println!();
    println!("Dark phases stall the device entirely (charging time ≫ busy time);");
    println!("the progress preserved before dusk survives to the next bright phase.");
}
