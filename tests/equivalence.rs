//! The central functional invariant, across all three applications:
//! intermittent execution — through arbitrary power-failure phases — must
//! produce bit-identical outputs to continuous execution.

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::zoo::App;

#[test]
fn intermittent_matches_continuous_for_every_app() {
    for app in App::all() {
        let mut model = app.build();
        let ds = app.dataset(4, 777);
        let dm = deploy(&mut model, &ds, 2);
        let x = ds.sample(0);
        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let reference = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
        for seed in [1u64, 2, 3] {
            for strength in [PowerStrength::Strong, PowerStrength::Weak] {
                let mut sim = DeviceSim::new(strength, seed);
                let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).unwrap();
                assert_eq!(
                    out.logits,
                    reference.logits,
                    "{} under {:?} seed {}",
                    app.name(),
                    strength,
                    seed
                );
            }
        }
    }
}

#[test]
fn equivalence_holds_for_sparse_models_too() {
    // Prune 60% of the weights at *block* granularity (element-wise pruning
    // would leave almost every block alive — the paper's guideline 3), then
    // verify recovery still reproduces exact outputs.
    use iprune_repro::device::energy::EnergyModel;
    use iprune_repro::device::timing::TimingModel;
    use iprune_repro::pruning::blocks::{build_states, mask_as_weight_shape, mask_out_block};
    use iprune_repro::pruning::Criterion;

    let app = App::Cks;
    let mut model = app.build();
    let mut states = build_states(
        &mut model,
        Criterion::AccOutputs,
        &TimingModel::default(),
        &EnergyModel::default(),
    );
    let mut masks = std::collections::HashMap::new();
    for state in &mut states {
        let sched = state.removal_schedule();
        let n = (sched.order.len() as f64 * 0.6) as usize;
        let victims: Vec<usize> = sched.order.iter().take(n).copied().collect();
        for bi in victims {
            mask_out_block(state, bi);
        }
        masks.insert(state.layer_id, mask_as_weight_shape(state, &model));
    }
    model.set_masks(&masks);
    let ds = app.dataset(3, 778);
    let dm = deploy(&mut model, &ds, 2);
    assert!(dm.sparse_size_bytes() < dm.dense_size_bytes());
    let x = ds.sample(1);
    let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
    let reference = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();
    for seed in [11u64, 12, 13, 14] {
        let mut sim = DeviceSim::new(PowerStrength::Weak, seed);
        let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).unwrap();
        assert_eq!(out.logits, reference.logits, "seed {seed}");
        assert!(out.power_cycles > 0, "weak power should brown out");
    }
}

/// The host Q15 evaluator runs the same calibration and fixed-point
/// arithmetic as the device engine, so its logits must be *bit-identical*
/// to the simulator's — on every app, whatever the SIMD dispatch level
/// (the Q15 AVX2 body is exact, not approximately equal).
#[test]
fn host_q15_evaluator_matches_device_engine_bitwise() {
    use iprune_repro::models::qeval::QuantizedModel;

    for app in App::all() {
        let mut model = app.build();
        let ds = app.dataset(4, 777);
        let dm = deploy(&mut model, &ds, 2);
        let qm = QuantizedModel::quantize(&mut model, &ds, 2);
        for i in 0..3 {
            let x = ds.sample(i);
            let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
            let device = infer(&dm, &x, &mut sim, ExecMode::Continuous).unwrap();
            let host = qm.forward_q15(&x);
            let dev_bits: Vec<u32> = device.logits.iter().map(|v| v.to_bits()).collect();
            let host_bits: Vec<u32> = host.iter().map(|v| v.to_bits()).collect();
            assert_eq!(dev_bits, host_bits, "{} sample {i}", app.name());
        }
    }
}

#[test]
fn preserved_partials_match_criterion_for_every_app() {
    for app in App::all() {
        let mut model = app.build();
        let ds = app.dataset(2, 779);
        let dm = deploy(&mut model, &ds, 2);
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &ds.sample(0), &mut sim, ExecMode::Intermittent).unwrap();
        assert_eq!(
            out.preserved_partials,
            dm.total_acc_outputs() as u64,
            "{}: engine must preserve exactly the counted accelerator outputs",
            app.name()
        );
    }
}
