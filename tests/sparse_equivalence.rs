//! Block-sparse GEMM path: bitwise equivalence and dispatch.
//!
//! The `tensor::sparse` scalar kernels (`matmul_*_scalar`) promise to be
//! *bit-identical* to the scalar reference kernels whenever the sparse
//! operand came from a pruning mask (dead blocks hold only `±0.0`), at any
//! `IPRUNE_THREADS` setting. These tests sample random shapes and random
//! block masks — including the empty and full extremes — and compare every
//! output bit; a final end-to-end test fine-tunes and evaluates a pruned
//! model through the dense and sparse paths *as dispatched* (SIMD when the
//! host supports it) and demands bitwise-identical weights and accuracy —
//! the dense and sparse AVX2 bodies share one per-element operation
//! schedule, so the guarantee survives dispatch.

use iprune_repro::models::train::{evaluate, train_sgd, TrainConfig};
use iprune_repro::models::zoo::App;
use iprune_repro::obs::metrics;
use iprune_repro::pruning::blocks::{build_states, mask_as_weight_shape};
use iprune_repro::pruning::Criterion;
use iprune_repro::tensor::layer::Param;
use iprune_repro::tensor::matmul::{matmul_a_bt_ref, matmul_acc_ref, matmul_at_b_ref};
use iprune_repro::tensor::par;
use iprune_repro::tensor::sparse::{
    dispatch_mode, matmul_a_bt_sparse_out_scalar, matmul_a_bt_sparse_rhs,
    matmul_a_bt_sparse_rhs_scalar, matmul_acc_sparse_lhs, matmul_acc_sparse_lhs_scalar,
    matmul_acc_sparse_rhs_scalar, matmul_at_b_sparse_lhs, matmul_at_b_sparse_lhs_scalar,
    matmul_at_b_sparse_out_scalar, set_dispatch_mode, DispatchMode, SparseIndex,
    SPARSE_DENSITY_THRESHOLD,
};
use iprune_repro::tensor::Tensor;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the tests that flip the process-wide dispatch mode.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic operand with ~1/3 exact zeros (exercises the per-element
/// zero-skip inside alive blocks) and no negative zeros.
fn operand(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(3) {
                0.0
            } else {
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

/// A block mask over `rows x cols` in `br x bc` blocks where each block
/// dies with probability `sparsity` (0.0 = full, 1.0 = empty).
fn block_mask(
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    sparsity: f64,
    seed: u64,
) -> Vec<f32> {
    let mut mask = vec![1.0f32; rows * cols];
    for rb in 0..rows.div_ceil(br) {
        for cb in 0..cols.div_ceil(bc) {
            let h = (rb as u64 * 1_000_003 + cb as u64 * 7919)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
            if ((h >> 32) as f64 / (1u64 << 32) as f64) < sparsity {
                for r in rb * br..((rb + 1) * br).min(rows) {
                    for c in cb * bc..((cb + 1) * bc).min(cols) {
                        mask[r * cols + c] = 0.0;
                    }
                }
            }
        }
    }
    mask
}

/// Masks `w` in place the way `Param::set_mask` does (`*= mask`), so dead
/// entries end up `±0.0` with the sign of the original weight.
fn apply_mask(w: &mut [f32], mask: &[f32]) {
    for (v, &m) in w.iter_mut().zip(mask.iter()) {
        *v *= m;
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Whether `(r, c)` lies in an alive block of the mask's block grid.
fn alive_at(mask: &[f32], cols: usize, br: usize, bc: usize, r: usize, c: usize) -> bool {
    let (rb, cb) = (r / br, c / bc);
    let rows = mask.len() / cols;
    (rb * br..((rb + 1) * br).min(rows))
        .any(|rr| (cb * bc..((cb + 1) * bc).min(cols)).any(|cc| mask[rr * cols + cc] != 0.0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // Forward/input-gradient kernels (sparse operand is an input): every
    // output bit matches the scalar reference, for any shape, any block
    // geometry, and block sparsity from full (0.0) to empty (1.0).
    #[test]
    fn input_sparse_kernels_bitwise_match_reference(
        m in 1usize..28, k in 1usize..28, n in 1usize..28,
        br in 1usize..6, bc in 1usize..20,
        raw_sparsity in 0.0..1.3f64,
        seed in 0u64..1 << 32,
    ) {
        // pin the extremes often: below 0.15 -> full mask, above 1.0 -> empty
        let sparsity = if raw_sparsity < 0.15 { 0.0 } else { raw_sparsity.min(1.0) };
        // -- acc_lhs: sparse w[m x k] on the left ------------------------
        let mask = block_mask(m, k, br, bc, sparsity, seed);
        let mut w = operand(m * k, seed);
        apply_mask(&mut w, &mask);
        let idx = SparseIndex::with_blocks(&mask, m, k, br, bc);
        let x = operand(k * n, seed ^ 0xA1);
        let c0 = operand(m * n, seed ^ 0xB2);
        let mut c_ref = c0.clone();
        let mut c_sp = c0.clone();
        matmul_acc_ref(&w, &x, &mut c_ref, m, k, n);
        matmul_acc_sparse_lhs_scalar(&idx, &w, &x, &mut c_sp, m, k, n);
        prop_assert_eq!(bits(&c_ref), bits(&c_sp), "acc_lhs {}x{}x{} s={}", m, k, n, sparsity);

        // -- at_b_lhs: the same sparse w stored [k_g x m_g], transposed --
        // gemm dims: m_g = k, k_g = m, n_g = n
        let g = operand(m * n, seed ^ 0xC3);
        let mut c_ref = operand(k * n, seed ^ 0xD4);
        let mut c_sp = c_ref.clone();
        matmul_at_b_ref(&w, &g, &mut c_ref, k, m, n);
        matmul_at_b_sparse_lhs_scalar(&idx, &w, &g, &mut c_sp, k, m, n);
        prop_assert_eq!(bits(&c_ref), bits(&c_sp), "at_b_lhs {}x{}x{} s={}", m, k, n, sparsity);

        // -- a_bt_rhs: sparse w[m x k] as the transposed right operand ---
        // gemm dims: m_g = n, k_g = k, n_g = m
        let y = operand(n * k, seed ^ 0xE5);
        let mut c_ref = vec![0.0f32; n * m];
        let mut c_sp = c_ref.clone();
        matmul_a_bt_ref(&y, &w, &mut c_ref, n, k, m);
        matmul_a_bt_sparse_rhs_scalar(&idx, &y, &w, &mut c_sp, n, k, m);
        prop_assert_eq!(bits(&c_ref), bits(&c_sp), "a_bt_rhs {}x{}x{} s={}", m, k, n, sparsity);

        // -- acc_rhs: sparse w[k x n] on the right -----------------------
        let mask = block_mask(k, n, br, bc, sparsity, seed ^ 0xF6);
        let mut w = operand(k * n, seed ^ 0x17);
        apply_mask(&mut w, &mask);
        let idx = SparseIndex::with_blocks(&mask, k, n, br, bc);
        let g = operand(m * k, seed ^ 0x28);
        let mut c_ref = vec![0.0f32; m * n];
        let mut c_sp = c_ref.clone();
        matmul_acc_ref(&g, &w, &mut c_ref, m, k, n);
        matmul_acc_sparse_rhs_scalar(&idx, &g, &w, &mut c_sp, m, k, n);
        prop_assert_eq!(bits(&c_ref), bits(&c_sp), "acc_rhs {}x{}x{} s={}", m, k, n, sparsity);
    }

    // Weight-gradient kernels (sparse operand is the *output*): alive
    // blocks match the reference bitwise, dead blocks stay untouched.
    #[test]
    fn output_sparse_kernels_bitwise_match_reference_on_alive_blocks(
        m in 1usize..24, k in 1usize..24, n in 1usize..24,
        br in 1usize..6, bc in 1usize..20,
        raw_sparsity in 0.0..1.3f64,
        seed in 0u64..1 << 32,
    ) {
        let sparsity = if raw_sparsity < 0.15 { 0.0 } else { raw_sparsity.min(1.0) };
        let mask = block_mask(m, n, br, bc, sparsity, seed);
        let idx = SparseIndex::with_blocks(&mask, m, n, br, bc);

        // at_b_out: dW[m x n] += g[k x m]^T * x[k x n]
        let g = operand(k * m, seed ^ 0x31);
        let x = operand(k * n, seed ^ 0x42);
        let c0 = operand(m * n, seed ^ 0x53);
        let mut c_ref = c0.clone();
        let mut c_sp = c0.clone();
        matmul_at_b_ref(&g, &x, &mut c_ref, m, k, n);
        matmul_at_b_sparse_out_scalar(&idx, &g, &x, &mut c_sp, m, k, n);
        for i in 0..m * n {
            if alive_at(&mask, n, br, bc, i / n, i % n) {
                prop_assert_eq!(c_ref[i].to_bits(), c_sp[i].to_bits(), "at_b_out alive {}", i);
            } else {
                prop_assert_eq!(c_sp[i].to_bits(), c0[i].to_bits(), "at_b_out dead {}", i);
            }
        }

        // a_bt_out: dW[m x n] += g[m x k] * col[n x k]^T
        let g = operand(m * k, seed ^ 0x64);
        let col = operand(n * k, seed ^ 0x75);
        let mut c_ref = c0.clone();
        let mut c_sp = c0.clone();
        matmul_a_bt_ref(&g, &col, &mut c_ref, m, k, n);
        matmul_a_bt_sparse_out_scalar(&idx, &g, &col, &mut c_sp, m, k, n);
        for i in 0..m * n {
            if alive_at(&mask, n, br, bc, i / n, i % n) {
                prop_assert_eq!(c_ref[i].to_bits(), c_sp[i].to_bits(), "a_bt_out alive {}", i);
            } else {
                prop_assert_eq!(c_sp[i].to_bits(), c0[i].to_bits(), "a_bt_out dead {}", i);
            }
        }
    }

    // The sparse kernels produce identical bits at IPRUNE_THREADS ∈
    // {1, 2, 8}. `par::set_threads` is the programmatic equivalent of the
    // env var (the override wins over the env); `set_host_cores` lifts the
    // physical-core cap so the fan-out actually happens on a 1-core CI
    // host.
    #[test]
    fn sparse_kernels_are_thread_count_invariant(
        m in 8usize..64, k in 8usize..48, n in 8usize..48,
        sparsity in 0.0..1.0f64,
        seed in 0u64..1 << 32,
    ) {
        let mask = block_mask(m, k, 4, 16, sparsity, seed);
        let mut w = operand(m * k, seed);
        apply_mask(&mut w, &mask);
        let idx = SparseIndex::from_mask(&mask, m, k);
        let x = operand(k * n, seed ^ 0xA1);
        let c0 = operand(m * n, seed ^ 0xB2);
        par::set_host_cores(8);
        par::set_threads(1);
        let mut acc1 = c0.clone();
        matmul_acc_sparse_lhs(&idx, &w, &x, &mut acc1, m, k, n);
        let mut atb1 = vec![0.1f32; k * n];
        let g = operand(m * n, seed ^ 0xC3);
        matmul_at_b_sparse_lhs(&idx, &w, &g, &mut atb1, k, m, n);
        let y = operand(n * k, seed ^ 0xE5);
        let mut abt1 = vec![0.0f32; n * m];
        matmul_a_bt_sparse_rhs(&idx, &y, &w, &mut abt1, n, k, m);
        for threads in [2usize, 8] {
            par::set_threads(threads);
            let mut acc_t = c0.clone();
            matmul_acc_sparse_lhs(&idx, &w, &x, &mut acc_t, m, k, n);
            let mut atb_t = vec![0.1f32; k * n];
            matmul_at_b_sparse_lhs(&idx, &w, &g, &mut atb_t, k, m, n);
            let mut abt_t = vec![0.0f32; n * m];
            matmul_a_bt_sparse_rhs(&idx, &y, &w, &mut abt_t, n, k, m);
            par::set_threads(0);
            prop_assert_eq!(bits(&acc1), bits(&acc_t), "acc_lhs at {} threads", threads);
            prop_assert_eq!(bits(&atb1), bits(&atb_t), "at_b_lhs at {} threads", threads);
            prop_assert_eq!(bits(&abt1), bits(&abt_t), "a_bt_rhs at {} threads", threads);
        }
        par::set_threads(0);
        par::set_host_cores(0);
    }
}

/// The automatic dispatch keeps dense kernels above the density threshold
/// and switches to sparse below it.
#[test]
fn dispatch_uses_dense_above_density_threshold() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(dispatch_mode(), DispatchMode::Auto, "tests must restore the mode");

    // 8x32 weight in 4x16 index blocks -> 4 blocks; 1 dead block = 25%
    // block sparsity (75% coverage, at the threshold -> dense), 2 dead =
    // 50% (below -> sparse)
    let dims = [8usize, 32];
    let dense_mask = block_mask(8, 32, 4, 16, 0.0, 1);
    let mut one_dead = dense_mask.clone();
    for r in 0..4 {
        for c in 0..16 {
            one_dead[r * 32 + c] = 0.0;
        }
    }
    let mut two_dead = one_dead.clone();
    for r in 4..8 {
        for c in 16..32 {
            two_dead[r * 32 + c] = 0.0;
        }
    }

    let mut p = Param::new(0, "t.w", Tensor::from_vec(&dims, operand(256, 9)));
    assert!(p.sparse_index().is_none(), "no mask, no index");
    assert!(p.gemm_sparse().is_none());

    p.set_mask(Tensor::from_vec(&dims, one_dead));
    let idx = p.sparse_index().expect("mask installs the index");
    assert_eq!(idx.alive_fraction(), 0.75);
    assert!(
        p.gemm_sparse().is_none(),
        "75% coverage is not below the {SPARSE_DENSITY_THRESHOLD} threshold -> dense"
    );

    p.set_mask(Tensor::from_vec(&dims, two_dead));
    assert_eq!(p.sparse_index().expect("index rebuilt").alive_fraction(), 0.5);
    assert!(p.gemm_sparse().is_some(), "50% coverage dispatches sparse");

    // force-modes override the threshold in both directions
    set_dispatch_mode(DispatchMode::ForceDense);
    assert!(p.gemm_sparse().is_none());
    set_dispatch_mode(DispatchMode::ForceSparse);
    assert!(p.gemm_sparse().is_some());
    set_dispatch_mode(DispatchMode::Auto);

    p.set_mask(Tensor::from_vec(&dims, dense_mask));
    assert!(p.gemm_sparse().is_none(), "unpruned mask stays dense");
}

/// Fine-tuning + evaluating a block-pruned model through the sparse path
/// produces bitwise-identical weights and accuracy to the dense path, and
/// the sparse kernels actually ran.
#[test]
fn pruned_train_and_evaluate_bitwise_match_dense_path() {
    let _guard = DISPATCH_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Train a small HAR model, then block-prune ~60% of every layer on the
    // host 4x16 block grid so every prunable layer sits below the dispatch
    // threshold. (Accelerator-plan blocks are *not* aligned to the host
    // grid; scattered plan-block pruning can leave every host block alive,
    // which correctly keeps the dense path — here we want the sparse one.)
    let mut m = App::Har.build();
    let ds = App::Har.dataset(96, 11);
    train_sgd(&mut m, &ds, &TrainConfig { epochs: 1, ..Default::default() });
    let mut states =
        build_states(&mut m, Criterion::AccOutputs, &Default::default(), &Default::default());
    let mut masks = std::collections::HashMap::new();
    for state in states.iter_mut() {
        let (rows, cols) = (state.plan.m, state.plan.k);
        let grid = block_mask(rows, cols, 4, 16, 0.6, 0x5EED + state.layer_id as u64);
        state.mask.data_mut().copy_from_slice(&grid);
        masks.insert(state.layer_id, mask_as_weight_shape(state, &m));
    }
    m.set_masks(&masks);

    let ft = TrainConfig { epochs: 2, seed: 23, ..Default::default() };
    // (counter deltas, not absolutes: the property tests in this binary
    // also bump the sparse call counters concurrently)
    let calls_before = sparse_calls();

    set_dispatch_mode(DispatchMode::ForceDense);
    let mut dense = m.clone();
    let dense_loss = train_sgd(&mut dense, &ds, &ft);
    let dense_acc = evaluate(&mut dense, &ds, 16);

    set_dispatch_mode(DispatchMode::Auto);
    let mut sparse = m.clone();
    let sparse_loss = train_sgd(&mut sparse, &ds, &ft);
    let sparse_acc = evaluate(&mut sparse, &ds, 16);
    assert!(sparse_calls() > calls_before, "pruned model must dispatch sparse kernels");

    assert_eq!(dense_loss.to_bits(), sparse_loss.to_bits(), "training loss must match bitwise");
    assert_eq!(dense_acc.to_bits(), sparse_acc.to_bits(), "accuracy must match bitwise");
    let (a, b) = (dense.snapshot(), sparse.snapshot());
    assert_eq!(a.len(), b.len());
    for (ta, tb) in a.iter().zip(b.iter()) {
        let (ba, bb): (Vec<u32>, Vec<u32>) = (bits(ta.data()), bits(tb.data()));
        assert_eq!(ba, bb, "weights must match bitwise");
    }
}

/// Total calls recorded across all six sparse kernels.
fn sparse_calls() -> u64 {
    ["acc_lhs", "acc_rhs", "at_b_lhs", "at_b_out", "a_bt_rhs", "a_bt_out"]
        .iter()
        .map(|k| metrics::counter(&format!("gemm.sparse.{k}_calls")).get())
        .sum()
}
