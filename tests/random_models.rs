//! Property tests over randomly-generated architectures: the engine's
//! invariants must hold for *any* model a user builds, not just the three
//! paper applications.

use iprune_repro::datasets::toy::ToySpec;
use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::hawaii::plan::dense_model_acc_outputs;
use iprune_repro::models::builder::NetBuilder;
use iprune_repro::models::Model;
use proptest::prelude::*;

/// Builds a random small conv net from a compact genome.
fn random_model(
    channels: (usize, usize),
    kernel: usize,
    use_fire: bool,
    use_pool: bool,
    fc_hidden: usize,
) -> Model {
    let classes = 4;
    let mut b = NetBuilder::new("random", [1, 8, 8], classes).conv(channels.0, kernel, 1, true);
    if use_fire {
        b = b.fire(2, channels.1 / 2 + 1, channels.1 / 2 + 1);
    } else {
        b = b.conv(channels.1, kernel, 1, true);
    }
    if use_pool {
        b = b.maxpool(2, 2);
    }
    b = b.flatten();
    if fc_hidden > 0 {
        b = b.fc(fc_hidden, true);
    }
    b.fc(classes, false).build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn engine_equivalence_on_random_architectures(
        c0 in 2usize..6,
        c1 in 2usize..6,
        kernel in 1usize..4,
        use_fire in any::<bool>(),
        use_pool in any::<bool>(),
        fc_hidden in 0usize..8,
        seed in 0u64..1000,
    ) {
        let mut model = random_model((c0, c1), kernel, use_fire, use_pool, fc_hidden);
        let ds = ToySpec::default().generate(3, seed);
        let dm = deploy(&mut model, &ds, 2);
        let x = ds.sample(0);

        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let reference = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).unwrap();

        // intermittent under weak power with a seeded failure phase
        let mut sim_i = DeviceSim::new(PowerStrength::Weak, seed + 1);
        let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).unwrap();
        prop_assert_eq!(&inter.logits, &reference.logits);

        // tile-atomic as well
        let mut sim_t = DeviceSim::new(PowerStrength::Weak, seed + 2);
        let tile = infer(&dm, &x, &mut sim_t, ExecMode::TileAtomic).unwrap();
        prop_assert_eq!(&tile.logits, &reference.logits);

        // the engine preserves exactly the counted accelerator outputs
        prop_assert_eq!(inter.preserved_partials, dm.total_acc_outputs() as u64);
    }

    #[test]
    fn analytic_counts_are_consistent_on_random_architectures(
        c0 in 2usize..6,
        c1 in 2usize..6,
        kernel in 1usize..4,
        fc_hidden in 0usize..8,
    ) {
        let model = random_model((c0, c1), kernel, false, true, fc_hidden);
        // dense acc outputs ≥ out elems (each element preserved ≥ once)
        let outs = dense_model_acc_outputs(&model.info);
        let elems: usize = model.info.prunables.iter().map(|p| p.out_elems()).sum();
        prop_assert!(outs >= elems);
        // MACs ≥ acc outputs (each chunk covers ≥ 1 MAC per output)
        prop_assert!(model.info.total_macs() >= outs);
    }
}
