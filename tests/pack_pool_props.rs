//! Property tests for the packing ([`pack`]) and pooling ([`pool`]) kernels
//! and the int8 GEMM.
//!
//! Three contracts, sampled over arbitrary geometries:
//!
//! * im2col (both layouts) is pure data movement, so the dispatched kernel
//!   is *bitwise* equal to the scalar spec at the ambient dispatch level —
//!   including strides, asymmetric padding, and windows that only overlap
//!   the input through the padding.
//! * max-pooling agrees with a naive per-window reference for square and
//!   rectangular windows, ignores odd tails (rows/columns that don't fill
//!   a window), records first-wins argmax offsets, and routes gradients
//!   back through exactly those offsets.
//! * the Q8 GEMM's dispatched body is bitwise equal to the wrapping-i32
//!   scalar spec on full-range i8 operands.

use iprune_repro::tensor::pack::{
    im2col_f32, im2col_f32_scalar, im2col_patches, im2col_patches_scalar, ConvShape,
};
use iprune_repro::tensor::pool::{
    maxpool2d_backward_f32, maxpool2d_f32, maxpool2d_f32_argmax, maxpool2d_f32_scalar,
    maxpool2d_i16,
};
use iprune_repro::tensor::qgemm::{q8_gemm, q8_gemm_scalar};
use proptest::prelude::*;

/// Deterministic operand in (-0.5, 0.5) with ~1/4 exact zeros.
fn operand(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s & 3 == 0 {
                0.0
            } else {
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

/// Naive im2col in the row-major `[k, out_hw]` layout (the f32 GEMM side).
fn naive_im2col_rows(src: &[f32], s: &ConvShape) -> Vec<f32> {
    let mut col = vec![0.0f32; s.col_len()];
    let n = s.out_hw();
    for c in 0..s.cin {
        for ky in 0..s.kh {
            for kx in 0..s.kw {
                let row = (c * s.kh + ky) * s.kw + kx;
                for oy in 0..s.out_h {
                    for ox in 0..s.out_w {
                        let iy = (oy * s.stride + ky) as isize - s.pad_h as isize;
                        let ix = (ox * s.stride + kx) as isize - s.pad_w as isize;
                        if iy >= 0 && iy < s.in_h as isize && ix >= 0 && ix < s.in_w as isize {
                            col[row * n + oy * s.out_w + ox] =
                                src[(c * s.in_h + iy as usize) * s.in_w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    col
}

/// Naive max-pool with first-wins argmax, the reference for both the
/// scalar spec and the vector paths.
fn naive_pool(src: &[f32], h: usize, w: usize, kh: usize, kw: usize) -> (Vec<f32>, Vec<usize>) {
    let (ho, wo) = (h / kh, w / kw);
    let mut dst = vec![0.0f32; ho * wo];
    let mut arg = vec![0usize; ho * wo];
    for oy in 0..ho {
        for ox in 0..wo {
            let mut best = f32::NEG_INFINITY;
            let mut best_off = 0;
            for ky in 0..kh {
                for kx in 0..kw {
                    let off = (oy * kh + ky) * w + ox * kw + kx;
                    if src[off] > best {
                        best = src[off];
                        best_off = off;
                    }
                }
            }
            dst[oy * wo + ox] = best;
            arg[oy * wo + ox] = best_off;
        }
    }
    (dst, arg)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    // Both im2col layouts match their naive references bitwise at the
    // ambient dispatch level, over arbitrary conv geometry.
    #[test]
    fn im2col_matches_naive_reference(
        cin in 1usize..4,
        kh in 1usize..5,
        kw in 1usize..5,
        stride in 1usize..3,
        pad_h in 0usize..3,
        pad_w in 0usize..3,
        extra_h in 0usize..8,
        extra_w in 0usize..8,
        seed in 0u64..1 << 32,
    ) {
        // guarantee at least one output position: in + 2*pad >= k
        let in_h = (kh.saturating_sub(2 * pad_h)).max(1) + extra_h;
        let in_w = (kw.saturating_sub(2 * pad_w)).max(1) + extra_w;
        let s = ConvShape {
            cin, kh, kw, stride, pad_h, pad_w, in_h, in_w,
            out_h: (in_h + 2 * pad_h - kh) / stride + 1,
            out_w: (in_w + 2 * pad_w - kw) / stride + 1,
        };
        let src = operand(s.in_len(), seed);
        let want = naive_im2col_rows(&src, &s);

        let mut rows = vec![0.125f32; s.col_len()];
        im2col_f32(&src, &s, &mut rows);
        prop_assert_eq!(bits(&rows), bits(&want));
        let mut rows_spec = vec![0.25f32; s.col_len()];
        im2col_f32_scalar(&src, &s, &mut rows_spec);
        prop_assert_eq!(bits(&rows_spec), bits(&want));

        // patch layout is the transpose of the row layout
        let src_i16: Vec<i16> = src.iter().map(|&v| (v * 32767.0) as i16).collect();
        let mut patches = vec![3i16; s.col_len()];
        im2col_patches(&src_i16, &s, &mut patches);
        let mut patches_spec = vec![9i16; s.col_len()];
        im2col_patches_scalar(&src_i16, &s, &mut patches_spec);
        prop_assert_eq!(&patches, &patches_spec);
        let (k, n) = (s.k(), s.out_hw());
        for ki in 0..k {
            for j in 0..n {
                let w16 = (want[ki * n + j] * 32767.0) as i16;
                prop_assert_eq!(patches[j * k + ki], w16);
            }
        }
    }

    // Pool forward/argmax/backward agree with the naive reference for
    // square and rectangular windows; odd tail rows/columns are ignored.
    #[test]
    fn pool_forward_backward_matches_naive(
        h in 1usize..17,
        w in 1usize..33,
        kh in 1usize..4,
        kw in 1usize..4,
        seed in 0u64..1 << 32,
    ) {
        let (kh, kw) = (kh.min(h), kw.min(w));
        let (ho, wo) = (h / kh, w / kw);
        let src = operand(h * w, seed);
        let (want, want_arg) = naive_pool(&src, h, w, kh, kw);

        let mut dst = vec![-2.0f32; ho * wo];
        maxpool2d_f32(&src, h, w, kh, kw, &mut dst);
        prop_assert_eq!(bits(&dst), bits(&want));
        let mut spec = vec![-3.0f32; ho * wo];
        maxpool2d_f32_scalar(&src, h, w, kh, kw, &mut spec);
        prop_assert_eq!(bits(&spec), bits(&want));

        let mut arg = vec![usize::MAX; ho * wo];
        let mut arg_dst = vec![0.0f32; ho * wo];
        maxpool2d_f32_argmax(&src, h, w, kh, kw, &mut arg_dst, &mut arg);
        prop_assert_eq!(bits(&arg_dst), bits(&want));
        prop_assert_eq!(&arg, &want_arg);
        for (o, &a) in arg.iter().enumerate() {
            prop_assert_eq!(src[a].to_bits(), want[o].to_bits());
        }

        // backward scatters each upstream gradient to its argmax source
        let grad = operand(ho * wo, seed ^ 0x5A5A);
        let mut gx = vec![0.0f32; h * w];
        maxpool2d_backward_f32(&arg, &grad, &mut gx);
        let mut want_gx = vec![0.0f32; h * w];
        for (o, &a) in want_arg.iter().enumerate() {
            want_gx[a] += grad[o];
        }
        prop_assert_eq!(bits(&gx), bits(&want_gx));

        // integer pooling agrees with f32 pooling on integral data
        let src_i16: Vec<i16> = src.iter().map(|&v| (v * 1000.0) as i16).collect();
        let mut dst16 = vec![0i16; ho * wo];
        maxpool2d_i16(&src_i16, h, w, kh, kw, &mut dst16);
        for (o, &d) in dst16.iter().enumerate() {
            let mut best = i16::MIN;
            let (oy, ox) = (o / wo, o % wo);
            for ky in 0..kh {
                for kx in 0..kw {
                    best = best.max(src_i16[(oy * kh + ky) * w + ox * kw + kx]);
                }
            }
            prop_assert_eq!(d, best);
        }
    }

    // The dispatched Q8 GEMM equals the wrapping-i32 scalar spec bitwise
    // on full-range operands, with and without ReLU.
    #[test]
    fn q8_gemm_matches_scalar_spec(
        m in 1usize..6,
        k in 1usize..130,
        n in 1usize..6,
        in_frac in 0u8..8,
        w_frac in 0u8..8,
        out_frac in 0u8..8,
        relu in any::<bool>(),
        seed in 0u64..1 << 32,
    ) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<i8> = (0..m * k).map(|_| next() as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|_| next() as i8).collect();
        let bias: Vec<i32> = (0..m).map(|_| next() as i32 >> 12).collect();
        let mut c = vec![0i8; m * n];
        let mut c_spec = vec![0i8; m * n];
        q8_gemm(&a, &b, &bias, &mut c, m, k, n, in_frac, w_frac, out_frac, relu);
        q8_gemm_scalar(&a, &b, &bias, &mut c_spec, m, k, n, in_frac, w_frac, out_frac, relu);
        prop_assert_eq!(&c, &c_spec);
        if relu {
            prop_assert!(c.iter().all(|&v| v >= 0));
        }
    }
}
