//! Serving determinism: the `iprune-serve` front end must be a pure
//! accelerator — the logits it returns are bitwise-identical to running
//! each sample through the model alone, every admission decision is
//! byte-identical at any thread count and any batch width, and serving a
//! request clones zero weight buffers (pinned by the
//! `tensor.weight_clones` counter the `Param` Clone impl maintains).

use iprune_repro::device::power::PowerStrength;
use iprune_repro::models::zoo::App;
use iprune_repro::obs::metrics;
use iprune_repro::serve::report::logits_checksum;
use iprune_repro::serve::{
    DeviceProfile, ExecMode, ModelRegistry, Outcome, RegistryConfig, Request, ServeConfig, Server,
    VariantKey,
};
use iprune_repro::tensor::layer::Layer;
use iprune_repro::tensor::par;
use std::sync::Arc;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn registry() -> Arc<ModelRegistry> {
    Arc::new(ModelRegistry::new(RegistryConfig { quantize: false, ..Default::default() }))
}

/// A small mixed workload with enough deadline pressure to exercise all
/// three admission outcomes.
fn workload(reg: &ModelRegistry, n: usize) -> Vec<Request> {
    let keys = [
        VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Strong),
        VariantKey::new(App::Har, DeviceProfile::SmallCap, PowerStrength::Strong),
        VariantKey::new(App::Cks, DeviceProfile::Nominal, PowerStrength::Strong),
        VariantKey::new(App::Cks, DeviceProfile::Nominal, PowerStrength::Weak),
    ];
    let har = App::Har.dataset(16, 5);
    let cks = App::Cks.dataset(16, 6);
    (0..n)
        .map(|i| {
            let h = splitmix(0xD0_5E4F ^ i as u64);
            let key = keys[(h % keys.len() as u64) as usize];
            let ds = if key.app == App::Har { &har } else { &cks };
            let input = ds.sample((splitmix(h) % 16) as usize);
            let pct = 50 + splitmix(h ^ 0xB0D6E7) % 600;
            let budget = reg.get_or_load(key).plan.cost * pct / 100;
            Request { id: i as u64, key, input, budget }
        })
        .collect()
}

#[test]
fn served_logits_are_bitwise_identical_to_single_request_inference() {
    let reg = registry();
    for app in [App::Har, App::Cks] {
        let key = VariantKey::new(app, DeviceProfile::Nominal, PowerStrength::Strong);
        let ds = app.dataset(6, 11);
        let requests: Vec<Request> = (0..6)
            .map(|i| Request { id: i as u64, key, input: ds.sample(i), budget: u64::MAX })
            .collect();
        let server =
            Server::new(Arc::clone(&reg), ServeConfig { max_batch: 4, ..Default::default() });
        let out = server.run(&requests);

        // reference: an independently rebuilt model (deterministic seeds +
        // deterministic block masks) evaluated one sample at a time through
        // the classic mutable forward pass
        let mut reference = app.build();
        let masks = reference.block_magnitude_masks(key.keep_ppm());
        reference.set_masks(&masks);
        for (i, c) in out.completions.iter().enumerate() {
            assert!(matches!(c.outcome, Outcome::Served { .. }), "{}: request {i}", app.name());
            let want = reference.forward(&ds.sample(i), false);
            assert_eq!(
                c.logits,
                want.data(),
                "{}: served logits differ from single-sample forward",
                app.name()
            );
        }
    }
}

#[test]
fn serving_clones_zero_weight_buffers_per_request() {
    use iprune_repro::tensor::layer::weight_clone_count;
    let reg = registry();
    let requests = workload(&reg, 32);
    let server = Server::new(Arc::clone(&reg), ServeConfig::default());

    let admitted_before = metrics::counter("serve.admitted").get();
    let before = weight_clone_count();
    let out = server.run(&requests);
    server.reset_history();
    let seq = server.run_mode(&requests, ExecMode::Sequential);
    let after = weight_clone_count();
    let admitted_after = metrics::counter("serve.admitted").get();

    assert!(out.stats.admitted > 0, "workload must admit requests");
    // >=: other tests in this binary may serve concurrently on the shared
    // global counters
    assert!(
        admitted_after - admitted_before >= out.stats.admitted + seq.stats.admitted,
        "admission counter tracks both runs"
    );
    assert_eq!(
        after - before,
        0,
        "serving must not clone any weight buffer, in either execution mode"
    );
}

#[test]
fn admission_and_logits_are_identical_at_any_thread_count() {
    let reg = registry();
    let requests = workload(&reg, 48);
    let mut reference: Option<(String, u64)> = None;
    for threads in [1usize, 2, 8] {
        par::set_threads(threads);
        let server = Server::new(Arc::clone(&reg), ServeConfig::default());
        let out = server.run(&requests);
        let stats = format!("{:?}", out.stats);
        let logits = logits_checksum(out.completions.iter().map(|c| c.logits.as_slice()));
        match &reference {
            None => reference = Some((stats, logits)),
            Some((s, l)) => {
                assert_eq!(&stats, s, "RunStats must be identical at {threads} threads");
                assert_eq!(logits, *l, "logit bits must be identical at {threads} threads");
            }
        }
    }
    par::set_threads(0);
}

#[test]
fn admission_and_logits_are_identical_across_batch_widths() {
    let reg = registry();
    let requests = workload(&reg, 48);
    let mut reference: Option<(u64, u64, u64, String, String, u64)> = None;
    for max_batch in [1usize, 4, 16] {
        let server = Server::new(Arc::clone(&reg), ServeConfig { max_batch, ..Default::default() });
        let out = server.run(&requests);
        let s = &out.stats;
        // batch_size/batches legitimately differ with the width; everything
        // the admission sweep decides must not
        let row = (
            s.admitted,
            s.rejected,
            s.degraded,
            format!("{:?}", s.queue_depth),
            format!("{:?}", s.service_cost),
            logits_checksum(out.completions.iter().map(|c| c.logits.as_slice())),
        );
        match &reference {
            None => reference = Some(row),
            Some(r) => assert_eq!(&row, r, "max_batch={max_batch} changed admission or logits"),
        }
    }
}

#[test]
fn serve_instruments_snapshot_in_pinned_alphabetical_order() {
    // make sure every serving instrument exists and carries data
    let reg = registry();
    let requests = workload(&reg, 16);
    Server::new(reg, ServeConfig::default()).run(&requests);

    let snap = metrics::snapshot();
    let serve_names: Vec<&str> =
        snap.iter().map(|(n, _)| n.as_str()).filter(|n| n.starts_with("serve.")).collect();
    let expected = [
        "serve.admitted",
        "serve.batch_size",
        "serve.degraded",
        "serve.queue_depth",
        "serve.registry.hits",
        "serve.registry.loads",
        "serve.rejected",
    ];
    assert_eq!(
        serve_names, expected,
        "serve.* instruments must snapshot completely, in sorted order"
    );
    // and the counter triple plus both histograms must be distinguishable
    // kinds, counters first under the (name, kind) tie order
    for (name, reading) in snap.iter().filter(|(n, _)| n.starts_with("serve.")) {
        let is_hist = matches!(reading, metrics::Reading::Histogram { .. });
        let expect_hist = name == "serve.batch_size" || name == "serve.queue_depth";
        assert_eq!(is_hist, expect_hist, "{name}: wrong instrument kind");
    }
}
