//! The observability contract: tracing is invisible to the simulation,
//! the event stream is byte-reproducible, and the attribution table
//! reconciles exactly with the simulator's aggregate statistics.
//!
//! These tests run the fig2-scale workload (unpruned HAR, weak solar,
//! intermittent mode — real power failures, recovery, and recharge) so the
//! audit covers every activity class, not just the happy path.

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::zoo::App;
use iprune_repro::obs::{
    drain_shared, parse_jsonl, to_chrome_json, to_jsonl, Attribution, MemorySink, StatsTotals,
    TraceEvent,
};

/// One traced fig2-scale run: unpruned HAR under weak solar, intermittent.
fn traced_har_run() -> (Vec<TraceEvent>, iprune_repro::hawaii::exec::InferenceOutcome) {
    let mut model = App::Har.build();
    let calib = App::Har.dataset(4, 77);
    let dm = deploy(&mut model, &calib, 4);
    let x = calib.sample(0);

    let sink = MemorySink::shared();
    let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
    sim.set_trace_sink(sink.clone());
    let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("traced inference");
    (drain_shared(&sink), out)
}

#[test]
fn golden_attribution_reconciles_with_sim_stats() {
    let (events, out) = traced_har_run();
    assert!(out.power_cycles > 0, "weak solar should force power cycles");
    assert!(out.stats.recovery_s > 0.0, "run should exercise recovery");

    let attr = Attribution::from_events(&events);
    let totals = StatsTotals::from(&out.stats);
    if let Err(e) = attr.reconcile(&totals) {
        panic!("attribution does not reconcile with SimStats:\n{e}");
    }
    // The table itself must cover the whole committed busy time.
    let busy = attr.busy_s();
    assert!((busy - out.stats.busy_s()).abs() <= 1e-9 * busy.max(1.0));
}

#[test]
fn trace_is_deterministic_across_runs() {
    let (a, out_a) = traced_har_run();
    let (b, out_b) = traced_har_run();
    assert_eq!(out_a.logits, out_b.logits);
    assert_eq!(out_a.stats, out_b.stats);
    assert_eq!(to_jsonl(&a), to_jsonl(&b), "JSONL export differs between identical runs");
    assert_eq!(to_chrome_json(&a), to_chrome_json(&b), "Chrome export differs");
}

#[test]
fn jsonl_round_trips_a_real_trace() {
    let (events, _) = traced_har_run();
    assert!(events.len() > 100, "expected a substantial event stream");
    let text = to_jsonl(&events);
    let parsed = parse_jsonl(&text).expect("parse back the exported JSONL");
    assert_eq!(parsed, events);
    // Re-serializing the parsed stream must be byte-identical.
    assert_eq!(to_jsonl(&parsed), text);
}

#[test]
fn tracing_leaves_the_simulation_untouched() {
    let mut model = App::Har.build();
    let calib = App::Har.dataset(4, 77);
    let dm = deploy(&mut model, &calib, 4);
    let x = calib.sample(0);

    let mut sim_plain = DeviceSim::new(PowerStrength::Weak, 0);
    let plain = infer(&dm, &x, &mut sim_plain, ExecMode::Intermittent).expect("untraced");
    let (_, traced) = traced_har_run();
    assert_eq!(plain.logits, traced.logits);
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(plain.latency_s, traced.latency_s);
}

#[test]
fn end_of_run_stats_pass_invariants() {
    let (_, out) = traced_har_run();
    out.stats.check_invariants().expect("SimStats invariants hold after a traced run");
}

#[test]
fn disabled_tracing_never_constructs_events() {
    use std::sync::atomic::{AtomicU32, Ordering};

    // emission points take a closure that builds the event; with no sink
    // installed the closure must never run, so a sink-less simulator
    // allocates nothing for tracing (the `label: String` below is only
    // ever built when the closure fires)
    let built = AtomicU32::new(0);
    let make = || {
        built.fetch_add(1, Ordering::SeqCst);
        TraceEvent::LayerStart { t: 0.0, op: 0, label: "conv0".to_string() }
    };

    let mut sim = DeviceSim::new(PowerStrength::Strong, 1);
    sim.emit_scope(make);
    assert_eq!(built.load(Ordering::SeqCst), 0, "no sink: the event must never be constructed");

    let sink = MemorySink::shared();
    sim.set_trace_sink(sink.clone());
    sim.emit_scope(make);
    assert_eq!(built.load(Ordering::SeqCst), 1, "with a sink the closure fires exactly once");
    let events = drain_shared(&sink);
    assert_eq!(events.len(), 1);
    assert!(matches!(&events[0], TraceEvent::LayerStart { label, .. } if label == "conv0"));
}
