//! Fleet-campaign reproducibility: the report's structural bytes must not
//! depend on *how* the population was executed.
//!
//! Three independent claims, each tested against ground truth:
//!
//! 1. **Thread invariance** — the same campaign at 1, 2, and 8 worker
//!    threads produces byte-identical structural JSON (everything except
//!    the dedicated `"wall_s"` line).
//! 2. **Shard invariance** — any shard size (1, a ragged divisor, the
//!    whole cell, or oversized) produces the same structural rows, because
//!    device sampling depends only on global coordinates and the integer
//!    aggregators merge exactly.
//! 3. **Streamed = naive** — the sharded streaming aggregate of a cell
//!    equals a collect-then-reduce oracle that simulates the same devices
//!    sequentially and folds them into one unsharded aggregate.

use iprune_repro::fleet::{
    record_workload, replay, CellAgg, FleetCampaign, PopulationSpec, Workload,
};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::models::zoo::App;
use iprune_repro::tensor::par;
use std::sync::{Mutex, OnceLock};

/// Serializes tests that flip the process-wide parallelism overrides.
fn par_overrides_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the parallelism overrides even if the test panics.
struct ParOverrideGuard;
impl Drop for ParOverrideGuard {
    fn drop(&mut self) {
        par::set_threads(0);
        par::set_host_cores(0);
    }
}

fn har_workload() -> Workload {
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    record_workload(&dm, &ds.sample(0))
}

/// A small but non-trivial population: 2 harvests × 2 variants, enough
/// devices that shard boundaries land mid-cell.
fn small_population(devices_per_cell: u64) -> PopulationSpec {
    let full = PopulationSpec::default_fleet(devices_per_cell, 11);
    PopulationSpec {
        harvests: full.harvests.into_iter().take(2).collect(),
        variants: full.variants.into_iter().take(2).collect(),
        devices_per_cell,
        seed: 11,
    }
}

#[test]
fn structural_report_is_byte_identical_across_thread_counts() {
    let _serial = par_overrides_lock();
    let _restore = ParOverrideGuard;
    // pretend the host has 8 cores so the requested counts take effect
    // even on single-core CI machines
    par::set_host_cores(8);

    let w = har_workload();
    let campaign = FleetCampaign { population: small_population(24), shard_size: 5 };

    let report_at = |threads: usize| {
        par::set_threads(threads);
        campaign.run(std::slice::from_ref(&w)).structural_json()
    };

    let base = report_at(1);
    assert!(base.contains("\"p99\""), "report must carry percentiles");
    for threads in [2, 8] {
        assert_eq!(base, report_at(threads), "report diverged at {threads} threads");
    }
}

#[test]
fn structural_report_is_invariant_under_shard_size() {
    let w = har_workload();
    let pop = small_population(23); // prime-ish: every shard size is ragged
    let report_for = |shard_size: u64| {
        FleetCampaign { population: pop.clone(), shard_size }
            .run(std::slice::from_ref(&w))
            .structural_json()
    };
    let base = report_for(23); // one shard per cell
    for shard_size in [1, 4, 7, 100] {
        let json = report_for(shard_size);
        // the shard bookkeeping differs by construction; the cell rows must not
        let rows = |j: &str| {
            j.lines().filter(|l| l.contains("\"workload\"")).map(str::to_string).collect::<Vec<_>>()
        };
        assert_eq!(rows(&base), rows(&json), "cell rows diverged at shard size {shard_size}");
    }
}

#[test]
fn streamed_aggregates_equal_naive_collect_then_reduce() {
    let w = har_workload();
    let pop = small_population(17);
    let campaign = FleetCampaign { population: pop.clone(), shard_size: 4 };
    let report = campaign.run(std::slice::from_ref(&w));

    // oracle: simulate the same cells sequentially, no shards, one fold
    let mut idx = 0usize;
    for h in 0..pop.harvests.len() {
        for v in 0..pop.variants.len() {
            let mut naive = CellAgg::default();
            for d in 0..pop.devices_per_cell {
                let device = pop.sample(idx as u64, h, v, d);
                let mut sim = device.build_sim();
                match replay(&w, &mut sim) {
                    Ok(out) => naive.record_completed(&out),
                    Err(outcome) => naive.record_failed(&outcome),
                }
            }
            let row = &report.cells[idx];
            assert_eq!(row.harvest, pop.harvests[h].label());
            assert_eq!(row.variant, pop.variants[v].name);
            assert_eq!(row.agg, naive, "streamed != naive for cell {}", idx);
            idx += 1;
        }
    }
}

#[test]
fn repeated_campaigns_reproduce_and_seeds_matter() {
    let w = har_workload();
    let campaign = FleetCampaign { population: small_population(12), shard_size: 6 };
    let a = campaign.run(std::slice::from_ref(&w));
    let b = campaign.run(std::slice::from_ref(&w));
    assert_eq!(a.structural_json(), b.structural_json(), "same seed must reproduce");

    let reseeded = FleetCampaign {
        population: PopulationSpec { seed: 12, ..campaign.population.clone() },
        shard_size: 6,
    };
    let c = reseeded.run(std::slice::from_ref(&w));
    assert_ne!(
        a.structural_json(),
        c.structural_json(),
        "a different campaign seed must draw a different population"
    );
}
