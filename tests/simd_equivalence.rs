//! Runtime SIMD dispatch: forced-scalar vs forced-AVX2 equivalence.
//!
//! The dense f32 kernels promise ULP-bounded agreement between the scalar
//! spec and the AVX2 bodies (FMA fuses roundings, so bitwise equality is
//! not expected); the sparse AVX2 bodies promise *bitwise* agreement with
//! the dense AVX2 bodies on mask-pruned operands (shared per-element
//! operation schedule); and the Q15 GEMM promises *bitwise* agreement
//! between its scalar and `madd`-based bodies. Each property is exercised
//! by forcing the process dispatch level both ways; on hosts without AVX2
//! every test degrades to a scalar self-check and the forced-AVX2 legs are
//! skipped.
//!
//! The dispatch level is process-global, so every test here serializes on
//! one lock and restores the entry level before returning.

use iprune_repro::tensor::matmul::{
    matmul_a_bt, matmul_a_bt_scalar, matmul_acc, matmul_acc_scalar, matmul_at_b, matmul_at_b_scalar,
};
use iprune_repro::tensor::pack::{
    im2col_f32, im2col_f32_scalar, im2col_patches, im2col_patches_scalar, ConvShape,
};
use iprune_repro::tensor::par;
use iprune_repro::tensor::pool::{
    maxpool2d_f32, maxpool2d_f32_argmax, maxpool2d_f32_argmax_scalar, maxpool2d_f32_scalar,
    maxpool2d_i16, maxpool2d_i16_scalar, maxpool2d_i8,
};
use iprune_repro::tensor::qgemm::{q15_gemm, q8_gemm};
use iprune_repro::tensor::simd::{avx2_supported, set_simd_level, simd_level, SimdLevel};
use iprune_repro::tensor::sparse::{
    matmul_a_bt_sparse_out, matmul_a_bt_sparse_rhs, matmul_acc_sparse_lhs, matmul_acc_sparse_rhs,
    matmul_at_b_sparse_lhs, matmul_at_b_sparse_out, SparseIndex,
};
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests (they flip process-global dispatch state) and
/// restores the entry dispatch level on drop.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

struct LevelGuard<'a> {
    _lock: MutexGuard<'a, ()>,
    entry: SimdLevel,
}

fn hold_level() -> LevelGuard<'static> {
    let lock = LEVEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    LevelGuard { _lock: lock, entry: simd_level() }
}

impl Drop for LevelGuard<'_> {
    fn drop(&mut self) {
        set_simd_level(self.entry);
    }
}

/// Deterministic operand with ~1/3 exact zeros and no negative zeros.
fn operand(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(3) {
                0.0
            } else {
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

/// Kills ~`sparsity` of the `br x bc` blocks of a `rows x cols` mask.
fn block_mask(
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    sparsity: f64,
    seed: u64,
) -> Vec<f32> {
    let mut mask = vec![1.0f32; rows * cols];
    for rb in 0..rows.div_ceil(br) {
        for cb in 0..cols.div_ceil(bc) {
            let h = (rb as u64 * 1_000_003 + cb as u64 * 7919)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed);
            if ((h >> 32) as f64 / (1u64 << 32) as f64) < sparsity {
                for r in rb * br..((rb + 1) * br).min(rows) {
                    for c in cb * bc..((cb + 1) * bc).min(cols) {
                        mask[r * cols + c] = 0.0;
                    }
                }
            }
        }
    }
    mask
}

fn apply_mask(w: &mut [f32], mask: &[f32]) {
    for (v, &m) in w.iter_mut().zip(mask.iter()) {
        *v *= m;
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// ULP distance between two finite f32 values (monotone bit mapping).
fn ulp_dist(a: f32, b: f32) -> u32 {
    fn key(x: f32) -> i64 {
        let b = x.to_bits() as i32;
        (if b < 0 { i32::MIN.wrapping_sub(b) } else { b }) as i64
    }
    key(a).abs_diff(key(b)).min(u32::MAX as u64) as u32
}

/// FMA fuses one rounding per multiply-add, so the SIMD result may drift a
/// few ULPs per reduction step; near-cancellation makes the relative (ULP)
/// view meaningless, so tiny absolute differences pass too.
fn assert_close(got: &[f32], want: &[f32], what: &str) {
    for (i, (&g, &w)) in got.iter().zip(want.iter()).enumerate() {
        let ok = g == w || (g - w).abs() <= 1e-5 || ulp_dist(g, w) <= 128;
        assert!(ok, "{what}[{i}]: simd {g} vs scalar {w} ({} ulps)", ulp_dist(g, w));
    }
}

const SHAPES: &[(usize, usize, usize)] =
    &[(1, 1, 1), (3, 5, 2), (4, 16, 16), (7, 33, 9), (12, 40, 25), (17, 64, 31)];

/// Dense kernels: the dispatched AVX2 path agrees with the scalar spec
/// within ULP tolerance, and forcing `Scalar` reproduces the spec bitwise.
#[test]
fn dense_kernels_forced_simd_match_scalar_within_ulps() {
    let _g = hold_level();
    for (ti, &(m, k, n)) in SHAPES.iter().enumerate() {
        let seed = 0x00D1_5000 + ti as u64;
        let a = operand(m * k, seed);
        let b = operand(k * n, seed ^ 0xA1);
        let c0 = operand(m * n, seed ^ 0xB2);

        type Kernel = (&'static str, fn(&[f32], &[f32], &mut [f32], usize, usize, usize));
        let pairs: [(Kernel, Kernel); 3] = [
            (("acc", matmul_acc), ("acc", matmul_acc_scalar)),
            (("at_b", matmul_at_b), ("at_b", matmul_at_b_scalar)),
            (("a_bt", matmul_a_bt), ("a_bt", matmul_a_bt_scalar)),
        ];
        for ((name, dispatched), (_, scalar)) in pairs {
            let mut c_spec = c0.clone();
            scalar(&a, &b, &mut c_spec, m, k, n);

            set_simd_level(SimdLevel::Scalar);
            let mut c_forced = c0.clone();
            dispatched(&a, &b, &mut c_forced, m, k, n);
            assert_eq!(bits(&c_forced), bits(&c_spec), "{name} forced-scalar {m}x{k}x{n}");

            if avx2_supported() {
                set_simd_level(SimdLevel::Avx2);
                let mut c_simd = c0.clone();
                dispatched(&a, &b, &mut c_simd, m, k, n);
                assert_close(&c_simd, &c_spec, &format!("{name} {m}x{k}x{n}"));
            }
        }
    }
}

/// Sparse kernels: same forced-scalar bitwise / forced-AVX2 ULP contract,
/// across block geometries and sparsities.
#[test]
fn sparse_kernels_forced_simd_match_scalar_within_ulps() {
    let _g = hold_level();
    for (ti, &(m, k, n)) in SHAPES.iter().enumerate() {
        for (si, &sparsity) in [0.0f64, 0.4, 1.0].iter().enumerate() {
            let seed = 0x05BA_9000 + (ti * 16 + si) as u64;
            let (br, bc) = (4, 16);

            // lhs-sparse family: w[m x k] pruned
            let mask = block_mask(m, k, br, bc, sparsity, seed);
            let mut w = operand(m * k, seed);
            apply_mask(&mut w, &mask);
            let idx = SparseIndex::with_blocks(&mask, m, k, br, bc);
            let x = operand(k * n, seed ^ 0xA1);
            let g = operand(m * n, seed ^ 0xC3);
            let y = operand(n * k, seed ^ 0xE5);
            // out-sparse family: dW[m x n] pruned
            let omask = block_mask(m, n, br, bc, sparsity, seed ^ 0x77);
            let oidx = SparseIndex::with_blocks(&omask, m, n, br, bc);
            let g2 = operand(m * m, seed ^ 0x28);
            let gt = operand(k * m, seed ^ 0x31);
            let xt = operand(k * n, seed ^ 0x42);
            let gk = operand(m * k, seed ^ 0x64);
            let col = operand(n * k, seed ^ 0x75);
            let c0 = operand(m.max(k).max(n) * m.max(k).max(n), seed ^ 0xB2);

            let run = |out: &mut [Vec<f32>]| {
                matmul_acc_sparse_lhs(&idx, &w, &x, &mut out[0], m, k, n);
                matmul_at_b_sparse_lhs(&idx, &w, &g, &mut out[1], k, m, n);
                matmul_a_bt_sparse_rhs(&idx, &y, &w, &mut out[2], n, k, m);
                matmul_acc_sparse_rhs(&idx, &g2, &w, &mut out[3], m, m, k);
                matmul_at_b_sparse_out(&oidx, &gt, &xt, &mut out[4], m, k, n);
                matmul_a_bt_sparse_out(&oidx, &gk, &col, &mut out[5], m, k, n);
            };
            let sizes = [m * n, k * n, n * m, m * k, m * n, m * n];
            let fresh = || -> Vec<Vec<f32>> { sizes.iter().map(|&s| c0[..s].to_vec()).collect() };

            set_simd_level(SimdLevel::Scalar);
            let mut spec = fresh();
            run(&mut spec);
            if !avx2_supported() {
                continue;
            }
            set_simd_level(SimdLevel::Avx2);
            let mut simd = fresh();
            run(&mut simd);
            let names = ["acc_lhs", "at_b_lhs", "a_bt_rhs", "acc_rhs", "at_b_out", "a_bt_out"];
            for ((name, s), v) in names.iter().zip(spec.iter()).zip(simd.iter()) {
                assert_close(v, s, &format!("{name} {m}x{k}x{n} s={sparsity}"));
            }
        }
    }
}

/// Under SIMD dispatch the sparse kernels stay *bitwise* equal to the dense
/// kernels on mask-pruned operands — the dense and sparse AVX2 bodies share
/// one per-element operation schedule, so pruning never perturbs training.
#[test]
fn dense_simd_matches_sparse_simd_bitwise_on_masked_weights() {
    if !avx2_supported() {
        return;
    }
    let _g = hold_level();
    set_simd_level(SimdLevel::Avx2);
    for (ti, &(m, k, n)) in SHAPES.iter().enumerate() {
        for (si, &sparsity) in [0.0f64, 0.3, 0.7].iter().enumerate() {
            let seed = 0xB17_000 + (ti * 16 + si) as u64;
            let mask = block_mask(m, k, 4, 16, sparsity, seed);
            let mut w = operand(m * k, seed);
            apply_mask(&mut w, &mask);
            let idx = SparseIndex::with_blocks(&mask, m, k, 4, 16);

            let x = operand(k * n, seed ^ 0xA1);
            let c0 = operand(m * n, seed ^ 0xB2);
            let mut c_dense = c0.clone();
            let mut c_sparse = c0.clone();
            matmul_acc(&w, &x, &mut c_dense, m, k, n);
            matmul_acc_sparse_lhs(&idx, &w, &x, &mut c_sparse, m, k, n);
            assert_eq!(bits(&c_dense), bits(&c_sparse), "acc {m}x{k}x{n} s={sparsity}");

            let g = operand(m * n, seed ^ 0xC3);
            let mut c_dense = operand(k * n, seed ^ 0xD4);
            let mut c_sparse = c_dense.clone();
            matmul_at_b(&w, &g, &mut c_dense, k, m, n);
            matmul_at_b_sparse_lhs(&idx, &w, &g, &mut c_sparse, k, m, n);
            assert_eq!(bits(&c_dense), bits(&c_sparse), "at_b {m}x{k}x{n} s={sparsity}");

            let y = operand(n * k, seed ^ 0xE5);
            let mut c_dense = vec![0.0f32; n * m];
            let mut c_sparse = c_dense.clone();
            matmul_a_bt(&y, &w, &mut c_dense, n, k, m);
            matmul_a_bt_sparse_rhs(&idx, &y, &w, &mut c_sparse, n, k, m);
            assert_eq!(bits(&c_dense), bits(&c_sparse), "a_bt {m}x{k}x{n} s={sparsity}");
        }
    }
}

/// The SIMD path produces identical bits at 1, 2, and 8 worker threads
/// (worker boundaries never split an element's FMA chain).
#[test]
fn simd_path_is_thread_count_invariant() {
    if !avx2_supported() {
        return;
    }
    let _g = hold_level();
    set_simd_level(SimdLevel::Avx2);
    let (m, k, n) = (33, 48, 40);
    let a = operand(m * k, 0x7412);
    let b = operand(k * n, 0x7413);
    let c0 = operand(m * n, 0x7414);

    par::set_host_cores(8);
    let run = |threads: usize| -> [Vec<u32>; 3] {
        par::set_threads(threads);
        let mut acc = c0.clone();
        matmul_acc(&a, &b, &mut acc, m, k, n);
        let mut atb = vec![0.25f32; k * n];
        matmul_at_b(&a, &b[..m * n], &mut atb, k, m, n);
        let mut abt = vec![0.0f32; m * k];
        matmul_a_bt(&a[..m * n], &b[..k * n], &mut abt, m, n, k);
        par::set_threads(0);
        [bits(&acc), bits(&atb), bits(&abt)]
    };
    let base = run(1);
    for threads in [2usize, 8] {
        let got = run(threads);
        for (name, (b1, bt)) in ["acc", "at_b", "a_bt"].iter().zip(base.iter().zip(got.iter())) {
            assert_eq!(b1, bt, "{name} at {threads} threads");
        }
    }
    par::set_host_cores(0);
}

/// Conv geometries for the packing tests: `(cin, kh, kw, stride, pad_h,
/// pad_w, in_h, in_w)`, covering stride > 1, asymmetric padding, 1-D
/// inputs, and kernels wider than the input-plus-padding overhang.
const CONV_SHAPES: &[[usize; 8]] = &[
    [1, 1, 1, 1, 0, 0, 1, 1],
    [3, 3, 3, 1, 1, 1, 8, 8],
    [4, 5, 5, 2, 2, 2, 13, 13],
    [2, 3, 1, 1, 1, 0, 9, 1],
    [8, 3, 3, 1, 0, 0, 13, 13],
    [1, 2, 7, 1, 0, 3, 5, 6],
    [5, 3, 3, 2, 1, 1, 7, 9],
];

fn conv_shape(t: &[usize; 8]) -> ConvShape {
    let &[cin, kh, kw, stride, pad_h, pad_w, in_h, in_w] = t;
    ConvShape {
        cin,
        kh,
        kw,
        stride,
        pad_h,
        pad_w,
        in_h,
        in_w,
        out_h: (in_h + 2 * pad_h - kh) / stride + 1,
        out_w: (in_w + 2 * pad_w - kw) / stride + 1,
    }
}

/// im2col is pure data movement, so both layouts promise *bitwise*
/// equality across dispatch levels for every geometry and element type.
#[test]
fn im2col_is_bitwise_exact_across_levels() {
    let _g = hold_level();
    for (ti, t) in CONV_SHAPES.iter().enumerate() {
        let s = conv_shape(t);
        let src = operand(s.in_len(), 0x1_2C01 + ti as u64);
        let src_i16: Vec<i16> = src.iter().map(|&v| (v * 32767.0) as i16).collect();
        let src_i8: Vec<i8> = src.iter().map(|&v| (v * 127.0) as i8).collect();

        let mut spec = vec![0.0f32; s.col_len()];
        im2col_f32_scalar(&src, &s, &mut spec);
        let mut spec_i16 = vec![0i16; s.col_len()];
        im2col_patches_scalar(&src_i16, &s, &mut spec_i16);
        let mut spec_i8 = vec![0i8; s.col_len()];
        im2col_patches_scalar(&src_i8, &s, &mut spec_i8);

        let levels: &[SimdLevel] = if avx2_supported() {
            &[SimdLevel::Scalar, SimdLevel::Avx2]
        } else {
            &[SimdLevel::Scalar]
        };
        for &lvl in levels {
            set_simd_level(lvl);
            let mut col = vec![0.5f32; s.col_len()];
            im2col_f32(&src, &s, &mut col);
            assert_eq!(bits(&col), bits(&spec), "f32 shape {ti} at {lvl:?}");
            let mut col16 = vec![7i16; s.col_len()];
            im2col_patches(&src_i16, &s, &mut col16);
            assert_eq!(col16, spec_i16, "i16 shape {ti} at {lvl:?}");
            let mut col8 = vec![7i8; s.col_len()];
            im2col_patches(&src_i8, &s, &mut col8);
            assert_eq!(col8, spec_i8, "i8 shape {ti} at {lvl:?}");
        }
    }
}

/// Max-pooling promises *bitwise* equality across dispatch levels for all
/// element types, including the argmax variant (first-wins tie-breaking)
/// and 1-D column inputs that canonicalize onto the row-pair path.
#[test]
fn maxpool_is_bitwise_exact_across_levels() {
    let _g = hold_level();
    // (h, w, kh, kw): vector kw∈{1,2} paths, scalar kw=3 fallback, 1-D
    let shapes: &[(usize, usize, usize, usize)] = &[
        (4, 8, 2, 2),
        (8, 16, 2, 2),
        (9, 7, 3, 1),
        (5, 10, 1, 2),
        (12, 1, 2, 1),
        (7, 9, 2, 3),
        (3, 33, 3, 2),
    ];
    for (ti, &(h, w, kh, kw)) in shapes.iter().enumerate() {
        let src = operand(h * w, 0x9001 + ti as u64);
        let src_i16: Vec<i16> = src.iter().map(|&v| (v * 32767.0) as i16).collect();
        let src_i8: Vec<i8> = src.iter().map(|&v| (v * 127.0) as i8).collect();
        let (ho, wo) = (h / kh, w / kw);

        let mut spec = vec![0.0f32; ho * wo];
        maxpool2d_f32_scalar(&src, h, w, kh, kw, &mut spec);
        let mut spec_arg = vec![0usize; ho * wo];
        let mut spec_arg_dst = vec![0.0f32; ho * wo];
        maxpool2d_f32_argmax_scalar(&src, h, w, kh, kw, &mut spec_arg_dst, &mut spec_arg);
        let mut spec_i16 = vec![0i16; ho * wo];
        maxpool2d_i16_scalar(&src_i16, h, w, kh, kw, &mut spec_i16);

        let levels: &[SimdLevel] = if avx2_supported() {
            &[SimdLevel::Scalar, SimdLevel::Avx2]
        } else {
            &[SimdLevel::Scalar]
        };
        for &lvl in levels {
            set_simd_level(lvl);
            let mut dst = vec![-1.0f32; ho * wo];
            maxpool2d_f32(&src, h, w, kh, kw, &mut dst);
            assert_eq!(bits(&dst), bits(&spec), "f32 shape {ti} at {lvl:?}");
            let mut arg = vec![usize::MAX; ho * wo];
            let mut arg_dst = vec![-1.0f32; ho * wo];
            maxpool2d_f32_argmax(&src, h, w, kh, kw, &mut arg_dst, &mut arg);
            assert_eq!(bits(&arg_dst), bits(&spec_arg_dst), "argmax dst {ti} at {lvl:?}");
            assert_eq!(arg, spec_arg, "argmax idx {ti} at {lvl:?}");
            let mut dst16 = vec![0i16; ho * wo];
            maxpool2d_i16(&src_i16, h, w, kh, kw, &mut dst16);
            assert_eq!(dst16, spec_i16, "i16 shape {ti} at {lvl:?}");
            let mut dst8 = vec![0i8; ho * wo];
            maxpool2d_i8(&src_i8, h, w, kh, kw, &mut dst8);
            // i8 is scalar at every level: compare level-to-level via i16
            let as16: Vec<i16> = dst8.iter().map(|&v| v as i16).collect();
            let src8_as16: Vec<i16> = src_i8.iter().map(|&v| v as i16).collect();
            let mut want8 = vec![0i16; ho * wo];
            maxpool2d_i16_scalar(&src8_as16, h, w, kh, kw, &mut want8);
            assert_eq!(as16, want8, "i8 shape {ti} at {lvl:?}");
        }
    }
}

/// The Q8 GEMM is *bitwise* exact across dispatch levels for arbitrary i8
/// operands — wrapping i32 accumulation reassociates freely, so unlike Q15
/// there is no operand precondition.
#[test]
fn q8_gemm_simd_is_bitwise_exact_vs_scalar() {
    let _g = hold_level();
    let mut s = 0x0800_u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 17, 5), (8, 100, 9), (4, 577, 3)] {
        let a: Vec<i8> = (0..m * k).map(|_| next() as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|_| next() as i8).collect();
        let bias: Vec<i32> = (0..m).map(|_| next() as i32 >> 16).collect();
        let mut c_scalar = vec![0i8; m * n];
        let mut c_simd = vec![0i8; m * n];
        set_simd_level(SimdLevel::Scalar);
        q8_gemm(&a, &b, &bias, &mut c_scalar, m, k, n, 5, 7, 6, true);
        if !avx2_supported() {
            continue;
        }
        set_simd_level(SimdLevel::Avx2);
        q8_gemm(&a, &b, &bias, &mut c_simd, m, k, n, 5, 7, 6, true);
        assert_eq!(c_scalar, c_simd, "{m}x{k}x{n}");
    }
}

/// The Q15 GEMM is *bitwise* exact across dispatch levels: integer madd
/// lanes sum the same products, so there is nothing to round.
#[test]
fn q15_gemm_simd_is_bitwise_exact_vs_scalar() {
    let _g = hold_level();
    let mut s = 0x9152_u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 17, 5), (8, 100, 9)] {
        // weights never hold i16::MIN (the for_max_abs guarantee)
        let a: Vec<i16> = (0..m * k).map(|_| (next() as i16).max(-i16::MAX)).collect();
        let b: Vec<i16> = (0..n * k).map(|_| next() as i16).collect();
        let bias: Vec<i16> = (0..m).map(|_| next() as i16).collect();
        let mut c_scalar = vec![0i16; m * n];
        let mut c_simd = vec![0i16; m * n];
        set_simd_level(SimdLevel::Scalar);
        q15_gemm(&a, &b, &bias, 6, &mut c_scalar, m, k, n, 12, 14, 13, true);
        if !avx2_supported() {
            continue;
        }
        set_simd_level(SimdLevel::Avx2);
        q15_gemm(&a, &b, &bias, 6, &mut c_simd, m, k, n, 12, 14, 13, true);
        assert_eq!(c_scalar, c_simd, "{m}x{k}x{n}");
    }
}
