//! Cross-crate integration: the full train → prune → deploy → intermittent
//! inference path on the fast HAR workload.

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::models::train::{evaluate, train_sgd};
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::pipeline::{prune, PruneConfig};
use iprune_repro::pruning::sa::SaConfig;

fn quick_cfg(app: App) -> PruneConfig {
    PruneConfig {
        max_iterations: 4,
        sens_eval: 24,
        val_eval: 60,
        sa: SaConfig { steps: 200, ..Default::default() },
        finetune: app.finetune_recipe(),
        ..PruneConfig::iprune()
    }
}

#[test]
fn har_full_pipeline_prunes_and_speeds_up_intermittent_inference() {
    let app = App::Har;
    let train = app.dataset(300, 900);
    let val = app.dataset(120, 901);
    let mut model = app.build();
    train_sgd(&mut model, &train, &app.train_recipe());
    let base_acc = evaluate(&mut model, &val, 32);
    assert!(base_acc > 0.7, "base model failed to train: {base_acc}");

    // deploy the unpruned model
    let mut unpruned = app.build();
    unpruned.load_weights(&model.extract_weights());
    let dm_unpruned = deploy(&mut unpruned, &val, 4);

    // prune and deploy
    let report = prune(&mut model, &train, &val, &quick_cfg(app));
    let dm_pruned = deploy(&mut model, &val, 4);

    assert!(
        dm_pruned.total_acc_outputs() <= dm_unpruned.total_acc_outputs(),
        "pruning must not increase accelerator outputs"
    );

    // run both on the simulated device under strong harvested power
    let x = val.sample(0);
    let mut sim_u = DeviceSim::new(PowerStrength::Strong, 5);
    let out_u = infer(&dm_unpruned, &x, &mut sim_u, ExecMode::Intermittent).unwrap();
    let mut sim_p = DeviceSim::new(PowerStrength::Strong, 5);
    let out_p = infer(&dm_pruned, &x, &mut sim_p, ExecMode::Intermittent).unwrap();

    if report.adopted_iteration.is_some() {
        assert!(report.final_density < 1.0);
        assert!(
            out_p.latency_s < out_u.latency_s,
            "pruned model should be faster: {} vs {}",
            out_p.latency_s,
            out_u.latency_s
        );
        assert!(
            report.baseline_accuracy - report.final_accuracy <= 0.011,
            "accuracy loss beyond epsilon"
        );
    }
}

#[test]
fn quantized_deployment_preserves_float_accuracy() {
    let app = App::Har;
    let train = app.dataset(240, 910);
    let val = app.dataset(60, 911);
    let mut model = app.build();
    train_sgd(&mut model, &train, &app.train_recipe());
    let float_acc = evaluate(&mut model, &val, 32);
    let dm = deploy(&mut model, &val, 4);

    let mut correct = 0;
    for i in 0..val.len() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(&dm, &val.sample(i), &mut sim, ExecMode::Continuous).unwrap();
        if out.argmax == val.labels()[i] {
            correct += 1;
        }
    }
    let q_acc = correct as f64 / val.len() as f64;
    assert!(
        (q_acc - float_acc).abs() < 0.1,
        "16-bit deployment accuracy {q_acc} vs float {float_acc}"
    );
}
