//! Property tests for the blocked GEMM kernels.
//!
//! The dispatched kernels ([`matmul_acc`], [`matmul_at_b`], [`matmul_a_bt`])
//! promise to agree with a naive triple loop numerically at any dispatch
//! level, and their scalar paths (`matmul_*_scalar`) to agree with the
//! scalar reference kernels *bitwise* at any thread count. These
//! properties sample arbitrary shapes — including the
//! degenerate ones (single rows, single columns, sizes that don't divide
//! the 4-row quad) — with sparse operands, since the zero-skip path is the
//! part most likely to diverge.

use iprune_repro::tensor::matmul::{
    matmul_a_bt, matmul_a_bt_ref, matmul_a_bt_scalar, matmul_acc, matmul_acc_ref,
    matmul_acc_scalar, matmul_at_b, matmul_at_b_ref, matmul_at_b_scalar,
};
use iprune_repro::tensor::par;
use proptest::prelude::*;

/// Naive `c += a[m][k] * b[k][n]`, j-innermost: the order-free ground truth.
fn naive_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += a[i * k + p] * b[p * n + j];
            }
        }
    }
}

/// Naive `c += a[k][m]ᵀ * b[k][n]`.
fn naive_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += a[p * m + i] * b[p * n + j];
            }
        }
    }
}

/// Naive `c += a[m][k] * b[n][k]ᵀ`.
fn naive_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                c[i * n + j] += a[i * k + p] * b[j * k + p];
            }
        }
    }
}

/// Fills a deterministic pseudo-random operand with ~1/3 exact zeros so the
/// kernels' zero-skip branch is exercised on every case.
fn operand(len: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if s.is_multiple_of(3) {
                0.0
            } else {
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn acc_matches_naive_and_reference(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1 << 32) {
        let a = operand(m * k, seed);
        let b = operand(k * n, seed ^ 0xABCD);
        let mut c_naive = operand(m * n, seed ^ 0x55);
        let mut c_ref = c_naive.clone();
        let mut c_scalar = c_naive.clone();
        let mut c_tiled = c_naive.clone();
        naive_acc(&a, &b, &mut c_naive, m, k, n);
        matmul_acc_ref(&a, &b, &mut c_ref, m, k, n);
        matmul_acc_scalar(&a, &b, &mut c_scalar, m, k, n);
        matmul_acc(&a, &b, &mut c_tiled, m, k, n);
        prop_assert_eq!(bits(&c_scalar), bits(&c_ref), "acc bitwise vs reference at {}x{}x{}", m, k, n);
        for (t, g) in c_tiled.iter().zip(c_naive.iter()) {
            prop_assert!((t - g).abs() <= 1e-5, "acc vs naive at {}x{}x{}: {} vs {}", m, k, n, t, g);
        }
    }

    #[test]
    fn at_b_matches_naive_and_reference(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1 << 32) {
        let a = operand(k * m, seed);
        let b = operand(k * n, seed ^ 0xABCD);
        let mut c_naive = operand(m * n, seed ^ 0x55);
        let mut c_ref = c_naive.clone();
        let mut c_scalar = c_naive.clone();
        let mut c_tiled = c_naive.clone();
        naive_at_b(&a, &b, &mut c_naive, m, k, n);
        matmul_at_b_ref(&a, &b, &mut c_ref, m, k, n);
        matmul_at_b_scalar(&a, &b, &mut c_scalar, m, k, n);
        matmul_at_b(&a, &b, &mut c_tiled, m, k, n);
        prop_assert_eq!(bits(&c_scalar), bits(&c_ref), "at_b bitwise vs reference at {}x{}x{}", m, k, n);
        for (t, g) in c_tiled.iter().zip(c_naive.iter()) {
            prop_assert!((t - g).abs() <= 1e-5, "at_b vs naive at {}x{}x{}: {} vs {}", m, k, n, t, g);
        }
    }

    #[test]
    fn a_bt_matches_naive_and_reference(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1 << 32) {
        let a = operand(m * k, seed);
        let b = operand(n * k, seed ^ 0xABCD);
        let mut c_naive = operand(m * n, seed ^ 0x55);
        let mut c_ref = c_naive.clone();
        let mut c_scalar = c_naive.clone();
        let mut c_tiled = c_naive.clone();
        naive_a_bt(&a, &b, &mut c_naive, m, k, n);
        matmul_a_bt_ref(&a, &b, &mut c_ref, m, k, n);
        matmul_a_bt_scalar(&a, &b, &mut c_scalar, m, k, n);
        matmul_a_bt(&a, &b, &mut c_tiled, m, k, n);
        prop_assert_eq!(bits(&c_scalar), bits(&c_ref), "a_bt bitwise vs reference at {}x{}x{}", m, k, n);
        for (t, g) in c_tiled.iter().zip(c_naive.iter()) {
            prop_assert!((t - g).abs() <= 1e-5, "a_bt vs naive at {}x{}x{}: {} vs {}", m, k, n, t, g);
        }
    }

    #[test]
    fn kernels_are_thread_count_invariant(m in 1usize..48, k in 1usize..32, n in 1usize..32, seed in 0u64..1 << 32) {
        let a = operand(m * k, seed);
        let b = operand(k * n, seed ^ 0xABCD);
        let base = operand(m * n, seed ^ 0x55);
        let mut serial = base.clone();
        par::set_threads(1);
        matmul_acc(&a, &b, &mut serial, m, k, n);
        for threads in [2usize, 4] {
            let mut c = base.clone();
            par::set_threads(threads);
            matmul_acc(&a, &b, &mut c, m, k, n);
            par::set_threads(0);
            prop_assert_eq!(bits(&c), bits(&serial), "{} threads at {}x{}x{}", threads, m, k, n);
        }
        par::set_threads(0);
    }
}
