//! Triage reproducibility: flagging, ranking, and the drilled report must
//! not depend on *how* the fleet was executed.
//!
//! 1. **Thread invariance** — the same campaign + triage at 1, 2, and 8
//!    worker threads produces byte-identical structural JSON.
//! 2. **Shard invariance** — any shard size produces the same structural
//!    report: fences come from the merged pass-1 aggregates, verdicts are
//!    pure functions of `(health, fences)`, and the per-cell healthy
//!    reference is a min-merge over shards.
//! 3. **Drill-down audit** — every drilled anomaly's trace attribution
//!    reconciles with its replayed `SimStats`, and the trace files land
//!    on disk when a trace dir is configured.

use iprune_repro::fleet::{
    record_workload, FleetCampaign, PopulationSpec, TriageConfig, TriageEntry, Workload,
};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::deploy::DeployedModel;
use iprune_repro::models::zoo::App;
use iprune_repro::obs::telemetry::FenceConfig;
use iprune_repro::tensor::{par, Tensor};
use std::sync::{Mutex, OnceLock};

/// Serializes tests that flip the process-wide parallelism overrides.
fn par_overrides_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the parallelism overrides even if the test panics.
struct ParOverrideGuard;
impl Drop for ParOverrideGuard {
    fn drop(&mut self) {
        par::set_threads(0);
        par::set_host_cores(0);
    }
}

fn har_setup() -> (DeployedModel, Tensor, Workload) {
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    let w = record_workload(&dm, &x);
    (dm, x, w)
}

/// A small but non-trivial population: 2 harvests × 2 variants, enough
/// devices that shard boundaries land mid-cell.
fn small_population(devices_per_cell: u64) -> PopulationSpec {
    let full = PopulationSpec::default_fleet(devices_per_cell, 11);
    PopulationSpec {
        harvests: full.harvests.into_iter().take(2).collect(),
        variants: full.variants.into_iter().take(2).collect(),
        devices_per_cell,
        seed: 11,
    }
}

/// Aggressive fences so even a tiny healthy population yields anomalies:
/// no multiplier headroom and fence floors of 1.
fn tight_fences() -> FenceConfig {
    FenceConfig {
        mult_pct: 100,
        min_latency_ns: 1,
        min_reboots: 1,
        min_retries: 1,
        min_stall_ns: 1,
        availability_margin_ppm: 0,
    }
}

#[test]
fn triage_report_is_byte_identical_across_thread_counts() {
    let _serial = par_overrides_lock();
    let _restore = ParOverrideGuard;
    par::set_host_cores(8);

    let (dm, x, w) = har_setup();
    let campaign = FleetCampaign { population: small_population(24), shard_size: 5 };
    let cfg = TriageConfig { fences: tight_fences(), top_k: 4, trace_dir: None };
    let entries = [TriageEntry { workload: &w, dm: &dm, input: &x }];

    let triage_at = |threads: usize| {
        par::set_threads(threads);
        let fleet = campaign.run(std::slice::from_ref(&w));
        run_and_render(&campaign, &entries, &fleet, &cfg)
    };

    let base = triage_at(1);
    assert!(base.contains("\"fences\""), "report must carry the cell fences");
    for threads in [2, 8] {
        assert_eq!(base, triage_at(threads), "triage diverged at {threads} threads");
    }
}

fn run_and_render(
    campaign: &FleetCampaign,
    entries: &[TriageEntry<'_>],
    fleet: &iprune_repro::fleet::FleetReport,
    cfg: &TriageConfig,
) -> String {
    iprune_repro::fleet::run_triage(campaign, entries, fleet, cfg).structural_json()
}

#[test]
fn triage_report_is_invariant_to_shard_size() {
    let _serial = par_overrides_lock();
    let _restore = ParOverrideGuard;
    par::set_host_cores(8);
    par::set_threads(4);

    let (dm, x, w) = har_setup();
    let cfg = TriageConfig { fences: tight_fences(), top_k: 4, trace_dir: None };
    let entries = [TriageEntry { workload: &w, dm: &dm, input: &x }];

    // the report echoes the shard size as config; everything else must
    // be identical
    let triage_with = |shard_size: u64| {
        let campaign = FleetCampaign { population: small_population(24), shard_size };
        let fleet = campaign.run(std::slice::from_ref(&w));
        run_and_render(&campaign, &entries, &fleet, &cfg)
            .lines()
            .filter(|l| !l.contains("\"shard_size\""))
            .map(|l| format!("{l}\n"))
            .collect::<String>()
    };

    // 1 device/shard, a ragged divisor, the whole cell, oversized
    let base = triage_with(1);
    for shard in [5, 24, 100] {
        assert_eq!(base, triage_with(shard), "triage diverged at shard size {shard}");
    }
}

#[test]
fn drilled_anomalies_reconcile_and_traces_land_on_disk() {
    let (dm, x, w) = har_setup();
    let campaign = FleetCampaign { population: small_population(12), shard_size: 5 };
    let fleet = campaign.run(std::slice::from_ref(&w));

    let dir = std::env::temp_dir().join(format!("iprune-triage-test-{}", std::process::id()));
    let cfg = TriageConfig { fences: tight_fences(), top_k: 3, trace_dir: Some(dir.clone()) };
    let entries = [TriageEntry { workload: &w, dm: &dm, input: &x }];
    let report = iprune_repro::fleet::run_triage(&campaign, &entries, &fleet, &cfg);

    assert!(report.flagged > 0, "tight fences must flag someone");
    assert!(!report.anomalies.is_empty());
    assert!(report.anomalies.len() <= 3, "top-K bound");
    let per_cell: u64 = report.cells.iter().map(|c| c.flagged).sum();
    assert_eq!(per_cell, report.flagged);
    // ranking is severity-descending with (cell, device) tiebreaks
    for pair in report.anomalies.windows(2) {
        assert!(
            pair[0].severity > pair[1].severity
                || (pair[0].severity == pair[1].severity
                    && (pair[0].cell, pair[0].device) < (pair[1].cell, pair[1].device)),
            "ranking must be total and severity-descending"
        );
    }
    for a in &report.anomalies {
        assert!(a.reconciled, "anomaly {} failed the attribution audit", a.trace);
        assert!(!a.causes.is_empty());
        assert!(dir.join(format!("{}.jsonl", a.trace)).is_file(), "{} trace missing", a.trace);
        assert!(dir.join(format!("{}.chrome.json", a.trace)).is_file());
        assert!(dir.join(format!("{}.diff.txt", a.trace)).is_file());
    }
    std::fs::remove_dir_all(&dir).ok();
}
