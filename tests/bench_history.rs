//! The bench-trajectory gate, run against the repo's own committed
//! artifacts: every `BENCH_*.json` must structurally match its entry in
//! `BENCH_HISTORY.jsonl`.
//!
//! This is the root of the regression-gate chain. A PR that changes a
//! deterministic report's structural bytes (determinism hash) must
//! deliberately re-record the history (`iprune-cli history record`) in
//! the same commit — silent drift fails here. Wall-clock is *not* gated
//! in the test (hosts differ); CI gates growth separately on its own
//! fresh runs.

use iprune_repro::obs::history::{self, HistoryEntry};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn committed_entries() -> Vec<HistoryEntry> {
    let mut names: Vec<String> = std::fs::read_dir(repo_root())
        .expect("read repo root")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|n| {
            let text = std::fs::read_to_string(repo_root().join(n)).expect("read bench report");
            let bench =
                n.trim_start_matches("BENCH_").trim_end_matches(".json").to_ascii_lowercase();
            HistoryEntry::of(&bench, &text)
        })
        .collect()
}

#[test]
fn committed_reports_match_the_committed_history() {
    let current = committed_entries();
    assert!(!current.is_empty(), "the repo must carry committed BENCH_*.json reports");

    let text = std::fs::read_to_string(repo_root().join("BENCH_HISTORY.jsonl")).expect(
        "BENCH_HISTORY.jsonl must be committed — regenerate with `iprune-cli history record`",
    );
    let history = history::parse_history(&text).expect("well-formed history");

    // hash-only: wall-clock differs across hosts by design
    if let Err(violations) = history::gate(&history, &current, None) {
        panic!(
            "bench history diverged — if the structural change is intended, re-record with \
             `iprune-cli history record` in the same commit:\n  {}",
            violations.join("\n  ")
        );
    }

    // and the history must not reference benches that no longer exist:
    // stale entries would silently stop gating anything
    for old in &history {
        assert!(
            current.iter().any(|c| c.name == old.name),
            "history entry `{}` has no committed BENCH_{}.json",
            old.name,
            old.name
        );
    }
}

#[test]
fn history_round_trips_through_render_and_parse() {
    let current = committed_entries();
    let rendered = history::render_history(&current);
    let parsed = history::parse_history(&rendered).expect("round-trip parse");
    assert_eq!(parsed, current, "render → parse must be the identity");
}
