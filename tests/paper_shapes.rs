//! Paper-facing shape checks: the structural numbers of Table II and the
//! qualitative orderings the evaluation section reports.

use iprune_repro::device::{DeviceSim, PowerStrength};
use iprune_repro::hawaii::deploy::deploy;
use iprune_repro::hawaii::exec::{infer, ExecMode};
use iprune_repro::hawaii::plan::{dense_model_acc_outputs, diversity_label, diversity_ratio};
use iprune_repro::models::zoo::App;

#[test]
fn table2_structure_within_tolerance() {
    // (app, layers (conv,pool,fc), size KB, MACs K, acc outputs K)
    let rows = [
        (App::Sqn, (11, 2, 0), 147.0, 4442.0, 1483.0),
        (App::Har, (3, 3, 1), 28.0, 321.0, 77.0),
        (App::Cks, (2, 2, 3), 131.0, 2811.0, 1582.0),
    ];
    for (app, tally, size_kb, macs_k, outs_k) in rows {
        let m = app.build();
        assert_eq!(m.info.layer_tally(), tally, "{} layer tally", app.name());
        let size = m.info.dense_size_bytes() as f64 / 1024.0;
        assert!((size / size_kb - 1.0).abs() < 0.05, "{} size {size} vs {size_kb}", app.name());
        let macs = m.info.total_macs() as f64 / 1000.0;
        assert!((macs / macs_k - 1.0).abs() < 0.06, "{} macs {macs} vs {macs_k}", app.name());
        let outs = dense_model_acc_outputs(&m.info) as f64 / 1000.0;
        assert!(
            (outs / outs_k - 1.0).abs() < 0.25,
            "{} acc outputs {outs} vs {outs_k}",
            app.name()
        );
    }
}

#[test]
fn diversity_labels_match_table2() {
    let labels: Vec<&str> =
        App::all().iter().map(|app| diversity_label(diversity_ratio(&app.build().info))).collect();
    assert_eq!(labels, vec!["Low", "Medium", "High"]);
}

#[test]
fn latency_orderings_match_figure5_axes() {
    // For the unpruned models: continuous < strong < weak latency, and the
    // continuous *engine mode* beats the intermittent mode (Figure 2).
    for app in [App::Har, App::Cks] {
        let mut model = app.build();
        let ds = app.dataset(2, 555);
        let dm = deploy(&mut model, &ds, 2);
        let x = ds.sample(0);
        let run = |strength, seed| {
            let mut sim = DeviceSim::new(strength, seed);
            infer(&dm, &x, &mut sim, ExecMode::Intermittent).unwrap().latency_s
        };
        let cont = run(PowerStrength::Continuous, 0);
        let strong = run(PowerStrength::Strong, 1);
        let weak = run(PowerStrength::Weak, 1);
        assert!(cont < strong && strong < weak, "{}: {cont} {strong} {weak}", app.name());

        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let conv = infer(&dm, &x, &mut sim, ExecMode::Continuous).unwrap();
        assert!(conv.latency_s < cont, "{}: conventional mode must be faster", app.name());
        assert!(conv.stats.write_share() < 0.3, "{}", app.name());
    }
}

#[test]
fn fewer_acc_outputs_means_lower_intermittent_latency() {
    // The criterion's core claim: reducing accelerator outputs reduces
    // intermittent latency. Compare CKS dense vs 60% block-pruned.
    use iprune_repro::pruning::strategy::magnitude_element_step;
    let app = App::Har;
    let ds = app.dataset(2, 556);
    let mut dense_model = app.build();
    let dm_dense = deploy(&mut dense_model, &ds, 2);
    let mut sparse_model = app.build();
    let masks = magnitude_element_step(&mut sparse_model, 0.7);
    sparse_model.set_masks(&masks);
    let dm_sparse = deploy(&mut sparse_model, &ds, 2);
    assert!(dm_sparse.total_acc_outputs() < dm_dense.total_acc_outputs());
    let x = ds.sample(0);
    let mut sim_a = DeviceSim::new(PowerStrength::Strong, 2);
    let a = infer(&dm_dense, &x, &mut sim_a, ExecMode::Intermittent).unwrap();
    let mut sim_b = DeviceSim::new(PowerStrength::Strong, 2);
    let b = infer(&dm_sparse, &x, &mut sim_b, ExecMode::Intermittent).unwrap();
    assert!(b.latency_s < a.latency_s, "{} vs {}", b.latency_s, a.latency_s);
}
