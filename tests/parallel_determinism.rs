//! The host-side parallelism contract: thread count never changes results.
//!
//! Every parallel region in the workspace (per-sample conv GEMMs, batched
//! evaluation, per-layer sensitivity probes) reduces its partials in a
//! fixed order, so training, evaluation, and sensitivity analysis must be
//! *bitwise* identical whether they run on one worker or many. These tests
//! pin that contract on a seeded HAR model small enough to train in-test.

use iprune_repro::device::energy::EnergyModel;
use iprune_repro::device::timing::TimingModel;
use iprune_repro::models::train::{evaluate, train_sgd, TrainConfig};
use iprune_repro::models::zoo::App;
use iprune_repro::pruning::blocks::build_states;
use iprune_repro::pruning::sensitivity::analyze;
use iprune_repro::pruning::Criterion;
use iprune_repro::tensor::par;

/// Bit patterns of every weight tensor in the model, in layer order.
fn weight_bits(model: &mut iprune_repro::models::model::Model) -> Vec<u32> {
    model.snapshot().iter().flat_map(|t| t.data().iter().map(|x| x.to_bits())).collect()
}

#[test]
fn train_and_evaluate_are_thread_count_invariant() {
    let run = |threads: usize| {
        par::set_threads(threads);
        let mut m = App::Har.build();
        let ds = App::Har.dataset(48, 9);
        let loss = train_sgd(&mut m, &ds, &TrainConfig { epochs: 1, ..Default::default() });
        let acc = evaluate(&mut m, &ds, 16);
        let weights = weight_bits(&mut m);
        par::set_threads(0);
        (loss.to_bits(), acc.to_bits(), weights)
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let parallel = run(threads);
        assert_eq!(parallel.0, serial.0, "final loss differs at {threads} threads");
        assert_eq!(parallel.1, serial.1, "accuracy differs at {threads} threads");
        assert_eq!(parallel.2, serial.2, "weights differ at {threads} threads");
    }
}

#[test]
fn sensitivity_analysis_is_thread_count_invariant() {
    let run = |threads: usize| {
        par::set_threads(threads);
        let mut m = App::Har.build();
        let ds = App::Har.dataset(60, 3);
        train_sgd(&mut m, &ds, &TrainConfig { epochs: 1, ..Default::default() });
        let states = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        let sens = analyze(&mut m, &states, &ds.take(24), 0.3, 12);
        par::set_threads(0);
        (sens.baseline.to_bits(), sens.drops.iter().map(|d| d.to_bits()).collect::<Vec<u64>>())
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        let parallel = run(threads);
        assert_eq!(parallel.0, serial.0, "baseline differs at {threads} threads");
        assert_eq!(parallel.1, serial.1, "sensitivity drops differ at {threads} threads");
    }
}
