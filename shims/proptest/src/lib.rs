//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The reproduction environment cannot reach crates.io, so this crate
//! provides a small deterministic property-testing harness with the same
//! call surface the tests were written against: the [`proptest!`] macro,
//! range and [`collection::vec`] strategies, [`any`], `prop_assert!` /
//! `prop_assert_eq!`, and [`ProptestConfig`]. Unlike real proptest it does
//! no shrinking: each generated test runs `cases` deterministic samples
//! (seeded from the test name, so failures reproduce exactly) and reports
//! the failing inputs via the assertion message.

/// Per-test configuration (only `cases` is honoured by this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64, max_shrink_iters: 0 }
    }
}

/// Deterministic per-test sample source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so each property gets a stable,
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator: the sampling half of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty => $bits:expr),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let frac = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let v = self.start + frac * (self.end - self.start);
                if v >= self.end { self.end.next_down().max(self.start) } else { v }
            }
        }
    )*};
}

float_strategy!(f32 => 24, f64 => 53);

/// Strategy for any value of a type with a canonical arbitrary impl.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (shim: `bool` and small ints).
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, i8, i16, i32, i64);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// Vectors of `elem` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len.clone(), rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Asserts a property-test condition, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      #[test]
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let run = || -> () { $body };
                let _ = case;
                run();
            }
        }
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
}

/// Declares deterministic property tests over sampled inputs.
///
/// Supports the `proptest!` forms used in this workspace: an optional
/// leading `#![proptest_config(...)]` and one or more `#[test] fn
/// name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in -2i32..=2, f in 0.5f32..1.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.5..1.5).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
        #[test]
        fn vec_strategy_respects_len(xs in crate::collection::vec(0f32..1.0, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn any_bool_hits_both(flag in any::<bool>(), _pad in 0u64..10) {
            // determinism smoke: same name → same stream on every run
            let _ = flag;
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
