//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The reproduction environment cannot reach crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the handful of
//! `rand` items it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, and
//! [`seq::SliceRandom::shuffle`]. The generator core is xoshiro256++ seeded
//! through SplitMix64 — statistically strong, trivially portable, and fully
//! deterministic for a given seed, which is all the synthetic datasets,
//! weight init, SGD shuffling, and simulated annealing need.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng` (absolute
//! values were never a reproduction target — seeds only pin determinism),
//! but the API surface is call-compatible so the workspace code reads
//! exactly as it would against the real crate.

/// A random number generator core: the single primitive everything else
/// derives from.
pub trait RngCore {
    /// Returns the next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // uniform in [0, 1): the top `$bits` bits over 2^bits
                let frac =
                    (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                let v = self.start + frac * (self.end - self.start);
                // guard the right-open contract against rounding
                if v >= self.end { self.end.next_down().max(self.start) } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let frac =
                    (rng.next_u64() >> (64 - $bits)) as $t / ((1u64 << $bits) - 1) as $t;
                lo + frac * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32 => 24, f64 => 53);

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range` (right-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. (Upstream `rand` uses ChaCha12 here; only determinism,
    /// not the exact stream, matters to this reproduction.)
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly-chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.gen_range(0..100u64) == c.gen_range(0..100u64)).count();
        assert!(same < 30, "different seeds should disagree most of the time");
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
            let w = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w), "{w}");
        }
        // the EPSILON..1.0 draw used by Box–Muller must never return 0
        for _ in 0..10_000 {
            assert!(rng.gen_range(f32::EPSILON..1.0) > 0.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
            let s = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&s));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 6;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "{counts:?}"
            );
        }
    }
}
