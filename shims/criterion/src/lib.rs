//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The reproduction environment cannot reach crates.io, so the `micro`
//! bench target links against this minimal, dependency-free timing harness
//! instead: [`Criterion::bench_function`] with [`Bencher::iter`], plus the
//! [`criterion_group!`]/[`criterion_main!`] macros. It reports the median
//! and spread of per-iteration wall-clock times. No statistical analysis,
//! plots, or baselines — just honest numbers on stdout.

use std::time::{Duration, Instant};

/// Re-export so benches can keep importing `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // warm-up: also estimates the per-iteration cost
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            f(&mut b);
            iters_done += b.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // pick an iteration count so each sample is measurable
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_time(lo),
            fmt_time(median),
            fmt_time(hi),
            samples.len(),
            iters
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Passed to the closure under test; times the requested iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` the scheduled number of times, timing the whole run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group (source-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point (source-compatible subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn fmt_time_scales() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("us"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains("s"));
    }
}
