//! Ablations of iPrune's design choices (printed, small scale):
//!
//! 1. Criterion — accelerator-output vs energy vs magnitude objectives
//!    under the identical strategy/loop, measured by remaining accelerator
//!    outputs at matched accuracy.
//! 2. Granularity — block (guideline 3) vs element pruning: acc outputs
//!    removed per weight pruned.
//! 3. Γ selection — sensitivity-ranked Γ (guideline 1) vs a fixed Γ.
//! 4. Preservation strategy — HAWAII job-level preservation vs
//!    SONIC/TAILS-style tile-atomic execution on the device simulator.
//! 5. Schedule — the paper's iterative loop vs classic one-shot pruning.
//!
//! Uses HAR (fast) so the whole ablation suite completes in seconds.

use iprune::blocks::build_states;
use iprune::pipeline::{prune, Granularity, PruneConfig};
use iprune::sa::SaConfig;
use iprune::Criterion;
use iprune_device::energy::EnergyModel;
use iprune_device::timing::TimingModel;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_models::train::train_sgd;
use iprune_models::zoo::App;
use iprune_models::Model;

fn acc_output_cost(model: &mut Model) -> f64 {
    build_states(model, Criterion::AccOutputs, &TimingModel::default(), &EnergyModel::default())
        .iter()
        .map(|s| s.alive_cost)
        .sum()
}

fn base_cfg() -> PruneConfig {
    PruneConfig {
        max_iterations: 4,
        sens_eval: 32,
        val_eval: 80,
        sa: SaConfig { steps: 400, ..Default::default() },
        finetune: App::Har.finetune_recipe(),
        ..PruneConfig::iprune()
    }
}

fn main() {
    let app = App::Har;
    let train = app.dataset(400, 51);
    let val = app.dataset(160, 52);
    let mut base = app.build();
    train_sgd(&mut base, &train, &app.train_recipe());
    let base_weights = base.extract_weights();
    let dense_cost = acc_output_cost(&mut base);

    println!("Ablations (HAR, dense acc outputs = {:.0})", dense_cost);
    println!("==========================================");

    // 1. criterion ablation
    println!();
    println!("1. Criterion ablation — same loop, different objective");
    for criterion in [Criterion::AccOutputs, Criterion::Energy] {
        let mut m = app.build();
        m.load_weights(&base_weights);
        let cfg = PruneConfig { criterion, ..base_cfg() };
        let report = prune(&mut m, &train, &val, &cfg);
        let cost = acc_output_cost(&mut m);
        println!(
            "   {:<12} density {:>5.1}%  acc {:>5.1}%  remaining acc outputs {:>6.0} K ({:>4.1}% of dense)",
            criterion.label(),
            report.final_density * 100.0,
            report.final_accuracy * 100.0,
            cost / 1000.0,
            100.0 * cost / dense_cost
        );
    }

    // 2. granularity ablation
    println!();
    println!("2. Granularity ablation — acc outputs removed per weight removed");
    for (label, granularity, criterion) in [
        ("block (iPrune)", Granularity::Block, Criterion::AccOutputs),
        ("element (magnitude)", Granularity::Element, Criterion::Magnitude),
    ] {
        let mut m = app.build();
        m.load_weights(&base_weights);
        let cfg = PruneConfig { criterion, granularity, max_iterations: 2, ..base_cfg() };
        let report = prune(&mut m, &train, &val, &cfg);
        let cost = acc_output_cost(&mut m);
        let pruned_frac = 1.0 - report.final_density;
        let removed_frac = 1.0 - cost / dense_cost;
        println!(
            "   {:<20} pruned {:>5.1}% of weights, removed {:>5.1}% of acc outputs (efficiency {:.2})",
            label,
            pruned_frac * 100.0,
            removed_frac * 100.0,
            if pruned_frac > 0.0 { removed_frac / pruned_frac } else { 0.0 }
        );
    }

    // 3. gamma-selection ablation
    println!();
    println!("3. Overall-ratio selection — guideline 1 vs fixed Γ = Γ̂");
    {
        let mut m = app.build();
        m.load_weights(&base_weights);
        let report = prune(&mut m, &train, &val, &base_cfg());
        let struck: usize = report.iterations.iter().filter(|it| it.struck).count();
        println!(
            "   sensitivity-ranked Γ: {} iterations, {} strikes, final density {:.1}%, acc {:.1}%",
            report.iterations.len(),
            struck,
            report.final_density * 100.0,
            report.final_accuracy * 100.0
        );
    }
    {
        // fixed aggressive Γ: emulate by setting Γ̂ so every rank maps high
        let mut m = app.build();
        m.load_weights(&base_weights);
        let mut cfg = base_cfg();
        cfg.gamma_hat = 0.4 * 4.0; // rank-independent: even rank 1 gets ~0.4
        let report = prune(&mut m, &train, &val, &cfg);
        let struck: usize = report.iterations.iter().filter(|it| it.struck).count();
        println!(
            "   fixed Γ = Γ̂:         {} iterations, {} strikes, final density {:.1}%, acc {:.1}%",
            report.iterations.len(),
            struck,
            report.final_density * 100.0,
            report.final_accuracy * 100.0
        );
        println!("   (expected: fixed Γ strikes out earlier or keeps a larger model)");
    }

    // 4. preservation-strategy ablation
    println!();
    println!("4. Preservation strategy — job-level (HAWAII) vs tile-atomic (SONIC-style)");
    {
        let mut m = app.build();
        m.load_weights(&base_weights);
        let dm = deploy(&mut m, &val, 4);
        let x = val.sample(0);
        for strength in [PowerStrength::Strong, PowerStrength::Weak] {
            for (label, mode) in
                [("job-level ", ExecMode::Intermittent), ("tile-atomic", ExecMode::TileAtomic)]
            {
                let mut sim = DeviceSim::new(strength, 3);
                let out = infer(&dm, &x, &mut sim, mode).expect("inference");
                println!(
                    "   {:<16} {}  latency {:>7.3}s  cycles {:>4}  NVM written {:>6} KB  jobs {:>6}",
                    strength.label(),
                    label,
                    out.latency_s,
                    out.power_cycles,
                    out.stats.nvm_write_bytes / 1024,
                    out.jobs
                );
            }
        }
        println!("   (job-level writes more but loses almost nothing per failure;");
        println!("    tile-atomic writes less but re-executes whole tiles)");
    }

    // 5. schedule ablation
    println!();
    println!("5. Schedule — iterative (paper) vs one-shot at the same total ratio");
    {
        let mut iterative = app.build();
        iterative.load_weights(&base_weights);
        let it_report = prune(&mut iterative, &train, &val, &base_cfg());
        let target = 1.0 - it_report.final_density;
        let mut oneshot = app.build();
        oneshot.load_weights(&base_weights);
        let os_cfg = PruneConfig {
            sens_eval: 32,
            val_eval: 80,
            finetune: App::Har.finetune_recipe(),
            ..PruneConfig::one_shot(target.max(0.1))
        };
        let os_report = prune(&mut oneshot, &train, &val, &os_cfg);
        println!(
            "   iterative: density {:>5.1}%  acc {:>5.1}%  ({} iterations)",
            it_report.final_density * 100.0,
            it_report.final_accuracy * 100.0,
            it_report.iterations.len()
        );
        println!(
            "   one-shot:  density {:>5.1}%  acc {:>5.1}%  (accepted: {})",
            os_report.iterations.first().map(|i| i.density * 100.0).unwrap_or(100.0),
            os_report.iterations.first().map(|i| i.accuracy * 100.0).unwrap_or(0.0),
            os_report.adopted_iteration.is_some()
        );
        println!("   (one-shot at the same ratio tends to exceed the recoverable loss)");
    }
}
