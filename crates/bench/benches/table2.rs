//! Table II — TinyML applications used for evaluation.
//!
//! Prints, per app: layer tally, dense model size, MACs, accelerator
//! outputs (under the HAWAII+ tile plans), and the layer-diversity label,
//! next to the paper's reported values.

use iprune_hawaii::plan::{dense_model_acc_outputs, diversity_label, diversity_ratio};
use iprune_models::zoo::App;

struct PaperRow {
    size_kb: f64,
    macs_k: f64,
    outputs_k: f64,
    diversity: &'static str,
}

fn paper_row(app: App) -> PaperRow {
    match app {
        App::Sqn => {
            PaperRow { size_kb: 147.0, macs_k: 4442.0, outputs_k: 1483.0, diversity: "Low" }
        }
        App::Har => PaperRow { size_kb: 28.0, macs_k: 321.0, outputs_k: 77.0, diversity: "Medium" },
        App::Cks => {
            PaperRow { size_kb: 131.0, macs_k: 2811.0, outputs_k: 1582.0, diversity: "High" }
        }
    }
}

fn main() {
    println!("Table II — TinyML applications used for evaluation");
    println!("===================================================");
    println!(
        "{:<5} {:<22} {:>14} {:>12} {:>16} {:>10}",
        "App", "Layers", "Model Size", "MACs", "Acc. Outputs", "Diversity"
    );
    for app in App::all() {
        let model = app.build();
        let info = &model.info;
        let (convs, pools, fcs) = info.layer_tally();
        let mut layers = format!("CONV x{convs}");
        if pools > 0 {
            layers.push_str(&format!(", POOL x{pools}"));
        }
        if fcs > 0 {
            layers.push_str(&format!(", FC x{fcs}"));
        }
        let size_kb = info.dense_size_bytes() as f64 / 1024.0;
        let macs_k = info.total_macs() as f64 / 1000.0;
        let outputs_k = dense_model_acc_outputs(info) as f64 / 1000.0;
        let div = diversity_label(diversity_ratio(info));
        let p = paper_row(app);
        println!(
            "{:<5} {:<22} {:>9.0} KB {:>9.0} K {:>13.0} K {:>10}",
            app.name(),
            layers,
            size_kb,
            macs_k,
            outputs_k,
            div
        );
        println!(
            "{:<5} {:<22} {:>9.0} KB {:>9.0} K {:>13.0} K {:>10}   (paper)",
            "", "", p.size_kb, p.macs_k, p.outputs_k, p.diversity
        );
    }
    println!();
    println!("Diversity = max/min of per-layer (acc outputs / weights):");
    for app in App::all() {
        let model = app.build();
        println!("  {:<4} ratio {:>7.1}", app.name(), diversity_ratio(&model.info));
    }
}
