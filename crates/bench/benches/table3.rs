//! Table III — characteristics of the pruned models.
//!
//! Runs the full train → prune(ePrune / iPrune) → deploy pipelines for all
//! three apps and prints accuracy, deployed model size, MACs, and
//! accelerator outputs for Unpruned / ePrune / iPrune, next to the paper's
//! values. Heavy: respects `IPRUNE_SCALE` and caches checkpoints under
//! `target/iprune_cache/`.

use iprune::report::quantized_accuracy;
use iprune_bench::{run_all_apps, Scale, Variant};
use iprune_models::zoo::App;

fn paper(app: App, v: Variant) -> (f64, f64, f64, f64) {
    // (accuracy %, size KB, MACs K, acc outputs K)
    match (app, v) {
        (App::Sqn, Variant::Unpruned) => (76.3, 147.0, 4442.0, 1483.0),
        (App::Sqn, Variant::EPrune) => (75.5, 56.0, 1617.0, 561.0),
        (App::Sqn, Variant::IPrune) => (75.5, 55.0, 1560.0, 518.0),
        (App::Har, Variant::Unpruned) => (92.5, 28.0, 321.0, 77.0),
        (App::Har, Variant::EPrune) => (92.7, 14.0, 183.0, 56.0),
        (App::Har, Variant::IPrune) => (92.7, 9.0, 108.0, 44.0),
        (App::Cks, Variant::Unpruned) => (87.5, 131.0, 2811.0, 1582.0),
        (App::Cks, Variant::EPrune) => (87.6, 75.0, 1047.0, 987.0),
        (App::Cks, Variant::IPrune) => (87.7, 67.0, 1149.0, 509.0),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("Table III — Characteristics of the pruned models ({})", scale.describe_run());
    println!("==================================================================");
    println!(
        "{:<5} {:<9} {:>9} {:>8} {:>11} {:>10} {:>13}",
        "App", "Model", "Acc(f32)", "Acc(q15)", "Size", "MACs", "Acc.Outputs"
    );
    // the three app pipelines run concurrently; rows print in app order
    for results in run_all_apps(&scale, true) {
        let app = results.app;
        for vr in &results.variants {
            let qacc = quantized_accuracy(&vr.deployed, &results.val, scale.quant_eval);
            let (pa, ps, pm, po) = paper(app, vr.variant);
            println!(
                "{:<5} {:<9} {:>8.1}% {:>7.1}% {:>8.0} KB {:>8.0} K {:>11.0} K",
                app.name(),
                vr.variant.label(),
                vr.ch.accuracy * 100.0,
                qacc * 100.0,
                vr.ch.size_bytes as f64 / 1024.0,
                vr.ch.macs as f64 / 1000.0,
                vr.ch.acc_outputs as f64 / 1000.0,
            );
            println!(
                "{:<5} {:<9} {:>8.1}% {:>8} {:>8.0} KB {:>8.0} K {:>11.0} K   (paper)",
                "", "", pa, "-", ps, pm, po
            );
        }
        // shape checks the paper emphasizes
        let un = &results.variants[0].ch;
        let ep = &results.variants[1].ch;
        let ip = &results.variants[2].ch;
        println!(
            "  -> iPrune vs ePrune: size x{:.2}, acc outputs x{:.2} (paper: smaller is better for iPrune)",
            ip.size_bytes as f64 / ep.size_bytes as f64,
            ip.acc_outputs as f64 / ep.acc_outputs as f64,
        );
        println!(
            "  -> acc-output reduction vs unpruned: ePrune {:.0}%, iPrune {:.0}%",
            100.0 * (1.0 - ep.acc_outputs as f64 / un.acc_outputs as f64),
            100.0 * (1.0 - ip.acc_outputs as f64 / un.acc_outputs as f64),
        );
    }
}
