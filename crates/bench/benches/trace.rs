//! Trace smoke — traced intermittent inference with the observability
//! stack end to end.
//!
//! Runs the unpruned HAR model intermittently under the weak-solar supply
//! with a trace sink attached, then:
//!
//! 1. checks tracing changed nothing (outputs and stats bit-identical to
//!    an untraced run, and a second traced run emits byte-identical JSONL);
//! 2. folds the event stream into the per-layer attribution table and
//!    reconciles it against the simulator's aggregate `SimStats`;
//! 3. writes the Chrome `trace_event` export to `BENCH_trace.json` at the
//!    workspace root — load it in `chrome://tracing` or Perfetto.
//!
//! The human-readable attribution table goes to stdout; narration goes
//! through the `IPRUNE_LOG` stderr logger.

use iprune_bench::cache::workspace_root;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_models::zoo::App;
use iprune_obs::{drain_shared, log_info, to_chrome_json, to_jsonl, Attribution, MemorySink};

fn main() {
    println!("Trace smoke — traced intermittent inference, audit, Chrome export");
    println!("=================================================================");

    let mut model = App::Har.build();
    let calib = App::Har.dataset(4, 77);
    let dm = deploy(&mut model, &calib, 4);
    let x = calib.sample(0);

    // Untraced reference run.
    let mut sim_ref = DeviceSim::new(PowerStrength::Weak, 0);
    let base = infer(&dm, &x, &mut sim_ref, ExecMode::Intermittent).expect("untraced run");

    // Traced run.
    let sink = MemorySink::shared();
    let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
    sim.set_trace_sink(sink.clone());
    let out = infer(&dm, &x, &mut sim, ExecMode::Intermittent).expect("traced run");
    let events = drain_shared(&sink);

    assert_eq!(out.logits, base.logits, "tracing changed inference outputs");
    assert_eq!(out.stats, base.stats, "tracing changed simulator statistics");

    // Second traced run: the event stream must be byte-reproducible.
    let sink2 = MemorySink::shared();
    let mut sim2 = DeviceSim::new(PowerStrength::Weak, 0);
    sim2.set_trace_sink(sink2.clone());
    let _ = infer(&dm, &x, &mut sim2, ExecMode::Intermittent).expect("second traced run");
    let jsonl = to_jsonl(&events);
    assert_eq!(jsonl, to_jsonl(&drain_shared(&sink2)), "trace is not deterministic");

    // Attribution audit: the folded table must reconcile with SimStats.
    let attr = Attribution::from_events(&events);
    let totals = iprune_obs::StatsTotals::from(&out.stats);
    attr.reconcile(&totals).expect("attribution does not reconcile with SimStats");

    println!();
    println!(
        "HAR unpruned, weak solar, intermittent: {} events, {} jobs, {} power cycles, {:.3} s",
        events.len(),
        out.jobs,
        out.power_cycles,
        out.latency_s
    );
    println!();
    print!("{}", attr.render_table());

    let chrome = to_chrome_json(&events);
    let out_path = workspace_root().join("BENCH_trace.json");
    std::fs::write(&out_path, &chrome).expect("write BENCH_trace.json");
    log_info!("trace", "wrote {} ({} bytes)", out_path.display(), chrome.len());
}
