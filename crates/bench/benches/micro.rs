//! Criterion microbenchmarks of the primitives behind the experiments:
//! BSR packing, tile-plan counting, SA ratio allocation, quantization, and
//! end-to-end engine inference.

use criterion::{criterion_group, criterion_main, Criterion};
use iprune::blocks::build_states;
use iprune::sa::{allocate_ratios, SaConfig};
use iprune_device::energy::EnergyModel;
use iprune_device::timing::TimingModel;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::bsr::BsrMatrix;
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_hawaii::plan::dense_model_acc_outputs;
use iprune_models::zoo::App;
use iprune_tensor::quant::{QFormat, QTensor};
use iprune_tensor::Tensor;
use std::hint::black_box;

fn sparse_dense(n: usize) -> Vec<i16> {
    (0..n * n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E37_79B9);
            if h.is_multiple_of(4) {
                ((h >> 8) % 200) as i16 - 100
            } else {
                0
            }
        })
        .collect()
}

fn bench_bsr(c: &mut Criterion) {
    let dense = sparse_dense(128);
    c.bench_function("bsr_pack_128x128", |b| {
        b.iter(|| BsrMatrix::from_dense(black_box(&dense), 128, 128, 8, 4, QFormat::new(12)))
    });
    let bsr = BsrMatrix::from_dense(&dense, 128, 128, 8, 4, QFormat::new(12));
    c.bench_function("bsr_unpack_128x128", |b| b.iter(|| black_box(&bsr).to_dense()));
}

fn bench_counting(c: &mut Criterion) {
    let model = App::Sqn.build();
    c.bench_function("acc_output_count_sqn", |b| {
        b.iter(|| dense_model_acc_outputs(black_box(&model.info)))
    });
}

fn bench_sa(c: &mut Criterion) {
    let mut model = App::Cks.build();
    let states = build_states(
        &mut model,
        iprune::Criterion::AccOutputs,
        &TimingModel::default(),
        &EnergyModel::default(),
    );
    let sens = vec![0.05; states.len()];
    let cfg = SaConfig { steps: 400, ..Default::default() };
    c.bench_function("sa_allocate_cks_400steps", |b| {
        b.iter(|| allocate_ratios(black_box(&states), &sens, 0.2, &cfg))
    });
}

fn bench_quant(c: &mut Criterion) {
    let t = Tensor::from_vec(
        &[64, 256],
        (0..64 * 256).map(|i| ((i % 97) as f32 - 48.0) / 64.0).collect(),
    );
    c.bench_function("quantize_16k_weights", |b| b.iter(|| QTensor::quantize(black_box(&t))));
}

fn bench_engine(c: &mut Criterion) {
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 9);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    c.bench_function("engine_har_intermittent", |b| {
        b.iter(|| {
            let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
            infer(black_box(&dm), &x, &mut sim, ExecMode::Intermittent).unwrap()
        })
    });
    c.bench_function("engine_har_continuous", |b| {
        b.iter(|| {
            let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
            infer(black_box(&dm), &x, &mut sim, ExecMode::Continuous).unwrap()
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bsr, bench_counting, bench_sa, bench_quant, bench_engine
}
criterion_main!(benches);
