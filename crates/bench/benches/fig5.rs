//! Figure 5 — intermittent inference latency of the pruned models under
//! different power supplies.
//!
//! For each app x {continuous, strong 8 mW, weak 4 mW, solar trace} x
//! {Unpruned, ePrune, iPrune}: the average end-to-end latency of one
//! inference on the simulated device (HAWAII+-style intermittent engine),
//! with the speedup annotations the paper prints above the bars
//! (iPrune vs ePrune and iPrune vs Unpruned). The solar-trace row extends
//! the paper's constant levels with power that varies mid-inference.
//!
//! Reuses `table3`'s cached checkpoints when present (run table3 first for
//! identical models); otherwise it runs the pipelines itself.

use iprune_bench::{run_all_apps, sweep_supplies, Scale};
use iprune_device::power::Supply;
use iprune_device::DeviceSim;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_hawaii::DeployedModel;

fn mean_latency(
    dm: &DeployedModel,
    x: &iprune_tensor::Tensor,
    supply: &Supply,
    reps: usize,
) -> (f64, f64) {
    let mut total = 0.0;
    let mut cycles = 0.0;
    for r in 0..reps {
        let seed = if supply.is_bench_supply() { 0 } else { 1 + r as u64 };
        let mut sim = DeviceSim::with_supply(supply.clone(), seed);
        let out = infer(dm, x, &mut sim, ExecMode::Intermittent).expect("intermittent inference");
        total += out.latency_s;
        cycles += out.power_cycles as f64;
    }
    (total / reps as f64, cycles / reps as f64)
}

fn main() {
    let scale = Scale::from_env();
    println!("Figure 5 — Intermittent inference latency (seconds; {})", scale.describe_run());
    println!("================================================================");
    // the three app pipelines run concurrently; rows print in app order
    for results in run_all_apps(&scale, true) {
        let app = results.app;
        let x = results.val.sample(0);
        println!();
        println!("{}", app.name());
        println!(
            "  {:<18} {:>10} {:>10} {:>10} {:>14} {:>14}",
            "power", "Unpruned", "ePrune", "iPrune", "iP vs eP", "iP vs Unpruned"
        );
        for point in sweep_supplies() {
            let lat: Vec<(f64, f64)> = results
                .variants
                .iter()
                .map(|vr| mean_latency(&vr.deployed, &x, &point.supply, scale.latency_reps))
                .collect();
            println!(
                "  {:<18} {:>9.3}s {:>9.3}s {:>9.3}s {:>13.2}x {:>13.2}x   (cycles {:.0}/{:.0}/{:.0})",
                point.label,
                lat[0].0,
                lat[1].0,
                lat[2].0,
                lat[1].0 / lat[2].0,
                lat[0].0 / lat[2].0,
                lat[0].1,
                lat[1].1,
                lat[2].1,
            );
        }
    }
    println!();
    println!("Paper shape: iPrune 1.1–2x faster than ePrune and 1.7–2.9x faster than");
    println!("Unpruned, with the gap widening for high-diversity models (CKS) and");
    println!("holding (or growing slightly) as power weakens.");
}
