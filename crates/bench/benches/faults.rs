//! Fault-injection campaign — adversarial power failures against the
//! intermittent engine, with differential + shadow-NVM oracles.
//!
//! Three campaigns over an untrained HAR deployment (weights do not matter
//! for crash consistency; an untrained net exercises the same job stream
//! without minutes of training):
//!
//! 1. **Boundary sweep** — one injected cut per run, at every job boundary
//!    (`smoke` scale strides the boundaries, `standard`/`paper` sweep all
//!    of them), for Intermittent and TileAtomic modes.
//! 2. **Seeded random** — per-attempt cut probability 0.005, reproducible
//!    from the master seed.
//! 3. **Energy model** — no injection; power fails where the capacitor
//!    runs dry under each supply of the bench sweep (incl. the solar
//!    trace).
//!
//! Everything in the simulation is deterministic, so the emitted
//! `BENCH_faults.json` is byte-identical run to run at a given scale.

use iprune_bench::cache::workspace_root;
use iprune_bench::{sweep_supplies, Scale};
use iprune_device::power::Supply;
use iprune_faults::{
    energy_campaign, exhaustive_boundary_sweep, random_campaign, CampaignCtx, CampaignReport,
};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::ExecMode;
use iprune_models::zoo::App;

const MASTER_SEED: u64 = 7;
const FAULT_MODES: [ExecMode; 2] = [ExecMode::Intermittent, ExecMode::TileAtomic];

fn main() {
    let scale = Scale::from_env();
    println!("Fault campaign — crash consistency under injected power failures");
    println!("================================================================");
    println!("({})", scale.describe_run());

    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);

    let nominal_jobs = ctx.nominal(ExecMode::Intermittent).jobs;
    // smoke bounds the sweep for CI; standard/paper cut at every boundary
    let stride = if scale.name == "smoke" { (nominal_jobs as usize / 16).max(1) } else { 1 };

    let mut report = CampaignReport::new("har-tiny", MASTER_SEED);

    println!();
    println!("boundary sweep: {} jobs, stride {stride}, cut at 0.9 of the window", nominal_jobs);
    report.runs.extend(exhaustive_boundary_sweep(&ctx, &FAULT_MODES, stride, 0.9));

    let reps = if scale.name == "smoke" { 2 } else { 5 };
    println!("random campaign: {reps} schedules/mode, p=0.005, seed {MASTER_SEED}");
    report.runs.extend(random_campaign(&ctx, &FAULT_MODES, reps, 0.005, MASTER_SEED));

    let supplies: Vec<(String, Supply)> =
        sweep_supplies().into_iter().map(|p| (p.label, p.supply)).collect();
    println!("energy campaign: {} supplies, no injection", supplies.len());
    report.runs.extend(energy_campaign(&ctx, &FAULT_MODES, &supplies, MASTER_SEED));

    println!();
    println!("{}", report.summary());
    assert!(report.all_ok(), "campaign failed the crash-consistency oracle");

    let out = workspace_root().join("BENCH_faults.json");
    std::fs::write(&out, report.to_json()).expect("write BENCH_faults.json");
    iprune_obs::log_info!("faults", "wrote {}", out.display());
}
