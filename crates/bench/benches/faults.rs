//! Fault-injection campaign — adversarial power failures against the
//! intermittent engine, with differential + shadow-NVM oracles.
//!
//! Three campaigns over an untrained HAR deployment (weights do not matter
//! for crash consistency; an untrained net exercises the same job stream
//! without minutes of training):
//!
//! 1. **Boundary sweep** — one injected cut per run, at every job boundary
//!    (`smoke` scale strides the boundaries, `standard`/`paper` sweep all
//!    of them), for Intermittent and TileAtomic modes. The sweep runs
//!    twice: via checkpoint/fork prefix reuse (the production path) and
//!    from scratch (one full simulation per boundary), asserting both
//!    produce the same runs and recording the cost of each in the JSON
//!    (`sweep_jobs_before/after`, `sweep_wall_s_before/after`).
//! 2. **Seeded random** — per-attempt cut probability 0.005, reproducible
//!    from the master seed.
//! 3. **Energy model** — no injection; power fails where the capacitor
//!    runs dry under each supply of the bench sweep (incl. the solar
//!    trace).
//!
//! Independent runs fan out over the worker pool (`IPRUNE_THREADS`, capped
//! at physical cores) and are assembled in index order, so the emitted
//! `BENCH_faults.json` is byte-identical run to run at a given scale and
//! *any* thread count — except the two `sweep_wall_s_*` lines, which
//! measure the host (CI's byte-compare filters them out).
//!
//! `IPRUNE_FAULTS_DETAIL=1` emits one JSON row per run instead of the
//! deduplicated outcome groups.

use iprune_bench::cache::workspace_root;
use iprune_bench::{sweep_supplies, Scale};
use iprune_device::power::Supply;
use iprune_faults::{
    energy_campaign, exhaustive_boundary_sweep_cost, exhaustive_boundary_sweep_scratch_cost,
    random_campaign, CampaignCtx, CampaignReport,
};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::ExecMode;
use iprune_models::zoo::App;

const MASTER_SEED: u64 = 7;
const FAULT_MODES: [ExecMode; 2] = [ExecMode::Intermittent, ExecMode::TileAtomic];

fn main() {
    let scale = Scale::from_env();
    println!("Fault campaign — crash consistency under injected power failures");
    println!("================================================================");
    println!("({})", scale.describe_run());

    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);

    let nominal_jobs = ctx.nominal(ExecMode::Intermittent).jobs;
    // smoke bounds the sweep for CI; standard/paper cut at every boundary
    let stride = if scale.name == "smoke" { (nominal_jobs as usize / 16).max(1) } else { 1 };

    let mut report = CampaignReport::new("har-tiny", MASTER_SEED);

    println!();
    println!("boundary sweep: {} jobs, stride {stride}, cut at 0.9 of the window", nominal_jobs);
    let (fast_runs, fast_cost) = exhaustive_boundary_sweep_cost(&ctx, &FAULT_MODES, stride, 0.9);
    let (scratch_runs, scratch_cost) =
        exhaustive_boundary_sweep_scratch_cost(&ctx, &FAULT_MODES, stride, 0.9);
    println!(
        "  prefix reuse: {} simulated jobs, {:.2} s wall  (scratch: {} jobs, {:.2} s — {:.1}x fewer jobs)",
        fast_cost.simulated_jobs,
        fast_cost.wall_s,
        scratch_cost.simulated_jobs,
        scratch_cost.wall_s,
        scratch_cost.simulated_jobs as f64 / fast_cost.simulated_jobs as f64,
    );

    // The fast path's correctness bar: the same runs, field for field
    // (latency at the report's 9-decimal precision — splicing reassociates
    // f64 sums).
    assert_eq!(fast_runs.len(), scratch_runs.len(), "sweep sizes diverged");
    for (f, s) in fast_runs.iter().zip(&scratch_runs) {
        let same = f.plan == s.plan
            && f.mode == s.mode
            && f.supply == s.supply
            && f.ok == s.ok
            && f.injected_failures == s.injected_failures
            && f.power_cycles == s.power_cycles
            && f.jobs == s.jobs
            && f.retries == s.retries
            && f.reexecuted_macs == s.reexecuted_macs
            && f.shadow == s.shadow
            && f.outcome == s.outcome
            && format!("{:.9}", f.latency_s) == format!("{:.9}", s.latency_s);
        assert!(same, "fast/scratch sweep divergence at plan {} mode {}", s.plan, s.mode);
    }
    let min_savings = if scale.name == "smoke" { 2 } else { 5 };
    assert!(
        fast_cost.simulated_jobs * min_savings <= scratch_cost.simulated_jobs,
        "prefix reuse below {min_savings}x: {} vs {} simulated jobs",
        fast_cost.simulated_jobs,
        scratch_cost.simulated_jobs,
    );
    report.runs.extend(fast_runs);

    let reps = if scale.name == "smoke" { 2 } else { 5 };
    println!("random campaign: {reps} schedules/mode, p=0.005, seed {MASTER_SEED}");
    report.runs.extend(random_campaign(&ctx, &FAULT_MODES, reps, 0.005, MASTER_SEED));

    let supplies: Vec<(String, Supply)> =
        sweep_supplies().into_iter().map(|p| (p.label, p.supply)).collect();
    println!("energy campaign: {} supplies, no injection", supplies.len());
    report.runs.extend(energy_campaign(&ctx, &FAULT_MODES, &supplies, MASTER_SEED));

    println!();
    println!("{}", report.summary());
    assert!(report.all_ok(), "campaign failed the crash-consistency oracle");

    let detail = std::env::var("IPRUNE_FAULTS_DETAIL").is_ok_and(|v| v == "1");
    let body = if detail { report.to_json_detailed() } else { report.to_json() };
    // Sweep-cost block spliced in at the top level. `sweep_wall_s_*` are
    // the only host-dependent lines in the file.
    let cost = format!(
        "  \"sweep_jobs_before\": {},\n  \"sweep_jobs_after\": {},\n  \
         \"sweep_jobs_ratio\": {:.2},\n  \"sweep_wall_s_before\": {:.3},\n  \
         \"sweep_wall_s_after\": {:.3},\n",
        scratch_cost.simulated_jobs,
        fast_cost.simulated_jobs,
        scratch_cost.simulated_jobs as f64 / fast_cost.simulated_jobs as f64,
        scratch_cost.wall_s,
        fast_cost.wall_s,
    );
    let marker = "  \"all_ok\"";
    assert!(body.contains(marker), "report JSON lost its all_ok field");
    let json = body.replacen(marker, &format!("{cost}{marker}"), 1);

    let out = workspace_root().join("BENCH_faults.json");
    std::fs::write(&out, json).expect("write BENCH_faults.json");
    iprune_obs::log_info!("faults", "wrote {}", out.display());
}
