//! Table I — specifications of the experimental environment.
//!
//! Prints the simulated platform's constants next to the paper's, plus the
//! derived timing/energy parameters the simulator uses.

use iprune_device::energy::EnergyModel;
use iprune_device::spec::DeviceSpec;
use iprune_device::timing::TimingModel;
use iprune_device::PowerStrength;

fn main() {
    let spec = DeviceSpec::msp430fr5994();
    let timing = TimingModel::default();
    let energy = EnergyModel::default();

    println!("Table I — Specifications of the experimental environment (simulated)");
    println!("=====================================================================");
    println!("Hardware");
    println!("  MCU                    {}", spec.mcu);
    println!("  Volatile memory        {} KB SRAM", spec.vm_bytes / 1024);
    println!("  Non-volatile memory    {} ({} KB)", spec.nvm_part, spec.nvm_bytes / 1024);
    println!("  Accelerator            {}", spec.accelerator);
    println!("Energy");
    println!("  Boost converter        {}", spec.emu);
    println!("  Switch on/off voltage  {} V / {} V", spec.v_on, spec.v_off);
    println!("  Capacitance            {} uF", spec.capacitance_f * 1.0e6);
    println!("  Energy per power cycle {:.1} uJ", spec.energy_span_j() * 1.0e6);
    for s in PowerStrength::all() {
        println!("  {:<22} {:.4} W", s.label(), s.watts());
    }
    println!();
    println!("Derived simulator parameters (datasheet-calibrated)");
    println!("  CPU/LEA clock          {:.0} MHz", spec.cpu_hz / 1.0e6);
    println!(
        "  NVM read               {:.2} us/B + {:.2} us invocation",
        timing.nvm_read_byte_s * 1e6,
        (timing.dma_invoke_s + timing.nvm_invoke_s) * 1e6
    );
    println!(
        "  NVM write              {:.2} us/B + {:.2} us invocation",
        timing.nvm_write_byte_s * 1e6,
        (timing.dma_invoke_s + timing.nvm_invoke_s) * 1e6
    );
    println!("  LEA MAC                {:.1} ns", timing.lea_mac_s * 1e9);
    println!(
        "  Active draw (base/LEA/rd/wr)  {:.1}/{:.1}/{:.1}/{:.1} mW",
        energy.p_base_w * 1e3,
        energy.p_lea_w * 1e3,
        energy.p_nvm_read_w * 1e3,
        energy.p_nvm_write_w * 1e3
    );
}
