//! Figure 2 — latency breakdown of continuously- vs intermittently-powered
//! inference (the paper's motivating observation).
//!
//! Runs the unpruned HAR model through both engine modes and prints each
//! activity's share of the committed busy time: NVM reads + accelerator
//! computation dominate under continuous execution, NVM writes (progress
//! preservation) dominate under intermittent execution.

use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_models::zoo::App;
use iprune_obs::{drain_shared, Attribution, MemorySink};

fn bar(frac: f64) -> String {
    let n = (frac * 40.0).round() as usize;
    "#".repeat(n)
}

fn main() {
    println!("Figure 2 — Latency breakdown, conventional vs intermittent inference");
    println!("=====================================================================");
    for app in App::all() {
        let mut model = app.build();
        let calib = app.dataset(4, 77);
        let dm = deploy(&mut model, &calib, 4);
        let x = calib.sample(0);

        let mut sim_c = DeviceSim::new(PowerStrength::Continuous, 0);
        let cont = infer(&dm, &x, &mut sim_c, ExecMode::Continuous).expect("continuous");
        let sink = MemorySink::shared();
        let mut sim_i = DeviceSim::new(PowerStrength::Continuous, 0);
        sim_i.set_trace_sink(sink.clone());
        let inter = infer(&dm, &x, &mut sim_i, ExecMode::Intermittent).expect("intermittent");
        let attr = Attribution::from_events(&drain_shared(&sink));
        attr.reconcile(&iprune_obs::StatsTotals::from(&inter.stats))
            .expect("attribution reconciles with SimStats");

        println!();
        println!("{} (unpruned)", app.name());
        for (label, out) in
            [("(a) continuously-powered ", &cont), ("(b) intermittently-powered", &inter)]
        {
            let s = &out.stats;
            let busy = s.busy_s();
            println!("  {label}: total {:.3} s", out.latency_s);
            println!(
                "      NVM read   {:>5.1}%  {}",
                100.0 * s.nvm_read_s / busy,
                bar(s.nvm_read_s / busy)
            );
            println!(
                "      accelerator{:>5.1}%  {}",
                100.0 * (s.lea_s + s.cpu_s) / busy,
                bar((s.lea_s + s.cpu_s) / busy)
            );
            println!(
                "      NVM write  {:>5.1}%  {}",
                100.0 * s.nvm_write_s / busy,
                bar(s.nvm_write_s / busy)
            );
        }
        println!();
        println!("  per-layer attribution of (b), audited against SimStats:");
        for line in attr.render_table().lines() {
            println!("    {line}");
        }
    }
    println!();
    println!("Expected shape: writes dominate (b) but not (a) — the paper's motivation.");
}
