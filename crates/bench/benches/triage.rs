//! Fleet triage — streaming anomaly detection with trace drill-down.
//!
//! Runs the same HAR fleet campaign as the `fleet` bench, then the triage
//! pass on top: per-cell quantile fences from the merged aggregates, a
//! second replay of every device classified with exact-integer rules, and
//! a full-engine trace drill-down of the top-K offenders (plus a healthy
//! reference per affected cell for the per-layer attribution diff).
//!
//! Every structural field of `BENCH_triage.json` is an integer or fixed
//! string, so the report is byte-identical at any thread count and shard
//! size — except the single `"wall_s"` line CI's byte-compare filters
//! out. Every drilled anomaly must reconcile: its trace's attribution is
//! audited against the device's replayed `SimStats`.

use iprune_bench::cache::workspace_root;
use iprune_bench::Scale;
use iprune_fleet::{
    record_workload, run_triage, FleetCampaign, PopulationSpec, TriageConfig, TriageEntry,
};
use iprune_hawaii::deploy::deploy;
use iprune_models::zoo::App;

const MASTER_SEED: u64 = 7;
const SHARD_SIZE: u64 = 500;

fn main() {
    let scale = Scale::from_env();
    println!("Fleet triage — anomaly detection and trace drill-down");
    println!("=====================================================");
    println!("({})", scale.describe_run());

    let devices_per_cell: u64 = match scale.name {
        "smoke" => 60,
        "standard" => 6_000,
        _ => 12_000, // paper
    };

    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    let workload = record_workload(&dm, &x);

    let campaign = FleetCampaign {
        population: PopulationSpec::default_fleet(devices_per_cell, MASTER_SEED),
        shard_size: SHARD_SIZE.min(devices_per_cell),
    };
    let fleet = campaign.run(std::slice::from_ref(&workload));

    let trace_dir = workspace_root().join("target").join("triage");
    let cfg = TriageConfig { top_k: 8, trace_dir: Some(trace_dir.clone()), ..Default::default() };
    let entries = [TriageEntry { workload: &workload, dm: &dm, input: &x }];
    let report = run_triage(&campaign, &entries, &fleet, &cfg);

    println!();
    print!("{}", report.summary());

    // structural invariants the triage pass must uphold at every scale
    assert_eq!(report.cells.len(), fleet.cells.len());
    assert_eq!(report.devices, fleet.devices);
    let cell_flagged: u64 = report.cells.iter().map(|c| c.flagged).sum();
    assert_eq!(cell_flagged, report.flagged, "per-cell flags must sum to the total");
    for c in &report.cells {
        let causes: u64 = c.cause_counts.iter().sum();
        assert!(causes >= c.flagged, "every flagged device carries at least one cause");
    }
    // failures are always anomalous, so flags dominate the failure count
    let failures: u64 = fleet.cells.iter().map(|c| c.agg.livelocked + c.agg.nonterminated).sum();
    assert!(report.flagged >= failures, "every failed device must be flagged");
    // the acceptance bar: every drilled anomaly's trace reconciles with
    // its replayed SimStats, and its trace files exist on disk
    for a in &report.anomalies {
        assert!(a.reconciled, "anomaly {} failed the attribution audit", a.trace);
        assert!(trace_dir.join(format!("{}.jsonl", a.trace)).is_file());
        assert!(trace_dir.join(format!("{}.chrome.json", a.trace)).is_file());
    }

    let out = workspace_root().join("BENCH_triage.json");
    std::fs::write(&out, report.to_json()).expect("write BENCH_triage.json");
    iprune_obs::log_info!("triage", "wrote {}", out.display());
}
