//! Fleet campaign — device-population deployment statistics.
//!
//! Records the HAR workload once (see `iprune_fleet::workload`), then
//! crosses it with the standard population model: 5 harvest profiles
//! (strong/weak constants, seeded solar, RF-burst, and thermal-drift
//! traces) × 4 device variants (nominal, small-cap, big-cap, slow-fram),
//! `IPRUNE_SCALE` devices per cell — 120 000 devices at `standard`, which
//! satisfies the ≥100k acceptance bar while aggregation memory stays
//! O(shards).
//!
//! Per cell the report carries percentile end-to-end latency (p50/p90/p99
//! from sub-bucketed log₂ histograms), availability (powered share of wall
//! time), power-cycle/reboot counts, and structured livelock /
//! nontermination rates. Every metric is integer-quantized at the source,
//! so `BENCH_fleet.json` is byte-identical at any thread count and any
//! shard size — except the single `"wall_s"` line, which CI's
//! byte-compare filters out.

use iprune_bench::cache::workspace_root;
use iprune_bench::Scale;
use iprune_fleet::{record_workload, FleetCampaign, PopulationSpec};
use iprune_hawaii::deploy::deploy;
use iprune_models::zoo::App;

const MASTER_SEED: u64 = 7;
const SHARD_SIZE: u64 = 500;

fn main() {
    let scale = Scale::from_env();
    println!("Fleet campaign — population deployment statistics");
    println!("=================================================");
    println!("({})", scale.describe_run());

    let devices_per_cell: u64 = match scale.name {
        "smoke" => 60,
        "standard" => 6_000,
        _ => 12_000, // paper
    };

    // one recorded inference replayed fleet-wide (weights are irrelevant
    // to the timing/energy trajectory, so an untrained net suffices)
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    let x = ds.sample(0);
    let workload = record_workload(&dm, &x);
    println!(
        "workload: {} ({} activities, {} jobs, nominal {:.3} ms)",
        workload.name,
        workload.activities.len(),
        workload.jobs,
        workload.nominal_latency_s * 1e3
    );

    let campaign = FleetCampaign {
        population: PopulationSpec::default_fleet(devices_per_cell, MASTER_SEED),
        shard_size: SHARD_SIZE.min(devices_per_cell),
    };
    let report = campaign.run(std::slice::from_ref(&workload));

    println!();
    print!("{}", report.summary());

    // structural invariants the campaign must uphold at every scale
    assert_eq!(report.cells.len(), 20, "5 harvests x 4 variants");
    assert_eq!(report.devices, 20 * devices_per_cell);
    for c in &report.cells {
        let a = &c.agg;
        assert_eq!(a.devices, devices_per_cell, "cell lost devices");
        assert_eq!(
            a.completed + a.livelocked + a.nonterminated,
            a.devices,
            "every device must land in exactly one outcome"
        );
        assert_eq!(a.latency_ns.count, a.completed, "one latency sample per completed device");
    }
    // the strong-constant nominal cell is the healthy baseline: everything
    // completes, and the p99 device is no faster than the p50 device
    let nominal = report
        .cells
        .iter()
        .find(|c| c.harvest == "strong (8 mW)" && c.variant == "nominal")
        .expect("baseline cell");
    assert_eq!(nominal.agg.completed, devices_per_cell, "baseline cell must complete");
    assert!(
        nominal.agg.latency_ns.quantile_ppm(990_000)
            >= nominal.agg.latency_ns.quantile_ppm(500_000),
        "percentiles must be monotone"
    );
    // weaker harvests cannot beat the strong constant at the median
    let weak = report
        .cells
        .iter()
        .find(|c| c.harvest == "weak (4 mW)" && c.variant == "nominal")
        .expect("weak cell");
    assert!(
        weak.agg.latency_ns.quantile_ppm(500_000) >= nominal.agg.latency_ns.quantile_ppm(500_000),
        "half the power cannot be faster"
    );

    let out = workspace_root().join("BENCH_fleet.json");
    std::fs::write(&out, report.to_json()).expect("write BENCH_fleet.json");
    iprune_obs::log_info!("fleet", "wrote {}", out.display());
}
