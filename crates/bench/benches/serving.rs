//! Serving bench — throughput/latency of the pruned-model registry front
//! end (`BENCH_serving.json`).
//!
//! One deterministic workload (seeded mix of apps, device profiles, power
//! strengths, and deadline budgets) is replayed under every (threads ×
//! execution mode) cell: batched admission + worker-pool execution versus
//! one-request-at-a-time sequential serving, at 1, 2, and 8 worker
//! threads. The admission outcome, logit bits, and plan rows must be
//! byte-identical in every cell — the bench asserts it — so the report's
//! structural lines survive CI's filtered byte-compare at any thread
//! count. Only `wall_s` and the `rps`/`lat_us*` throughput rows (marked
//! nonstructural in `iprune_obs::history`) vary with parallelism.

use iprune_bench::cache::workspace_root;
use iprune_bench::Scale;
use iprune_device::power::PowerStrength;
use iprune_models::zoo::App;
use iprune_serve::report::{fnv1a, logits_checksum};
use iprune_serve::{
    AdmissionBlock, DeviceProfile, ExecMode, ModelRegistry, Outcome, RegistryConfig, Request,
    ServeConfig, ServeOutcome, Server, ServingReport, ThroughputRow, VariantKey, VariantRow,
};
use iprune_tensor::par;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const MASTER_SEED: u64 = 0x5E4F_11CE;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The serveable variants this workload draws from: every app at nominal
/// strong/weak power, plus the HAR workload across the hardware profiles.
fn catalog() -> Vec<VariantKey> {
    let mut keys = Vec::new();
    for app in App::all() {
        keys.push(VariantKey::new(app, DeviceProfile::Nominal, PowerStrength::Strong));
        keys.push(VariantKey::new(app, DeviceProfile::Nominal, PowerStrength::Weak));
    }
    for profile in [DeviceProfile::SmallCap, DeviceProfile::BigCap, DeviceProfile::SlowFram] {
        keys.push(VariantKey::new(App::Har, profile, PowerStrength::Strong));
    }
    keys
}

fn build_workload(registry: &ModelRegistry, n: usize) -> Vec<Request> {
    let keys = catalog();
    let mut pools: HashMap<&'static str, iprune_datasets::Dataset> = HashMap::new();
    for app in App::all() {
        pools.insert(app.name(), app.dataset(64, MASTER_SEED ^ app.name().len() as u64));
    }
    (0..n)
        .map(|i| {
            let h = splitmix(MASTER_SEED ^ i as u64);
            let key = keys[(h % keys.len() as u64) as usize];
            let ds = &pools[key.app.name()];
            let input = ds.sample((splitmix(h) % 64) as usize);
            // budget: 50%..650% of the requested variant's plan cost —
            // tight deadlines reject or degrade, generous ones absorb the
            // variant's queue backlog within a round
            let pct = 50 + splitmix(h ^ 0xB0D6E7) % 600;
            let budget = registry.get_or_load(key).plan.cost * pct / 100;
            Request { id: i as u64, key, input, budget }
        })
        .collect()
}

fn latency_us(quantile: f64, admitted_wall_ns: &mut [u64]) -> f64 {
    if admitted_wall_ns.is_empty() {
        return 0.0;
    }
    admitted_wall_ns.sort_unstable();
    let idx = ((admitted_wall_ns.len() - 1) as f64 * quantile).round() as usize;
    admitted_wall_ns[idx] as f64 / 1_000.0
}

/// Order-sensitive fingerprint of every completion's admission outcome.
fn outcome_checksum(out: &ServeOutcome) -> u64 {
    let mut text = String::new();
    for c in &out.completions {
        use std::fmt::Write as _;
        match &c.outcome {
            Outcome::Served { key } => {
                let _ = write!(text, "{} served {key} {:?};", c.id, c.pred);
            }
            Outcome::Degraded { from, to } => {
                let _ = write!(text, "{} degraded {from}->{to} {:?};", c.id, c.pred);
            }
            Outcome::Rejected { estimate } => {
                let _ = write!(text, "{} rejected est={estimate};", c.id);
            }
        }
    }
    fnv1a(text.as_bytes())
}

fn main() {
    let scale = Scale::from_env();
    println!("Serving bench — registry front end throughput/latency");
    println!("=====================================================");
    println!("({})", scale.describe_run());

    let n_requests = match scale.name {
        "smoke" => 64,
        "standard" => 512,
        _ => 2048, // paper
    };
    let cfg = ServeConfig::default();

    let registry = Arc::new(ModelRegistry::new(RegistryConfig::default()));
    // warm the registry down every degrade rung so no timed cell pays a
    // lazy model build + Q15 calibration
    for key in catalog() {
        let mut rung = Some(key);
        while let Some(k) = rung {
            registry.get_or_load(k);
            rung = k.degraded();
        }
    }
    let requests = build_workload(&registry, n_requests);
    println!("workload: {} requests over {} variants", requests.len(), catalog().len());

    // Every (threads × mode) cell must produce identical outcomes and
    // logit bits; the first cell is the reference.
    let mut reference: Option<(u64, u64)> = None;
    let mut throughput = Vec::new();
    let mut canonical: Option<ServeOutcome> = None;
    let t_bench = Instant::now();
    for &threads in &[1usize, 2, 8] {
        for mode in [ExecMode::Sequential, ExecMode::Batched] {
            par::set_threads(threads);
            let server = Server::new(Arc::clone(&registry), cfg.clone());
            let t0 = Instant::now();
            let out = server.run_mode(&requests, mode);
            let wall = t0.elapsed();

            let logits = logits_checksum(out.completions.iter().map(|c| c.logits.as_slice()));
            let outcomes = outcome_checksum(&out);
            match reference {
                None => reference = Some((logits, outcomes)),
                Some(r) => assert_eq!(
                    (logits, outcomes),
                    r,
                    "threads={threads} mode={mode:?} diverged from the reference cell"
                ),
            }

            let mode_name = match mode {
                ExecMode::Batched => "batched",
                ExecMode::Sequential => "sequential",
            };
            let rps = requests.len() as f64 / wall.as_secs_f64();
            let mut admitted_ns: Vec<u64> =
                out.wall_ns.iter().copied().filter(|&w| w > 0).collect();
            let p50 = latency_us(0.50, &mut admitted_ns);
            let p99 = latency_us(0.99, &mut admitted_ns);
            println!(
                "threads={threads} mode={mode_name}: {rps:.1} req/s, p50 {p50:.1} us, p99 {p99:.1} us"
            );
            throughput.push(ThroughputRow {
                threads,
                mode: mode_name,
                rps,
                lat_us_p50: p50,
                lat_us_p99: p99,
            });
            if threads == 1 && mode == ExecMode::Batched {
                canonical = Some(out);
            }
        }
    }
    par::set_threads(0);

    let canonical = canonical.expect("canonical batched run");
    let stats = &canonical.stats;
    println!(
        "admission: {} admitted / {} degraded / {} rejected over {} batches",
        stats.admitted, stats.degraded, stats.rejected, stats.batches
    );
    assert_eq!(stats.admitted + stats.rejected, requests.len() as u64);
    assert!(stats.admitted > 0, "workload must admit requests");
    assert!(stats.rejected > 0, "deadline pressure must bind somewhere");
    assert!(stats.degraded > 0, "the degrade ladder must engage");

    // batched-vs-sequential speedup at 8 workers: only meaningful when the
    // host actually has cores to fan out over (CI containers may have 1)
    let rps_of = |threads: usize, mode: &str| {
        throughput.iter().find(|t| t.threads == threads && t.mode == mode).unwrap().rps
    };
    let speedup = rps_of(8, "batched") / rps_of(8, "sequential");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("batched/sequential at 8 threads: {speedup:.2}x ({cores} host cores)");
    if cores >= 4 {
        assert!(speedup >= 2.0, "batched serving must be >=2x sequential at 8 threads");
    } else {
        println!("(speedup assert skipped: needs >=4 host cores)");
    }

    // per-variant logit checksums from the canonical run, in request order
    let mut by_variant: HashMap<String, Vec<&[f32]>> = HashMap::new();
    for c in &canonical.completions {
        let key = match &c.outcome {
            Outcome::Served { key } => *key,
            Outcome::Degraded { to, .. } => *to,
            Outcome::Rejected { .. } => continue,
        };
        by_variant.entry(key.to_string()).or_default().push(c.logits.as_slice());
    }
    let variants: Vec<VariantRow> = registry
        .loaded()
        .iter()
        .map(|v| {
            let rows = by_variant.get(&v.key.to_string()).cloned().unwrap_or_default();
            VariantRow::of(v, logits_checksum(rows.into_iter()))
        })
        .collect();

    let report = ServingReport {
        scale: scale.name.to_string(),
        requests: requests.len(),
        max_batch: cfg.max_batch,
        round: cfg.round_requests,
        variants,
        admission: AdmissionBlock {
            admitted: stats.admitted,
            rejected: stats.rejected,
            degraded: stats.degraded,
            batches: stats.batches,
            queue_depth: stats.queue_depth.clone(),
            batch_size: stats.batch_size.clone(),
            service_cost: stats.service_cost.clone(),
            outcome_checksum: outcome_checksum(&canonical),
        },
        throughput,
        wall_s: t_bench.elapsed().as_secs_f64(),
    };

    let out = workspace_root().join("BENCH_serving.json");
    std::fs::write(&out, report.to_json()).expect("write BENCH_serving.json");
    iprune_obs::log_info!("serving", "wrote {}", out.display());
}
