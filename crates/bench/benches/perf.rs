//! Host-performance benchmark: GEMM kernel throughput (tiled vs scalar
//! reference), SIMD-dispatched vs scalar-spec kernels, the Q15 integer
//! GEMM (with a deterministic output checksum — the SIMD body is exact, so
//! the hash must agree across dispatch levels), f32-vs-Q15 evaluation
//! accuracy per zoo app, block-sparse vs dense kernels at 30/50/80 % block
//! sparsity, and prune-pipeline wall-clock at 1/2/4/8 requested threads.
//!
//! The JSON header records the detected CPU features and the effective
//! SIMD dispatch level (`IPRUNE_SIMD=0` forces scalar), so a recorded
//! number can always be traced to the code path that produced it.
//!
//! Prints a human-readable summary and writes the machine-readable
//! `BENCH_perf.json` at the workspace root. Every row records both the
//! *requested* thread count and the *effective* worker count
//! (`iprune_tensor::par` caps regions at the physical core count), so the
//! recorded numbers always say what parallelism actually ran.
//!
//! Requested counts that collapse to the same effective worker count are
//! measured once and share the row data: on a single-core host the
//! 2/4/8-thread configurations are the 1-thread configuration, and
//! re-measuring them would only record scheduler noise as a phantom
//! slowdown. `speedup_vs_1 >= 1.0` is asserted for 2 and 4 requested
//! threads — the regression guard for oversubscribed parallel regions.
//!
//! The `sparse_vs_dense` block times the sparse kernels against the dense
//! ones on the *same masked weights* (dense keeps its per-element zero
//! skip, so the comparison isolates the traversal win). The structural
//! rows (`sparse_cases`: block counts, skipped MACs) are deterministic —
//! CI compares them byte-for-byte across thread counts. `speedup_vs_dense
//! >= 1.0` is asserted for every row at ≥ 70 % sparsity.

use iprune_bench::cache::workspace_root;
use iprune_bench::run_app_pipelines;
use iprune_bench::scale::SMOKE;
use iprune_models::qeval::QuantizedModel;
use iprune_models::train::{evaluate, train_sgd, TrainConfig};
use iprune_models::zoo::App;
use iprune_tensor::matmul::{
    matmul_a_bt, matmul_a_bt_ref, matmul_a_bt_scalar, matmul_acc, matmul_acc_ref,
    matmul_acc_scalar, matmul_at_b, matmul_at_b_ref, matmul_at_b_scalar,
};
use iprune_tensor::par;
use iprune_tensor::qgemm::{q15_gemm, q15_gemm_scalar};
use iprune_tensor::simd;
use iprune_tensor::sparse::{self, SparseIndex};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Whether the host offers FMA — detected independently of the combined
/// avx2+fma dispatch gate, for the bench header.
fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Median wall-clock seconds of `reps` timed calls.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fill(seed: f32, len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i as f32 * 0.13 + seed).sin() * 2.0).round() / 3.0).collect()
}

struct KernelRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    workers: usize,
    ref_gflops: f64,
    tiled_gflops: f64,
}

/// A GEMM kernel entry point: `(a, b, c, m, k, n)`.
type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// Benchmarks one kernel shape at one requested thread count. The
/// reference kernel is always serial; the tiled kernel fans rows out over
/// the effective workers.
#[allow(clippy::too_many_arguments)]
fn bench_kernel(
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    tiled: GemmFn,
    reference: GemmFn,
    a_len: usize,
    b_len: usize,
) -> KernelRow {
    let a = fill(0.3, a_len);
    let b = fill(0.7, b_len);
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let reps = 7;

    par::set_threads(1);
    let t_ref = time_median(reps, || reference(&a, &b, &mut c, m, k, n));
    par::set_threads(threads);
    let workers = par::workers_for(m.max(n));
    let t_tiled = time_median(reps, || tiled(&a, &b, &mut c, m, k, n));
    par::set_threads(0);

    KernelRow {
        kernel,
        m,
        k,
        n,
        threads,
        workers,
        ref_gflops: flops / t_ref / 1e9,
        tiled_gflops: flops / t_tiled / 1e9,
    }
}

struct SimdRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    scalar_gflops: f64,
    simd_gflops: f64,
}

/// Times the scalar-spec kernels against the dispatched entries on the
/// conv-shaped hot loop (serial — the lane-level win is what's under
/// test, not the fan-out). When the process dispatch level is `scalar`
/// the two columns measure the same code path.
fn bench_simd_kernels() -> Vec<SimdRow> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    type Pair = (&'static str, usize, usize, usize, GemmFn, GemmFn, usize, usize);
    let cases: [Pair; 3] = [
        ("matmul_acc", 64, 576, 169, matmul_acc, matmul_acc_scalar, 64 * 576, 576 * 169),
        ("matmul_at_b", 576, 64, 169, matmul_at_b, matmul_at_b_scalar, 64 * 576, 64 * 169),
        ("matmul_a_bt", 64, 169, 576, matmul_a_bt, matmul_a_bt_scalar, 64 * 169, 576 * 169),
    ];
    for (kernel, m, k, n, dispatched, scalar, a_len, b_len) in cases {
        let a = fill(0.3, a_len);
        let b = fill(0.7, b_len);
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let t_scalar = time_median(reps, || scalar(&a, &b, &mut c, m, k, n));
        let t_simd = time_median(reps, || dispatched(&a, &b, &mut c, m, k, n));
        rows.push(SimdRow {
            kernel,
            m,
            k,
            n,
            scalar_gflops: flops / t_scalar / 1e9,
            simd_gflops: flops / t_simd / 1e9,
        });
    }
    par::set_threads(0);
    rows
}

struct Q15Row {
    m: usize,
    k: usize,
    n: usize,
    scalar_gops: f64,
    simd_gops: f64,
    checksum: u64,
}

/// FNV-1a over the i16 payload — the deterministic fingerprint CI compares
/// across dispatch levels (the Q15 SIMD body is exact, so the dispatched
/// output must hash identically under `IPRUNE_SIMD=0` and `=1`).
fn fnv64(data: &[i16]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in data {
        for byte in (v as u16).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Times the Q15 integer GEMM, scalar spec vs dispatched, on the conv
/// shape and the FC shape (`n = 1`). Operands mimic deployment: weights
/// exclude `i16::MIN` (the `for_max_abs` guarantee).
fn bench_q15() -> Vec<Q15Row> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    for &(m, k, n) in &[(64usize, 576usize, 169usize), (576, 1024, 1)] {
        let mut s = 0x915_u64 + (m * k * n) as u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<i16> = (0..m * k).map(|_| (next() as i16).max(-i16::MAX)).collect();
        let b: Vec<i16> = (0..n * k).map(|_| next() as i16).collect();
        let bias: Vec<i16> = (0..m).map(|_| next() as i16).collect();
        let mut c = vec![0i16; m * n];
        let ops = 2.0 * m as f64 * k as f64 * n as f64;
        let t_scalar = time_median(reps, || {
            q15_gemm_scalar(&a, &b, &bias, 7, &mut c, m, k, n, 13, 14, 12, true)
        });
        let t_simd =
            time_median(reps, || q15_gemm(&a, &b, &bias, 7, &mut c, m, k, n, 13, 14, 12, true));
        rows.push(Q15Row {
            m,
            k,
            n,
            scalar_gops: ops / t_scalar / 1e9,
            simd_gops: ops / t_simd / 1e9,
            checksum: fnv64(&c),
        });
    }
    par::set_threads(0);
    rows
}

struct QEvalRow {
    app: &'static str,
    acc_f32: f64,
    acc_q15: f64,
}

/// Trains each zoo app briefly, then evaluates the same weights through
/// the float path and the host Q15 engine — the f32→Q15 accuracy delta of
/// Section IV-A, at host speed.
fn bench_q15_eval() -> Vec<QEvalRow> {
    App::all()
        .iter()
        .map(|&app| {
            let mut model = app.build();
            let train = app.dataset(96, 300);
            let eval = app.dataset(128, 301);
            train_sgd(&mut model, &train, &TrainConfig { epochs: 1, ..Default::default() });
            let acc_f32 = evaluate(&mut model, &eval, 16);
            let qm = QuantizedModel::quantize(&mut model, &eval, 8);
            let acc_q15 = qm.evaluate_q15(&eval);
            QEvalRow { app: app.name(), acc_f32, acc_q15 }
        })
        .collect()
}

struct SparseRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
    total_blocks: usize,
    alive_blocks: usize,
    alive_cells: usize,
    skipped_macs: u64,
    t_dense: f64,
    t_sparse: f64,
}

/// A block mask over a `rows x cols` weight matrix with exactly
/// `round(total_blocks * sparsity)` dead 4x16 blocks, chosen by a
/// deterministic hash shuffle (no RNG state, no thread dependence).
fn sparse_block_mask(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Vec<f32> {
    let (br, bc) = (sparse::BLOCK_ROWS, sparse::BLOCK_COLS);
    let (nbr, nbc) = (rows.div_ceil(br), cols.div_ceil(bc));
    let total = nbr * nbc;
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| {
        let mut x = (i as u64).wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    });
    let kill = ((total as f64) * sparsity).round() as usize;
    let mut mask = vec![1.0f32; rows * cols];
    for &blk in &order[..kill.min(total)] {
        let (rb, cb) = (blk / nbc, blk % nbc);
        for i in rb * br..((rb + 1) * br).min(rows) {
            for j in cb * bc..((cb + 1) * bc).min(cols) {
                mask[i * cols + j] = 0.0;
            }
        }
    }
    mask
}

/// Times the three hot-loop sparse kernels against their dense
/// counterparts on the standard bench shapes, with the weight operand
/// masked at each target block sparsity. Dense kernels run on the same
/// masked weights (keeping their per-element zero skip), so the measured
/// speedup is purely the structural win of iterating alive blocks only.
/// Serial (1 thread): the sparse/dense ratio is what's under test, not
/// the fan-out, and serial timings are the most stable in CI.
fn bench_sparse(sparsities: &[f64]) -> Vec<SparseRow> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    for &s in sparsities {
        let seed = (s * 1000.0) as u64;

        // Forward conv GEMM: weight is the lhs, index over (m, k).
        {
            let (m, k, n) = (64usize, 576, 169);
            let mask = sparse_block_mask(m, k, s, 0xACC + seed);
            let mut a = fill(0.3, m * k);
            for (w, mk) in a.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let b = fill(0.7, k * n);
            let idx = SparseIndex::from_mask(&mask, m, k);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_acc(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_acc_sparse_lhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_acc_sparse_lhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((m * k - idx.alive_cells()) * n) as u64,
                t_dense,
                t_sparse,
            });
        }

        // Backward conv dX GEMM: weight is the transposed lhs, stored
        // [k x m]; index over the storage layout.
        {
            let (m, k, n) = (576usize, 64, 169);
            let mask = sparse_block_mask(k, m, s, 0xA7B + seed);
            let mut a = fill(0.3, k * m);
            for (w, mk) in a.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let b = fill(0.7, k * n);
            let idx = SparseIndex::from_mask(&mask, k, m);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_at_b(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_at_b_sparse_lhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_at_b_sparse_lhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((k * m - idx.alive_cells()) * n) as u64,
                t_dense,
                t_sparse,
            });
        }

        // Linear forward GEMM: weight is the transposed rhs [n x k];
        // index over the storage layout.
        {
            let (m, k, n) = (64usize, 169, 576);
            let mask = sparse_block_mask(n, k, s, 0xAB7 + seed);
            let a = fill(0.3, m * k);
            let mut b = fill(0.7, n * k);
            for (w, mk) in b.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let idx = SparseIndex::from_mask(&mask, n, k);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_a_bt(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_a_bt_sparse_rhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_a_bt_sparse_rhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((n * k - idx.alive_cells()) * m) as u64,
                t_dense,
                t_sparse,
            });
        }
    }
    par::set_threads(0);
    rows
}

struct PipelineRow {
    threads: usize,
    workers: usize,
    wall_s: f64,
}

/// Times the HAR smoke-scale pipeline (train → ePrune/iPrune → deploy) at
/// one effective worker count, against a cold cache so every run does the
/// same work.
fn time_pipeline(workers: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!("iprune_perf_{}_{}", std::process::id(), workers));
    std::env::set_var("IPRUNE_CACHE_DIR", &dir);
    par::set_threads(workers);
    let t0 = Instant::now();
    let results = run_app_pipelines(App::Har, &SMOKE, false);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(results.variants.len(), 3);
    par::set_threads(0);
    std::env::remove_var("IPRUNE_CACHE_DIR");
    let _ = std::fs::remove_dir_all(dir);
    wall_s
}

fn main() {
    let host_cores = par::host_cores();
    let dispatch = simd::dispatch_label();
    let lanes = simd::lane_width();
    println!("Host performance — kernels and pipeline (host cores: {host_cores})");
    println!(
        "cpu: avx2={} fma={} dispatch={dispatch} lanes={lanes}",
        simd::avx2_supported(),
        fma_supported(),
    );
    println!("==================================================================");

    // Conv-shaped (SQN fire-module GEMM) and square shapes.
    let mut kernels: Vec<KernelRow> = Vec::new();
    for &threads in &[1usize, host_cores.max(2)] {
        kernels.push(bench_kernel(
            "matmul_acc",
            64,
            576,
            169,
            threads,
            matmul_acc,
            matmul_acc_ref,
            64 * 576,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_at_b",
            576,
            64,
            169,
            threads,
            matmul_at_b,
            matmul_at_b_ref,
            64 * 576,
            64 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_a_bt",
            64,
            169,
            576,
            threads,
            matmul_a_bt,
            matmul_a_bt_ref,
            64 * 169,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_acc",
            192,
            192,
            192,
            threads,
            matmul_acc,
            matmul_acc_ref,
            192 * 192,
            192 * 192,
        ));
    }

    println!(
        "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12} {:>12} {:>8}",
        "kernel", "m", "k", "n", "threads", "workers", "ref GF/s", "tiled GF/s", "speedup"
    );
    for r in &kernels {
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12.2} {:>12.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
    }

    // SIMD dispatch vs scalar spec on the hot conv shape.
    let simd_rows = bench_simd_kernels();
    println!();
    println!("SIMD-dispatched vs scalar-spec kernels (serial, dispatch={dispatch}):");
    println!(
        "{:<12} {:>4}x{:<4}x{:<4} {:>13} {:>11} {:>8}",
        "kernel", "m", "k", "n", "scalar GF/s", "simd GF/s", "speedup"
    );
    for r in &simd_rows {
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>13.2} {:>11.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.scalar_gflops,
            r.simd_gflops,
            r.simd_gflops / r.scalar_gflops
        );
        if dispatch == "avx2" {
            // the 8-lane FMA bodies must clearly beat the register-blocked
            // scalar spec; 1.5x is the regression floor (typical is >2x)
            assert!(
                r.simd_gflops / r.scalar_gflops >= 1.5,
                "SIMD kernel too slow: {} {:.2} GF/s vs scalar {:.2} GF/s",
                r.kernel,
                r.simd_gflops,
                r.scalar_gflops
            );
        }
    }

    // Q15 integer GEMM, scalar spec vs dispatched madd.
    let q15_rows = bench_q15();
    println!();
    println!("Q15 integer GEMM (serial, dispatch={dispatch}):");
    for r in &q15_rows {
        println!(
            "  {:>4}x{:<4}x{:<4} scalar {:>6.2} Gops  simd {:>6.2} Gops  ({:.2}x)  checksum {:#018x}",
            r.m,
            r.k,
            r.n,
            r.scalar_gops,
            r.simd_gops,
            r.simd_gops / r.scalar_gops,
            r.checksum
        );
    }

    // f32 vs Q15 accuracy per zoo app.
    let qeval_rows = bench_q15_eval();
    println!();
    println!("f32 vs host-Q15 evaluation accuracy (trained 1 epoch):");
    for r in &qeval_rows {
        let delta = (r.acc_f32 - r.acc_q15).abs();
        println!(
            "  {:<4} f32 {:>6.4}  q15 {:>6.4}  delta {:>6.4}",
            r.app, r.acc_f32, r.acc_q15, delta
        );
        assert!(
            delta <= 0.01 + 1e-9,
            "Q15 accuracy delta above 1% on {}: f32 {:.4} vs q15 {:.4}",
            r.app,
            r.acc_f32,
            r.acc_q15
        );
    }

    // Block-sparse kernels vs dense on masked weights.
    let sparsities = [0.3f64, 0.5, 0.8];
    let sparse_rows = bench_sparse(&sparsities);
    println!();
    println!("Block-sparse vs dense kernels (serial, 4x16 blocks, masked weights):");
    println!(
        "{:<24} {:>4}x{:<4}x{:<4} {:>8} {:>11} {:>12} {:>13} {:>8}",
        "kernel", "m", "k", "n", "sparsity", "alive blks", "dense GF/s", "sparse GF/s", "speedup"
    );
    for r in &sparse_rows {
        let flops = 2.0 * r.m as f64 * r.k as f64 * r.n as f64;
        println!(
            "{:<24} {:>4}x{:<4}x{:<4} {:>8.2} {:>5}/{:<5} {:>12.2} {:>13.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            r.alive_blocks,
            r.total_blocks,
            flops / r.t_dense / 1e9,
            flops / r.t_sparse / 1e9,
            r.t_dense / r.t_sparse
        );
    }
    // Aggregate GEMM-path speedup per sparsity: total dense time over
    // total sparse time across the three hot-loop kernels.
    let gemm_path: Vec<(f64, f64)> = sparsities
        .iter()
        .map(|&s| {
            let (td, ts) = sparse_rows
                .iter()
                .filter(|r| r.sparsity == s)
                .fold((0.0, 0.0), |(td, ts), r| (td + r.t_dense, ts + r.t_sparse));
            (s, td / ts)
        })
        .collect();
    for &(s, speedup) in &gemm_path {
        println!("  GEMM-path speedup at {:>3.0}% block sparsity: {speedup:.2}x", s * 100.0);
    }
    for r in &sparse_rows {
        let speedup = r.t_dense / r.t_sparse;
        if r.sparsity >= 0.7 {
            assert!(
                speedup >= 1.0,
                "sparse kernel slower than dense at {:.0}% sparsity: {} speedup {:.4}",
                r.sparsity * 100.0,
                r.kernel,
                speedup
            );
        }
        // With the strip-coalesced SIMD bodies the traversal win must show
        // up from 50% block sparsity on (scalar hosts keep the softer
        // >= 70% guard above — per-element zero skips close most of the
        // gap there).
        if dispatch == "avx2" && r.sparsity >= 0.5 {
            assert!(
                speedup >= 1.1,
                "sparse kernel below 1.1x at {:.0}% sparsity under SIMD: {} speedup {:.4}",
                r.sparsity * 100.0,
                r.kernel,
                speedup
            );
        }
    }

    // One measurement per *effective* worker count; requested counts that
    // the core cap collapses together share it.
    println!();
    println!("HAR smoke pipeline wall-clock (cold cache per effective config):");
    let mut measured: HashMap<usize, f64> = HashMap::new();
    let pipeline: Vec<PipelineRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let workers = threads.min(host_cores).max(1);
            let wall_s = *measured.entry(workers).or_insert_with(|| time_pipeline(workers));
            PipelineRow { threads, workers, wall_s }
        })
        .collect();
    for r in &pipeline {
        println!(
            "  threads {:>2} (workers {:>2}): {:>7.2} s  ({:.2}x vs 1 thread)",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
    }
    for r in &pipeline {
        let speedup = pipeline[0].wall_s / r.wall_s;
        if r.threads == 2 || r.threads == 4 {
            // On a capped (single-core) host the rows share the 1-thread
            // measurement, so this is exact; with real extra cores the
            // parallel pipeline must not lose to serial.
            assert!(
                speedup >= if r.workers == 1 { 1.0 } else { 0.9 },
                "parallel pipeline regression: threads {} (workers {}) speedup {:.4}",
                r.threads,
                r.workers,
                speedup
            );
        }
    }

    // machine-readable record
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    // single line, excluded from CI's cross-dispatch byte-compare (the
    // `simd_dispatch` token is on the grep -v list)
    let _ = writeln!(
        json,
        "  \"cpu\": {{\"avx2\": {}, \"fma\": {}, \"simd_dispatch\": \"{dispatch}\", \"lanes\": {lanes}}},",
        simd::avx2_supported(),
        fma_supported(),
    );
    json.push_str("  \"simd_kernels\": [\n");
    for (i, r) in simd_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"dispatch\": \"{dispatch}\", \
             \"lanes\": {lanes}, \"scalar_gflops\": {:.4}, \"simd_gflops\": {:.4}, \"speedup\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.scalar_gflops,
            r.simd_gflops,
            r.simd_gflops / r.scalar_gflops
        );
        json.push_str(if i + 1 < simd_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"q15_gemm\": [\n");
    for (i, r) in q15_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"scalar_gops\": {:.4}, \
             \"simd_gops\": {:.4}, \"speedup\": {:.4}}}",
            r.m,
            r.k,
            r.n,
            r.scalar_gops,
            r.simd_gops,
            r.simd_gops / r.scalar_gops
        );
        json.push_str(if i + 1 < q15_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: the dispatched Q15 output hashed — byte-identical across
    // thread counts AND dispatch levels (the SIMD body is exact).
    json.push_str("  \"q15_checksums\": [\n");
    for (i, r) in q15_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"out_checksum\": \"{:#018x}\"}}",
            r.m, r.k, r.n, r.checksum
        );
        json.push_str(if i + 1 < q15_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // acc_f32 rides the float kernels, whose ULPs legitimately differ
    // across dispatch levels — the token is on CI's grep -v list; acc_q15
    // shares the line.
    json.push_str("  \"q15_eval\": [\n");
    for (i, r) in qeval_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"acc_f32\": {:.4}, \"acc_q15\": {:.4}, \"delta\": {:.4}}}",
            r.app,
            r.acc_f32,
            r.acc_q15,
            (r.acc_f32 - r.acc_q15).abs()
        );
        json.push_str(if i + 1 < qeval_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \
             \"workers\": {}, \"ref_gflops\": {:.4}, \"tiled_gflops\": {:.4}, \"speedup\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural rows: fully deterministic (no timing), compared
    // byte-for-byte across thread counts in CI.
    json.push_str("  \"sparse_cases\": [\n");
    for (i, r) in sparse_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {:.2}, \
             \"total_blocks\": {}, \"alive_blocks\": {}, \"alive_cells\": {}, \
             \"skipped_macs\": {}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            r.total_blocks,
            r.alive_blocks,
            r.alive_cells,
            r.skipped_macs
        );
        json.push_str(if i + 1 < sparse_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sparse_vs_dense\": [\n");
    for (i, r) in sparse_rows.iter().enumerate() {
        let flops = 2.0 * r.m as f64 * r.k as f64 * r.n as f64;
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {:.2}, \
             \"dense_gflops\": {:.4}, \"sparse_gflops\": {:.4}, \"speedup_vs_dense\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            flops / r.t_dense / 1e9,
            flops / r.t_sparse / 1e9,
            r.t_dense / r.t_sparse
        );
        json.push_str(if i + 1 < sparse_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sparse_gemm_path\": [\n");
    for (i, &(s, speedup)) in gemm_path.iter().enumerate() {
        let _ = write!(json, "    {{\"sparsity\": {:.2}, \"gemm_path_speedup\": {speedup:.4}}}", s);
        json.push_str(if i + 1 < gemm_path.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"pipeline_har_smoke\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"workers\": {}, \"wall_s\": {:.3}, \"speedup_vs_1\": {:.4}}}",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
        json.push_str(if i + 1 < pipeline.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = workspace_root().join("BENCH_perf.json");
    std::fs::write(&out, &json).expect("write BENCH_perf.json");
    iprune_obs::log_info!("perf", "wrote {}", out.display());

    // Host-metrics registry accumulated over the whole bench (GEMM calls,
    // parallel-region shapes); IPRUNE_LOG=debug to see it.
    for line in iprune_obs::metrics::render_snapshot().lines() {
        iprune_obs::log_debug!("metrics", "{line}");
    }
}
