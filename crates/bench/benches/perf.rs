//! Host-performance benchmark: GEMM kernel throughput (tiled vs scalar
//! reference), SIMD-dispatched vs scalar-spec kernels, the Q15 and Q8
//! integer GEMMs (with deterministic output checksums — the SIMD bodies
//! are exact, so the hashes must agree across dispatch levels), im2col
//! packing and max-pooling throughput (bitwise data-movement checksums),
//! end-to-end quantized inference at both dispatch levels, f32-vs-Q15/Q8
//! evaluation accuracy per zoo app, block-sparse vs dense kernels at
//! 30/50/80 % block sparsity, and prune-pipeline wall-clock at 1/2/4/8
//! requested threads.
//!
//! The JSON header records the detected CPU features and the effective
//! SIMD dispatch level (`IPRUNE_SIMD=0` forces scalar), so a recorded
//! number can always be traced to the code path that produced it.
//!
//! Prints a human-readable summary and writes the machine-readable
//! `BENCH_perf.json` at the workspace root. Every row records both the
//! *requested* thread count and the *effective* worker count
//! (`iprune_tensor::par` caps regions at the physical core count), so the
//! recorded numbers always say what parallelism actually ran.
//!
//! Requested counts that collapse to the same effective worker count are
//! measured once and share the row data: on a single-core host the
//! 2/4/8-thread configurations are the 1-thread configuration, and
//! re-measuring them would only record scheduler noise as a phantom
//! slowdown. `speedup_vs_1 >= 1.0` is asserted for 2 and 4 requested
//! threads — the regression guard for oversubscribed parallel regions.
//!
//! The `sparse_vs_dense` block times the sparse kernels against the dense
//! ones on the *same masked weights* (dense keeps its per-element zero
//! skip, so the comparison isolates the traversal win). The structural
//! rows (`sparse_cases`: block counts, skipped MACs) are deterministic —
//! CI compares them byte-for-byte across thread counts. `speedup_vs_dense
//! >= 1.0` is asserted for every row at ≥ 70 % sparsity.

use iprune_bench::cache::workspace_root;
use iprune_bench::run_app_pipelines;
use iprune_bench::scale::SMOKE;
use iprune_models::qeval::{Quantized8Model, QuantizedModel};
use iprune_models::train::{evaluate, train_sgd, TrainConfig};
use iprune_models::zoo::App;
use iprune_tensor::exec::ExecCtx;
use iprune_tensor::matmul::{
    matmul_a_bt, matmul_a_bt_ref, matmul_a_bt_scalar, matmul_acc, matmul_acc_ref,
    matmul_acc_scalar, matmul_at_b, matmul_at_b_ref, matmul_at_b_scalar,
};
use iprune_tensor::pack::{self, ConvShape};
use iprune_tensor::par;
use iprune_tensor::pool;
use iprune_tensor::qgemm::{q15_gemm, q15_gemm_scalar, q8_gemm, q8_gemm_scalar};
use iprune_tensor::simd::{self, SimdLevel};
use iprune_tensor::sparse::{self, SparseIndex};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Whether the host offers FMA — detected independently of the combined
/// avx2+fma dispatch gate, for the bench header.
fn fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Median wall-clock seconds of `reps` timed calls.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fill(seed: f32, len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i as f32 * 0.13 + seed).sin() * 2.0).round() / 3.0).collect()
}

struct KernelRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    workers: usize,
    ref_gflops: f64,
    tiled_gflops: f64,
}

/// A GEMM kernel entry point: `(a, b, c, m, k, n)`.
type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// Benchmarks one kernel shape at one requested thread count. The
/// reference kernel is always serial; the tiled kernel fans rows out over
/// the effective workers.
#[allow(clippy::too_many_arguments)]
fn bench_kernel(
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    tiled: GemmFn,
    reference: GemmFn,
    a_len: usize,
    b_len: usize,
) -> KernelRow {
    let a = fill(0.3, a_len);
    let b = fill(0.7, b_len);
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let reps = 7;

    par::set_threads(1);
    let t_ref = time_median(reps, || reference(&a, &b, &mut c, m, k, n));
    par::set_threads(threads);
    let workers = par::workers_for(m.max(n));
    let t_tiled = time_median(reps, || tiled(&a, &b, &mut c, m, k, n));
    par::set_threads(0);

    KernelRow {
        kernel,
        m,
        k,
        n,
        threads,
        workers,
        ref_gflops: flops / t_ref / 1e9,
        tiled_gflops: flops / t_tiled / 1e9,
    }
}

struct SimdRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    scalar_gflops: f64,
    simd_gflops: f64,
}

/// Times the scalar-spec kernels against the dispatched entries on the
/// conv-shaped hot loop (serial — the lane-level win is what's under
/// test, not the fan-out). When the process dispatch level is `scalar`
/// the two columns measure the same code path.
fn bench_simd_kernels() -> Vec<SimdRow> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    type Pair = (&'static str, usize, usize, usize, GemmFn, GemmFn, usize, usize);
    let cases: [Pair; 3] = [
        ("matmul_acc", 64, 576, 169, matmul_acc, matmul_acc_scalar, 64 * 576, 576 * 169),
        ("matmul_at_b", 576, 64, 169, matmul_at_b, matmul_at_b_scalar, 64 * 576, 64 * 169),
        ("matmul_a_bt", 64, 169, 576, matmul_a_bt, matmul_a_bt_scalar, 64 * 169, 576 * 169),
    ];
    for (kernel, m, k, n, dispatched, scalar, a_len, b_len) in cases {
        let a = fill(0.3, a_len);
        let b = fill(0.7, b_len);
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let t_scalar = time_median(reps, || scalar(&a, &b, &mut c, m, k, n));
        let t_simd = time_median(reps, || dispatched(&a, &b, &mut c, m, k, n));
        rows.push(SimdRow {
            kernel,
            m,
            k,
            n,
            scalar_gflops: flops / t_scalar / 1e9,
            simd_gflops: flops / t_simd / 1e9,
        });
    }
    par::set_threads(0);
    rows
}

struct Q15Row {
    m: usize,
    k: usize,
    n: usize,
    scalar_gops: f64,
    simd_gops: f64,
    checksum: u64,
}

/// FNV-1a over raw bytes — the deterministic fingerprint CI compares
/// across dispatch levels (the integer SIMD bodies and the packing/pooling
/// kernels are exact, so the dispatched output must hash identically under
/// `IPRUNE_SIMD=0` and `=1`).
fn fnv64_bytes(data: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in data {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over an i16 payload (little-endian bytes).
fn fnv64(data: &[i16]) -> u64 {
    fnv64_bytes(data.iter().flat_map(|&v| (v as u16).to_le_bytes()))
}

/// FNV-1a over an f32 payload (bit patterns, little-endian bytes).
fn fnv64_f32(data: &[f32]) -> u64 {
    fnv64_bytes(data.iter().flat_map(|&v| v.to_bits().to_le_bytes()))
}

/// Times the Q15 integer GEMM, scalar spec vs dispatched, on the conv
/// shape and the FC shape (`n = 1`). Operands mimic deployment: weights
/// exclude `i16::MIN` (the `for_max_abs` guarantee).
fn bench_q15() -> Vec<Q15Row> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    for &(m, k, n) in &[(64usize, 576usize, 169usize), (576, 1024, 1)] {
        let mut s = 0x915_u64 + (m * k * n) as u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<i16> = (0..m * k).map(|_| (next() as i16).max(-i16::MAX)).collect();
        let b: Vec<i16> = (0..n * k).map(|_| next() as i16).collect();
        let bias: Vec<i16> = (0..m).map(|_| next() as i16).collect();
        let mut c = vec![0i16; m * n];
        let ops = 2.0 * m as f64 * k as f64 * n as f64;
        let t_scalar = time_median(reps, || {
            q15_gemm_scalar(&a, &b, &bias, 7, &mut c, m, k, n, 13, 14, 12, true)
        });
        let t_simd =
            time_median(reps, || q15_gemm(&a, &b, &bias, 7, &mut c, m, k, n, 13, 14, 12, true));
        rows.push(Q15Row {
            m,
            k,
            n,
            scalar_gops: ops / t_scalar / 1e9,
            simd_gops: ops / t_simd / 1e9,
            checksum: fnv64(&c),
        });
    }
    par::set_threads(0);
    rows
}

struct Im2colRow {
    layout: &'static str,
    scalar_gbs: f64,
    simd_gbs: f64,
    checksum: u64,
}

/// Times im2col packing, scalar spec vs dispatched, in both layouts on the
/// SQN fire-module conv geometry (`cin 64, 3x3, pad 1, 13x13` → the
/// 64x576x169 GEMM). Throughput is nominal GB/s over packed bytes written
/// plus source bytes read once; the checksum fingerprints the packed
/// output (pure data movement — bitwise across dispatch levels).
fn bench_im2col() -> Vec<Im2colRow> {
    let reps = 7;
    par::set_threads(1);
    let s = ConvShape {
        cin: 64,
        kh: 3,
        kw: 3,
        stride: 1,
        pad_h: 1,
        pad_w: 1,
        in_h: 13,
        in_w: 13,
        out_h: 13,
        out_w: 13,
    };
    let src = fill(0.4, s.in_len());
    let src_i16: Vec<i16> = src.iter().map(|&v| (v * 16384.0) as i16).collect();
    let mut rows = Vec::new();

    let mut col = vec![0.0f32; s.col_len()];
    let bytes = ((s.col_len() + s.in_len()) * 4) as f64;
    let t_scalar = time_median(reps, || pack::im2col_f32_scalar(&src, &s, &mut col));
    let t_simd = time_median(reps, || pack::im2col_f32(&src, &s, &mut col));
    rows.push(Im2colRow {
        layout: "rows_f32",
        scalar_gbs: bytes / t_scalar / 1e9,
        simd_gbs: bytes / t_simd / 1e9,
        checksum: fnv64_f32(&col),
    });

    let mut col16 = vec![0i16; s.col_len()];
    let bytes = ((s.col_len() + s.in_len()) * 2) as f64;
    let t_scalar = time_median(reps, || pack::im2col_patches_scalar(&src_i16, &s, &mut col16));
    let t_simd = time_median(reps, || pack::im2col_patches(&src_i16, &s, &mut col16));
    rows.push(Im2colRow {
        layout: "patches_i16",
        scalar_gbs: bytes / t_scalar / 1e9,
        simd_gbs: bytes / t_simd / 1e9,
        checksum: fnv64(&col16),
    });
    par::set_threads(0);
    rows
}

struct PoolRow {
    variant: &'static str,
    scalar_gbs: f64,
    simd_gbs: f64,
    checksum: u64,
}

/// Times max-pooling, scalar spec vs dispatched, per channel plane over a
/// conv-stage activation (64 planes of 26x26, 2x2 windows): the f32
/// inference path, the f32 argmax (training) path, and the i16 quantized
/// path. Nominal GB/s over source-read plus destination-written bytes.
fn bench_pool() -> Vec<PoolRow> {
    let reps = 7;
    par::set_threads(1);
    let (c, h, w, kh, kw) = (64usize, 26usize, 26usize, 2usize, 2usize);
    let (ho, wo) = (h / kh, w / kw);
    let src = fill(0.6, c * h * w);
    let src_i16: Vec<i16> = src.iter().map(|&v| (v * 16384.0) as i16).collect();
    let mut rows = Vec::new();

    let mut dst = vec![0.0f32; c * ho * wo];
    let bytes = ((c * h * w + c * ho * wo) * 4) as f64;
    let t_scalar = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_f32_scalar(
                &src[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    let t_simd = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_f32(
                &src[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    rows.push(PoolRow {
        variant: "f32",
        scalar_gbs: bytes / t_scalar / 1e9,
        simd_gbs: bytes / t_simd / 1e9,
        checksum: fnv64_f32(&dst),
    });

    let mut arg = vec![0usize; c * ho * wo];
    let t_scalar = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_f32_argmax_scalar(
                &src[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst[p * ho * wo..(p + 1) * ho * wo],
                &mut arg[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    let t_simd = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_f32_argmax(
                &src[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst[p * ho * wo..(p + 1) * ho * wo],
                &mut arg[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    let arg_sum: u64 = arg.iter().map(|&a| a as u64).sum();
    rows.push(PoolRow {
        variant: "f32_argmax",
        scalar_gbs: bytes / t_scalar / 1e9,
        simd_gbs: bytes / t_simd / 1e9,
        checksum: fnv64_f32(&dst) ^ arg_sum,
    });

    let mut dst16 = vec![0i16; c * ho * wo];
    let bytes = ((c * h * w + c * ho * wo) * 2) as f64;
    let t_scalar = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_i16_scalar(
                &src_i16[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst16[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    let t_simd = time_median(reps, || {
        for p in 0..c {
            pool::maxpool2d_i16(
                &src_i16[p * h * w..(p + 1) * h * w],
                h,
                w,
                kh,
                kw,
                &mut dst16[p * ho * wo..(p + 1) * ho * wo],
            );
        }
    });
    rows.push(PoolRow {
        variant: "i16",
        scalar_gbs: bytes / t_scalar / 1e9,
        simd_gbs: bytes / t_simd / 1e9,
        checksum: fnv64(&dst16),
    });
    par::set_threads(0);
    rows
}

struct Q8Row {
    m: usize,
    k: usize,
    n: usize,
    scalar_gmacs: f64,
    simd_gmacs: f64,
    checksum: u64,
}

/// Times the Q8 integer GEMM, scalar spec vs dispatched, on the conv shape
/// and the FC shape (`n = 1`). Full-range i8 operands — the wrapping-i32
/// contract has no operand precondition.
fn bench_q8() -> Vec<Q8Row> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    for &(m, k, n) in &[(64usize, 576usize, 169usize), (576, 1024, 1)] {
        let mut s = 0x80_u64 + (m * k * n) as u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let a: Vec<i8> = (0..m * k).map(|_| next() as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|_| next() as i8).collect();
        let bias: Vec<i32> = (0..m).map(|_| next() as i32 >> 16).collect();
        let mut c = vec![0i8; m * n];
        let macs = m as f64 * k as f64 * n as f64;
        let t_scalar =
            time_median(reps, || q8_gemm_scalar(&a, &b, &bias, &mut c, m, k, n, 5, 7, 6, true));
        let t_simd = time_median(reps, || q8_gemm(&a, &b, &bias, &mut c, m, k, n, 5, 7, 6, true));
        rows.push(Q8Row {
            m,
            k,
            n,
            scalar_gmacs: macs / t_scalar / 1e9,
            simd_gmacs: macs / t_simd / 1e9,
            checksum: fnv64_bytes(c.iter().map(|&v| v as u8)),
        });
    }
    par::set_threads(0);
    rows
}

struct E2eRow {
    engine: &'static str,
    samples: usize,
    scalar_wall_ms: f64,
    simd_wall_ms: f64,
    checksum: u64,
}

/// End-to-end quantized inference (HAR, trained 1 epoch): all samples
/// through `forward_*_with` on one recycled context, timed at the forced
/// scalar level and at the dispatched level. On a scalar-only host (or
/// under `IPRUNE_SIMD=0`) the two columns measure the same code path. The
/// logits checksum is bitwise across levels — asserted here and compared
/// across CI legs.
fn bench_quant_e2e() -> Vec<E2eRow> {
    let reps = 5;
    let app = App::Har;
    let mut model = app.build();
    let train = app.dataset(96, 300);
    train_sgd(&mut model, &train, &TrainConfig { epochs: 1, ..Default::default() });
    let eval = app.dataset(64, 301);
    let q15 = QuantizedModel::quantize(&mut model, &eval, 8);
    let q8 = Quantized8Model::quantize(&mut model, &eval, 8);
    par::set_threads(1);

    let entry = simd::simd_level();
    let run = |engine: &'static str, fwd: &dyn Fn(&mut ExecCtx) -> Vec<f32>| -> E2eRow {
        let mut ctx = ExecCtx::new();
        let t_entry = time_median(reps, || {
            let _ = fwd(&mut ctx);
        });
        let sum_entry = fnv64_f32(&fwd(&mut ctx));
        let (scalar_wall, simd_wall) = if entry == SimdLevel::Avx2 {
            simd::set_simd_level(SimdLevel::Scalar);
            let t_scalar = time_median(reps, || {
                let _ = fwd(&mut ctx);
            });
            let sum_scalar = fnv64_f32(&fwd(&mut ctx));
            simd::set_simd_level(entry);
            assert_eq!(sum_scalar, sum_entry, "{engine} e2e logits differ across dispatch levels");
            (t_scalar, t_entry)
        } else {
            (t_entry, t_entry)
        };
        E2eRow {
            engine,
            samples: eval.len(),
            scalar_wall_ms: scalar_wall * 1e3,
            simd_wall_ms: simd_wall * 1e3,
            checksum: sum_entry,
        }
    };

    let rows = vec![
        run("q15", &|ctx| {
            let mut last = Vec::new();
            for i in 0..eval.len() {
                last = q15.forward_q15_with(&eval.sample(i), ctx);
            }
            last
        }),
        run("q8", &|ctx| {
            let mut last = Vec::new();
            for i in 0..eval.len() {
                last = q8.forward_q8_with(&eval.sample(i), ctx);
            }
            last
        }),
    ];
    par::set_threads(0);
    rows
}

struct QEvalRow {
    app: &'static str,
    acc_f32: f64,
    acc_q15: f64,
    acc_q8: f64,
}

/// Trains each zoo app briefly, then evaluates the same weights through
/// the float path and both host quantized engines — the f32→Q15 accuracy
/// delta of Section IV-A plus the int8 tier, at host speed.
fn bench_q15_eval() -> Vec<QEvalRow> {
    App::all()
        .iter()
        .map(|&app| {
            let mut model = app.build();
            let train = app.dataset(96, 300);
            let eval = app.dataset(128, 301);
            train_sgd(&mut model, &train, &TrainConfig { epochs: 1, ..Default::default() });
            let acc_f32 = evaluate(&mut model, &eval, 16);
            let qm = QuantizedModel::quantize(&mut model, &eval, 8);
            let acc_q15 = qm.evaluate_q15(&eval);
            let qm8 = Quantized8Model::quantize(&mut model, &eval, 8);
            let acc_q8 = qm8.evaluate_q8(&eval);
            QEvalRow { app: app.name(), acc_f32, acc_q15, acc_q8 }
        })
        .collect()
}

struct SparseRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
    total_blocks: usize,
    alive_blocks: usize,
    alive_cells: usize,
    skipped_macs: u64,
    t_dense: f64,
    t_sparse: f64,
}

/// A block mask over a `rows x cols` weight matrix with exactly
/// `round(total_blocks * sparsity)` dead 4x16 blocks, chosen by a
/// deterministic hash shuffle (no RNG state, no thread dependence).
fn sparse_block_mask(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Vec<f32> {
    let (br, bc) = (sparse::BLOCK_ROWS, sparse::BLOCK_COLS);
    let (nbr, nbc) = (rows.div_ceil(br), cols.div_ceil(bc));
    let total = nbr * nbc;
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| {
        let mut x = (i as u64).wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    });
    let kill = ((total as f64) * sparsity).round() as usize;
    let mut mask = vec![1.0f32; rows * cols];
    for &blk in &order[..kill.min(total)] {
        let (rb, cb) = (blk / nbc, blk % nbc);
        for i in rb * br..((rb + 1) * br).min(rows) {
            for j in cb * bc..((cb + 1) * bc).min(cols) {
                mask[i * cols + j] = 0.0;
            }
        }
    }
    mask
}

/// Times the three hot-loop sparse kernels against their dense
/// counterparts on the standard bench shapes, with the weight operand
/// masked at each target block sparsity. Dense kernels run on the same
/// masked weights (keeping their per-element zero skip), so the measured
/// speedup is purely the structural win of iterating alive blocks only.
/// Serial (1 thread): the sparse/dense ratio is what's under test, not
/// the fan-out, and serial timings are the most stable in CI.
fn bench_sparse(sparsities: &[f64]) -> Vec<SparseRow> {
    let reps = 7;
    let mut rows = Vec::new();
    par::set_threads(1);
    for &s in sparsities {
        let seed = (s * 1000.0) as u64;

        // Forward conv GEMM: weight is the lhs, index over (m, k).
        {
            let (m, k, n) = (64usize, 576, 169);
            let mask = sparse_block_mask(m, k, s, 0xACC + seed);
            let mut a = fill(0.3, m * k);
            for (w, mk) in a.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let b = fill(0.7, k * n);
            let idx = SparseIndex::from_mask(&mask, m, k);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_acc(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_acc_sparse_lhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_acc_sparse_lhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((m * k - idx.alive_cells()) * n) as u64,
                t_dense,
                t_sparse,
            });
        }

        // Backward conv dX GEMM: weight is the transposed lhs, stored
        // [k x m]; index over the storage layout.
        {
            let (m, k, n) = (576usize, 64, 169);
            let mask = sparse_block_mask(k, m, s, 0xA7B + seed);
            let mut a = fill(0.3, k * m);
            for (w, mk) in a.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let b = fill(0.7, k * n);
            let idx = SparseIndex::from_mask(&mask, k, m);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_at_b(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_at_b_sparse_lhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_at_b_sparse_lhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((k * m - idx.alive_cells()) * n) as u64,
                t_dense,
                t_sparse,
            });
        }

        // Linear forward GEMM: weight is the transposed rhs [n x k];
        // index over the storage layout.
        {
            let (m, k, n) = (64usize, 169, 576);
            let mask = sparse_block_mask(n, k, s, 0xAB7 + seed);
            let a = fill(0.3, m * k);
            let mut b = fill(0.7, n * k);
            for (w, mk) in b.iter_mut().zip(&mask) {
                *w *= *mk;
            }
            let idx = SparseIndex::from_mask(&mask, n, k);
            let mut c = vec![0.0f32; m * n];
            let t_dense = time_median(reps, || matmul_a_bt(&a, &b, &mut c, m, k, n));
            let t_sparse =
                time_median(reps, || sparse::matmul_a_bt_sparse_rhs(&idx, &a, &b, &mut c, m, k, n));
            rows.push(SparseRow {
                kernel: "matmul_a_bt_sparse_rhs",
                m,
                k,
                n,
                sparsity: s,
                total_blocks: idx.total_blocks(),
                alive_blocks: idx.alive_blocks(),
                alive_cells: idx.alive_cells(),
                skipped_macs: ((n * k - idx.alive_cells()) * m) as u64,
                t_dense,
                t_sparse,
            });
        }
    }
    par::set_threads(0);
    rows
}

struct PipelineRow {
    threads: usize,
    workers: usize,
    wall_s: f64,
}

/// Times the HAR smoke-scale pipeline (train → ePrune/iPrune → deploy) at
/// one effective worker count, against a cold cache so every run does the
/// same work.
fn time_pipeline(workers: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!("iprune_perf_{}_{}", std::process::id(), workers));
    std::env::set_var("IPRUNE_CACHE_DIR", &dir);
    par::set_threads(workers);
    let t0 = Instant::now();
    let results = run_app_pipelines(App::Har, &SMOKE, false);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(results.variants.len(), 3);
    par::set_threads(0);
    std::env::remove_var("IPRUNE_CACHE_DIR");
    let _ = std::fs::remove_dir_all(dir);
    wall_s
}

fn main() {
    let host_cores = par::host_cores();
    let dispatch = simd::dispatch_label();
    let lanes = simd::lane_width();
    println!("Host performance — kernels and pipeline (host cores: {host_cores})");
    println!(
        "cpu: avx2={} fma={} dispatch={dispatch} lanes={lanes}",
        simd::avx2_supported(),
        fma_supported(),
    );
    println!("==================================================================");

    // Conv-shaped (SQN fire-module GEMM) and square shapes.
    let mut kernels: Vec<KernelRow> = Vec::new();
    for &threads in &[1usize, host_cores.max(2)] {
        kernels.push(bench_kernel(
            "matmul_acc",
            64,
            576,
            169,
            threads,
            matmul_acc,
            matmul_acc_ref,
            64 * 576,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_at_b",
            576,
            64,
            169,
            threads,
            matmul_at_b,
            matmul_at_b_ref,
            64 * 576,
            64 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_a_bt",
            64,
            169,
            576,
            threads,
            matmul_a_bt,
            matmul_a_bt_ref,
            64 * 169,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_acc",
            192,
            192,
            192,
            threads,
            matmul_acc,
            matmul_acc_ref,
            192 * 192,
            192 * 192,
        ));
    }

    println!(
        "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12} {:>12} {:>8}",
        "kernel", "m", "k", "n", "threads", "workers", "ref GF/s", "tiled GF/s", "speedup"
    );
    for r in &kernels {
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12.2} {:>12.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
    }

    // SIMD dispatch vs scalar spec on the hot conv shape.
    let simd_rows = bench_simd_kernels();
    println!();
    println!("SIMD-dispatched vs scalar-spec kernels (serial, dispatch={dispatch}):");
    println!(
        "{:<12} {:>4}x{:<4}x{:<4} {:>13} {:>11} {:>8}",
        "kernel", "m", "k", "n", "scalar GF/s", "simd GF/s", "speedup"
    );
    for r in &simd_rows {
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>13.2} {:>11.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.scalar_gflops,
            r.simd_gflops,
            r.simd_gflops / r.scalar_gflops
        );
        if dispatch == "avx2" {
            // the 8-lane FMA bodies must clearly beat the register-blocked
            // scalar spec; 1.5x is the regression floor (typical is >2x)
            assert!(
                r.simd_gflops / r.scalar_gflops >= 1.5,
                "SIMD kernel too slow: {} {:.2} GF/s vs scalar {:.2} GF/s",
                r.kernel,
                r.simd_gflops,
                r.scalar_gflops
            );
        }
    }

    // Q15 integer GEMM, scalar spec vs dispatched madd.
    let q15_rows = bench_q15();
    println!();
    println!("Q15 integer GEMM (serial, dispatch={dispatch}):");
    for r in &q15_rows {
        println!(
            "  {:>4}x{:<4}x{:<4} scalar {:>6.2} Gops  simd {:>6.2} Gops  ({:.2}x)  checksum {:#018x}",
            r.m,
            r.k,
            r.n,
            r.scalar_gops,
            r.simd_gops,
            r.simd_gops / r.scalar_gops,
            r.checksum
        );
    }

    // Q8 integer GEMM, scalar spec vs dispatched sign-extend+madd.
    let q8_rows = bench_q8();
    println!();
    println!("Q8 integer GEMM (serial, dispatch={dispatch}):");
    for r in &q8_rows {
        println!(
            "  {:>4}x{:<4}x{:<4} scalar {:>6.2} GMAC/s  simd {:>6.2} GMAC/s  ({:.2}x)  checksum {:#018x}",
            r.m,
            r.k,
            r.n,
            r.scalar_gmacs,
            r.simd_gmacs,
            r.simd_gmacs / r.scalar_gmacs,
            r.checksum
        );
        if dispatch == "avx2" && r.n > 1 {
            // 32 i8 lanes per madd against a scalar i32 loop: the conv-shaped
            // row must clear 2x (the FC row is latency-bound at n = 1 and
            // keeps only the bitwise contract)
            assert!(
                r.simd_gmacs / r.scalar_gmacs >= 2.0,
                "Q8 SIMD GEMM below 2x on conv shape: {:.2} vs {:.2} GMAC/s",
                r.simd_gmacs,
                r.scalar_gmacs
            );
        }
    }

    // SIMD im2col packing, both layouts.
    let im2col_rows = bench_im2col();
    println!();
    println!("im2col packing (serial, dispatch={dispatch}):");
    for r in &im2col_rows {
        println!(
            "  {:<12} scalar {:>6.2} GB/s  simd {:>6.2} GB/s  ({:.2}x)  checksum {:#018x}",
            r.layout,
            r.scalar_gbs,
            r.simd_gbs,
            r.simd_gbs / r.scalar_gbs,
            r.checksum
        );
    }

    // Vectorized max-pooling: inference, argmax (training), and quantized.
    let pool_rows = bench_pool();
    println!();
    println!("max-pool 2x2 (serial, 64 planes of 26x26, dispatch={dispatch}):");
    for r in &pool_rows {
        println!(
            "  {:<12} scalar {:>6.2} GB/s  simd {:>6.2} GB/s  ({:.2}x)  checksum {:#018x}",
            r.variant,
            r.scalar_gbs,
            r.simd_gbs,
            r.simd_gbs / r.scalar_gbs,
            r.checksum
        );
    }

    // End-to-end quantized inference at both dispatch levels.
    let e2e_rows = bench_quant_e2e();
    println!();
    println!("end-to-end quantized inference (HAR, {} samples):", e2e_rows[0].samples);
    for r in &e2e_rows {
        let speedup = r.scalar_wall_ms / r.simd_wall_ms;
        println!(
            "  {:<4} scalar {:>7.2} ms  simd {:>7.2} ms  ({:.2}x)  logits checksum {:#018x}",
            r.engine, r.scalar_wall_ms, r.simd_wall_ms, speedup, r.checksum
        );
        if dispatch == "avx2" && r.engine == "q15" {
            // the tentpole target: SIMD im2col + pooling + madd GEMM must
            // compound to >= 1.3x on the whole Q15 inference graph
            assert!(speedup >= 1.3, "Q15 end-to-end SIMD speedup below 1.3x: {speedup:.2}x");
        }
        if dispatch == "avx2" {
            // q8 on HAR is bound by per-element requantization and the
            // small-k scalar tails, so its SIMD win is thin; the guard only
            // catches a real regression, not timer noise
            assert!(
                speedup >= 0.9,
                "{} end-to-end SIMD slower than scalar: {speedup:.2}x",
                r.engine
            );
        }
    }

    // f32 vs quantized accuracy per zoo app.
    let qeval_rows = bench_q15_eval();
    println!();
    println!("f32 vs host-quantized evaluation accuracy (trained 1 epoch):");
    for r in &qeval_rows {
        let delta = (r.acc_f32 - r.acc_q15).abs();
        let delta8 = (r.acc_f32 - r.acc_q8).abs();
        println!(
            "  {:<4} f32 {:>6.4}  q15 {:>6.4}  delta {:>6.4}  q8 {:>6.4}  delta {:>6.4}",
            r.app, r.acc_f32, r.acc_q15, delta, r.acc_q8, delta8
        );
        assert!(
            delta <= 0.01 + 1e-9,
            "Q15 accuracy delta above 1% on {}: f32 {:.4} vs q15 {:.4}",
            r.app,
            r.acc_f32,
            r.acc_q15
        );
        // int8 resolution is 256x coarser than Q15; 5% is the guard rail
        assert!(
            delta8 <= 0.05 + 1e-9,
            "Q8 accuracy delta above 5% on {}: f32 {:.4} vs q8 {:.4}",
            r.app,
            r.acc_f32,
            r.acc_q8
        );
    }

    // Block-sparse kernels vs dense on masked weights.
    let sparsities = [0.3f64, 0.5, 0.8];
    let sparse_rows = bench_sparse(&sparsities);
    println!();
    println!("Block-sparse vs dense kernels (serial, 4x16 blocks, masked weights):");
    println!(
        "{:<24} {:>4}x{:<4}x{:<4} {:>8} {:>11} {:>12} {:>13} {:>8}",
        "kernel", "m", "k", "n", "sparsity", "alive blks", "dense GF/s", "sparse GF/s", "speedup"
    );
    for r in &sparse_rows {
        let flops = 2.0 * r.m as f64 * r.k as f64 * r.n as f64;
        println!(
            "{:<24} {:>4}x{:<4}x{:<4} {:>8.2} {:>5}/{:<5} {:>12.2} {:>13.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            r.alive_blocks,
            r.total_blocks,
            flops / r.t_dense / 1e9,
            flops / r.t_sparse / 1e9,
            r.t_dense / r.t_sparse
        );
    }
    // Aggregate GEMM-path speedup per sparsity: total dense time over
    // total sparse time across the three hot-loop kernels.
    let gemm_path: Vec<(f64, f64)> = sparsities
        .iter()
        .map(|&s| {
            let (td, ts) = sparse_rows
                .iter()
                .filter(|r| r.sparsity == s)
                .fold((0.0, 0.0), |(td, ts), r| (td + r.t_dense, ts + r.t_sparse));
            (s, td / ts)
        })
        .collect();
    for &(s, speedup) in &gemm_path {
        println!("  GEMM-path speedup at {:>3.0}% block sparsity: {speedup:.2}x", s * 100.0);
    }
    for r in &sparse_rows {
        let speedup = r.t_dense / r.t_sparse;
        if r.sparsity >= 0.7 {
            assert!(
                speedup >= 1.0,
                "sparse kernel slower than dense at {:.0}% sparsity: {} speedup {:.4}",
                r.sparsity * 100.0,
                r.kernel,
                speedup
            );
        }
        // With the strip-coalesced SIMD bodies the traversal win must show
        // up from 50% block sparsity on (scalar hosts keep the softer
        // >= 70% guard above — per-element zero skips close most of the
        // gap there).
        if dispatch == "avx2" && r.sparsity >= 0.5 {
            assert!(
                speedup >= 1.1,
                "sparse kernel below 1.1x at {:.0}% sparsity under SIMD: {} speedup {:.4}",
                r.sparsity * 100.0,
                r.kernel,
                speedup
            );
        }
    }

    // One measurement per *effective* worker count; requested counts that
    // the core cap collapses together share it.
    println!();
    println!("HAR smoke pipeline wall-clock (cold cache per effective config):");
    let mut measured: HashMap<usize, f64> = HashMap::new();
    let pipeline: Vec<PipelineRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let workers = threads.min(host_cores).max(1);
            let wall_s = *measured.entry(workers).or_insert_with(|| time_pipeline(workers));
            PipelineRow { threads, workers, wall_s }
        })
        .collect();
    for r in &pipeline {
        println!(
            "  threads {:>2} (workers {:>2}): {:>7.2} s  ({:.2}x vs 1 thread)",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
    }
    for r in &pipeline {
        let speedup = pipeline[0].wall_s / r.wall_s;
        if r.threads == 2 || r.threads == 4 {
            // On a capped (single-core) host the rows share the 1-thread
            // measurement, so this is exact; with real extra cores the
            // parallel pipeline must not lose to serial.
            assert!(
                speedup >= if r.workers == 1 { 1.0 } else { 0.9 },
                "parallel pipeline regression: threads {} (workers {}) speedup {:.4}",
                r.threads,
                r.workers,
                speedup
            );
        }
    }

    // machine-readable record
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    // single line, excluded from CI's cross-dispatch byte-compare (the
    // `simd_dispatch` token is on the grep -v list)
    let _ = writeln!(
        json,
        "  \"cpu\": {{\"avx2\": {}, \"fma\": {}, \"simd_dispatch\": \"{dispatch}\", \"lanes\": {lanes}}},",
        simd::avx2_supported(),
        fma_supported(),
    );
    json.push_str("  \"simd_kernels\": [\n");
    for (i, r) in simd_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"dispatch\": \"{dispatch}\", \
             \"lanes\": {lanes}, \"scalar_gflops\": {:.4}, \"simd_gflops\": {:.4}, \"speedup\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.scalar_gflops,
            r.simd_gflops,
            r.simd_gflops / r.scalar_gflops
        );
        json.push_str(if i + 1 < simd_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"q15_gemm\": [\n");
    for (i, r) in q15_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"scalar_gops\": {:.4}, \
             \"simd_gops\": {:.4}, \"scalar_gmacs\": {:.4}, \"simd_gmacs\": {:.4}, \
             \"speedup\": {:.4}}}",
            r.m,
            r.k,
            r.n,
            r.scalar_gops,
            r.simd_gops,
            r.scalar_gops / 2.0,
            r.simd_gops / 2.0,
            r.simd_gops / r.scalar_gops
        );
        json.push_str(if i + 1 < q15_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"q8_gemm\": [\n");
    for (i, r) in q8_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"scalar_gmacs\": {:.4}, \
             \"simd_gmacs\": {:.4}, \"speedup\": {:.4}}}",
            r.m,
            r.k,
            r.n,
            r.scalar_gmacs,
            r.simd_gmacs,
            r.simd_gmacs / r.scalar_gmacs
        );
        json.push_str(if i + 1 < q8_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: the dispatched Q8 output hashed — byte-identical across
    // thread counts AND dispatch levels (the SIMD body is exact).
    json.push_str("  \"q8_checksums\": [\n");
    for (i, r) in q8_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"out_checksum\": \"{:#018x}\"}}",
            r.m, r.k, r.n, r.checksum
        );
        json.push_str(if i + 1 < q8_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"simd_im2col\": [\n");
    for (i, r) in im2col_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layout\": \"{}\", \"scalar_gbs\": {:.4}, \"simd_gbs\": {:.4}, \
             \"speedup\": {:.4}}}",
            r.layout,
            r.scalar_gbs,
            r.simd_gbs,
            r.simd_gbs / r.scalar_gbs
        );
        json.push_str(if i + 1 < im2col_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: packed output hashed — im2col is pure data movement, so
    // the bytes are identical at every dispatch level and thread count.
    json.push_str("  \"im2col_checksums\": [\n");
    for (i, r) in im2col_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layout\": \"{}\", \"out_checksum\": \"{:#018x}\"}}",
            r.layout, r.checksum
        );
        json.push_str(if i + 1 < im2col_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"pool\": [\n");
    for (i, r) in pool_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"variant\": \"{}\", \"scalar_gbs\": {:.4}, \"simd_gbs\": {:.4}, \
             \"speedup\": {:.4}}}",
            r.variant,
            r.scalar_gbs,
            r.simd_gbs,
            r.simd_gbs / r.scalar_gbs
        );
        json.push_str(if i + 1 < pool_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: pooled output (and argmax sum) hashed — the vector max
    // replicates scalar first-wins tie-breaking bitwise.
    json.push_str("  \"pool_checksums\": [\n");
    for (i, r) in pool_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"variant\": \"{}\", \"out_checksum\": \"{:#018x}\"}}",
            r.variant, r.checksum
        );
        json.push_str(if i + 1 < pool_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"quant_e2e\": [\n");
    for (i, r) in e2e_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"samples\": {}, \"scalar_wall_ms\": {:.4}, \
             \"simd_wall_ms\": {:.4}, \"speedup\": {:.4}}}",
            r.engine,
            r.samples,
            r.scalar_wall_ms,
            r.simd_wall_ms,
            r.scalar_wall_ms / r.simd_wall_ms
        );
        json.push_str(if i + 1 < e2e_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: end-to-end logits hashed — the whole quantized graph
    // (quantize, im2col, GEMM, pool, avg, dequantize) is bitwise across
    // dispatch levels.
    json.push_str("  \"quant_e2e_checksums\": [\n");
    for (i, r) in e2e_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"engine\": \"{}\", \"samples\": {}, \"logits_checksum\": \"{:#018x}\"}}",
            r.engine, r.samples, r.checksum
        );
        json.push_str(if i + 1 < e2e_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural: the dispatched Q15 output hashed — byte-identical across
    // thread counts AND dispatch levels (the SIMD body is exact).
    json.push_str("  \"q15_checksums\": [\n");
    for (i, r) in q15_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"m\": {}, \"k\": {}, \"n\": {}, \"out_checksum\": \"{:#018x}\"}}",
            r.m, r.k, r.n, r.checksum
        );
        json.push_str(if i + 1 < q15_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // acc_f32 rides the float kernels, whose ULPs legitimately differ
    // across dispatch levels — the token is on CI's grep -v list; acc_q15
    // shares the line.
    json.push_str("  \"q15_eval\": [\n");
    for (i, r) in qeval_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"app\": \"{}\", \"acc_f32\": {:.4}, \"acc_q15\": {:.4}, \"delta\": {:.4}, \
             \"acc_q8\": {:.4}, \"delta_q8\": {:.4}}}",
            r.app,
            r.acc_f32,
            r.acc_q15,
            (r.acc_f32 - r.acc_q15).abs(),
            r.acc_q8,
            (r.acc_f32 - r.acc_q8).abs()
        );
        json.push_str(if i + 1 < qeval_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \
             \"workers\": {}, \"ref_gflops\": {:.4}, \"tiled_gflops\": {:.4}, \"speedup\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Structural rows: fully deterministic (no timing), compared
    // byte-for-byte across thread counts in CI.
    json.push_str("  \"sparse_cases\": [\n");
    for (i, r) in sparse_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {:.2}, \
             \"total_blocks\": {}, \"alive_blocks\": {}, \"alive_cells\": {}, \
             \"skipped_macs\": {}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            r.total_blocks,
            r.alive_blocks,
            r.alive_cells,
            r.skipped_macs
        );
        json.push_str(if i + 1 < sparse_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sparse_vs_dense\": [\n");
    for (i, r) in sparse_rows.iter().enumerate() {
        let flops = 2.0 * r.m as f64 * r.k as f64 * r.n as f64;
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"sparsity\": {:.2}, \
             \"dense_gflops\": {:.4}, \"sparse_gflops\": {:.4}, \"speedup_vs_dense\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.sparsity,
            flops / r.t_dense / 1e9,
            flops / r.t_sparse / 1e9,
            r.t_dense / r.t_sparse
        );
        json.push_str(if i + 1 < sparse_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"sparse_gemm_path\": [\n");
    for (i, &(s, speedup)) in gemm_path.iter().enumerate() {
        let _ = write!(json, "    {{\"sparsity\": {:.2}, \"gemm_path_speedup\": {speedup:.4}}}", s);
        json.push_str(if i + 1 < gemm_path.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"pipeline_har_smoke\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"workers\": {}, \"wall_s\": {:.3}, \"speedup_vs_1\": {:.4}}}",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
        json.push_str(if i + 1 < pipeline.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = workspace_root().join("BENCH_perf.json");
    std::fs::write(&out, &json).expect("write BENCH_perf.json");
    iprune_obs::log_info!("perf", "wrote {}", out.display());

    // Host-metrics registry accumulated over the whole bench (GEMM calls,
    // parallel-region shapes); IPRUNE_LOG=debug to see it.
    for line in iprune_obs::metrics::render_snapshot().lines() {
        iprune_obs::log_debug!("metrics", "{line}");
    }
}
