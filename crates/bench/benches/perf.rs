//! Host-performance benchmark: GEMM kernel throughput (tiled vs scalar
//! reference) and prune-pipeline wall-clock at 1/2/4/8 requested threads.
//!
//! Prints a human-readable summary and writes the machine-readable
//! `BENCH_perf.json` at the workspace root. Every row records both the
//! *requested* thread count and the *effective* worker count
//! (`iprune_tensor::par` caps regions at the physical core count), so the
//! recorded numbers always say what parallelism actually ran.
//!
//! Requested counts that collapse to the same effective worker count are
//! measured once and share the row data: on a single-core host the
//! 2/4/8-thread configurations are the 1-thread configuration, and
//! re-measuring them would only record scheduler noise as a phantom
//! slowdown. `speedup_vs_1 >= 1.0` is asserted for 2 and 4 requested
//! threads — the regression guard for oversubscribed parallel regions.

use iprune_bench::cache::workspace_root;
use iprune_bench::run_app_pipelines;
use iprune_bench::scale::SMOKE;
use iprune_models::zoo::App;
use iprune_tensor::matmul::{
    matmul_a_bt, matmul_a_bt_ref, matmul_acc, matmul_acc_ref, matmul_at_b, matmul_at_b_ref,
};
use iprune_tensor::par;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Median wall-clock seconds of `reps` timed calls.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn fill(seed: f32, len: usize) -> Vec<f32> {
    (0..len).map(|i| ((i as f32 * 0.13 + seed).sin() * 2.0).round() / 3.0).collect()
}

struct KernelRow {
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    workers: usize,
    ref_gflops: f64,
    tiled_gflops: f64,
}

/// A GEMM kernel entry point: `(a, b, c, m, k, n)`.
type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);

/// Benchmarks one kernel shape at one requested thread count. The
/// reference kernel is always serial; the tiled kernel fans rows out over
/// the effective workers.
#[allow(clippy::too_many_arguments)]
fn bench_kernel(
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    tiled: GemmFn,
    reference: GemmFn,
    a_len: usize,
    b_len: usize,
) -> KernelRow {
    let a = fill(0.3, a_len);
    let b = fill(0.7, b_len);
    let mut c = vec![0.0f32; m * n];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let reps = 7;

    par::set_threads(1);
    let t_ref = time_median(reps, || reference(&a, &b, &mut c, m, k, n));
    par::set_threads(threads);
    let workers = par::workers_for(m.max(n));
    let t_tiled = time_median(reps, || tiled(&a, &b, &mut c, m, k, n));
    par::set_threads(0);

    KernelRow {
        kernel,
        m,
        k,
        n,
        threads,
        workers,
        ref_gflops: flops / t_ref / 1e9,
        tiled_gflops: flops / t_tiled / 1e9,
    }
}

struct PipelineRow {
    threads: usize,
    workers: usize,
    wall_s: f64,
}

/// Times the HAR smoke-scale pipeline (train → ePrune/iPrune → deploy) at
/// one effective worker count, against a cold cache so every run does the
/// same work.
fn time_pipeline(workers: usize) -> f64 {
    let dir = std::env::temp_dir().join(format!("iprune_perf_{}_{}", std::process::id(), workers));
    std::env::set_var("IPRUNE_CACHE_DIR", &dir);
    par::set_threads(workers);
    let t0 = Instant::now();
    let results = run_app_pipelines(App::Har, &SMOKE, false);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(results.variants.len(), 3);
    par::set_threads(0);
    std::env::remove_var("IPRUNE_CACHE_DIR");
    let _ = std::fs::remove_dir_all(dir);
    wall_s
}

fn main() {
    let host_cores = par::host_cores();
    println!("Host performance — kernels and pipeline (host cores: {host_cores})");
    println!("==================================================================");

    // Conv-shaped (SQN fire-module GEMM) and square shapes.
    let mut kernels: Vec<KernelRow> = Vec::new();
    for &threads in &[1usize, host_cores.max(2)] {
        kernels.push(bench_kernel(
            "matmul_acc",
            64,
            576,
            169,
            threads,
            matmul_acc,
            matmul_acc_ref,
            64 * 576,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_at_b",
            576,
            64,
            169,
            threads,
            matmul_at_b,
            matmul_at_b_ref,
            64 * 576,
            64 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_a_bt",
            64,
            169,
            576,
            threads,
            matmul_a_bt,
            matmul_a_bt_ref,
            64 * 169,
            576 * 169,
        ));
        kernels.push(bench_kernel(
            "matmul_acc",
            192,
            192,
            192,
            threads,
            matmul_acc,
            matmul_acc_ref,
            192 * 192,
            192 * 192,
        ));
    }

    println!(
        "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12} {:>12} {:>8}",
        "kernel", "m", "k", "n", "threads", "workers", "ref GF/s", "tiled GF/s", "speedup"
    );
    for r in &kernels {
        println!(
            "{:<12} {:>4}x{:<4}x{:<4} {:>7} {:>7} {:>12.2} {:>12.2} {:>7.2}x",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
    }

    // One measurement per *effective* worker count; requested counts that
    // the core cap collapses together share it.
    println!();
    println!("HAR smoke pipeline wall-clock (cold cache per effective config):");
    let mut measured: HashMap<usize, f64> = HashMap::new();
    let pipeline: Vec<PipelineRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let workers = threads.min(host_cores).max(1);
            let wall_s = *measured.entry(workers).or_insert_with(|| time_pipeline(workers));
            PipelineRow { threads, workers, wall_s }
        })
        .collect();
    for r in &pipeline {
        println!(
            "  threads {:>2} (workers {:>2}): {:>7.2} s  ({:.2}x vs 1 thread)",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
    }
    for r in &pipeline {
        let speedup = pipeline[0].wall_s / r.wall_s;
        if r.threads == 2 || r.threads == 4 {
            // On a capped (single-core) host the rows share the 1-thread
            // measurement, so this is exact; with real extra cores the
            // parallel pipeline must not lose to serial.
            assert!(
                speedup >= if r.workers == 1 { 1.0 } else { 0.9 },
                "parallel pipeline regression: threads {} (workers {}) speedup {:.4}",
                r.threads,
                r.workers,
                speedup
            );
        }
    }

    // machine-readable record
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    json.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \"threads\": {}, \
             \"workers\": {}, \"ref_gflops\": {:.4}, \"tiled_gflops\": {:.4}, \"speedup\": {:.4}}}",
            r.kernel,
            r.m,
            r.k,
            r.n,
            r.threads,
            r.workers,
            r.ref_gflops,
            r.tiled_gflops,
            r.tiled_gflops / r.ref_gflops
        );
        json.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"pipeline_har_smoke\": [\n");
    for (i, r) in pipeline.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"workers\": {}, \"wall_s\": {:.3}, \"speedup_vs_1\": {:.4}}}",
            r.threads,
            r.workers,
            r.wall_s,
            pipeline[0].wall_s / r.wall_s
        );
        json.push_str(if i + 1 < pipeline.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let out = workspace_root().join("BENCH_perf.json");
    std::fs::write(&out, &json).expect("write BENCH_perf.json");
    iprune_obs::log_info!("perf", "wrote {}", out.display());

    // Host-metrics registry accumulated over the whole bench (GEMM calls,
    // parallel-region shapes); IPRUNE_LOG=debug to see it.
    for line in iprune_obs::metrics::render_snapshot().lines() {
        iprune_obs::log_debug!("metrics", "{line}");
    }
}
