//! Shared scaffolding for the table/figure regeneration harnesses.
//!
//! Every table and figure of the paper has a `harness = false` bench target
//! in `benches/` that prints the corresponding rows (`cargo bench -p
//! iprune-bench --bench table3`, …). This library holds what they share:
//! the experiment scale ([`Scale`], controlled by `IPRUNE_SCALE`), the
//! train→prune→deploy pipelines, and a weight cache so `fig5` can reuse the
//! models `table3` produced instead of re-pruning.

pub mod cache;
pub mod pipeline;
pub mod scale;
pub mod supply;

pub use pipeline::{run_all_apps, run_app_pipelines, AppResults, Variant};
pub use scale::Scale;
pub use supply::{solar_trace, sweep_supplies, SupplyPoint};
