//! Experiment scale selection.
//!
//! `IPRUNE_SCALE` picks how much data and search the harnesses spend:
//! `smoke` for CI-speed sanity runs, `standard` (default) for a
//! single-core-friendly full regeneration, `paper` for the most faithful
//! (slowest) runs.

use iprune_models::zoo::App;

/// Dataset and search sizes for one harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Name of the scale (for logging).
    pub name: &'static str,
    /// Training samples for SQN/CKS (HAR uses half: it is a far smaller
    /// task).
    pub train_n: usize,
    /// Validation samples.
    pub val_n: usize,
    /// Initial-training epochs multiplier (1 = each app's recipe).
    pub epoch_mul: usize,
    /// Max pruning iterations.
    pub max_iters: usize,
    /// Simulated-annealing steps.
    pub sa_steps: usize,
    /// Samples for sensitivity probes.
    pub sens_eval: usize,
    /// Samples for the per-iteration accuracy check.
    pub val_eval: usize,
    /// Device-simulation repetitions per latency point (different
    /// power-failure phases).
    pub latency_reps: usize,
    /// Samples for quantized-accuracy evaluation.
    pub quant_eval: usize,
}

/// CI-speed sanity scale.
pub const SMOKE: Scale = Scale {
    name: "smoke",
    train_n: 300,
    val_n: 120,
    epoch_mul: 1,
    max_iters: 2,
    sa_steps: 200,
    sens_eval: 24,
    val_eval: 60,
    latency_reps: 1,
    quant_eval: 40,
};

/// Default single-core scale: regenerates everything in minutes.
pub const STANDARD: Scale = Scale {
    name: "standard",
    train_n: 1500,
    val_n: 300,
    epoch_mul: 1,
    max_iters: 8,
    sa_steps: 800,
    sens_eval: 64,
    val_eval: 200,
    latency_reps: 3,
    quant_eval: 100,
};

/// Most faithful (slowest) scale.
pub const PAPER: Scale = Scale {
    name: "paper",
    train_n: 3000,
    val_n: 600,
    epoch_mul: 2,
    max_iters: 12,
    sa_steps: 1600,
    sens_eval: 128,
    val_eval: 400,
    latency_reps: 5,
    quant_eval: 200,
};

impl Scale {
    /// Reads `IPRUNE_SCALE` (`smoke` / `standard` / `paper`), defaulting to
    /// [`STANDARD`]. Unknown values fall back to the default with a note on
    /// stderr.
    pub fn from_env() -> Scale {
        match std::env::var("IPRUNE_SCALE").as_deref() {
            Ok("smoke") => SMOKE,
            Ok("paper") => PAPER,
            Ok("standard") | Err(_) => STANDARD,
            Ok(other) => {
                iprune_obs::log_warn!("scale", "unknown IPRUNE_SCALE `{other}`, using standard");
                STANDARD
            }
        }
    }

    /// Training-set size for an app (HAR's task is much smaller).
    pub fn train_for(&self, app: App) -> usize {
        match app {
            App::Har => self.train_n / 2,
            _ => self.train_n,
        }
    }

    /// One-line run description for harness headers: the scale name plus
    /// the host thread count, so recorded numbers always say how much
    /// parallelism produced them.
    pub fn describe_run(&self) -> String {
        format!("scale: {}, host threads: {}", self.name, iprune_tensor::par::num_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_standard() {
        // The test environment does not set IPRUNE_SCALE.
        if std::env::var("IPRUNE_SCALE").is_err() {
            assert_eq!(Scale::from_env(), STANDARD);
        }
    }

    #[test]
    fn har_uses_smaller_training_set() {
        assert!(STANDARD.train_for(App::Har) < STANDARD.train_for(App::Sqn));
    }
}
