//! The supply sweep shared by the device-facing harnesses.
//!
//! The paper evaluates three constant emulated levels (bench, strong solar,
//! weak solar). [`sweep_supplies`] extends that sweep with a repeating
//! [`PowerTrace`] so `fig5` and the fault campaigns also cover a supply
//! whose input power moves *during* an inference — clouds crossing the
//! panel — instead of only between runs.

use iprune_device::power::{PowerTrace, Supply};
use iprune_device::PowerStrength;

/// A labeled supply point in the bench sweep.
#[derive(Debug, Clone)]
pub struct SupplyPoint {
    /// Row label (the paper's names for the constant levels).
    pub label: String,
    /// The supply itself, ready for `DeviceSim::with_supply`.
    pub supply: Supply,
}

/// The deterministic solar trace used across benches: a 2-second day cycle
/// peaking at the paper's strong-solar 8 mW, with seeded cloud dips.
pub fn solar_trace() -> PowerTrace {
    PowerTrace::solar(8.0e-3, 2.0, 64, 3)
}

/// The three paper supply levels plus the repeating solar trace, in
/// presentation order. Every labeled point is deterministic, so harness
/// rows keyed by label are reproducible run to run.
pub fn sweep_supplies() -> Vec<SupplyPoint> {
    let mut points: Vec<SupplyPoint> = PowerStrength::all()
        .into_iter()
        .map(|s| SupplyPoint { label: s.label().to_string(), supply: Supply::from(s) })
        .collect();
    points.push(SupplyPoint {
        label: "solar trace".to_string(),
        supply: Supply::Trace(solar_trace()),
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_constants_and_trace() {
        let points = sweep_supplies();
        assert_eq!(points.len(), 4);
        assert!(points[0].supply.is_bench_supply());
        assert!(points[1..].iter().all(|p| !p.supply.is_bench_supply()));
        assert!(matches!(points[3].supply, Supply::Trace(_)));
    }

    #[test]
    fn solar_trace_is_deterministic_and_sub_bench() {
        let a = solar_trace();
        assert_eq!(a, solar_trace());
        assert!(a.mean_w() > 0.0 && a.mean_w() < 8.0e-3);
    }
}
