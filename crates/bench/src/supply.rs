//! The supply sweep shared by the device-facing harnesses.
//!
//! The definitions moved into `iprune_device::power` so the fleet
//! subsystem, `fig5`, and the fault campaigns share one source of truth;
//! this module re-exports them under the historical bench-crate paths.

pub use iprune_device::power::{solar_trace, sweep_supplies, SupplyPoint};
