//! The end-to-end experiment pipelines shared by Table III and Figure 5.
//!
//! For each app: train the model, run the iPrune and ePrune iterative
//! pruning pipelines, characterize all three variants (plus the deployed
//! quantized models), and checkpoint the weights for reuse.

use crate::cache;
use crate::scale::Scale;
use iprune::pipeline::{prune, PruneConfig, PruneReport};
use iprune::report::{characterize, Characteristics};
use iprune::sa::SaConfig;
use iprune_datasets::Dataset;
use iprune_hawaii::DeployedModel;
use iprune_models::train::train_sgd;
use iprune_models::zoo::App;
use iprune_models::Model;
use iprune_obs::log_info;

/// The three model variants of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The original trained model.
    Unpruned,
    /// Energy-aware pruning (comparison baseline).
    EPrune,
    /// Intermittent-aware pruning (the paper's framework).
    IPrune,
}

impl Variant {
    /// All variants in the paper's presentation order.
    pub fn all() -> [Variant; 3] {
        [Variant::Unpruned, Variant::EPrune, Variant::IPrune]
    }

    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Unpruned => "Unpruned",
            Variant::EPrune => "ePrune",
            Variant::IPrune => "iPrune",
        }
    }
}

/// One variant's outcome.
pub struct VariantResult {
    /// Which variant.
    pub variant: Variant,
    /// Table III characteristics.
    pub ch: Characteristics,
    /// The deployed (quantized, BSR-packed) model.
    pub deployed: DeployedModel,
    /// The pruning report (None for the unpruned baseline).
    pub report: Option<PruneReport>,
}

/// All three variants of one app.
pub struct AppResults {
    /// The app.
    pub app: App,
    /// Per-variant outcomes, in [`Variant::all`] order.
    pub variants: Vec<VariantResult>,
    /// Validation set used for accuracy columns.
    pub val: Dataset,
}

fn prune_config(app: App, variant: Variant, scale: &Scale) -> PruneConfig {
    let base = match variant {
        Variant::EPrune => PruneConfig::eprune(),
        _ => PruneConfig::iprune(),
    };
    PruneConfig {
        max_iterations: scale.max_iters,
        sens_eval: scale.sens_eval,
        val_eval: scale.val_eval,
        sa: SaConfig { steps: scale.sa_steps, ..Default::default() },
        finetune: app.finetune_recipe(),
        ..base
    }
}

/// Trains the base model (or loads it from the cache).
pub fn trained_model(app: App, scale: &Scale, log: bool) -> (Model, Dataset, Dataset) {
    let train = app.dataset(scale.train_for(app), 1000 + app_seed(app));
    let val = app.dataset(scale.val_n, 2000 + app_seed(app));
    let mut model = app.build();
    if cache::load(&mut model, app.name(), "base", scale.name) {
        if log {
            log_info!(app.name(), "loaded cached base model");
        }
        return (model, train, val);
    }
    let mut recipe = app.train_recipe();
    recipe.epochs *= scale.epoch_mul;
    if log {
        log_info!(
            app.name(),
            "training base model: {} samples x {} epochs",
            train.len(),
            recipe.epochs
        );
    }
    train_sgd(&mut model, &train, &recipe);
    let _ = cache::save(&mut model, app.name(), "base", scale.name);
    (model, train, val)
}

fn app_seed(app: App) -> u64 {
    match app {
        App::Sqn => 1,
        App::Har => 2,
        App::Cks => 3,
    }
}

/// Runs (or reloads) the full pipeline for one app: base training plus both
/// pruning frameworks, characterizing every variant.
pub fn run_app_pipelines(app: App, scale: &Scale, log: bool) -> AppResults {
    let (mut base, train, val) = trained_model(app, scale, log);
    let mut variants = Vec::new();

    for variant in Variant::all() {
        let mut model = app.build();
        let report = match variant {
            Variant::Unpruned => {
                model.load_weights(&base.extract_weights());
                None
            }
            _ => {
                let vname = variant.label();
                if cache::load(&mut model, app.name(), vname, scale.name) {
                    if log {
                        log_info!(app.name(), "loaded cached {} model", vname);
                    }
                    None
                } else {
                    model.load_weights(&base.extract_weights());
                    let cfg = prune_config(app, variant, scale);
                    if log {
                        log_info!(app.name(), "running {} pipeline…", vname);
                    }
                    let report = prune(&mut model, &train, &val, &cfg);
                    if log {
                        for it in &report.iterations {
                            log_info!(
                                app.name(),
                                "  iter {}: gamma {:.3} acc {:.3} density {:.3}{}",
                                it.iteration,
                                it.gamma,
                                it.accuracy,
                                it.density,
                                if it.struck { " (struck)" } else { "" }
                            );
                        }
                        log_info!(
                            app.name(),
                            "  adopted {:?} (baseline {:.3})",
                            report.adopted_iteration,
                            report.baseline_accuracy
                        );
                    }
                    let _ = cache::save(&mut model, app.name(), vname, scale.name);
                    Some(report)
                }
            }
        };
        let (ch, deployed) = characterize(&mut model, &val, variant.label());
        if log {
            log_info!(app.name(), "{}", ch.row());
        }
        variants.push(VariantResult { variant, ch, deployed, report });
    }

    AppResults { app, variants, val }
}

/// Runs the pipelines of every app, spreading the independent per-app
/// pipelines over [`iprune_tensor::par`] workers. Results come back in
/// [`App::all`] order and each app's pipeline is identical to a standalone
/// [`run_app_pipelines`] call (apps share nothing but the cache directory,
/// and each app writes distinct checkpoint files).
pub fn run_all_apps(scale: &Scale, log: bool) -> Vec<AppResults> {
    let apps = App::all();
    iprune_tensor::par::par_map(apps.len(), |i| run_app_pipelines(apps[i], scale, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::SMOKE;

    #[test]
    fn smoke_pipeline_runs_har_end_to_end() {
        let dir = std::env::temp_dir().join(format!("iprune_pipe_test_{}", std::process::id()));
        std::env::set_var("IPRUNE_CACHE_DIR", &dir);
        let results = run_app_pipelines(App::Har, &SMOKE, false);
        assert_eq!(results.variants.len(), 3);
        let unpruned = &results.variants[0];
        let ipr = &results.variants[2];
        assert!(ipr.ch.acc_outputs <= unpruned.ch.acc_outputs);
        assert!(ipr.ch.size_bytes <= unpruned.ch.size_bytes);
        // cache hit on second run
        let again = run_app_pipelines(App::Har, &SMOKE, false);
        assert_eq!(again.variants[2].ch.acc_outputs, ipr.ch.acc_outputs);
        let _ = std::fs::remove_dir_all(dir);
        std::env::remove_var("IPRUNE_CACHE_DIR");
    }
}
