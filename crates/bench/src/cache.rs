//! On-disk cache of trained/pruned model weights.
//!
//! `table3` performs the expensive train → iteratively-prune pipelines;
//! `fig5` (and re-runs) can reload the resulting weights instead of
//! repeating them. The format is a minimal little-endian binary checkpoint
//! (no extra dependencies), keyed by app, variant, and scale.

use iprune_models::{LayerWeights, Model};
use iprune_tensor::Tensor;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"IPRUNEW1";

/// The workspace root: the nearest ancestor of this crate's manifest
/// directory whose `Cargo.toml` declares `[workspace]`. Falls back to the
/// crate directory itself if no workspace manifest is found (e.g. the crate
/// was vendored standalone).
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    for dir in manifest.ancestors() {
        let cargo_toml = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&cargo_toml) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
    }
    manifest.to_path_buf()
}

/// Directory where checkpoints live.
pub fn cache_dir() -> PathBuf {
    match std::env::var("IPRUNE_CACHE_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => workspace_root().join("target").join("iprune_cache"),
    }
}

/// Path of one checkpoint.
pub fn checkpoint_path(app: &str, variant: &str, scale: &str) -> PathBuf {
    cache_dir().join(format!("{app}_{variant}_{scale}.ckpt"))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    w.write_all(&(t.dims().len() as u32).to_le_bytes())?;
    for &d in t.dims() {
        w.write_all(&(d as u32).to_le_bytes())?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let ndims = read_u32(r)? as usize;
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        dims.push(read_u32(r)? as usize);
    }
    let numel: usize = dims.iter().product();
    let mut data = Vec::with_capacity(numel);
    let mut b = [0u8; 4];
    for _ in 0..numel {
        r.read_exact(&mut b)?;
        data.push(f32::from_le_bytes(b));
    }
    Ok(Tensor::from_vec(&dims, data))
}

/// Saves a model's weights to the cache.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(model: &mut Model, app: &str, variant: &str, scale: &str) -> io::Result<()> {
    fs::create_dir_all(cache_dir())?;
    let path = checkpoint_path(app, variant, scale);
    let mut out: Vec<u8> = Vec::new();
    out.write_all(MAGIC)?;
    let weights = model.extract_weights();
    out.write_all(&(weights.len() as u32).to_le_bytes())?;
    for lw in &weights {
        out.write_all(&(lw.layer_id as u32).to_le_bytes())?;
        write_tensor(&mut out, &lw.w)?;
        write_tensor(&mut out, &lw.b)?;
    }
    fs::write(path, out)
}

/// Loads cached weights into a freshly-built model. Returns `false` (and
/// leaves the model untouched) when no valid checkpoint exists.
pub fn load(model: &mut Model, app: &str, variant: &str, scale: &str) -> bool {
    let path = checkpoint_path(app, variant, scale);
    let Ok(bytes) = fs::read(&path) else {
        return false;
    };
    let mut r = io::Cursor::new(bytes);
    let mut magic = [0u8; 8];
    if r.read_exact(&mut magic).is_err() || &magic != MAGIC {
        return false;
    }
    let Ok(n) = read_u32(&mut r) else {
        return false;
    };
    let mut weights = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let Ok(layer_id) = read_u32(&mut r) else {
            return false;
        };
        let (Ok(w), Ok(b)) = (read_tensor(&mut r), read_tensor(&mut r)) else {
            return false;
        };
        weights.push(LayerWeights { layer_id: layer_id as usize, w, b });
    }
    model.load_weights(&weights);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    #[test]
    fn workspace_root_is_a_real_workspace() {
        let root = workspace_root();
        let manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"), "{} is not a workspace root", root.display());
        // this crate must live somewhere beneath it
        assert!(Path::new(env!("CARGO_MANIFEST_DIR")).starts_with(&root));
    }

    #[test]
    fn cache_dir_defaults_under_workspace_target() {
        // The round-trip test may have IPRUNE_CACHE_DIR set concurrently, so
        // probe the env-free branch directly.
        let default = workspace_root().join("target").join("iprune_cache");
        assert!(default.ends_with("target/iprune_cache"));
        if std::env::var("IPRUNE_CACHE_DIR").is_err() {
            assert_eq!(cache_dir(), default);
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("iprune_cache_test_{}", std::process::id()));
        std::env::set_var("IPRUNE_CACHE_DIR", &dir);
        let mut m = App::Har.build();
        // mutate a weight so the roundtrip is meaningful
        use iprune_tensor::layer::Layer;
        m.visit_params(&mut |p| {
            if p.name == "conv0.w" {
                p.value.data_mut()[0] = 0.125;
                p.value.data_mut()[1] = 0.0;
            }
        });
        save(&mut m, "HAR", "test", "smoke").unwrap();
        let mut fresh = App::Har.build();
        assert!(load(&mut fresh, "HAR", "test", "smoke"));
        let a = m.extract_weights();
        let b = fresh.extract_weights();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.w.data(), y.w.data());
            assert_eq!(x.b.data(), y.b.data());
        }
        // zero weights stay pruned after load
        assert!(fresh.extract_weights()[0].w.data()[1] == 0.0);
        assert!(!load(&mut fresh, "HAR", "missing", "smoke"));
        let _ = std::fs::remove_dir_all(dir);
        std::env::remove_var("IPRUNE_CACHE_DIR");
    }
}
