//! Power supply and capacitor/EMU model.
//!
//! The BQ25504 EMU buffers harvested energy into a capacitor and gates the
//! device through a power switch: on when the capacitor reaches `V_on`,
//! off when it falls to `V_off` (Section IV-A). The usable budget per power
//! cycle is therefore `½·C·(V_on² − V_off²)` ≈ 104 µJ on the paper's board.

use crate::spec::DeviceSpec;

/// The three supply configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerStrength {
    /// 1.65 W bench supply: the device never browns out (but HAWAII⁺ still
    /// preserves progress — it assumes no knowledge of the supply).
    Continuous,
    /// 8 mW: emulates strong solar input; insufficient for continuous
    /// operation.
    Strong,
    /// 4 mW: emulates weak solar input.
    Weak,
}

impl PowerStrength {
    /// Input power in watts.
    pub fn watts(&self) -> f64 {
        match self {
            PowerStrength::Continuous => 1.65,
            PowerStrength::Strong => 8.0e-3,
            PowerStrength::Weak => 4.0e-3,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PowerStrength::Continuous => "continuous",
            PowerStrength::Strong => "strong (8 mW)",
            PowerStrength::Weak => "weak (4 mW)",
        }
    }

    /// All strengths in the paper's presentation order.
    pub fn all() -> [PowerStrength; 3] {
        [PowerStrength::Continuous, PowerStrength::Strong, PowerStrength::Weak]
    }
}

/// A time-varying harvested-power profile: piecewise-constant samples at a
/// fixed interval, repeating periodically. Used to emulate realistic
/// ambient sources (the paper emulates solar conditions with constant
/// levels; traces extend that to moving clouds and day cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    samples: Vec<f64>,
    dt_s: f64,
}

impl PowerTrace {
    /// Creates a trace from samples (watts) spaced `dt_s` seconds apart.
    /// The trace repeats after `samples.len() * dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `dt_s` is not positive, or any sample
    /// is negative.
    pub fn new(samples: Vec<f64>, dt_s: f64) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one sample");
        assert!(dt_s > 0.0, "sample interval must be positive");
        assert!(samples.iter().all(|&w| w >= 0.0), "power cannot be negative");
        Self { samples, dt_s }
    }

    /// A synthetic "solar" profile: a clipped sinusoid of period
    /// `period_s` peaking at `peak_w`, with deterministic pseudo-random
    /// cloud dips derived from `seed`.
    pub fn solar(peak_w: f64, period_s: f64, samples: usize, seed: u64) -> Self {
        let dt = period_s / samples as f64;
        let data: Vec<f64> = (0..samples)
            .map(|i| {
                let phase = i as f64 / samples as f64 * std::f64::consts::TAU;
                let sun = (phase.sin()).max(0.0) * peak_w;
                // hash the sample index into an occasional cloud factor
                let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 31;
                let cloud = if h.is_multiple_of(5) { 0.3 } else { 1.0 };
                sun * cloud
            })
            .collect();
        Self::new(data, dt)
    }

    /// SplitMix64-style finalizer: hashes `(seed, i)` with full avalanche so
    /// nearby seeds produce uncorrelated streams.
    fn mix(seed: u64, i: u64) -> u64 {
        let mut h = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }

    /// A synthetic RF-harvesting profile: a low idle trickle punctuated by
    /// deterministic pseudo-random transmitter bursts at `peak_w`. Bursts
    /// occupy whole windows of `burst_len` samples; whether a window bursts
    /// is hashed from `seed`, so the trace is a pure function of its
    /// arguments.
    pub fn rf_bursts(
        peak_w: f64,
        idle_w: f64,
        period_s: f64,
        samples: usize,
        burst_len: usize,
        seed: u64,
    ) -> Self {
        assert!(burst_len > 0, "burst windows need at least one sample");
        assert!(peak_w >= idle_w, "burst power must dominate the idle trickle");
        let dt = period_s / samples as f64;
        let data: Vec<f64> = (0..samples)
            .map(|i| {
                let window = (i / burst_len) as u64;
                // roughly one window in four carries a transmission burst
                if Self::mix(seed, window).is_multiple_of(4) {
                    peak_w
                } else {
                    idle_w
                }
            })
            .collect();
        Self::new(data, dt)
    }

    /// A synthetic thermal-gradient profile: a TEG output drifting slowly
    /// around `base_w` with amplitude `swing_w` over `period_s`, plus small
    /// seeded sample-level jitter (airflow noise). Clamped at zero.
    pub fn thermal_drift(
        base_w: f64,
        swing_w: f64,
        period_s: f64,
        samples: usize,
        seed: u64,
    ) -> Self {
        let dt = period_s / samples as f64;
        let data: Vec<f64> = (0..samples)
            .map(|i| {
                let phase = i as f64 / samples as f64 * std::f64::consts::TAU;
                let drift = base_w + swing_w * phase.sin();
                // jitter in [-10%, +10%] of the swing amplitude
                let frac = (Self::mix(seed, i as u64) >> 11) as f64 / (1u64 << 53) as f64;
                let jitter = (frac - 0.5) * 0.2 * swing_w;
                (drift + jitter).max(0.0)
            })
            .collect();
        Self::new(data, dt)
    }

    /// Power at absolute time `t` (periodic).
    pub fn power_at(&self, t: f64) -> f64 {
        let period = self.samples.len() as f64 * self.dt_s;
        let tt = t.rem_euclid(period);
        let idx = ((tt / self.dt_s) as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Mean power over one period.
    pub fn mean_w(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample interval in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }
}

/// The power source driving the EMU: a constant bench-supply level or a
/// repeating harvested trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Supply {
    /// Constant input power (the paper's emulated levels).
    Constant(f64),
    /// Time-varying harvested power.
    Trace(PowerTrace),
}

impl Supply {
    /// Input power at time `t`.
    pub fn power_at(&self, t: f64) -> f64 {
        match self {
            Supply::Constant(w) => *w,
            Supply::Trace(tr) => tr.power_at(t),
        }
    }

    /// Whether this supply can ever brown the device out (used for
    /// fast-path checks; traces are always treated as intermittent).
    pub fn is_bench_supply(&self) -> bool {
        matches!(self, Supply::Constant(w) if *w >= 1.0)
    }
}

impl From<PowerStrength> for Supply {
    fn from(s: PowerStrength) -> Self {
        Supply::Constant(s.watts())
    }
}

/// Capacitor state between `V_off` (empty, device cuts out) and `V_on`
/// (full). Tracks the usable energy above the cut-out voltage.
#[derive(Debug, Clone)]
pub struct Capacitor {
    span_j: f64,
    energy_j: f64,
}

impl Capacitor {
    /// A fully-charged capacitor for the given device spec.
    pub fn full(spec: &DeviceSpec) -> Self {
        let span = spec.energy_span_j();
        Self { span_j: span, energy_j: span }
    }

    /// Usable energy remaining (joules above the cut-out threshold).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total usable span (joules between `V_off` and `V_on`).
    pub fn span_j(&self) -> f64 {
        self.span_j
    }

    /// Applies a net energy delta (positive = charging), clamped to
    /// `[0, span]`. Returns `true` if the capacitor hit empty (power fails).
    pub fn apply(&mut self, delta_j: f64) -> bool {
        self.energy_j = (self.energy_j + delta_j).min(self.span_j);
        if self.energy_j <= 0.0 {
            self.energy_j = 0.0;
            true
        } else {
            false
        }
    }

    /// Recharges to full and returns the off-time needed at input power
    /// `p_in_w` (seconds).
    pub fn recharge(&mut self, p_in_w: f64) -> f64 {
        let deficit = self.span_j - self.energy_j;
        self.energy_j = self.span_j;
        deficit / p_in_w
    }

    /// Energy missing to full (joules).
    pub fn deficit_j(&self) -> f64 {
        self.span_j - self.energy_j
    }

    /// Marks the capacitor full (used with externally-integrated recharge).
    pub fn refill(&mut self) {
        self.energy_j = self.span_j;
    }
}

/// A labeled supply point in the shared bench/campaign sweep.
#[derive(Debug, Clone)]
pub struct SupplyPoint {
    /// Row label (the paper's names for the constant levels).
    pub label: String,
    /// The supply itself, ready for `DeviceSim::with_supply`.
    pub supply: Supply,
}

/// The deterministic solar trace used across benches and campaigns: a
/// 2-second day cycle peaking at the paper's strong-solar 8 mW, with seeded
/// cloud dips.
pub fn solar_trace() -> PowerTrace {
    PowerTrace::solar(8.0e-3, 2.0, 64, 3)
}

/// The three paper supply levels plus the repeating solar trace, in
/// presentation order. Every labeled point is deterministic, so harness
/// rows keyed by label are reproducible run to run. Shared by `fig5`, the
/// fault campaigns, and the fleet subsystem as the single source of truth
/// for the supply axis.
pub fn sweep_supplies() -> Vec<SupplyPoint> {
    let mut points: Vec<SupplyPoint> = PowerStrength::all()
        .into_iter()
        .map(|s| SupplyPoint { label: s.label().to_string(), supply: Supply::from(s) })
        .collect();
    points.push(SupplyPoint {
        label: "solar trace".to_string(),
        supply: Supply::Trace(solar_trace()),
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strengths_match_table1() {
        assert_eq!(PowerStrength::Continuous.watts(), 1.65);
        assert_eq!(PowerStrength::Strong.watts(), 8.0e-3);
        assert_eq!(PowerStrength::Weak.watts(), 4.0e-3);
    }

    #[test]
    fn trace_is_periodic_and_nonnegative() {
        let tr = PowerTrace::new(vec![1.0, 2.0, 3.0], 0.5);
        assert_eq!(tr.power_at(0.0), 1.0);
        assert_eq!(tr.power_at(0.6), 2.0);
        assert_eq!(tr.power_at(1.4), 3.0);
        // periodic wrap
        assert_eq!(tr.power_at(1.5), 1.0);
        assert_eq!(tr.power_at(3.1), 1.0); // 2 periods + 0.1 s → sample 0
        assert_eq!(tr.power_at(3.6), 2.0);
        assert!((tr.mean_w() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solar_trace_has_dark_and_bright_phases() {
        let tr = PowerTrace::solar(10.0e-3, 60.0, 120, 7);
        let bright = tr.power_at(15.0); // quarter period: sin peak
        let dark = tr.power_at(45.0); // three quarters: clipped to 0
        assert!(bright > 5.0e-3, "bright {bright}");
        assert_eq!(dark, 0.0);
        assert!(tr.mean_w() > 0.0 && tr.mean_w() < 10.0e-3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = PowerTrace::new(vec![], 1.0);
    }

    #[test]
    fn supply_conversions() {
        let s = Supply::from(PowerStrength::Strong);
        assert_eq!(s.power_at(123.0), 8.0e-3);
        assert!(!s.is_bench_supply());
        assert!(Supply::from(PowerStrength::Continuous).is_bench_supply());
    }

    #[test]
    fn capacitor_drains_and_fails() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        let span = cap.span_j();
        assert!(!cap.apply(-span * 0.5));
        assert!(cap.apply(-span * 0.6), "should fail past empty");
        assert_eq!(cap.energy_j(), 0.0);
    }

    #[test]
    fn charging_clamps_at_full() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        assert!(!cap.apply(1.0)); // massive charge
        assert_eq!(cap.energy_j(), cap.span_j());
    }

    #[test]
    fn sweep_covers_constants_and_trace() {
        let points = sweep_supplies();
        assert_eq!(points.len(), 4);
        assert!(points[0].supply.is_bench_supply());
        assert!(points[1..].iter().all(|p| !p.supply.is_bench_supply()));
        assert!(matches!(points[3].supply, Supply::Trace(_)));
    }

    #[test]
    fn solar_trace_is_deterministic_and_sub_bench() {
        let a = solar_trace();
        assert_eq!(a, solar_trace());
        assert!(a.mean_w() > 0.0 && a.mean_w() < 8.0e-3);
    }

    #[test]
    fn rf_bursts_alternate_between_idle_and_peak() {
        let tr = PowerTrace::rf_bursts(20.0e-3, 0.5e-3, 4.0, 128, 8, 11);
        let mut saw_idle = false;
        let mut saw_peak = false;
        for i in 0..128 {
            let w = tr.power_at(i as f64 * tr.dt_s());
            assert!(w == 0.5e-3 || w == 20.0e-3, "sample {i} is {w}");
            saw_idle |= w == 0.5e-3;
            saw_peak |= w == 20.0e-3;
        }
        assert!(saw_idle && saw_peak);
    }

    #[test]
    fn thermal_drift_stays_near_base_level() {
        let tr = PowerTrace::thermal_drift(5.0e-3, 2.0e-3, 60.0, 240, 4);
        assert!(tr.mean_w() > 3.0e-3 && tr.mean_w() < 7.0e-3, "mean {}", tr.mean_w());
        for i in 0..240 {
            let w = tr.power_at(i as f64 * tr.dt_s());
            assert!((0.0..=5.0e-3 + 2.0e-3 * 1.1).contains(&w), "sample {i} is {w}");
        }
    }

    #[test]
    fn seeded_traces_vary_across_seeds() {
        let rf_distinct = (0..8)
            .map(|s| PowerTrace::rf_bursts(10.0e-3, 1.0e-3, 2.0, 64, 4, s))
            .collect::<Vec<_>>();
        assert!(rf_distinct.iter().any(|t| *t != rf_distinct[0]));
        let th_distinct = (0..8)
            .map(|s| PowerTrace::thermal_drift(5.0e-3, 1.0e-3, 2.0, 64, s))
            .collect::<Vec<_>>();
        assert!(th_distinct.iter().any(|t| *t != th_distinct[0]));
    }

    proptest! {
        // Every harvest-trace constructor is a pure function of its
        // arguments: rebuilding with the same seed reproduces the trace
        // bit for bit, sample by sample.
        #[test]
        fn solar_is_deterministic_per_seed(seed in 0u64..1_000_000, n in 8usize..96) {
            let a = PowerTrace::solar(8.0e-3, 2.0, n, seed);
            let b = PowerTrace::solar(8.0e-3, 2.0, n, seed);
            prop_assert_eq!(&a, &b);
            for i in 0..n {
                let t = i as f64 * a.dt_s();
                prop_assert_eq!(a.power_at(t).to_bits(), b.power_at(t).to_bits());
            }
        }

        #[test]
        fn rf_bursts_are_deterministic_per_seed(seed in 0u64..1_000_000, n in 8usize..96) {
            let a = PowerTrace::rf_bursts(15.0e-3, 1.0e-3, 2.0, n, 4, seed);
            let b = PowerTrace::rf_bursts(15.0e-3, 1.0e-3, 2.0, n, 4, seed);
            prop_assert_eq!(&a, &b);
            for i in 0..n {
                let t = i as f64 * a.dt_s();
                prop_assert_eq!(a.power_at(t).to_bits(), b.power_at(t).to_bits());
            }
        }

        #[test]
        fn thermal_drift_is_deterministic_per_seed(seed in 0u64..1_000_000, n in 8usize..96) {
            let a = PowerTrace::thermal_drift(5.0e-3, 2.0e-3, 30.0, n, seed);
            let b = PowerTrace::thermal_drift(5.0e-3, 2.0e-3, 30.0, n, seed);
            prop_assert_eq!(&a, &b);
            for i in 0..n {
                let t = i as f64 * a.dt_s();
                prop_assert_eq!(a.power_at(t).to_bits(), b.power_at(t).to_bits());
            }
        }

        // Traces never emit negative power, and bursts never exceed the peak.
        #[test]
        fn traces_stay_within_physical_bounds(seed in 0u64..1_000_000) {
            for tr in [
                PowerTrace::solar(8.0e-3, 2.0, 64, seed),
                PowerTrace::rf_bursts(15.0e-3, 1.0e-3, 2.0, 64, 4, seed),
                PowerTrace::thermal_drift(5.0e-3, 2.0e-3, 30.0, 64, seed),
            ] {
                for i in 0..64 {
                    let w = tr.power_at(i as f64 * tr.dt_s());
                    prop_assert!((0.0..=20.0e-3).contains(&w), "seed {} sample {} = {}", seed, i, w);
                }
            }
        }
    }

    #[test]
    fn recharge_time_scales_inversely_with_power() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        cap.apply(-cap.span_j() * 0.999999);
        let mut cap2 = cap.clone();
        let t_strong = cap.recharge(PowerStrength::Strong.watts());
        let t_weak = cap2.recharge(PowerStrength::Weak.watts());
        assert!((t_weak / t_strong - 2.0).abs() < 1e-6);
        // ~13 ms at 8 mW for the full 104 uJ span
        assert!((t_strong - 13.0e-3).abs() < 1.0e-3, "got {t_strong}");
    }
}
