//! Power supply and capacitor/EMU model.
//!
//! The BQ25504 EMU buffers harvested energy into a capacitor and gates the
//! device through a power switch: on when the capacitor reaches `V_on`,
//! off when it falls to `V_off` (Section IV-A). The usable budget per power
//! cycle is therefore `½·C·(V_on² − V_off²)` ≈ 104 µJ on the paper's board.

use crate::spec::DeviceSpec;

/// The three supply configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerStrength {
    /// 1.65 W bench supply: the device never browns out (but HAWAII⁺ still
    /// preserves progress — it assumes no knowledge of the supply).
    Continuous,
    /// 8 mW: emulates strong solar input; insufficient for continuous
    /// operation.
    Strong,
    /// 4 mW: emulates weak solar input.
    Weak,
}

impl PowerStrength {
    /// Input power in watts.
    pub fn watts(&self) -> f64 {
        match self {
            PowerStrength::Continuous => 1.65,
            PowerStrength::Strong => 8.0e-3,
            PowerStrength::Weak => 4.0e-3,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PowerStrength::Continuous => "continuous",
            PowerStrength::Strong => "strong (8 mW)",
            PowerStrength::Weak => "weak (4 mW)",
        }
    }

    /// All strengths in the paper's presentation order.
    pub fn all() -> [PowerStrength; 3] {
        [PowerStrength::Continuous, PowerStrength::Strong, PowerStrength::Weak]
    }
}

/// A time-varying harvested-power profile: piecewise-constant samples at a
/// fixed interval, repeating periodically. Used to emulate realistic
/// ambient sources (the paper emulates solar conditions with constant
/// levels; traces extend that to moving clouds and day cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    samples: Vec<f64>,
    dt_s: f64,
}

impl PowerTrace {
    /// Creates a trace from samples (watts) spaced `dt_s` seconds apart.
    /// The trace repeats after `samples.len() * dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `dt_s` is not positive, or any sample
    /// is negative.
    pub fn new(samples: Vec<f64>, dt_s: f64) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one sample");
        assert!(dt_s > 0.0, "sample interval must be positive");
        assert!(samples.iter().all(|&w| w >= 0.0), "power cannot be negative");
        Self { samples, dt_s }
    }

    /// A synthetic "solar" profile: a clipped sinusoid of period
    /// `period_s` peaking at `peak_w`, with deterministic pseudo-random
    /// cloud dips derived from `seed`.
    pub fn solar(peak_w: f64, period_s: f64, samples: usize, seed: u64) -> Self {
        let dt = period_s / samples as f64;
        let data: Vec<f64> = (0..samples)
            .map(|i| {
                let phase = i as f64 / samples as f64 * std::f64::consts::TAU;
                let sun = (phase.sin()).max(0.0) * peak_w;
                // hash the sample index into an occasional cloud factor
                let mut h = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 31;
                let cloud = if h.is_multiple_of(5) { 0.3 } else { 1.0 };
                sun * cloud
            })
            .collect();
        Self::new(data, dt)
    }

    /// Power at absolute time `t` (periodic).
    pub fn power_at(&self, t: f64) -> f64 {
        let period = self.samples.len() as f64 * self.dt_s;
        let tt = t.rem_euclid(period);
        let idx = ((tt / self.dt_s) as usize).min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Mean power over one period.
    pub fn mean_w(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample interval in seconds.
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }
}

/// The power source driving the EMU: a constant bench-supply level or a
/// repeating harvested trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Supply {
    /// Constant input power (the paper's emulated levels).
    Constant(f64),
    /// Time-varying harvested power.
    Trace(PowerTrace),
}

impl Supply {
    /// Input power at time `t`.
    pub fn power_at(&self, t: f64) -> f64 {
        match self {
            Supply::Constant(w) => *w,
            Supply::Trace(tr) => tr.power_at(t),
        }
    }

    /// Whether this supply can ever brown the device out (used for
    /// fast-path checks; traces are always treated as intermittent).
    pub fn is_bench_supply(&self) -> bool {
        matches!(self, Supply::Constant(w) if *w >= 1.0)
    }
}

impl From<PowerStrength> for Supply {
    fn from(s: PowerStrength) -> Self {
        Supply::Constant(s.watts())
    }
}

/// Capacitor state between `V_off` (empty, device cuts out) and `V_on`
/// (full). Tracks the usable energy above the cut-out voltage.
#[derive(Debug, Clone)]
pub struct Capacitor {
    span_j: f64,
    energy_j: f64,
}

impl Capacitor {
    /// A fully-charged capacitor for the given device spec.
    pub fn full(spec: &DeviceSpec) -> Self {
        let span = spec.energy_span_j();
        Self { span_j: span, energy_j: span }
    }

    /// Usable energy remaining (joules above the cut-out threshold).
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Total usable span (joules between `V_off` and `V_on`).
    pub fn span_j(&self) -> f64 {
        self.span_j
    }

    /// Applies a net energy delta (positive = charging), clamped to
    /// `[0, span]`. Returns `true` if the capacitor hit empty (power fails).
    pub fn apply(&mut self, delta_j: f64) -> bool {
        self.energy_j = (self.energy_j + delta_j).min(self.span_j);
        if self.energy_j <= 0.0 {
            self.energy_j = 0.0;
            true
        } else {
            false
        }
    }

    /// Recharges to full and returns the off-time needed at input power
    /// `p_in_w` (seconds).
    pub fn recharge(&mut self, p_in_w: f64) -> f64 {
        let deficit = self.span_j - self.energy_j;
        self.energy_j = self.span_j;
        deficit / p_in_w
    }

    /// Energy missing to full (joules).
    pub fn deficit_j(&self) -> f64 {
        self.span_j - self.energy_j
    }

    /// Marks the capacitor full (used with externally-integrated recharge).
    pub fn refill(&mut self) {
        self.energy_j = self.span_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strengths_match_table1() {
        assert_eq!(PowerStrength::Continuous.watts(), 1.65);
        assert_eq!(PowerStrength::Strong.watts(), 8.0e-3);
        assert_eq!(PowerStrength::Weak.watts(), 4.0e-3);
    }

    #[test]
    fn trace_is_periodic_and_nonnegative() {
        let tr = PowerTrace::new(vec![1.0, 2.0, 3.0], 0.5);
        assert_eq!(tr.power_at(0.0), 1.0);
        assert_eq!(tr.power_at(0.6), 2.0);
        assert_eq!(tr.power_at(1.4), 3.0);
        // periodic wrap
        assert_eq!(tr.power_at(1.5), 1.0);
        assert_eq!(tr.power_at(3.1), 1.0); // 2 periods + 0.1 s → sample 0
        assert_eq!(tr.power_at(3.6), 2.0);
        assert!((tr.mean_w() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solar_trace_has_dark_and_bright_phases() {
        let tr = PowerTrace::solar(10.0e-3, 60.0, 120, 7);
        let bright = tr.power_at(15.0); // quarter period: sin peak
        let dark = tr.power_at(45.0); // three quarters: clipped to 0
        assert!(bright > 5.0e-3, "bright {bright}");
        assert_eq!(dark, 0.0);
        assert!(tr.mean_w() > 0.0 && tr.mean_w() < 10.0e-3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_trace_panics() {
        let _ = PowerTrace::new(vec![], 1.0);
    }

    #[test]
    fn supply_conversions() {
        let s = Supply::from(PowerStrength::Strong);
        assert_eq!(s.power_at(123.0), 8.0e-3);
        assert!(!s.is_bench_supply());
        assert!(Supply::from(PowerStrength::Continuous).is_bench_supply());
    }

    #[test]
    fn capacitor_drains_and_fails() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        let span = cap.span_j();
        assert!(!cap.apply(-span * 0.5));
        assert!(cap.apply(-span * 0.6), "should fail past empty");
        assert_eq!(cap.energy_j(), 0.0);
    }

    #[test]
    fn charging_clamps_at_full() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        assert!(!cap.apply(1.0)); // massive charge
        assert_eq!(cap.energy_j(), cap.span_j());
    }

    #[test]
    fn recharge_time_scales_inversely_with_power() {
        let spec = DeviceSpec::msp430fr5994();
        let mut cap = Capacitor::full(&spec);
        cap.apply(-cap.span_j() * 0.999999);
        let mut cap2 = cap.clone();
        let t_strong = cap.recharge(PowerStrength::Strong.watts());
        let t_weak = cap2.recharge(PowerStrength::Weak.watts());
        assert!((t_weak / t_strong - 2.0).abs() < 1e-6);
        // ~13 ms at 8 mW for the full 104 uJ span
        assert!((t_strong - 13.0e-3).abs() < 1.0e-3, "got {t_strong}");
    }
}
