//! Latency model for device activities.
//!
//! One DMA transfer command moves contiguous bytes between VM and the
//! external SPI FRAM; its latency is DMA invocation + NVM invocation +
//! per-byte transfer (Section II-A). LEA operations pay an invocation cost
//! plus per-MAC throughput. Defaults assume a 16 MHz core and an 8 MHz SPI
//! link to the CY15B104Q FRAM.

/// Per-activity latency parameters (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// DMA controller invocation overhead per transfer command.
    pub dma_invoke_s: f64,
    /// NVM (SPI command/address phase) invocation overhead per transfer.
    pub nvm_invoke_s: f64,
    /// NVM read latency per byte.
    pub nvm_read_byte_s: f64,
    /// NVM write latency per byte.
    pub nvm_write_byte_s: f64,
    /// LEA invocation overhead per accelerator operation.
    pub lea_invoke_s: f64,
    /// LEA multiply-accumulate throughput, seconds per MAC.
    pub lea_mac_s: f64,
    /// CPU cycle time.
    pub cpu_cycle_s: f64,
    /// Reboot time after a power failure (before progress recovery).
    pub reboot_s: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        let cycle = 1.0 / 16.0e6;
        Self {
            dma_invoke_s: 30.0 * cycle, // ~1.9 us DMA setup
            nvm_invoke_s: 4.0e-6,       // SPI opcode + 3 address bytes @ 8 MHz
            nvm_read_byte_s: 1.0e-6,    // 8 bits @ 8 MHz SPI
            nvm_write_byte_s: 1.0e-6,   // FRAM writes at bus speed (no erase)
            lea_invoke_s: 50.0 * cycle, // command setup + result latch
            lea_mac_s: cycle,           // ~1 MAC/cycle vector throughput
            cpu_cycle_s: cycle,
            reboot_s: 1.0e-3, // boot + peripheral re-init
        }
    }
}

impl TimingModel {
    /// Latency of one DMA read transfer of `bytes` from NVM.
    pub fn nvm_read_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.dma_invoke_s + self.nvm_invoke_s + bytes as f64 * self.nvm_read_byte_s
    }

    /// Latency of one DMA write transfer of `bytes` to NVM.
    pub fn nvm_write_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.dma_invoke_s + self.nvm_invoke_s + bytes as f64 * self.nvm_write_byte_s
    }

    /// Latency of one accelerator operation performing `macs` MACs.
    pub fn lea_s(&self, macs: usize) -> f64 {
        if macs == 0 {
            return 0.0;
        }
        self.lea_invoke_s + macs as f64 * self.lea_mac_s
    }

    /// Latency of `cycles` CPU cycles.
    pub fn cpu_s(&self, cycles: usize) -> f64 {
        cycles as f64 * self.cpu_cycle_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sized_activities_are_free() {
        let t = TimingModel::default();
        assert_eq!(t.nvm_read_s(0), 0.0);
        assert_eq!(t.nvm_write_s(0), 0.0);
        assert_eq!(t.lea_s(0), 0.0);
    }

    #[test]
    fn transfer_latency_scales_with_bytes() {
        let t = TimingModel::default();
        let one = t.nvm_write_s(1);
        let thousand = t.nvm_write_s(1000);
        assert!(thousand > one);
        // invocation overheads amortize: per-byte marginal cost is constant
        let marginal = (thousand - one) / 999.0;
        assert!((marginal - t.nvm_write_byte_s).abs() < 1e-12);
    }

    #[test]
    fn small_transfers_are_overhead_dominated() {
        let t = TimingModel::default();
        // a 2-byte footprint write is mostly invocation cost
        let w = t.nvm_write_s(2);
        assert!(w > 2.0 * (t.dma_invoke_s + t.nvm_invoke_s) * 0.5);
        assert!(t.dma_invoke_s + t.nvm_invoke_s > 2.0 * t.nvm_write_byte_s);
    }

    #[test]
    fn lea_throughput_one_mac_per_cycle() {
        let t = TimingModel::default();
        let d = t.lea_s(16_000_000) - t.lea_invoke_s;
        assert!((d - 1.0).abs() < 1e-9, "16M MACs should take ~1 s");
    }
}
