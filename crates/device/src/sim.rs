//! The activity-driven device co-simulation.
//!
//! An inference engine submits activities; the simulator advances a
//! two-resource pipelined timeline — the LEA computes job *j+1* while the
//! DMA writes job *j*'s outputs and footprint back to NVM (the overlap shown
//! in the paper's Figure 2(b)) — and integrates the capacitor's energy
//! balance over every committed interval. When the capacitor reaches the
//! cut-out threshold mid-activity, the simulator reports a power failure:
//! volatile state is lost, the capacitor recharges at the harvesting input
//! power, the device reboots, and the caller must perform progress recovery
//! before retrying the interrupted activity.

use crate::energy::EnergyModel;
use crate::inject::{FailureDetail, FaultDecision, FaultHook, JobOutcome, JobView};
use crate::power::{Capacitor, PowerStrength, Supply};
use crate::spec::DeviceSpec;
use crate::timing::TimingModel;
use crate::trace::SimStats;
use iprune_obs::{SharedSink, TraceEvent};
use std::error::Error;
use std::fmt;

/// Cost of one accelerator job: the unit of progress in HAWAII-style
/// intermittent inference. The job computes on the LEA and its outputs plus
/// a footprint are immediately written back to NVM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCost {
    /// MACs performed by the accelerator operation.
    pub lea_macs: usize,
    /// Bytes of progress preservation (accelerator outputs + footprint).
    pub preserve_bytes: usize,
    /// CPU cycles of orchestration around the job.
    pub cpu_cycles: usize,
}

/// Outcome of one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Commit {
    /// The job's outputs and footprint reached NVM.
    Committed,
    /// Power failed before the footprint write completed; the job's effects
    /// are lost. Call [`DeviceSim::recover`] and re-issue the job.
    PowerFailed,
}

/// Simulation error.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An activity needs more energy per attempt than one full capacitor
    /// charge provides — it would re-execute forever (the nontermination
    /// hazard of Section II-B).
    Nontermination {
        /// Description of the offending activity.
        activity: String,
        /// Energy the attempt needs (J).
        needed_j: f64,
        /// Usable energy per power cycle (J).
        budget_j: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Nontermination { activity, needed_j, budget_j } => write!(
                f,
                "activity `{activity}` needs {needed_j:.2e} J per attempt but one power cycle provides only {budget_j:.2e} J"
            ),
        }
    }
}

impl Error for SimError {}

/// The device simulator. See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct DeviceSim {
    spec: DeviceSpec,
    timing: TimingModel,
    energy: EnergyModel,
    supply: Supply,
    cap: Capacitor,
    /// Commit frontier: wall-clock time up to which all effects are durable.
    now: f64,
    /// Time at which the LEA becomes free.
    lea_free: f64,
    /// Time at which the DMA/NVM channel becomes free.
    dma_free: f64,
    stats: SimStats,
    /// Adversarial fault injector consulted on every job attempt.
    hook: Option<Box<dyn FaultHook>>,
    /// Detail of the most recent power failure (natural or injected).
    last_failure: Option<FailureDetail>,
    /// Longest single off-time (recharge wait) suffered so far (s). The
    /// fleet's stall-accounting hook: `SimStats::charging_s` sums all
    /// stalls, this keeps the worst one, so telemetry can tell "many short
    /// brown-outs" apart from "one multi-second blackout".
    max_stall_s: f64,
    /// Structured trace sink; `None` means tracing is off and emission
    /// points cost a single branch.
    sink: Option<SharedSink>,
}

/// Snapshot of a simulator's dynamic state at a commit point: capacitor
/// charge, timeline frontiers, statistics, fault-hook state, the last
/// failure detail, and the worst stall seen so far.
///
/// The immutable models (spec/timing/energy) and the supply are *not*
/// captured — a checkpoint must be restored into (or forked from) a
/// simulator built with the same configuration. The trace sink is not
/// captured either: forks install their own sinks, so checkpointing a
/// traced simulator never aliases its event stream.
///
/// Every future decision the simulator makes (natural failure points,
/// pipelining, energy balance) depends only on the fields captured here
/// plus the shared models, so a simulator forked at job *k* and run to
/// completion is bit-identical to one that reached *k* from scratch —
/// the equivalence the fault-campaign fast path relies on.
#[derive(Debug, Clone)]
pub struct SimCheckpoint {
    cap: Capacitor,
    now: f64,
    lea_free: f64,
    dma_free: f64,
    stats: SimStats,
    hook: Option<Box<dyn FaultHook>>,
    last_failure: Option<FailureDetail>,
    max_stall_s: f64,
}

/// Accounting class of a blocking DMA transfer: where its committed busy
/// time lands in [`SimStats`] and which trace event it emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TransferClass {
    /// Tile inputs, weights — `nvm_read_s`.
    Read,
    /// Non-preservation output writes — `nvm_write_s`.
    Write,
    /// Progress-recovery re-fetch — `recovery_s`.
    Recovery,
}

impl DeviceSim {
    /// Creates a simulator with default spec/timing/energy models.
    ///
    /// `seed` perturbs the initial capacitor charge (50–100 % of full) so
    /// that repeated runs don't all fail at identical phase; pass `0` for a
    /// fully-charged start.
    pub fn new(strength: PowerStrength, seed: u64) -> Self {
        Self::with_models(
            DeviceSpec::default(),
            TimingModel::default(),
            EnergyModel::default(),
            strength,
            seed,
        )
    }

    /// Creates a simulator driven by an arbitrary [`Supply`] (e.g. a solar
    /// trace) with default spec/timing/energy models.
    pub fn with_supply(supply: Supply, seed: u64) -> Self {
        let mut sim = Self::with_models(
            DeviceSpec::default(),
            TimingModel::default(),
            EnergyModel::default(),
            PowerStrength::Continuous,
            seed,
        );
        sim.supply = supply;
        sim
    }

    /// Creates a simulator with explicit models driven by an arbitrary
    /// [`Supply`] — the fleet constructor: per-device spec, timing, and
    /// harvest trace in one call.
    pub fn with_models_and_supply(
        spec: DeviceSpec,
        timing: TimingModel,
        energy: EnergyModel,
        supply: Supply,
        seed: u64,
    ) -> Self {
        let mut sim = Self::with_models(spec, timing, energy, PowerStrength::Continuous, seed);
        sim.supply = supply;
        sim
    }

    /// Creates a simulator with explicit models.
    pub fn with_models(
        spec: DeviceSpec,
        timing: TimingModel,
        energy: EnergyModel,
        strength: PowerStrength,
        seed: u64,
    ) -> Self {
        let mut cap = Capacitor::full(&spec);
        if seed != 0 {
            // xorshift-style hash to a fraction in [0, 0.5)
            let mut h = seed;
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            let frac = (h % 1000) as f64 / 2000.0;
            cap.apply(-cap.span_j() * frac);
        }
        Self {
            spec,
            timing,
            energy,
            supply: Supply::from(strength),
            cap,
            now: 0.0,
            lea_free: 0.0,
            dma_free: 0.0,
            stats: SimStats::default(),
            hook: None,
            last_failure: None,
            max_stall_s: 0.0,
            sink: None,
        }
    }

    /// Elapsed wall-clock time at the commit frontier (seconds).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The device specification in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The configured power supply.
    pub fn supply(&self) -> &Supply {
        &self.supply
    }

    /// Installs an adversarial fault injector. Every subsequent job attempt
    /// is offered to the hook, which may force a power failure at an
    /// arbitrary fraction of the attempt's window (see [`crate::inject`]).
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.hook = Some(hook);
    }

    /// Removes and returns the installed fault hook, if any.
    pub fn clear_fault_hook(&mut self) -> Option<Box<dyn FaultHook>> {
        self.hook.take()
    }

    /// Detail of the most recent power failure, natural or injected
    /// (`None` until the first failure).
    pub fn last_failure(&self) -> Option<&FailureDetail> {
        self.last_failure.as_ref()
    }

    /// Installs a structured trace sink. Every subsequent device activity
    /// emits [`TraceEvent`]s carrying the exact durations credited to
    /// [`SimStats`], timestamped in simulated seconds.
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Removes and returns the installed trace sink, if any.
    pub fn clear_trace_sink(&mut self) -> Option<SharedSink> {
        self.sink.take()
    }

    /// Whether a trace sink is installed.
    pub fn tracing(&self) -> bool {
        self.sink.is_some()
    }

    /// Energy currently stored in the capacitor (J). Exposed so campaign
    /// fast paths can compare forked and recorded simulators at a resync
    /// point without widening access to the whole capacitor model.
    pub fn cap_energy_j(&self) -> f64 {
        self.cap.energy_j()
    }

    /// Longest single off-time (capacitor recharge wait) suffered so far
    /// (s). Complements `SimStats::charging_s` (the *sum* of stalls) with
    /// the worst-case stall — the fleet-telemetry signal distinguishing
    /// many short brown-outs from one long blackout. Zero until the first
    /// power failure.
    pub fn max_stall_s(&self) -> f64 {
        self.max_stall_s
    }

    /// Captures the simulator's dynamic state. See [`SimCheckpoint`] for
    /// what is (and deliberately is not) included.
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint {
            cap: self.cap.clone(),
            now: self.now,
            lea_free: self.lea_free,
            dma_free: self.dma_free,
            stats: self.stats.clone(),
            hook: self.hook.clone(),
            last_failure: self.last_failure,
            max_stall_s: self.max_stall_s,
        }
    }

    /// Rewinds this simulator to a previously captured checkpoint. The
    /// models, supply, and trace sink are left untouched; only dynamic
    /// state is overwritten.
    pub fn restore(&mut self, ckpt: &SimCheckpoint) {
        self.cap = ckpt.cap.clone();
        self.now = ckpt.now;
        self.lea_free = ckpt.lea_free;
        self.dma_free = ckpt.dma_free;
        self.stats = ckpt.stats.clone();
        self.hook = ckpt.hook.clone();
        self.last_failure = ckpt.last_failure;
        self.max_stall_s = ckpt.max_stall_s;
    }

    /// Builds an independent simulator that shares this one's models and
    /// supply but resumes from `ckpt`. The fork starts without a trace
    /// sink; install one with [`Self::set_trace_sink`] if needed.
    pub fn fork(&self, ckpt: &SimCheckpoint) -> DeviceSim {
        DeviceSim {
            spec: self.spec.clone(),
            timing: self.timing.clone(),
            energy: self.energy.clone(),
            supply: self.supply.clone(),
            cap: ckpt.cap.clone(),
            now: ckpt.now,
            lea_free: ckpt.lea_free,
            dma_free: ckpt.dma_free,
            stats: ckpt.stats.clone(),
            hook: ckpt.hook.clone(),
            last_failure: ckpt.last_failure,
            max_stall_s: ckpt.max_stall_s,
            sink: None,
        }
    }

    /// Emits one event if tracing is on. The closure defers event
    /// construction so a sink-less simulator pays only this branch.
    #[inline]
    fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            let ev = make();
            sink.lock().expect("trace sink lock").emit(&ev);
        }
    }

    /// Emits an engine-level scope event (layer/tile markers) into the
    /// installed sink, if any. Engines timestamp scopes with [`Self::now`]
    /// so they interleave correctly with the simulator's own activity
    /// events; the closure is never called when tracing is off.
    #[inline]
    pub fn emit_scope(&self, make: impl FnOnce() -> TraceEvent) {
        self.emit(make);
    }

    /// Runs one accelerator job: LEA compute pipelined with the DMA
    /// write-back of its outputs and footprint.
    ///
    /// Returns [`Commit::PowerFailed`] if the capacitor cut out before the
    /// preservation write completed; the caller must then call
    /// [`Self::recover`] and re-issue the job.
    ///
    /// # Errors
    ///
    /// [`SimError::Nontermination`] if the job can never fit in one power
    /// cycle's energy budget.
    pub fn run_job(&mut self, cost: JobCost) -> Result<Commit, SimError> {
        let lea_busy = self.timing.lea_s(cost.lea_macs);
        let cpu_busy = self.timing.cpu_s(cost.cpu_cycles);
        let t_lea = lea_busy + cpu_busy;
        let t_wr = self.timing.nvm_write_s(cost.preserve_bytes);

        // The LEA may start the next job while the DMA still writes the
        // previous one back — that is the Figure 2(b) pipeline. Only the
        // per-resource frontier gates the start, not the commit frontier.
        let lea_start = self.lea_free;
        let lea_end = lea_start + t_lea;
        let wr_start = self.dma_free.max(lea_end);
        let wr_end = wr_start + t_wr;
        let wall = wr_end - self.now;

        let e = self.energy.p_base_w * wall
            + self.energy.p_lea_w * t_lea
            + self.energy.p_nvm_write_w * t_wr;
        let net = e - self.supply.power_at(self.now) * wall;
        if net >= self.cap.span_j() {
            return Err(SimError::Nontermination {
                activity: format!("job {cost:?}"),
                needed_j: net,
                budget_j: self.cap.span_j(),
            });
        }

        // Natural failure: the capacitor drains to empty somewhere inside
        // the window (linear-draw interpolation over the wall time).
        let natural = if net > 0.0 && self.cap.energy_j() <= net {
            Some((self.cap.energy_j() / net).clamp(0.0, 1.0))
        } else {
            None
        };
        // Adversarial failure: an installed hook may cut power at a chosen
        // fraction of the window.
        let view = JobView {
            index: self.stats.jobs_committed + self.stats.jobs_failed,
            committed: self.stats.jobs_committed,
            cost,
            window_s: wall,
            now_s: self.now,
        };
        self.emit(|| TraceEvent::JobStart {
            t: self.now,
            index: view.index,
            macs: cost.lea_macs as u64,
            preserve_bytes: cost.preserve_bytes as u64,
            window_s: wall,
        });
        let injected = match self.hook.as_mut().map(|h| h.on_job(&view)) {
            Some(FaultDecision::FailAt(f)) => Some(f.clamp(0.0, 1.0).min(1.0 - 1e-12)),
            _ => None,
        };
        // Whichever cut strikes first wins.
        let failure = match (natural, injected) {
            (Some(n), Some(i)) => Some((n.min(i), i < n)),
            (Some(n), None) => Some((n, false)),
            (None, Some(i)) => Some((i, true)),
            (None, None) => None,
        };

        if let Some((frac, is_injected)) = failure {
            let fail_time = self.now + frac * wall;
            // Fraction of the preservation write durable before the cut:
            // the DMA streams bytes in order, so everything written before
            // `fail_time` stays in NVM and everything after is lost.
            let preserve_frac =
                if t_wr > 0.0 { ((fail_time - wr_start) / t_wr).clamp(0.0, 1.0) } else { 0.0 };
            let wasted = fail_time - self.now;
            self.stats.wasted_s += wasted;
            self.stats.jobs_failed += 1;
            self.stats.power_cycles += 1;
            if is_injected {
                // An injected brown-out (the ambient source vanishing) drains
                // whatever charge remains; the device stays off until the
                // capacitor refills from empty, like a natural cut-out.
                self.stats.injected_failures += 1;
                let drain = self.cap.energy_j();
                self.cap.apply(-drain);
            } else {
                self.cap.apply(-net);
            }
            let off = self.recharge_duration(fail_time);
            self.cap.refill();
            let resume = fail_time + off + self.timing.reboot_s;
            self.stats.charging_s += off;
            self.max_stall_s = self.max_stall_s.max(off);
            self.stats.recovery_s += self.timing.reboot_s;
            self.now = resume;
            self.lea_free = resume;
            self.dma_free = resume;
            self.emit(|| TraceEvent::JobAbort {
                t: fail_time,
                index: view.index,
                injected: is_injected,
                preserve_frac,
            });
            self.emit(|| TraceEvent::PowerFail {
                t: fail_time,
                injected: is_injected,
                wasted_s: wasted,
            });
            self.emit(|| TraceEvent::Recharge { t: fail_time, dur: off });
            self.emit(|| TraceEvent::Reboot { t: fail_time + off, dur: self.timing.reboot_s });
            self.last_failure = Some(FailureDetail {
                time_s: fail_time,
                injected: is_injected,
                preserve_frac,
                job_index: view.index,
            });
            if let Some(h) = self.hook.as_mut() {
                let outcome = JobOutcome::Failed {
                    injected: is_injected,
                    fail_time_s: fail_time,
                    preserve_frac,
                };
                h.on_outcome(&view, &outcome);
            }
            return Ok(Commit::PowerFailed);
        }

        self.cap.apply(-net);
        self.now = wr_end;
        self.lea_free = lea_end;
        self.dma_free = wr_end;
        self.stats.lea_s += lea_busy;
        self.stats.cpu_s += cpu_busy;
        self.stats.nvm_write_s += t_wr;
        self.stats.nvm_write_bytes += cost.preserve_bytes as u64;
        self.stats.lea_macs += cost.lea_macs as u64;
        self.stats.jobs_committed += 1;
        self.emit(|| TraceEvent::JobCommit {
            t: wr_end,
            index: view.index,
            lea_start,
            lea_s: lea_busy,
            cpu_s: cpu_busy,
            write_start: wr_start,
            write_s: t_wr,
            write_bytes: cost.preserve_bytes as u64,
            macs: cost.lea_macs as u64,
        });
        if let Some(h) = self.hook.as_mut() {
            h.on_outcome(&view, &JobOutcome::Committed);
        }
        Ok(Commit::Committed)
    }

    /// Progress recovery after a reported power failure: re-reads
    /// `refetch_bytes` (footprints, indexes, and the interrupted tile's
    /// inputs) from NVM. Accounted as recovery time.
    ///
    /// # Errors
    ///
    /// [`SimError::Nontermination`] if the re-fetch itself cannot fit in one
    /// power cycle.
    pub fn recover(&mut self, refetch_bytes: usize) -> Result<(), SimError> {
        self.run_blocking_transfer(refetch_bytes, TransferClass::Recovery, "recovery read")?;
        Ok(())
    }

    /// Blocking NVM read of `bytes` (tile inputs, weights, …). Power
    /// failures during the read are retried internally: a read has no
    /// volatile side effects beyond the buffer being filled, so the engine
    /// never observes them (their recharge and reboot time is accounted).
    ///
    /// # Errors
    ///
    /// [`SimError::Nontermination`] if the transfer cannot fit in one power
    /// cycle. Split transfers into smaller DMA commands instead.
    pub fn run_read(&mut self, bytes: usize) -> Result<(), SimError> {
        self.run_blocking_transfer(bytes, TransferClass::Read, "nvm read")?;
        self.stats.nvm_read_bytes += bytes as u64;
        Ok(())
    }

    /// Blocking NVM write of `bytes` outside progress preservation (e.g. a
    /// continuous-power engine writing a completed output tile). Retried
    /// internally on power failure, like [`Self::run_read`].
    ///
    /// # Errors
    ///
    /// [`SimError::Nontermination`] if the transfer cannot fit in one power
    /// cycle.
    pub fn run_write(&mut self, bytes: usize) -> Result<(), SimError> {
        self.run_blocking_transfer(bytes, TransferClass::Write, "nvm write")?;
        self.stats.nvm_write_bytes += bytes as u64;
        Ok(())
    }

    /// Blocking CPU work of `cycles` cycles (requantization, index math).
    ///
    /// # Errors
    ///
    /// [`SimError::Nontermination`] if the work cannot fit in one power
    /// cycle.
    pub fn run_cpu(&mut self, cycles: usize) -> Result<(), SimError> {
        if cycles == 0 {
            return Ok(());
        }
        let t = self.timing.cpu_s(cycles);
        let e_rate = self.energy.p_base_w;
        self.advance_blocking(t, e_rate, "cpu work")?;
        self.stats.cpu_s += t;
        self.emit(|| TraceEvent::CpuWork { t: self.now - t, dur: t, cycles: cycles as u64 });
        Ok(())
    }

    /// Largest single DMA command in bytes; bigger requests are split into
    /// multiple commands (each paying the invocation overheads) so that no
    /// single atomic transfer can exceed one power cycle's energy budget.
    pub const MAX_DMA_BYTES: usize = 2048;

    /// Time the device stays off after a failure at `from_t`, integrating
    /// the supply until the capacitor's deficit is covered. For a trace
    /// supply the integration is piecewise over the trace samples (dark
    /// phases contribute nothing and simply pass).
    fn recharge_duration(&self, from_t: f64) -> f64 {
        let deficit = self.cap.deficit_j();
        match &self.supply {
            Supply::Constant(w) => deficit / w.max(1e-12),
            Supply::Trace(tr) => {
                assert!(tr.mean_w() > 0.0, "trace never delivers energy");
                let dt = tr.dt_s();
                let mut remaining = deficit;
                let mut t = from_t;
                // align the first partial step to the next sample boundary
                let first = dt - t.rem_euclid(dt);
                let p0 = tr.power_at(t);
                if p0 * first >= remaining {
                    return remaining / p0.max(1e-12);
                }
                remaining -= p0 * first;
                t += first;
                loop {
                    let p = tr.power_at(t);
                    if p * dt >= remaining {
                        return t - from_t + remaining / p.max(1e-12);
                    }
                    remaining -= p * dt;
                    t += dt;
                }
            }
        }
    }

    fn run_blocking_transfer(
        &mut self,
        bytes: usize,
        class: TransferClass,
        what: &'static str,
    ) -> Result<f64, SimError> {
        if bytes == 0 {
            return Ok(0.0);
        }
        let is_write = class == TransferClass::Write;
        let extra = if is_write { self.energy.p_nvm_write_w } else { self.energy.p_nvm_read_w };
        let t_start = self.now.max(self.dma_free).max(self.lea_free);
        let mut total = 0.0;
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(Self::MAX_DMA_BYTES);
            let t = if is_write {
                self.timing.nvm_write_s(chunk)
            } else {
                self.timing.nvm_read_s(chunk)
            };
            self.advance_blocking(t, self.energy.p_base_w + extra, what)?;
            total += t;
            remaining -= chunk;
        }
        match class {
            TransferClass::Read => self.stats.nvm_read_s += total,
            TransferClass::Write => self.stats.nvm_write_s += total,
            TransferClass::Recovery => self.stats.recovery_s += total,
        }
        self.emit(|| match class {
            TransferClass::Read => {
                TraceEvent::NvmRead { t: t_start, dur: total, bytes: bytes as u64 }
            }
            TransferClass::Write => {
                TraceEvent::NvmWrite { t: t_start, dur: total, bytes: bytes as u64 }
            }
            TransferClass::Recovery => {
                TraceEvent::RecoveryRead { t: t_start, dur: total, bytes: bytes as u64 }
            }
        });
        Ok(total)
    }

    /// Advances all frontiers through a blocking activity of duration `t`
    /// drawing `p_draw` watts, retrying through power failures.
    fn advance_blocking(
        &mut self,
        t: f64,
        p_draw: f64,
        what: &'static str,
    ) -> Result<(), SimError> {
        let start = self.now.max(self.dma_free).max(self.lea_free);
        // idle gap before the activity: the device only harvests
        let idle = start - self.now;
        if idle > 0.0 {
            self.cap.apply(self.supply.power_at(self.now) * idle);
        }
        let net = (p_draw - self.supply.power_at(start)) * t;
        if net >= self.cap.span_j() {
            return Err(SimError::Nontermination {
                activity: what.to_string(),
                needed_j: net,
                budget_j: self.cap.span_j(),
            });
        }
        let mut cursor = start;
        loop {
            let before = self.cap.energy_j();
            if !self.cap.apply(-net) {
                let end = cursor + t;
                self.now = end;
                self.lea_free = end;
                self.dma_free = end;
                return Ok(());
            }
            // failed mid-activity: lose it, recharge, reboot, retry
            let frac = if net > 0.0 { (before / net).clamp(0.0, 1.0) } else { 1.0 };
            let fail_time = cursor + frac * t;
            let wasted = fail_time - cursor;
            self.stats.wasted_s += wasted;
            self.stats.power_cycles += 1;
            let off = self.recharge_duration(fail_time);
            self.cap.refill();
            self.stats.charging_s += off;
            self.max_stall_s = self.max_stall_s.max(off);
            self.stats.recovery_s += self.timing.reboot_s;
            self.emit(|| TraceEvent::PowerFail { t: fail_time, injected: false, wasted_s: wasted });
            self.emit(|| TraceEvent::Recharge { t: fail_time, dur: off });
            self.emit(|| TraceEvent::Reboot { t: fail_time + off, dur: self.timing.reboot_s });
            cursor = fail_time + off + self.timing.reboot_s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_power_never_fails() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        for _ in 0..1000 {
            let c =
                sim.run_job(JobCost { lea_macs: 100, preserve_bytes: 34, cpu_cycles: 10 }).unwrap();
            assert_eq!(c, Commit::Committed);
        }
        assert_eq!(sim.stats().power_cycles, 0);
        assert_eq!(sim.stats().jobs_committed, 1000);
    }

    #[test]
    fn harvested_power_eventually_fails() {
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        let mut failures = 0;
        let mut committed = 0;
        while committed < 20_000 {
            match sim.run_job(JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 }).unwrap()
            {
                Commit::Committed => committed += 1,
                Commit::PowerFailed => {
                    failures += 1;
                    sim.recover(128).unwrap();
                }
            }
        }
        assert!(failures > 0, "weak power should brown out");
        assert_eq!(sim.stats().power_cycles, failures);
        sim.stats().check_invariants().unwrap();
    }

    #[test]
    fn weak_power_is_slower_than_strong() {
        let run = |s: PowerStrength| {
            let mut sim = DeviceSim::new(s, 0);
            let mut committed = 0;
            while committed < 10_000 {
                match sim
                    .run_job(JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 })
                    .unwrap()
                {
                    Commit::Committed => committed += 1,
                    Commit::PowerFailed => sim.recover(128).unwrap(),
                }
            }
            sim.now()
        };
        let t_cont = run(PowerStrength::Continuous);
        let t_strong = run(PowerStrength::Strong);
        let t_weak = run(PowerStrength::Weak);
        assert!(t_strong > t_cont, "strong {t_strong} vs continuous {t_cont}");
        assert!(t_weak > 1.3 * t_strong, "weak {t_weak} vs strong {t_strong}");
    }

    #[test]
    fn pipelining_overlaps_compute_and_writes() {
        // With equal compute and write times, pipelined latency should be
        // well below the serial sum.
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let cost = JobCost { lea_macs: 500, preserve_bytes: 30, cpu_cycles: 0 };
        let t_lea = sim.timing().lea_s(cost.lea_macs);
        let t_wr = sim.timing().nvm_write_s(cost.preserve_bytes);
        let n = 200;
        for _ in 0..n {
            sim.run_job(cost).unwrap();
        }
        let serial = (t_lea + t_wr) * n as f64;
        let ideal = t_lea.max(t_wr) * n as f64;
        assert!(sim.now() < serial * 0.75, "no overlap: {} vs serial {}", sim.now(), serial);
        assert!(sim.now() >= ideal * 0.99, "faster than the bottleneck resource");
    }

    #[test]
    fn oversized_activity_is_rejected_not_looped() {
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        // A multi-second LEA burst cannot fit in a 104 uJ budget.
        let err = sim
            .run_job(JobCost { lea_macs: 200_000_000, preserve_bytes: 2, cpu_cycles: 0 })
            .unwrap_err();
        match err {
            SimError::Nontermination { needed_j, budget_j, .. } => {
                assert!(needed_j > budget_j);
            }
        }
    }

    #[test]
    fn reads_account_time_and_bytes() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        sim.run_read(4096).unwrap();
        assert_eq!(sim.stats().nvm_read_bytes, 4096);
        // 4096 bytes split into two MAX_DMA_BYTES commands
        let expect = 2.0 * sim.timing().nvm_read_s(2048);
        assert!((sim.stats().nvm_read_s - expect).abs() < 1e-12);
        assert!((sim.now() - expect).abs() < 1e-12);
    }

    #[test]
    fn large_transfers_are_chunked_not_rejected() {
        // A 40 KB read must survive harvested power by splitting into
        // per-command transfers that each fit the energy budget.
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        sim.run_read(200 * 1024).unwrap();
        assert_eq!(sim.stats().nvm_read_bytes, 200 * 1024);
        assert!(sim.stats().power_cycles > 0, "a 200 KB read cannot fit one cycle");
    }

    #[test]
    fn recovery_counts_as_recovery_not_read() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        sim.recover(512).unwrap();
        assert_eq!(sim.stats().nvm_read_s, 0.0);
        assert!(sim.stats().recovery_s > 0.0);
    }

    #[test]
    fn seeded_start_charge_differs() {
        let a = DeviceSim::new(PowerStrength::Weak, 1);
        let b = DeviceSim::new(PowerStrength::Weak, 2);
        let full = DeviceSim::new(PowerStrength::Weak, 0);
        assert!(a.cap.energy_j() <= full.cap.energy_j());
        assert_ne!(a.cap.energy_j(), b.cap.energy_j());
    }

    #[test]
    fn solar_trace_supply_stalls_in_the_dark_and_progresses_in_the_light() {
        use crate::power::{PowerTrace, Supply};
        // 2-second "day": bright first half, dark second half.
        let trace = PowerTrace::solar(8.0e-3, 2.0, 64, 3);
        let mut sim = DeviceSim::with_supply(Supply::Trace(trace), 0);
        let mut committed = 0;
        while committed < 30_000 {
            match sim.run_job(JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 }).unwrap()
            {
                Commit::Committed => committed += 1,
                Commit::PowerFailed => sim.recover(64).unwrap(),
            }
        }
        // the same workload under constant strong power finishes faster
        let mut fast = DeviceSim::new(PowerStrength::Strong, 0);
        for _ in 0..30_000 {
            loop {
                match fast
                    .run_job(JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 })
                    .unwrap()
                {
                    Commit::Committed => break,
                    Commit::PowerFailed => fast.recover(64).unwrap(),
                }
            }
        }
        assert!(sim.stats().power_cycles > 0);
        assert!(sim.now() > fast.now(), "trace with dark phases must be slower");
        sim.stats().check_invariants().unwrap();
        fast.stats().check_invariants().unwrap();
    }

    /// Hook failing exactly one chosen attempt at a chosen window fraction.
    #[derive(Debug, Clone)]
    struct FailNth {
        attempt: u64,
        frac: f64,
        fired: bool,
    }

    impl crate::inject::FaultHook for FailNth {
        fn on_job(&mut self, view: &crate::inject::JobView) -> crate::inject::FaultDecision {
            if !self.fired && view.index == self.attempt {
                self.fired = true;
                crate::inject::FaultDecision::FailAt(self.frac)
            } else {
                crate::inject::FaultDecision::Pass
            }
        }
        fn box_clone(&self) -> Box<dyn crate::inject::FaultHook> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn injected_failure_strikes_under_bench_power() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        sim.set_fault_hook(Box::new(FailNth { attempt: 2, frac: 0.9, fired: false }));
        let cost = JobCost { lea_macs: 100, preserve_bytes: 34, cpu_cycles: 10 };
        let mut outcomes = Vec::new();
        for _ in 0..5 {
            outcomes.push(sim.run_job(cost).unwrap());
        }
        assert_eq!(
            outcomes,
            vec![
                Commit::Committed,
                Commit::Committed,
                Commit::PowerFailed,
                Commit::Committed,
                Commit::Committed,
            ]
        );
        assert_eq!(sim.stats().injected_failures, 1);
        assert_eq!(sim.stats().power_cycles, 1);
        assert_eq!(sim.stats().jobs_failed, 1);
        assert_eq!(sim.stats().jobs_committed, 4);
        let detail = sim.last_failure().expect("failure recorded");
        assert!(detail.injected);
        assert_eq!(detail.job_index, 2);
        // frac 0.9 of the window lands inside the preservation write for
        // this write-dominated cost: part of the footprint became durable.
        assert!(
            detail.preserve_frac > 0.0 && detail.preserve_frac < 1.0,
            "mid-footprint tear expected, got {}",
            detail.preserve_frac
        );
    }

    #[test]
    fn injection_during_compute_phase_preserves_nothing() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        sim.set_fault_hook(Box::new(FailNth { attempt: 0, frac: 0.0, fired: false }));
        let cost = JobCost { lea_macs: 5000, preserve_bytes: 8, cpu_cycles: 0 };
        assert_eq!(sim.run_job(cost).unwrap(), Commit::PowerFailed);
        assert_eq!(sim.last_failure().unwrap().preserve_frac, 0.0);
        // the interrupted window up to the cut is wasted, not committed
        assert_eq!(sim.stats().lea_macs, 0);
    }

    #[test]
    fn cleared_hook_stops_injecting() {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        sim.set_fault_hook(Box::new(FailNth { attempt: 0, frac: 0.5, fired: false }));
        let cost = JobCost { lea_macs: 100, preserve_bytes: 34, cpu_cycles: 10 };
        assert_eq!(sim.run_job(cost).unwrap(), Commit::PowerFailed);
        assert!(sim.clear_fault_hook().is_some());
        for _ in 0..100 {
            assert_eq!(sim.run_job(cost).unwrap(), Commit::Committed);
        }
        assert_eq!(sim.stats().injected_failures, 1);
    }

    #[test]
    fn natural_failures_are_not_counted_as_injected() {
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        let cost = JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 };
        let mut committed = 0;
        while committed < 5_000 {
            match sim.run_job(cost).unwrap() {
                Commit::Committed => committed += 1,
                Commit::PowerFailed => sim.recover(128).unwrap(),
            }
        }
        assert!(sim.stats().power_cycles > 0);
        assert_eq!(sim.stats().injected_failures, 0);
        let detail = sim.last_failure().expect("natural failure recorded");
        assert!(!detail.injected);
    }

    #[test]
    fn recovery_refetch_that_exceeds_the_budget_is_nontermination() {
        // A recovery read whose single DMA chunk needs more energy than one
        // full capacitor charge can never complete: Section II-B's
        // nontermination hazard, surfaced as a direct error.
        let energy = EnergyModel { p_nvm_read_w: 1.0e3, ..EnergyModel::default() };
        let mut sim = DeviceSim::with_models(
            DeviceSpec::default(),
            TimingModel::default(),
            energy,
            PowerStrength::Weak,
            0,
        );
        let err = sim.recover(64).unwrap_err();
        match err {
            SimError::Nontermination { activity, needed_j, budget_j } => {
                assert!(activity.contains("recovery"), "activity: {activity}");
                assert!(needed_j > budget_j);
            }
        }
    }

    #[test]
    fn recover_accounts_reboots_as_recovery_time() {
        // A large recovery re-fetch under weak power browns out repeatedly;
        // every reboot plus the whole transfer must land in `recovery_s`,
        // with nothing leaking into the read column.
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        sim.recover(200 * 1024).unwrap();
        let stats = sim.stats();
        assert!(stats.power_cycles > 0, "a 200 KB re-fetch cannot fit one cycle");
        assert!(stats.nvm_read_s.abs() < 1e-15, "read time must move to recovery");
        let reboots = stats.power_cycles as f64 * sim.timing().reboot_s;
        assert!(
            stats.recovery_s > reboots,
            "recovery_s {} must exceed pure reboot time {}",
            stats.recovery_s,
            reboots
        );
    }

    #[test]
    fn zero_byte_ops_are_noops() {
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        sim.run_read(0).unwrap();
        sim.run_write(0).unwrap();
        sim.run_cpu(0).unwrap();
        assert_eq!(sim.now(), 0.0);
    }

    #[test]
    fn invariants_catch_corrupted_stats() {
        let mut s = SimStats::default();
        s.check_invariants().unwrap();
        s.charging_s = -1.0;
        assert!(s.check_invariants().unwrap_err().contains("charging_s"));
        s.charging_s = 0.0;
        s.injected_failures = 3;
        assert!(s.check_invariants().unwrap_err().contains("injected_failures"));
    }

    #[test]
    fn fork_resumes_bit_identically_to_the_original() {
        // Drive a weak-power sim through a failure-rich workload, snapshot
        // mid-way, then run fork and original forward in lockstep: every
        // observable must stay bit-identical.
        let cost = JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 };
        let mut sim = DeviceSim::new(PowerStrength::Weak, 3);
        sim.set_fault_hook(Box::new(FailNth { attempt: 700, frac: 0.4, fired: false }));
        let mut committed = 0;
        while committed < 500 {
            match sim.run_job(cost).unwrap() {
                Commit::Committed => committed += 1,
                Commit::PowerFailed => sim.recover(128).unwrap(),
            }
        }
        let ckpt = sim.checkpoint();
        let mut fork = sim.fork(&ckpt);
        assert_eq!(fork.now(), sim.now());
        for _ in 0..2_000 {
            let a = sim.run_job(cost).unwrap();
            let b = fork.run_job(cost).unwrap();
            assert_eq!(a, b);
            if a == Commit::PowerFailed {
                sim.recover(128).unwrap();
                fork.recover(128).unwrap();
            }
        }
        assert_eq!(sim.now().to_bits(), fork.now().to_bits());
        assert_eq!(sim.stats(), fork.stats());
        // the injected failure at attempt 700 fired identically in both
        assert_eq!(sim.stats().injected_failures, 1);
    }

    #[test]
    fn restore_rewinds_in_place() {
        let cost = JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 };
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        for _ in 0..200 {
            if sim.run_job(cost).unwrap() == Commit::PowerFailed {
                sim.recover(128).unwrap();
            }
        }
        let ckpt = sim.checkpoint();
        let mark = (sim.now(), sim.stats().clone());
        for _ in 0..500 {
            if sim.run_job(cost).unwrap() == Commit::PowerFailed {
                sim.recover(128).unwrap();
            }
        }
        assert_ne!(sim.now(), mark.0);
        sim.restore(&ckpt);
        assert_eq!(sim.now().to_bits(), mark.0.to_bits());
        assert_eq!(sim.stats(), &mark.1);
    }

    #[test]
    fn checkpoint_excludes_the_trace_sink() {
        use iprune_obs::{drain_shared, MemorySink};
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        let cost = JobCost { lea_macs: 100, preserve_bytes: 34, cpu_cycles: 10 };
        sim.run_job(cost).unwrap();
        let before = drain_shared(&sink).len();
        let mut fork = sim.fork(&sim.checkpoint());
        assert!(!fork.tracing(), "forks start without a sink");
        fork.run_job(cost).unwrap();
        assert_eq!(drain_shared(&sink).len(), 0, "fork must not feed the parent's sink");
        assert!(before > 0);
    }

    #[test]
    fn traced_run_reconciles_with_stats() {
        use iprune_obs::{drain_shared, Attribution, MemorySink, StatsTotals};
        let mut sim = DeviceSim::new(PowerStrength::Weak, 0);
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        assert!(sim.tracing());
        let cost = JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 };
        let mut committed = 0;
        while committed < 2_000 {
            match sim.run_job(cost).unwrap() {
                Commit::Committed => committed += 1,
                Commit::PowerFailed => sim.recover(128).unwrap(),
            }
        }
        sim.run_read(4096).unwrap();
        sim.run_write(256).unwrap();
        sim.run_cpu(500).unwrap();
        sim.stats().check_invariants().unwrap();
        let events = drain_shared(&sink);
        assert!(sim.stats().power_cycles > 0, "weak power should brown out");
        let attr = Attribution::from_events(&events);
        let totals = StatsTotals::from(sim.stats());
        if let Err(e) = attr.reconcile(&totals) {
            panic!("trace does not reconcile with SimStats:\n{e:?}");
        }
    }

    #[test]
    fn untraced_and_traced_runs_are_identical() {
        use iprune_obs::MemorySink;
        let run = |traced: bool| {
            let mut sim = DeviceSim::new(PowerStrength::Weak, 7);
            if traced {
                sim.set_trace_sink(MemorySink::shared());
            }
            let cost = JobCost { lea_macs: 60, preserve_bytes: 34, cpu_cycles: 8 };
            let mut committed = 0;
            while committed < 1_000 {
                match sim.run_job(cost).unwrap() {
                    Commit::Committed => committed += 1,
                    Commit::PowerFailed => sim.recover(128).unwrap(),
                }
            }
            (sim.now(), sim.stats().clone())
        };
        let (t_plain, s_plain) = run(false);
        let (t_traced, s_traced) = run(true);
        assert_eq!(t_plain, t_traced);
        assert_eq!(s_plain, s_traced);
    }
}
