//! Power-draw and per-operation energy model.
//!
//! The paper profiles its device's energy model with micro-benchmarks
//! (footnote 1, citing the intermittent-aware NAS work [13]); here the model
//! is a small table of activity power draws from which per-operation
//! energies are derived. The same table feeds two consumers:
//!
//! 1. the capacitor integration inside [`crate::sim::DeviceSim`], which
//!    decides *when power fails*, and
//! 2. the ePrune baseline's energy criterion, which estimates *per-layer
//!    energy* exactly the way an energy-aware pruning framework would.

use crate::timing::TimingModel;

/// Activity power draws in watts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Baseline MCU active draw (clock tree, SRAM, regulator).
    pub p_base_w: f64,
    /// Additional draw while the LEA crunches.
    pub p_lea_w: f64,
    /// Additional draw during NVM reads (SPI + FRAM read current).
    pub p_nvm_read_w: f64,
    /// Additional draw during NVM writes (SPI + FRAM write current).
    pub p_nvm_write_w: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            p_base_w: 3.0e-3,      // ~0.9 mA @ 3.3 V MCU active
            p_lea_w: 4.0e-3,       // LEA + SRAM banks busy
            p_nvm_read_w: 3.5e-3,  // SPI master + FRAM read
            p_nvm_write_w: 6.0e-3, // SPI master + FRAM write current
        }
    }
}

impl EnergyModel {
    /// Energy of one MAC on the LEA.
    pub fn e_mac_j(&self, t: &TimingModel) -> f64 {
        (self.p_base_w + self.p_lea_w) * t.lea_mac_s
    }

    /// Energy of reading one byte from NVM (marginal, overheads excluded).
    pub fn e_nvm_read_byte_j(&self, t: &TimingModel) -> f64 {
        (self.p_base_w + self.p_nvm_read_w) * t.nvm_read_byte_s
    }

    /// Energy of writing one byte to NVM (marginal, overheads excluded).
    pub fn e_nvm_write_byte_j(&self, t: &TimingModel) -> f64 {
        (self.p_base_w + self.p_nvm_write_w) * t.nvm_write_byte_s
    }

    /// Energy of an accelerator job: `macs` MACs plus `write_bytes` of
    /// progress preservation plus `read_bytes` of input fetch.
    pub fn e_activity_j(
        &self,
        t: &TimingModel,
        macs: usize,
        read_bytes: usize,
        write_bytes: usize,
    ) -> f64 {
        let t_lea = t.lea_s(macs);
        let t_rd = t.nvm_read_s(read_bytes);
        let t_wr = t.nvm_write_s(write_bytes);
        (self.p_base_w + self.p_lea_w) * t_lea
            + (self.p_base_w + self.p_nvm_read_w) * t_rd
            + (self.p_base_w + self.p_nvm_write_w) * t_wr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_cost_more_than_reads_per_byte() {
        let e = EnergyModel::default();
        let t = TimingModel::default();
        assert!(e.e_nvm_write_byte_j(&t) > e.e_nvm_read_byte_j(&t));
    }

    #[test]
    fn write_energy_dominates_mac_energy() {
        // The motivating observation: preserving one 2-byte accelerator
        // output costs far more energy than computing it.
        let e = EnergyModel::default();
        let t = TimingModel::default();
        let preserve_two_bytes = 2.0 * e.e_nvm_write_byte_j(&t);
        let three_macs = 3.0 * e.e_mac_j(&t);
        assert!(preserve_two_bytes > 5.0 * three_macs);
    }

    #[test]
    fn activity_energy_is_additive() {
        let e = EnergyModel::default();
        let t = TimingModel::default();
        let a = e.e_activity_j(&t, 100, 0, 0);
        let b = e.e_activity_j(&t, 0, 64, 0);
        let c = e.e_activity_j(&t, 0, 0, 32);
        let all = e.e_activity_j(&t, 100, 64, 32);
        assert!((all - (a + b + c)).abs() < 1e-15);
    }
}
