//! Aggregate statistics of a simulated execution.

/// Accumulated busy times, byte/operation counts, and power-cycle counts of
/// a simulation run. Busy times of *committed* work feed the latency
/// breakdown of the paper's Figure 2; re-executed (lost) work and recharge
/// time are tracked separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Committed NVM read busy time (s).
    pub nvm_read_s: f64,
    /// Committed NVM write busy time (s), including progress preservation.
    pub nvm_write_s: f64,
    /// Committed accelerator busy time (s).
    pub lea_s: f64,
    /// Committed CPU busy time (s).
    pub cpu_s: f64,
    /// Reboot plus progress-recovery time after power failures (s).
    pub recovery_s: f64,
    /// Time spent off, waiting for the capacitor to recharge (s).
    pub charging_s: f64,
    /// Busy time of work that was lost to power failures and re-executed (s).
    pub wasted_s: f64,
    /// Bytes read from NVM (committed work only).
    pub nvm_read_bytes: u64,
    /// Bytes written to NVM (committed work only).
    pub nvm_write_bytes: u64,
    /// MAC operations performed (committed work only).
    pub lea_macs: u64,
    /// Accelerator jobs committed.
    pub jobs_committed: u64,
    /// Job attempts aborted by power failure.
    pub jobs_failed: u64,
    /// Number of power cycles (failure + recharge + reboot).
    pub power_cycles: u64,
    /// Power cycles forced by an installed fault hook (subset of
    /// `power_cycles`; see [`crate::inject`]).
    pub injected_failures: u64,
}

impl SimStats {
    /// Total committed busy time across all activity classes.
    pub fn busy_s(&self) -> f64 {
        self.nvm_read_s + self.nvm_write_s + self.lea_s + self.cpu_s
    }

    /// Fraction of committed busy time spent in NVM writes.
    pub fn write_share(&self) -> f64 {
        let b = self.busy_s();
        if b == 0.0 {
            0.0
        } else {
            self.nvm_write_s / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_sensibly() {
        let s = SimStats { nvm_read_s: 1.0, nvm_write_s: 3.0, lea_s: 1.0, ..Default::default() };
        assert!((s.busy_s() - 5.0).abs() < 1e-12);
        assert!((s.write_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_share() {
        assert_eq!(SimStats::default().write_share(), 0.0);
    }
}
