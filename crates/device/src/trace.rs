//! Aggregate statistics of a simulated execution.

/// Accumulated busy times, byte/operation counts, and power-cycle counts of
/// a simulation run. Busy times of *committed* work feed the latency
/// breakdown of the paper's Figure 2; re-executed (lost) work and recharge
/// time are tracked separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Committed NVM read busy time (s).
    pub nvm_read_s: f64,
    /// Committed NVM write busy time (s), including progress preservation.
    pub nvm_write_s: f64,
    /// Committed accelerator busy time (s).
    pub lea_s: f64,
    /// Committed CPU busy time (s).
    pub cpu_s: f64,
    /// Reboot plus progress-recovery time after power failures (s).
    pub recovery_s: f64,
    /// Time spent off, waiting for the capacitor to recharge (s).
    pub charging_s: f64,
    /// Busy time of work that was lost to power failures and re-executed (s).
    pub wasted_s: f64,
    /// Bytes read from NVM (committed work only).
    pub nvm_read_bytes: u64,
    /// Bytes written to NVM (committed work only).
    pub nvm_write_bytes: u64,
    /// MAC operations performed (committed work only).
    pub lea_macs: u64,
    /// Accelerator jobs committed.
    pub jobs_committed: u64,
    /// Job attempts aborted by power failure.
    pub jobs_failed: u64,
    /// Number of power cycles (failure + recharge + reboot).
    pub power_cycles: u64,
    /// Power cycles forced by an installed fault hook (subset of
    /// `power_cycles`; see [`crate::inject`]).
    pub injected_failures: u64,
}

impl SimStats {
    /// Total committed busy time across all activity classes.
    pub fn busy_s(&self) -> f64 {
        self.nvm_read_s + self.nvm_write_s + self.lea_s + self.cpu_s
    }

    /// Fraction of committed busy time spent in NVM writes.
    pub fn write_share(&self) -> f64 {
        let b = self.busy_s();
        if b == 0.0 {
            0.0
        } else {
            self.nvm_write_s / b
        }
    }

    /// Structural sanity checks that hold for every reachable simulator
    /// state: all times finite and non-negative, injected failures a subset
    /// of power cycles, failed jobs each backed by a power cycle, and the
    /// derived shares well-formed. Returns a description of the first
    /// violated invariant.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let times = [
            ("nvm_read_s", self.nvm_read_s),
            ("nvm_write_s", self.nvm_write_s),
            ("lea_s", self.lea_s),
            ("cpu_s", self.cpu_s),
            ("recovery_s", self.recovery_s),
            ("charging_s", self.charging_s),
            ("wasted_s", self.wasted_s),
        ];
        for (name, v) in times {
            if !v.is_finite() {
                return Err(format!("{name} is not finite: {v}"));
            }
            if v < 0.0 {
                return Err(format!("{name} is negative: {v}"));
            }
        }
        if self.injected_failures > self.power_cycles {
            return Err(format!(
                "injected_failures {} exceeds power_cycles {}",
                self.injected_failures, self.power_cycles
            ));
        }
        if self.jobs_failed > self.power_cycles {
            return Err(format!(
                "jobs_failed {} exceeds power_cycles {} (every abort costs a cycle)",
                self.jobs_failed, self.power_cycles
            ));
        }
        let busy = self.busy_s();
        if !busy.is_finite() || busy < 0.0 {
            return Err(format!("busy_s() is ill-formed: {busy}"));
        }
        let share = self.write_share();
        if !(0.0..=1.0).contains(&share) {
            return Err(format!("write_share() outside [0, 1]: {share}"));
        }
        Ok(())
    }
}

impl From<&SimStats> for iprune_obs::StatsTotals {
    fn from(s: &SimStats) -> Self {
        iprune_obs::StatsTotals {
            nvm_read_s: s.nvm_read_s,
            nvm_write_s: s.nvm_write_s,
            lea_s: s.lea_s,
            cpu_s: s.cpu_s,
            recovery_s: s.recovery_s,
            charging_s: s.charging_s,
            wasted_s: s.wasted_s,
            nvm_read_bytes: s.nvm_read_bytes,
            nvm_write_bytes: s.nvm_write_bytes,
            lea_macs: s.lea_macs,
            jobs_committed: s.jobs_committed,
            jobs_failed: s.jobs_failed,
            power_cycles: s.power_cycles,
            injected_failures: s.injected_failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_sensibly() {
        let s = SimStats { nvm_read_s: 1.0, nvm_write_s: 3.0, lea_s: 1.0, ..Default::default() };
        assert!((s.busy_s() - 5.0).abs() < 1e-12);
        assert!((s.write_share() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_share() {
        assert_eq!(SimStats::default().write_share(), 0.0);
    }
}
