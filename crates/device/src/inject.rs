//! Fault-injection hook: adversarially chosen power failures.
//!
//! The capacitor model only fails where `½·C·(V_on² − V_off²)` happens to
//! run dry, so the engine's recovery paths are exercised at whatever
//! boundaries the energy balance lands on. A [`FaultHook`] installed via
//! [`crate::sim::DeviceSim::set_fault_hook`] lets a campaign force
//! [`crate::sim::Commit::PowerFailed`] at *arbitrary* job attempts and at an
//! arbitrary fraction of the job window — including mid-way through the
//! progress-preservation write, where a crash-consistency bug would tear
//! the footprint.
//!
//! The hook sees every accelerator-job attempt twice: once *before* the
//! energy accounting (to decide whether to cut power) and once *after*
//! (to observe the outcome, e.g. for a shadow-NVM model recording how many
//! preservation bytes became durable). Blocking transfers and CPU work
//! retry power failures internally and are not interceptable — the unit of
//! adversarial scheduling is the job, the unit of progress in HAWAII-style
//! inference.

use crate::sim::JobCost;
use std::fmt;

/// What the simulator tells the hook about one job attempt, before running
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobView {
    /// Zero-based index of this attempt (committed + failed so far).
    pub index: u64,
    /// Jobs committed before this attempt.
    pub committed: u64,
    /// The attempt's cost.
    pub cost: JobCost,
    /// Wall-clock duration of the attempt's window (seconds), from the
    /// commit frontier to the end of the preservation write.
    pub window_s: f64,
    /// Commit frontier when the attempt starts (seconds).
    pub now_s: f64,
}

/// A hook's verdict on one job attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// Let the energy model decide (the only failure source without a
    /// hook).
    Pass,
    /// Cut power at this fraction of the job window, clamped to `[0, 1)`.
    /// Values near `1.0` strike mid-way through the preservation write;
    /// values near `0.0` strike during the accelerator phase.
    FailAt(f64),
}

/// What actually happened to a job attempt, reported back to the hook.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// The job's outputs and footprint reached NVM in full.
    Committed,
    /// Power failed inside the attempt's window.
    Failed {
        /// Whether the failure was injected by the hook (vs the capacitor
        /// genuinely running dry).
        injected: bool,
        /// Wall-clock time of the cut (seconds).
        fail_time_s: f64,
        /// Fraction of the preservation write that became durable before
        /// the cut (`0.0` when the cut struck before the DMA write began,
        /// strictly below `1.0` otherwise).
        preserve_frac: f64,
    },
}

/// Detailed record of the most recent power failure (natural or injected),
/// kept by the simulator for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureDetail {
    /// Wall-clock time of the cut (seconds).
    pub time_s: f64,
    /// Whether the failure was injected by the fault hook.
    pub injected: bool,
    /// Fraction of the interrupted job's preservation write that became
    /// durable.
    pub preserve_frac: f64,
    /// Attempt index of the interrupted job.
    pub job_index: u64,
}

/// Adversarial power-failure scheduler, installed into a
/// [`crate::sim::DeviceSim`].
///
/// `Send + Sync` is required so hooked simulators (and [`crate::sim::SimCheckpoint`]s
/// holding cloned hooks) can be moved across — and shared by reference
/// with — the workspace's scoped worker threads. Hooks receive `&mut self`
/// on every call, so `Sync` costs implementations nothing beyond avoiding
/// un-shareable interior mutability (`Cell`, `Rc`, …).
pub trait FaultHook: fmt::Debug + Send + Sync {
    /// Decides the fate of one job attempt, before it runs.
    fn on_job(&mut self, view: &JobView) -> FaultDecision;

    /// Observes the outcome of one job attempt (committed or failed).
    fn on_outcome(&mut self, _view: &JobView, _outcome: &JobOutcome) {}

    /// Clones the hook behind the object (keeps `DeviceSim: Clone`).
    fn box_clone(&self) -> Box<dyn FaultHook>;
}

impl Clone for Box<dyn FaultHook> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Always(f64);
    impl FaultHook for Always {
        fn on_job(&mut self, _view: &JobView) -> FaultDecision {
            FaultDecision::FailAt(self.0)
        }
        fn box_clone(&self) -> Box<dyn FaultHook> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_hooks_clone() {
        let b: Box<dyn FaultHook> = Box::new(Always(0.5));
        let c = b.clone();
        let mut d = c;
        let view = JobView {
            index: 0,
            committed: 0,
            cost: JobCost { lea_macs: 1, preserve_bytes: 2, cpu_cycles: 3 },
            window_s: 1.0,
            now_s: 0.0,
        };
        assert_eq!(d.on_job(&view), FaultDecision::FailAt(0.5));
    }
}
