//! Device specification constants — the contents of the paper's Table I.

/// Static description of the evaluation platform.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// MCU model name.
    pub mcu: &'static str,
    /// CPU (and LEA) clock frequency in hertz.
    pub cpu_hz: f64,
    /// Volatile memory (SRAM) capacity in bytes.
    pub vm_bytes: usize,
    /// Non-volatile memory (FRAM) capacity in bytes.
    pub nvm_bytes: usize,
    /// Accelerator name.
    pub accelerator: &'static str,
    /// NVM part name.
    pub nvm_part: &'static str,
    /// EMU (boost converter) name.
    pub emu: &'static str,
    /// Capacitor value in farads.
    pub capacitance_f: f64,
    /// Voltage at which the power switch turns the device on.
    pub v_on: f64,
    /// Voltage at which the power switch turns the device off.
    pub v_off: f64,
}

impl DeviceSpec {
    /// The MSP430FR5994 platform of the paper (Table I).
    pub fn msp430fr5994() -> Self {
        Self {
            mcu: "TI MSP430FR5994",
            cpu_hz: 16.0e6,
            vm_bytes: 8 * 1024,
            nvm_bytes: 512 * 1024,
            accelerator: "TI Low-Energy Accelerator",
            nvm_part: "Cypress CY15B104Q 512KB FRAM",
            emu: "TI BQ25504",
            capacitance_f: 100.0e-6,
            v_on: 2.8,
            v_off: 2.4,
        }
    }

    /// Usable energy per power cycle: `½·C·(V_on² − V_off²)` joules.
    pub fn energy_span_j(&self) -> f64 {
        0.5 * self.capacitance_f * (self.v_on * self.v_on - self.v_off * self.v_off)
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::msp430fr5994()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let s = DeviceSpec::msp430fr5994();
        assert_eq!(s.vm_bytes, 8192);
        assert_eq!(s.nvm_bytes, 524_288);
        assert_eq!(s.v_on, 2.8);
        assert_eq!(s.v_off, 2.4);
    }

    #[test]
    fn energy_span_is_about_104_microjoules() {
        let s = DeviceSpec::msp430fr5994();
        let e = s.energy_span_j();
        assert!((e - 104.0e-6).abs() < 1.0e-6, "got {e}");
    }
}
