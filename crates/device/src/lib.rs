//! Cycle-approximate simulator of the paper's evaluation platform
//! (Table I): a TI MSP430FR5994 MCU with 8 KB SRAM (volatile memory), a
//! 512 KB external Cypress FRAM module (non-volatile memory) behind a DMA
//! controller, the Low-Energy Accelerator (LEA), and a BQ25504-style energy
//! management unit buffering harvested power in a 100 µF capacitor.
//!
//! The simulator is *activity driven*: an inference engine submits typed
//! activities (NVM reads, accelerator jobs with paired progress-preservation
//! writes, CPU work) and the simulator advances a two-resource pipelined
//! timeline (LEA ‖ DMA), integrates the capacitor's energy balance, and
//! reports power failures exactly where they strike. Costs and draws are
//! parameterized by [`timing::TimingModel`] and [`energy::EnergyModel`],
//! whose defaults are calibrated from public MSP430/FRAM datasheet figures —
//! the paper itself profiles its device with micro-benchmarks, so matching
//! *ratios* (not absolute silicon numbers) is the fidelity target.
//!
//! # Example
//!
//! ```
//! use iprune_device::{sim::{DeviceSim, JobCost, Commit}, power::PowerStrength};
//!
//! let mut sim = DeviceSim::new(PowerStrength::Strong, 0);
//! sim.run_read(1024); // fetch a tile
//! let cost = JobCost { lea_macs: 64, preserve_bytes: 34, cpu_cycles: 20 };
//! loop {
//!     match sim.run_job(cost).unwrap() {
//!         Commit::Committed => break,
//!         Commit::PowerFailed => sim.recover(256).unwrap(), // re-fetch tile, then retry
//!     }
//! }
//! assert!(sim.now() > 0.0);
//! ```

pub mod energy;
pub mod inject;
pub mod power;
pub mod sim;
pub mod spec;
pub mod timing;
pub mod trace;

pub use inject::{FaultDecision, FaultHook, JobOutcome, JobView};
pub use power::PowerStrength;
pub use sim::{Commit, DeviceSim, JobCost, SimCheckpoint};
pub use spec::DeviceSpec;
