//! The concurrent serving front end: deterministic deadline admission over
//! integer plan costs + rolling per-variant cost histograms, degrade-ladder
//! fallback, and batched execution over the `iprune_tensor::par` worker
//! pool.
//!
//! Every scheduling decision is made from *integer* quantities — cached
//! [`DispatchPlan`](crate::registry::DispatchPlan) MAC costs and exact
//! [`LogHist`] p99 estimates — never from wall-clock measurements, so the
//! admitted/degraded/rejected outcome of a workload is byte-identical at any
//! thread count. Only the reported requests/s and latency quantiles (marked
//! nonstructural in the bench report) vary with parallelism.

use crate::registry::{LoadedVariant, ModelRegistry, VariantKey};
use iprune_obs::agg::{LogHist, StreamStat};
use iprune_obs::metrics::{self, Counter, Histogram};
use iprune_tensor::exec::ExecCtx;
use iprune_tensor::metrics::argmax_rows;
use iprune_tensor::{par, Tensor};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// One inference request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the [`Completion`].
    pub id: u64,
    /// Which variant the caller wants.
    pub key: VariantKey,
    /// Input sample, dims `[1, ...sample_dims]`.
    pub input: Tensor,
    /// Deadline budget in plan-cost units (kept MACs). The request is
    /// admitted only if the estimated service + queue cost fits.
    pub budget: u64,
}

/// How an admitted-or-not request was resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Served on the requested variant.
    Served {
        /// The variant that served it.
        key: VariantKey,
    },
    /// Budget missed on the requested variant; served on a sparser one.
    Degraded {
        /// What the caller asked for.
        from: VariantKey,
        /// The cheaper variant that fit the budget.
        to: VariantKey,
    },
    /// No variant on the degrade ladder fit the budget.
    Rejected {
        /// The estimate (service + queue) for the requested variant.
        estimate: u64,
    },
}

/// Result for one request, in submission order.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Admission outcome.
    pub outcome: Outcome,
    /// Predicted class (None when rejected).
    pub pred: Option<usize>,
    /// Raw logits (empty when rejected). Bitwise-identical to running the
    /// same sample through `Model::infer` alone.
    pub logits: Vec<f32>,
}

/// Execution strategy for the admitted set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Group compatible requests into GEMM-friendly batches and fan the
    /// batches out over the worker pool.
    Batched,
    /// One request at a time on the calling thread (the baseline the bench
    /// compares against).
    Sequential,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Largest batch assembled from compatible requests.
    pub max_batch: usize,
    /// Scheduling quantum: the queue-cost backlog resets every this many
    /// requests (a "round" of arrivals).
    pub round_requests: usize,
    /// Walk the degrade ladder (weaker-power = sparser variant) before
    /// rejecting.
    pub degrade: bool,
    /// Serve through the Q15 calibration tables (device numerics) instead
    /// of the f32 path. Requires variants loaded with quantization.
    pub q15: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 16, round_requests: 64, degrade: true, q15: false }
    }
}

/// Aggregate statistics for one [`Server::run`] call. All integer-exact and
/// thread-count invariant.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests that executed (including degraded ones).
    pub admitted: u64,
    /// Requests that missed their budget on every ladder rung.
    pub rejected: u64,
    /// Admitted requests that ran on a sparser variant than requested.
    pub degraded: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queue depth (admitted-unexecuted in the current round) at each
    /// submission.
    pub queue_depth: StreamStat,
    /// Executed batch sizes.
    pub batch_size: StreamStat,
    /// Observed integer service cost (plan cost + queue backlog at admit)
    /// per admitted request.
    pub service_cost: StreamStat,
}

impl RunStats {
    fn new() -> Self {
        Self {
            admitted: 0,
            rejected: 0,
            degraded: 0,
            batches: 0,
            queue_depth: StreamStat::new(),
            batch_size: StreamStat::new(),
            service_cost: StreamStat::new(),
        }
    }
}

/// Everything a run produced.
pub struct ServeOutcome {
    /// Per-request results, in submission order.
    pub completions: Vec<Completion>,
    /// Integer-exact run statistics.
    pub stats: RunStats,
    /// Measured wall nanoseconds attributed to each request (its batch's
    /// wall for batched mode; 0 for rejected). Nonstructural: varies run to
    /// run and with thread count.
    pub wall_ns: Vec<u64>,
}

struct Instruments {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    degraded: Arc<Counter>,
    queue_depth: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

fn instruments() -> &'static Instruments {
    static I: OnceLock<Instruments> = OnceLock::new();
    I.get_or_init(|| Instruments {
        admitted: metrics::counter("serve.admitted"),
        rejected: metrics::counter("serve.rejected"),
        degraded: metrics::counter("serve.degraded"),
        queue_depth: metrics::histogram("serve.queue_depth"),
        batch_size: metrics::histogram("serve.batch_size"),
    })
}

/// The serving front end. Holds the shared registry and the rolling
/// per-variant cost histograms that feed the p99 admission estimate.
pub struct Server {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    hists: Mutex<HashMap<VariantKey, LogHist>>,
}

/// An admitted request after the admission sweep.
struct Admitted {
    req_idx: usize,
    variant: Arc<LoadedVariant>,
}

impl Server {
    /// Creates a server over a (possibly shared) registry.
    pub fn new(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Self {
        Self { registry, cfg, hists: Mutex::new(HashMap::new()) }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Forgets the rolling cost histograms, returning admission to a
    /// cold-start state (used by the bench to make repeated runs of the
    /// same workload identical).
    pub fn reset_history(&self) {
        self.hists.lock().expect("hist lock").clear();
    }

    /// Runs a workload in [`ExecMode::Batched`] mode.
    pub fn run(&self, requests: &[Request]) -> ServeOutcome {
        self.run_mode(requests, ExecMode::Batched)
    }

    /// Runs a workload: sequential deterministic admission sweep, then
    /// execution in the requested mode.
    pub fn run_mode(&self, requests: &[Request], mode: ExecMode) -> ServeOutcome {
        let ins = instruments();
        let mut stats = RunStats::new();
        let mut completions: Vec<Completion> = requests
            .iter()
            .map(|r| Completion {
                id: r.id,
                outcome: Outcome::Rejected { estimate: 0 },
                pred: None,
                logits: Vec::new(),
            })
            .collect();
        let mut wall_ns = vec![0u64; requests.len()];

        let admitted = self.admit(requests, &mut completions, &mut stats, ins);

        match mode {
            ExecMode::Batched => {
                self.exec_batched(requests, &admitted, &mut completions, &mut stats, &mut wall_ns)
            }
            ExecMode::Sequential => self.exec_sequential(
                requests,
                &admitted,
                &mut completions,
                &mut stats,
                &mut wall_ns,
            ),
        }
        ServeOutcome { completions, stats, wall_ns }
    }

    /// Deadline admission: arrival order, rounds of `round_requests`,
    /// estimate = max(plan cost + backlog, rolling p99 of observed cost),
    /// degrade ladder on miss.
    ///
    /// The queue backlog is tracked *per variant* in plan-cost units:
    /// admitted requests are grouped by variant and the groups execute
    /// concurrently, so a request only queues behind its own variant's
    /// earlier work. That also makes the degrade ladder effective
    /// mid-round — the sparser rung has both a cheaper plan and its own
    /// (usually shorter) queue.
    fn admit(
        &self,
        requests: &[Request],
        completions: &mut [Completion],
        stats: &mut RunStats,
        ins: &Instruments,
    ) -> Vec<Admitted> {
        let mut hists = self.hists.lock().expect("hist lock");
        let mut admitted = Vec::with_capacity(requests.len());
        let round = self.cfg.round_requests.max(1);
        let mut backlog: HashMap<VariantKey, u64> = HashMap::new();
        let mut in_round = 0u64;
        for (i, req) in requests.iter().enumerate() {
            if i % round == 0 {
                backlog.clear();
                in_round = 0;
            }
            stats.queue_depth.record(in_round);
            ins.queue_depth.record(in_round);

            let mut chosen: Option<(VariantKey, Arc<LoadedVariant>, u64)> = None;
            let mut first_estimate = 0u64;
            let mut candidate = Some(req.key);
            while let Some(key) = candidate {
                let variant = self.registry.get_or_load(key);
                let p99 = hists
                    .get(&key)
                    .filter(|h| h.count() > 0)
                    .map(|h| h.quantile_ppm(990_000))
                    .unwrap_or(0);
                // The rolling p99 is over *observed* cost (service + queue),
                // so it already prices congestion: take the max with the
                // current queue rather than adding on top, else historical
                // queueing double-counts and admission ratchets shut.
                let queued = backlog.get(&key).copied().unwrap_or(0);
                let estimate = (variant.plan.cost + queued).max(p99);
                if key == req.key {
                    first_estimate = estimate;
                }
                if estimate <= req.budget {
                    chosen = Some((key, variant, estimate));
                    break;
                }
                candidate = if self.cfg.degrade { key.degraded() } else { None };
            }

            match chosen {
                Some((key, variant, _est)) => {
                    let queued = backlog.get(&key).copied().unwrap_or(0);
                    let observed = variant.plan.cost + queued;
                    hists.entry(key).or_default().record(observed);
                    stats.service_cost.record(observed);
                    *backlog.entry(key).or_insert(0) += variant.plan.cost;
                    in_round += 1;
                    stats.admitted += 1;
                    ins.admitted.inc();
                    let outcome = if key == req.key {
                        Outcome::Served { key }
                    } else {
                        stats.degraded += 1;
                        ins.degraded.inc();
                        Outcome::Degraded { from: req.key, to: key }
                    };
                    completions[i].outcome = outcome;
                    admitted.push(Admitted { req_idx: i, variant });
                }
                None => {
                    stats.rejected += 1;
                    ins.rejected.inc();
                    completions[i].outcome = Outcome::Rejected { estimate: first_estimate };
                }
            }
        }
        admitted
    }

    /// Groups the admitted set by final variant (deterministic key order),
    /// chunks into `max_batch` GEMM-friendly batches, and fans the batches
    /// out over the worker pool. Logit rows are scattered back to the
    /// per-request completions.
    fn exec_batched(
        &self,
        requests: &[Request],
        admitted: &[Admitted],
        completions: &mut [Completion],
        stats: &mut RunStats,
        wall_ns: &mut [u64],
    ) {
        let ins = instruments();
        let mut groups: BTreeMap<(String, &'static str, &'static str), Vec<usize>> =
            BTreeMap::new();
        for (ai, adm) in admitted.iter().enumerate() {
            groups.entry(adm.variant.key.sort_key()).or_default().push(ai);
        }
        let mut batches: Vec<(Arc<LoadedVariant>, Vec<usize>)> = Vec::new();
        for idxs in groups.values() {
            for chunk in idxs.chunks(self.cfg.max_batch.max(1)) {
                let variant = Arc::clone(&admitted[chunk[0]].variant);
                batches.push((variant, chunk.to_vec()));
            }
        }
        for (_, chunk) in &batches {
            stats.batch_size.record(chunk.len() as u64);
            ins.batch_size.record(chunk.len() as u64);
        }
        stats.batches = batches.len() as u64;

        // (request indices, flat logits, preds, batch wall ns)
        type BatchResult = (Vec<usize>, Vec<f32>, Vec<usize>, u64);
        let q15 = self.cfg.q15;
        let results: Vec<BatchResult> = par::par_map(batches.len(), |bi| {
            let t0 = Instant::now();
            let (variant, chunk) = &batches[bi];
            let (logits, preds) = run_batch(
                variant,
                chunk.iter().map(|&ai| &requests[admitted[ai].req_idx].input),
                q15,
            );
            (chunk.clone(), logits, preds, t0.elapsed().as_nanos() as u64)
        });

        for (chunk, logits, preds, wall) in results {
            let classes = if chunk.is_empty() { 0 } else { logits.len() / chunk.len() };
            for (j, &ai) in chunk.iter().enumerate() {
                let ri = admitted[ai].req_idx;
                completions[ri].logits = logits[j * classes..(j + 1) * classes].to_vec();
                completions[ri].pred = Some(preds[j]);
                wall_ns[ri] = wall;
            }
        }
    }

    /// Baseline: one request at a time, on the calling thread, one reused
    /// scratch context.
    fn exec_sequential(
        &self,
        requests: &[Request],
        admitted: &[Admitted],
        completions: &mut [Completion],
        stats: &mut RunStats,
        wall_ns: &mut [u64],
    ) {
        let ins = instruments();
        let mut ctx = ExecCtx::new();
        for adm in admitted {
            stats.batch_size.record(1);
            ins.batch_size.record(1);
            stats.batches += 1;
            let ri = adm.req_idx;
            let t0 = Instant::now();
            let (logits, pred) = if self.cfg.q15 {
                let q = adm.variant.qmodel.as_ref().expect("q15 serving needs quantized variant");
                let l = q.forward_q15_with(&requests[ri].input, &mut ctx);
                let pred = argmax_slice(&l);
                (l, pred)
            } else {
                let out = adm.variant.model.infer(&requests[ri].input, &mut ctx);
                let pred = argmax_rows(&out)[0];
                (out.data().to_vec(), pred)
            };
            completions[ri].logits = logits;
            completions[ri].pred = Some(pred);
            wall_ns[ri] = t0.elapsed().as_nanos() as u64;
        }
    }
}

/// Executes one batch against a shared variant: gathers the inputs into a
/// `[n, ...]` tensor, runs the shared model through a fresh scratch context
/// (zero weight clones), and returns row-major logits plus argmax
/// predictions.
fn run_batch<'a>(
    variant: &LoadedVariant,
    inputs: impl Iterator<Item = &'a Tensor>,
    q15: bool,
) -> (Vec<f32>, Vec<usize>) {
    let inputs: Vec<&Tensor> = inputs.collect();
    assert!(!inputs.is_empty(), "empty batch");
    if q15 {
        let q = variant.qmodel.as_ref().expect("q15 serving needs quantized variant");
        let mut ctx = ExecCtx::new();
        let mut logits = Vec::new();
        let mut preds = Vec::new();
        for x in &inputs {
            let l = q.forward_q15_with(x, &mut ctx);
            preds.push(argmax_slice(&l));
            logits.extend_from_slice(&l);
        }
        (logits, preds)
    } else {
        let sample_dims = &inputs[0].dims()[1..];
        let numel: usize = sample_dims.iter().product();
        let mut dims = vec![inputs.len()];
        dims.extend_from_slice(sample_dims);
        let mut data = Vec::with_capacity(inputs.len() * numel);
        for x in &inputs {
            assert_eq!(&x.dims()[1..], sample_dims, "incompatible sample dims in batch");
            data.extend_from_slice(x.data());
        }
        let batch = Tensor::from_vec(&dims, data);
        let mut ctx = ExecCtx::new();
        let out = variant.model.infer(&batch, &mut ctx);
        let preds = argmax_rows(&out);
        (out.data().to_vec(), preds)
    }
}

fn argmax_slice(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{DeviceProfile, RegistryConfig};
    use iprune_device::power::PowerStrength;
    use iprune_models::App;

    fn requests(n: usize, key: VariantKey, budget: u64) -> Vec<Request> {
        let ds = key.app.dataset(n, 77);
        (0..n).map(|i| Request { id: i as u64, key, input: ds.sample(i), budget }).collect()
    }

    fn test_registry() -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::new(RegistryConfig { quantize: false, ..Default::default() }))
    }

    #[test]
    fn generous_budget_admits_everything() {
        let reg = test_registry();
        let key = VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Strong);
        let server = Server::new(reg, ServeConfig::default());
        let reqs = requests(10, key, u64::MAX);
        let out = server.run(&reqs);
        assert_eq!(out.stats.admitted, 10);
        assert_eq!(out.stats.rejected, 0);
        assert_eq!(out.stats.degraded, 0);
        for c in &out.completions {
            assert!(matches!(c.outcome, Outcome::Served { .. }));
            assert!(c.pred.is_some());
            assert!(!c.logits.is_empty());
        }
    }

    #[test]
    fn zero_budget_rejects_everything() {
        let reg = test_registry();
        let key = VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Strong);
        let server = Server::new(reg, ServeConfig::default());
        let reqs = requests(4, key, 0);
        let out = server.run(&reqs);
        assert_eq!(out.stats.rejected, 4);
        for c in &out.completions {
            assert!(matches!(c.outcome, Outcome::Rejected { estimate } if estimate > 0));
            assert!(c.logits.is_empty());
        }
    }

    #[test]
    fn tight_budget_degrades_to_sparser_variant() {
        let reg = test_registry();
        let key = VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Strong);
        let strong_cost = reg.get_or_load(key).plan.cost;
        let weak_cost = reg.get_or_load(key.degraded().unwrap()).plan.cost;
        assert!(weak_cost < strong_cost);
        // Budget fits the weak variant but not the strong one.
        let budget = (weak_cost + strong_cost) / 2;
        let server = Server::new(test_registry(), ServeConfig::default());
        let reqs = requests(1, key, budget);
        let out = server.run(&reqs);
        assert_eq!(out.stats.degraded, 1);
        assert!(matches!(
            out.completions[0].outcome,
            Outcome::Degraded { to, .. } if to == key.degraded().unwrap()
        ));
    }

    #[test]
    fn batched_and_sequential_agree_bitwise() {
        let reg = test_registry();
        let key = VariantKey::new(App::Cks, DeviceProfile::SmallCap, PowerStrength::Weak);
        let server = Server::new(reg, ServeConfig { max_batch: 4, ..Default::default() });
        let reqs = requests(9, key, u64::MAX);
        let batched = server.run_mode(&reqs, ExecMode::Batched);
        server.reset_history();
        let sequential = server.run_mode(&reqs, ExecMode::Sequential);
        for (b, s) in batched.completions.iter().zip(&sequential.completions) {
            assert_eq!(b.outcome, s.outcome);
            assert_eq!(b.pred, s.pred);
            assert_eq!(b.logits, s.logits, "batched logits must be bitwise sequential logits");
        }
    }

    #[test]
    fn round_reset_bounds_backlog() {
        let reg = test_registry();
        let key = VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Weak);
        let cost = reg.get_or_load(key).plan.cost;
        // A budget of 3·cost absorbs a small backlog but not a full round's:
        // the tail of each round is rejected, and the round boundary resets
        // the backlog so admission resumes. Weak power has no sparser rung
        // to degrade to, so the misses are hard rejects.
        let budget = 3 * cost;
        let server = Server::new(
            Arc::clone(&reg),
            ServeConfig { round_requests: 4, degrade: true, ..Default::default() },
        );
        let reqs = requests(8, key, budget);
        let out = server.run(&reqs);
        assert_eq!(out.stats.admitted + out.stats.rejected, 8);
        assert!(out.stats.rejected > 0, "budget pressure must bind");
        assert!(
            matches!(out.completions[3].outcome, Outcome::Rejected { .. }),
            "round-1 tail rejected under backlog"
        );
        assert!(
            matches!(out.completions[4].outcome, Outcome::Served { .. }),
            "round boundary resets the backlog"
        );
        assert!(out.stats.queue_depth.max < 4, "backlog never spans a round");
    }
}
