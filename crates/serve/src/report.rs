//! Deterministic serving bench report (`BENCH_serving.json`).
//!
//! Follows the workspace's structural-bytes discipline: every line except
//! those carrying wall-clock measurements (`wall_s`, `rps`, `lat_us*` — all
//! in `iprune_obs::history::NONSTRUCTURAL_MARKERS`) is byte-identical at
//! any thread count, any `IPRUNE_THREADS`, and any batch width. The
//! structural rows are variant plans, admission outcomes, and FNV-1a
//! checksums over the served logit bits, so CI can `grep -v` the marked
//! lines and `cmp` the rest across thread counts.

use crate::registry::LoadedVariant;
use iprune_obs::agg::StreamStat;
use std::fmt::Write as _;

/// FNV-1a over raw bytes (matches `iprune_obs::history`'s hashing choice:
/// stable, dependency-free, good avalanche for fingerprinting).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Folds a stream of logit slices into one order-sensitive checksum of
/// their exact bit patterns.
pub fn logits_checksum<'a>(rows: impl Iterator<Item = &'a [f32]>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in rows {
        for &v in row {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// One loaded variant's structural row.
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// App short name ("SQN"/"HAR"/"CKS").
    pub app: String,
    /// Device profile name.
    pub profile: String,
    /// Power-strength label.
    pub power: String,
    /// Target kept-weight ppm.
    pub keep_ppm: u32,
    /// Prunable layers in the plan.
    pub layers: usize,
    /// Layers routed through the sparse kernels.
    pub sparse_layers: usize,
    /// Plan cost (kept MACs per sample).
    pub cost: u64,
    /// Dense MACs per sample.
    pub dense_macs: u64,
    /// FNV-1a over the logit bits this variant produced for the workload.
    pub logit_checksum: u64,
}

impl VariantRow {
    /// Builds the row from a loaded variant plus its served-logit checksum.
    pub fn of(v: &LoadedVariant, logit_checksum: u64) -> Self {
        Self {
            app: v.key.app.name().to_string(),
            profile: v.key.profile.name().to_string(),
            power: v.key.power.label().to_string(),
            keep_ppm: v.key.keep_ppm(),
            layers: v.plan.rows.len(),
            sparse_layers: v.plan.sparse_layers(),
            cost: v.plan.cost,
            dense_macs: v.plan.dense_macs,
            logit_checksum,
        }
    }
}

/// The admission outcome block: exact integers, thread-count invariant.
#[derive(Debug, Clone)]
pub struct AdmissionBlock {
    /// Requests that executed.
    pub admitted: u64,
    /// Requests rejected on every ladder rung.
    pub rejected: u64,
    /// Admitted requests that ran on a sparser variant.
    pub degraded: u64,
    /// Batches executed.
    pub batches: u64,
    /// Queue depth at each submission.
    pub queue_depth: StreamStat,
    /// Executed batch sizes.
    pub batch_size: StreamStat,
    /// Observed integer service cost per admitted request.
    pub service_cost: StreamStat,
    /// FNV-1a over each completion's (id, outcome tag, final key, pred).
    pub outcome_checksum: u64,
}

/// One measured throughput row — rendered on a single line carrying the
/// `rps`/`lat_us` nonstructural markers, so it is excluded from structural
/// hashing and CI byte-compares.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Worker threads (`IPRUNE_THREADS`).
    pub threads: usize,
    /// `"batched"` or `"sequential"`.
    pub mode: &'static str,
    /// Requests per second over the whole run.
    pub rps: f64,
    /// Median per-request latency, microseconds.
    pub lat_us_p50: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub lat_us_p99: f64,
}

/// The full report.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Bench scale label ("smoke"/"standard"/"paper").
    pub scale: String,
    /// Requests in the workload.
    pub requests: usize,
    /// Configured max batch width.
    pub max_batch: usize,
    /// Scheduling round length.
    pub round: usize,
    /// Loaded variants, sorted by key.
    pub variants: Vec<VariantRow>,
    /// Admission outcomes.
    pub admission: AdmissionBlock,
    /// Measured throughput rows (nonstructural).
    pub throughput: Vec<ThroughputRow>,
    /// Total bench wall seconds (nonstructural).
    pub wall_s: f64,
}

fn stat_json(s: &StreamStat) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
        s.count,
        s.mean(),
        s.min_or_zero(),
        s.max,
        s.quantile_ppm(500_000),
        s.quantile_ppm(990_000)
    )
}

impl ServingReport {
    /// Renders the report without the wall-clock line. Lines carrying
    /// measured values (`rps`, `lat_us*`) are still present but marked
    /// nonstructural, so hashes and filtered byte-compares skip them.
    pub fn structural_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"serving\",\n");
        let _ = writeln!(out, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(out, "  \"requests\": {},", self.requests);
        let _ = writeln!(out, "  \"max_batch\": {},", self.max_batch);
        let _ = writeln!(out, "  \"round\": {},", self.round);
        out.push_str("  \"variants\": [\n");
        for (i, v) in self.variants.iter().enumerate() {
            let comma = if i + 1 < self.variants.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"app\": \"{}\", \"profile\": \"{}\", \"power\": \"{}\", \
                 \"keep_ppm\": {}, \"layers\": {}, \"sparse_layers\": {}, \"cost\": {}, \
                 \"dense_macs\": {}, \"logit_checksum\": \"{:016x}\"}}{}",
                v.app,
                v.profile,
                v.power,
                v.keep_ppm,
                v.layers,
                v.sparse_layers,
                v.cost,
                v.dense_macs,
                v.logit_checksum,
                comma
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"admission\": {\n");
        let a = &self.admission;
        let _ = writeln!(out, "    \"admitted\": {},", a.admitted);
        let _ = writeln!(out, "    \"rejected\": {},", a.rejected);
        let _ = writeln!(out, "    \"degraded\": {},", a.degraded);
        let _ = writeln!(out, "    \"batches\": {},", a.batches);
        let _ = writeln!(out, "    \"queue_depth\": {},", stat_json(&a.queue_depth));
        let _ = writeln!(out, "    \"batch_size\": {},", stat_json(&a.batch_size));
        let _ = writeln!(out, "    \"service_cost\": {},", stat_json(&a.service_cost));
        let _ = writeln!(out, "    \"outcome_checksum\": \"{:016x}\"", a.outcome_checksum);
        out.push_str("  },\n");
        out.push_str("  \"throughput\": [\n");
        for (i, t) in self.throughput.iter().enumerate() {
            let comma = if i + 1 < self.throughput.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"threads\": {}, \"mode\": \"{}\", \"rps\": {:.1}, \
                 \"lat_us_p50\": {:.1}, \"lat_us_p99\": {:.1}}}{}",
                t.threads, t.mode, t.rps, t.lat_us_p50, t.lat_us_p99, comma
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Full report: the structural body with the wall-clock line spliced in
    /// on its own line (so `grep -v wall_s` recovers the filtered view).
    pub fn to_json(&self) -> String {
        self.structural_json().replacen(
            "  \"variants\": [",
            &format!("  \"wall_s\": {:.3},\n  \"variants\": [", self.wall_s),
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(wall_s: f64, rps: f64) -> ServingReport {
        let mut qd = StreamStat::new();
        qd.record(0);
        qd.record(3);
        ServingReport {
            scale: "smoke".into(),
            requests: 8,
            max_batch: 4,
            round: 8,
            variants: vec![VariantRow {
                app: "HAR".into(),
                profile: "nominal".into(),
                power: "strong (8 mW)".into(),
                keep_ppm: 500_000,
                layers: 4,
                sparse_layers: 3,
                cost: 123_456,
                dense_macs: 319_000,
                logit_checksum: 0xdead_beef,
            }],
            admission: AdmissionBlock {
                admitted: 7,
                rejected: 1,
                degraded: 2,
                batches: 3,
                queue_depth: qd.clone(),
                batch_size: qd.clone(),
                service_cost: qd,
                outcome_checksum: 0xabc,
            },
            throughput: vec![ThroughputRow {
                threads: 1,
                mode: "batched",
                rps,
                lat_us_p50: 10.0,
                lat_us_p99: 20.0,
            }],
            wall_s,
        }
    }

    #[test]
    fn structural_json_ignores_measured_values() {
        let a = sample_report(1.0, 100.0);
        let b = sample_report(9.0, 900.0);
        // wall differs only in to_json; rps rows are present in both but on
        // marker-carrying lines.
        assert_eq!(
            a.structural_json().replace("\"rps\": 100.0", "RPS"),
            b.structural_json().replace("\"rps\": 900.0", "RPS"),
        );
        let filter = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall_s") && !l.contains("rps") && !l.contains("lat_us"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(filter(&a.to_json()), filter(&b.to_json()));
    }

    #[test]
    fn wall_line_splices_cleanly() {
        let r = sample_report(1.234, 10.0);
        let json = r.to_json();
        assert!(json.contains("  \"wall_s\": 1.234,\n  \"variants\": ["));
        assert_eq!(json.matches("wall_s").count(), 1);
    }

    #[test]
    fn fnv_checksums_are_order_sensitive() {
        let a = [1.0f32, 2.0];
        let b = [2.0f32, 1.0];
        assert_ne!(logits_checksum([&a[..]].into_iter()), logits_checksum([&b[..]].into_iter()));
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
