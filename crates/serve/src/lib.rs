//! Inference serving for pruned iPrune models (`iprune-serve`).
//!
//! The paper's models are pruned *per deployment point*: the right variant
//! depends on the workload, the device's hardware profile, and how much
//! power it harvests. This crate serves all of those variants from one
//! process:
//!
//! 1. **Registry** ([`registry`]): a [`registry::ModelRegistry`] lazily
//!    loads one immutable [`registry::LoadedVariant`] per
//!    [`registry::VariantKey`] — `Arc`-shared weights + mask
//!    `SparseIndex` strips, a cached integer [`registry::DispatchPlan`],
//!    and Q15 calibration tables. Requests execute against the shared
//!    state through per-request [`iprune_tensor::exec::ExecCtx`] scratch:
//!    zero weight clones per request.
//! 2. **Front end** ([`server`]): a [`server::Server`] admits by deadline
//!    (estimate = cached plan cost ⊔ rolling [`iprune_obs::agg::LogHist`]
//!    p99, plus the round's queue backlog), walks the degrade ladder to a
//!    sparser variant when the budget misses, batches compatible requests
//!    into GEMM-friendly groups, and fans batches out over the
//!    `iprune_tensor::par` worker pool. All decisions are integer-exact and
//!    thread-count invariant; logits are bitwise-identical to running each
//!    sample alone.
//! 3. **Report** ([`report`]): the deterministic `BENCH_serving.json`
//!    renderer — structural rows (plans, admission outcomes, logit
//!    checksums) byte-identical at any thread count, wall-clock and
//!    requests/s on marked nonstructural lines.

pub mod registry;
pub mod report;
pub mod server;

pub use registry::{
    DeviceProfile, DispatchPlan, LoadedVariant, ModelRegistry, PlanRow, RegistryConfig, VariantKey,
};
pub use report::{AdmissionBlock, ServingReport, ThroughputRow, VariantRow};
pub use server::{
    Completion, ExecMode, Outcome, Request, RunStats, ServeConfig, ServeOutcome, Server,
};
