//! The pruned-model registry: one lazily-loaded, `Arc`-shared
//! [`LoadedVariant`] per (workload, device profile, power strength) key.
//!
//! A variant is built deterministically on first request: the app's model is
//! constructed from its seeded initializer, pruned to the key's target
//! density with per-layer magnitude masks, its layer dispatch plan (GEMM
//! shapes, sparse-dispatch decisions, integer MAC costs) is cached, and the
//! Q15 calibration tables are built once for device-numerics serving. After
//! that the variant is immutable: any number of in-flight requests execute
//! against the same weights through per-request
//! [`iprune_tensor::exec::ExecCtx`] scratch — zero weight clones per
//! request, which `tests/serving_determinism.rs` pins against the
//! `tensor.weight_clones` counter.

use iprune_device::power::PowerStrength;
use iprune_models::qeval::{QuantizedModel, DEFAULT_CALIBRATION};
use iprune_models::zoo::App;
use iprune_models::Model;
use iprune_obs::metrics::{self, Counter};
use iprune_tensor::layer::Layer;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Device hardware profile, mirroring the fleet population's variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeviceProfile {
    /// Reference MSP430 configuration.
    Nominal,
    /// Smaller storage capacitor — tighter progress windows, prune harder.
    SmallCap,
    /// Larger capacitor — can afford a denser model.
    BigCap,
    /// Slow FRAM — checkpoint traffic is pricier, prune slightly harder.
    SlowFram,
}

impl DeviceProfile {
    /// All profiles, in deterministic order.
    pub fn all() -> [DeviceProfile; 4] {
        [Self::Nominal, Self::SmallCap, Self::BigCap, Self::SlowFram]
    }

    /// Stable name (matches `iprune_fleet::population` variant names).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Nominal => "nominal",
            Self::SmallCap => "small-cap",
            Self::BigCap => "big-cap",
            Self::SlowFram => "slow-fram",
        }
    }

    /// Density adjustment in ppm applied on top of the power-strength base.
    fn keep_adjust_ppm(&self) -> i64 {
        match self {
            Self::Nominal => 0,
            Self::SmallCap => -100_000,
            Self::BigCap => 100_000,
            Self::SlowFram => -50_000,
        }
    }
}

/// Registry key: which pruned variant a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VariantKey {
    /// The workload (application model).
    pub app: App,
    /// Device hardware profile.
    pub profile: DeviceProfile,
    /// Harvested-power strength.
    pub power: PowerStrength,
}

impl VariantKey {
    /// Creates a key.
    pub fn new(app: App, profile: DeviceProfile, power: PowerStrength) -> Self {
        Self { app, profile, power }
    }

    /// Target kept-weight fraction in ppm: weaker power and tighter device
    /// profiles get sparser variants. Clamped to `[100_000, 1_000_000]`.
    pub fn keep_ppm(&self) -> u32 {
        let base: i64 = match self.power {
            PowerStrength::Continuous => 1_000_000,
            PowerStrength::Strong => 500_000,
            PowerStrength::Weak => 300_000,
        };
        (base + self.profile.keep_adjust_ppm()).clamp(100_000, 1_000_000) as u32
    }

    /// The next key down the degrade ladder (same app/profile, weaker
    /// power → sparser, cheaper variant), if any.
    pub fn degraded(&self) -> Option<VariantKey> {
        let power = match self.power {
            PowerStrength::Continuous => PowerStrength::Strong,
            PowerStrength::Strong => PowerStrength::Weak,
            PowerStrength::Weak => return None,
        };
        Some(Self { power, ..*self })
    }

    /// Deterministic sort key (label-based, stable across runs).
    pub fn sort_key(&self) -> (String, &'static str, &'static str) {
        (self.app.name().to_string(), self.profile.name(), self.power.label())
    }
}

impl fmt::Display for VariantKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.app.name(), self.profile.name(), self.power.label())
    }
}

/// One prunable layer's entry in the cached dispatch plan.
#[derive(Debug, Clone)]
pub struct PlanRow {
    /// Prunable layer id.
    pub layer_id: usize,
    /// Layer name from the model description.
    pub name: String,
    /// `"conv"` or `"fc"`.
    pub kind: &'static str,
    /// GEMM rows (output channels / features).
    pub m: usize,
    /// GEMM depth (inputs per output).
    pub k: usize,
    /// Output positions per sample (1 for fc).
    pub spatial: usize,
    /// Kept (unpruned) weights.
    pub kept: u64,
    /// Total weights.
    pub total: u64,
    /// Kept MACs per sample — the layer's integer service cost.
    pub alive_macs: u64,
    /// Whether the Auto dispatch policy routes this layer through the
    /// block-sparse kernels.
    pub sparse: bool,
}

/// The per-variant execution plan, cached at load time: integer costs drive
/// the deadline-admission estimates, so scheduling decisions never depend on
/// wall-clock measurements (thread-count invariance).
#[derive(Debug, Clone)]
pub struct DispatchPlan {
    /// Per-layer rows, sorted by layer id.
    pub rows: Vec<PlanRow>,
    /// Total kept MACs per sample — the variant's service cost unit.
    pub cost: u64,
    /// Dense (unpruned) MACs per sample, for reference.
    pub dense_macs: u64,
}

impl DispatchPlan {
    /// Builds the plan from a loaded (masked) model.
    pub fn of(model: &Model) -> Self {
        let mut rows = Vec::with_capacity(model.info.prunables.len());
        let mut kept_by_id: HashMap<usize, u64> = HashMap::new();
        let mut sparse_by_id: HashMap<usize, bool> = HashMap::new();
        model.net().visit_params_ref(&mut |p| {
            if p.name.ends_with(".w") {
                let kept = match &p.mask {
                    Some(m) => m.data().iter().filter(|&&v| v != 0.0).count() as u64,
                    None => p.value.numel() as u64,
                };
                kept_by_id.insert(p.layer_id, kept);
                sparse_by_id.insert(
                    p.layer_id,
                    p.sparse_index().is_some_and(|i| i.below_dispatch_threshold()),
                );
            }
        });
        let mut cost = 0u64;
        let mut dense_macs = 0u64;
        for info in &model.info.prunables {
            let total = info.weights() as u64;
            let kept = *kept_by_id.get(&info.layer_id).unwrap_or(&total);
            let per_weight = (info.macs() / info.weights()) as u64;
            let alive_macs = kept * per_weight;
            cost += alive_macs;
            dense_macs += info.macs() as u64;
            rows.push(PlanRow {
                layer_id: info.layer_id,
                name: info.name.clone(),
                kind: if info.is_conv() { "conv" } else { "fc" },
                m: info.weights() / info.k_len(),
                k: info.k_len(),
                spatial: per_weight as usize,
                kept,
                total,
                alive_macs,
                sparse: *sparse_by_id.get(&info.layer_id).unwrap_or(&false),
            });
        }
        rows.sort_by_key(|r| r.layer_id);
        Self { rows, cost, dense_macs }
    }

    /// How many layers dispatch through the sparse kernels.
    pub fn sparse_layers(&self) -> usize {
        self.rows.iter().filter(|r| r.sparse).count()
    }
}

/// A loaded, immutable variant: `Arc`-shared model (params + mask
/// `SparseIndex` strips), cached dispatch plan, and Q15 calibration tables.
pub struct LoadedVariant {
    /// The registry key this variant serves.
    pub key: VariantKey,
    /// The shared model; all requests execute against this one copy.
    pub model: Arc<Model>,
    /// Q15-quantized twin (calibration tables + i16 weights) for
    /// device-numerics serving, built once at load.
    pub qmodel: Option<Arc<QuantizedModel>>,
    /// Cached execution plan.
    pub plan: DispatchPlan,
}

/// Registry configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Build the Q15 tables at load (costs one small calibration run).
    pub quantize: bool,
    /// Calibration samples for the Q15 tables.
    pub calib_samples: usize,
    /// Seed for the deterministic calibration subset.
    pub calib_seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self { quantize: true, calib_samples: DEFAULT_CALIBRATION, calib_seed: 0xCA_11B }
    }
}

/// Lazily-loading registry of pruned model variants.
///
/// Loads happen under the registry lock, so each variant is built exactly
/// once and every caller gets the same `Arc`. Builds are deterministic
/// (seeded initializers + magnitude masks), so two processes loading the
/// same key hold bitwise-identical weights.
pub struct ModelRegistry {
    cfg: RegistryConfig,
    slots: Mutex<HashMap<VariantKey, Arc<LoadedVariant>>>,
}

fn load_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("serve.registry.loads"))
}

fn hit_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| metrics::counter("serve.registry.hits"))
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new(RegistryConfig::default())
    }
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new(cfg: RegistryConfig) -> Self {
        Self { cfg, slots: Mutex::new(HashMap::new()) }
    }

    /// Returns the variant for `key`, building it on first use.
    pub fn get_or_load(&self, key: VariantKey) -> Arc<LoadedVariant> {
        let mut slots = self.slots.lock().expect("registry lock");
        if let Some(v) = slots.get(&key) {
            hit_counter().inc();
            return Arc::clone(v);
        }
        load_counter().inc();
        let v = Arc::new(self.build(key));
        slots.insert(key, Arc::clone(&v));
        v
    }

    /// All loaded variants, sorted by key (deterministic report order).
    pub fn loaded(&self) -> Vec<Arc<LoadedVariant>> {
        let slots = self.slots.lock().expect("registry lock");
        let mut out: Vec<Arc<LoadedVariant>> = slots.values().cloned().collect();
        out.sort_by_key(|v| v.key.sort_key());
        out
    }

    fn build(&self, key: VariantKey) -> LoadedVariant {
        let mut model = key.app.build();
        let keep = key.keep_ppm();
        if keep < 1_000_000 {
            // block-granular masks so pruned variants actually dispatch
            // through the sparse GEMM kernels, not just skip multiplies
            let masks = model.block_magnitude_masks(keep);
            model.set_masks(&masks);
        }
        let qmodel = if self.cfg.quantize {
            let calib = key.app.dataset(self.cfg.calib_samples, self.cfg.calib_seed);
            Some(Arc::new(QuantizedModel::quantize(&mut model, &calib, self.cfg.calib_samples)))
        } else {
            None
        };
        let plan = DispatchPlan::of(&model);
        LoadedVariant { key, model: Arc::new(model), qmodel, plan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_ppm_orders_power_and_profile() {
        let k = |profile, power| VariantKey::new(App::Har, profile, power).keep_ppm();
        assert_eq!(k(DeviceProfile::Nominal, PowerStrength::Continuous), 1_000_000);
        assert!(
            k(DeviceProfile::Nominal, PowerStrength::Strong)
                > k(DeviceProfile::Nominal, PowerStrength::Weak)
        );
        assert!(
            k(DeviceProfile::BigCap, PowerStrength::Strong)
                > k(DeviceProfile::SmallCap, PowerStrength::Strong)
        );
        assert!(k(DeviceProfile::SmallCap, PowerStrength::Weak) >= 100_000);
    }

    #[test]
    fn degrade_ladder_descends_to_weak() {
        let key = VariantKey::new(App::Cks, DeviceProfile::Nominal, PowerStrength::Continuous);
        let s = key.degraded().unwrap();
        assert_eq!(s.power, PowerStrength::Strong);
        let w = s.degraded().unwrap();
        assert_eq!(w.power, PowerStrength::Weak);
        assert!(w.degraded().is_none());
        assert!(key.keep_ppm() > s.keep_ppm() && s.keep_ppm() > w.keep_ppm());
    }

    #[test]
    fn registry_loads_once_and_shares() {
        let reg = ModelRegistry::default();
        let key = VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Strong);
        let loads0 = load_counter().get();
        let a = reg.get_or_load(key);
        let b = reg.get_or_load(key);
        assert!(Arc::ptr_eq(&a, &b), "same Arc for the same key");
        assert_eq!(load_counter().get() - loads0, 1, "one load, then hits");
        assert!(a.plan.cost < a.plan.dense_macs, "pruned variant costs less than dense");
        assert!(a.qmodel.is_some(), "Q15 tables built at load");
    }

    #[test]
    fn plan_costs_follow_density() {
        let reg = ModelRegistry::new(RegistryConfig { quantize: false, ..Default::default() });
        let strong = reg.get_or_load(VariantKey::new(
            App::Har,
            DeviceProfile::Nominal,
            PowerStrength::Strong,
        ));
        let weak =
            reg.get_or_load(VariantKey::new(App::Har, DeviceProfile::Nominal, PowerStrength::Weak));
        assert!(weak.plan.cost < strong.plan.cost, "sparser variant is cheaper");
        assert_eq!(strong.plan.rows.len(), strong.model.info.prunables.len());
        for row in &strong.plan.rows {
            assert!(row.kept <= row.total);
            assert_eq!(row.alive_macs, row.kept * row.spatial as u64);
        }
    }
}
