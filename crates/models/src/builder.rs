//! A builder for custom sequential models.
//!
//! The paper evaluates three fixed applications, but a pruning framework is
//! only adoptable if users can bring their own networks. [`NetBuilder`]
//! assembles a [`Model`] — the trainable network *and* the structural
//! [`ModelInfo`] the deployment/pruning stack consumes — from a sequence of
//! layer specs, keeping the two representations consistent by construction.
//!
//! ```
//! use iprune_models::builder::NetBuilder;
//!
//! let model = NetBuilder::new("tiny", [1, 8, 8], 4)
//!     .conv(6, 3, 1, true)
//!     .maxpool(2, 2)
//!     .fire(4, 6, 6)
//!     .flatten()
//!     .fc(4, false)
//!     .build();
//! assert_eq!(model.info.classes, 4);
//! ```

use crate::arch::{BufDesc, GraphOp, ModelInfo, PrunableInfo, PrunableKind};
use crate::fire::Fire;
use crate::model::Model;
use iprune_tensor::layer::{
    Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, Relu, Sequential,
};

/// Incrementally builds a sequential model plus its structural description.
pub struct NetBuilder {
    name: String,
    classes: usize,
    input_dims: [usize; 3],
    prunables: Vec<PrunableInfo>,
    graph: Vec<GraphOp>,
    buffers: Vec<BufDesc>,
    layers: Vec<Box<dyn Layer>>,
    /// Current shape: Some([c,h,w]) for feature maps, None after flatten
    /// (then `flat_dim` holds the vector length).
    cur_map: Option<[usize; 3]>,
    flat_dim: usize,
}

impl NetBuilder {
    /// Starts a model with the given input shape `[c, h, w]` and class
    /// count.
    pub fn new(name: impl Into<String>, input_dims: [usize; 3], classes: usize) -> Self {
        Self {
            name: name.into(),
            classes,
            input_dims,
            prunables: Vec::new(),
            graph: Vec::new(),
            buffers: vec![BufDesc { dims: input_dims.to_vec() }],
            layers: Vec::new(),
            cur_map: Some(input_dims),
            flat_dim: 0,
        }
    }

    fn cur_buf(&self) -> usize {
        self.buffers.len() - 1
    }

    fn map(&self) -> [usize; 3] {
        self.cur_map.expect("operation requires a feature map (did you flatten already?)")
    }

    /// Appends a square-kernel convolution (`cout` filters, `k`×`k`,
    /// stride `stride`, 'same'-style padding `k/2`), optionally fused with
    /// ReLU.
    pub fn conv(self, cout: usize, k: usize, stride: usize, relu: bool) -> Self {
        self.conv_shaped(cout, k, k, stride, k / 2, k / 2, relu)
    }

    /// Appends a rectangular-kernel convolution.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_shaped(
        mut self,
        cout: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
        relu: bool,
    ) -> Self {
        let [cin, h, w] = self.map();
        let layer_id = self.prunables.len();
        let info = PrunableInfo {
            layer_id,
            name: format!("conv{layer_id}"),
            kind: PrunableKind::Conv { cin, cout, kh, kw, stride, pad_h, pad_w, in_h: h, in_w: w },
        };
        let (oh, ow) = info.out_hw();
        let src = self.cur_buf();
        self.prunables.push(info);
        self.buffers.push(BufDesc { dims: vec![cout, oh, ow] });
        self.graph.push(GraphOp::Conv { layer_id, src, dst: src + 1, dst_c_off: 0, relu });
        self.layers
            .push(Box::new(Conv2d::with_shape(layer_id, cin, cout, kh, kw, stride, pad_h, pad_w)));
        if relu {
            self.layers.push(Box::new(Relu::new()));
        }
        self.cur_map = Some([cout, oh, ow]);
        self
    }

    /// Appends a SqueezeNet-style fire module (squeeze 1×1 → expand 1×1 ‖
    /// expand 3×3, all ReLU).
    pub fn fire(mut self, squeeze: usize, e1: usize, e3: usize) -> Self {
        let [cin, h, w] = self.map();
        let sq_id = self.prunables.len();
        let src = self.cur_buf();
        self.prunables.push(PrunableInfo {
            layer_id: sq_id,
            name: format!("fire{sq_id}.squeeze"),
            kind: PrunableKind::Conv {
                cin,
                cout: squeeze,
                kh: 1,
                kw: 1,
                stride: 1,
                pad_h: 0,
                pad_w: 0,
                in_h: h,
                in_w: w,
            },
        });
        self.prunables.push(PrunableInfo {
            layer_id: sq_id + 1,
            name: format!("fire{sq_id}.expand1x1"),
            kind: PrunableKind::Conv {
                cin: squeeze,
                cout: e1,
                kh: 1,
                kw: 1,
                stride: 1,
                pad_h: 0,
                pad_w: 0,
                in_h: h,
                in_w: w,
            },
        });
        self.prunables.push(PrunableInfo {
            layer_id: sq_id + 2,
            name: format!("fire{sq_id}.expand3x3"),
            kind: PrunableKind::Conv {
                cin: squeeze,
                cout: e3,
                kh: 3,
                kw: 3,
                stride: 1,
                pad_h: 1,
                pad_w: 1,
                in_h: h,
                in_w: w,
            },
        });
        // squeeze buffer, then concat buffer
        self.buffers.push(BufDesc { dims: vec![squeeze, h, w] });
        self.buffers.push(BufDesc { dims: vec![e1 + e3, h, w] });
        let sq_buf = src + 1;
        let cat_buf = src + 2;
        self.graph.push(GraphOp::Conv {
            layer_id: sq_id,
            src,
            dst: sq_buf,
            dst_c_off: 0,
            relu: true,
        });
        self.graph.push(GraphOp::Conv {
            layer_id: sq_id + 1,
            src: sq_buf,
            dst: cat_buf,
            dst_c_off: 0,
            relu: true,
        });
        self.graph.push(GraphOp::Conv {
            layer_id: sq_id + 2,
            src: sq_buf,
            dst: cat_buf,
            dst_c_off: e1,
            relu: true,
        });
        self.layers.push(Box::new(Fire::new(sq_id, cin, squeeze, e1, e3)));
        self.cur_map = Some([e1 + e3, h, w]);
        self
    }

    /// Appends non-overlapping max pooling with window `kh`×`kw`.
    pub fn maxpool(mut self, kh: usize, kw: usize) -> Self {
        let [c, h, w] = self.map();
        let src = self.cur_buf();
        let (oh, ow) = (h / kh, w / kw);
        assert!(oh > 0 && ow > 0, "pool window larger than the map");
        self.buffers.push(BufDesc { dims: vec![c, oh, ow] });
        self.graph.push(GraphOp::MaxPool { src, dst: src + 1, kh, kw });
        self.layers.push(Box::new(MaxPool2d::with_window(kh, kw)));
        self.cur_map = Some([c, oh, ow]);
        self
    }

    /// Appends global average pooling (`[c,h,w] → [c]`).
    pub fn global_avg_pool(mut self) -> Self {
        let [c, _, _] = self.map();
        let src = self.cur_buf();
        self.buffers.push(BufDesc { dims: vec![c] });
        self.graph.push(GraphOp::GlobalAvgPool { src, dst: src + 1 });
        self.layers.push(Box::new(GlobalAvgPool::new()));
        self.cur_map = None;
        self.flat_dim = c;
        self
    }

    /// Reinterprets the feature map as a flat vector.
    pub fn flatten(mut self) -> Self {
        let [c, h, w] = self.map();
        let src = self.cur_buf();
        self.buffers.push(BufDesc { dims: vec![c * h * w] });
        self.graph.push(GraphOp::Flatten { src, dst: src + 1 });
        self.layers.push(Box::new(Flatten::new()));
        self.cur_map = None;
        self.flat_dim = c * h * w;
        self
    }

    /// Appends a fully-connected layer, optionally fused with ReLU.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::flatten`] or
    /// [`Self::global_avg_pool`].
    pub fn fc(mut self, dout: usize, relu: bool) -> Self {
        assert!(self.cur_map.is_none(), "fc requires a flattened input");
        let din = self.flat_dim;
        let layer_id = self.prunables.len();
        let src = self.cur_buf();
        self.prunables.push(PrunableInfo {
            layer_id,
            name: format!("fc{layer_id}"),
            kind: PrunableKind::Fc { din, dout },
        });
        self.buffers.push(BufDesc { dims: vec![dout] });
        self.graph.push(GraphOp::Fc { layer_id, src, dst: src + 1, relu });
        self.layers.push(Box::new(Linear::new(din, dout, layer_id)));
        if relu {
            self.layers.push(Box::new(Relu::new()));
        }
        self.flat_dim = dout;
        self
    }

    /// Finalizes the model.
    ///
    /// # Panics
    ///
    /// Panics if the final buffer does not hold exactly `classes` values,
    /// or any internal inconsistency is detected.
    pub fn build(self) -> Model {
        let info = ModelInfo {
            name: self.name,
            classes: self.classes,
            input_dims: self.input_dims,
            prunables: self.prunables,
            graph: self.graph,
            buffers: self.buffers,
        };
        Model::new(info, Sequential::new(self.layers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_tensor::Tensor;

    #[test]
    fn builder_matches_handwritten_har() {
        let built = NetBuilder::new("HAR", [3, 128, 1], 6)
            .conv_shaped(16, 3, 1, 1, 1, 0, true)
            .maxpool(2, 1)
            .conv_shaped(32, 3, 1, 1, 1, 0, true)
            .maxpool(2, 1)
            .conv_shaped(64, 3, 1, 1, 1, 0, true)
            .maxpool(2, 1)
            .flatten()
            .fc(6, false)
            .build();
        let hand = crate::zoo::App::Har.build();
        assert_eq!(built.info.total_weights(), hand.info.total_weights());
        assert_eq!(built.info.total_macs(), hand.info.total_macs());
        assert_eq!(built.info.layer_tally(), hand.info.layer_tally());
    }

    #[test]
    fn builder_fire_and_gap() {
        let mut m = NetBuilder::new("mini-squeeze", [3, 16, 16], 5)
            .conv(8, 3, 2, true)
            .fire(4, 8, 8)
            .maxpool(2, 2)
            .conv(5, 1, 1, false)
            .global_avg_pool()
            .build();
        let y = m.forward(&Tensor::zeros(&[2, 3, 16, 16]), false);
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    #[should_panic(expected = "fc requires a flattened input")]
    fn fc_before_flatten_panics() {
        let _ = NetBuilder::new("bad", [1, 4, 4], 2).conv(2, 3, 1, true).fc(2, false);
    }

    #[test]
    #[should_panic(expected = "final buffer must hold the logits")]
    fn wrong_class_count_panics() {
        let _ = NetBuilder::new("bad", [1, 4, 4], 3).flatten().fc(2, false).build();
    }
}
