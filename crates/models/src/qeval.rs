//! Host-side Q15 evaluation: device numerics at host speed.
//!
//! The device simulator (`iprune-hawaii`) evaluates quantized models one
//! accelerator job at a time — faithful, but far too slow for sweeping
//! accuracy over a model zoo. This module runs the *same* fixed-point
//! arithmetic through the host Q15 GEMM ([`iprune_tensor::qgemm`]):
//! identical calibration, identical i16×i16→i64 accumulation with the bias
//! preloaded at accumulator scale, identical arithmetic-shift
//! requantization, and identical integer pooling — so its logits are
//! bit-equal to the device engine's, at the host's SIMD throughput.
//!
//! Calibration mirrors `iprune-hawaii`'s `deploy` step exactly: per-buffer
//! ranges from the float reference executor ([`crate::graphref`]) over a
//! handful of samples, shape-preserving ops pinned to their input format,
//! and the bias format capped at the accumulator depth.
//!
//! Set `IPRUNE_EVAL=q15` to route [`crate::train::evaluate`] through this
//! engine and measure the f32→Q15 accuracy delta of a trained model.

use crate::arch::{GraphOp, ModelInfo, PrunableKind};
use crate::graphref::run_graph;
use crate::model::Model;
use iprune_datasets::Dataset;
use iprune_tensor::qgemm::q15_gemm;
use iprune_tensor::quant::{QFormat, QTensor};
use iprune_tensor::Tensor;

/// Default number of calibration samples (matches the device deploy step).
pub const DEFAULT_CALIBRATION: usize = 8;

/// One quantized prunable layer: dense i16 weights in GEMM row-major
/// (`[m][k]`) plus the bias at its own format.
#[derive(Debug, Clone)]
struct QLayer {
    w: Vec<i16>,
    w_frac: u8,
    bias: Vec<i16>,
    bias_frac: u8,
    m: usize,
    k: usize,
}

/// A model quantized for host Q15 inference.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    info: ModelInfo,
    layers: Vec<QLayer>,
    buf_fmts: Vec<QFormat>,
}

impl QuantizedModel {
    /// Quantizes `model`, calibrating activation formats on up to `n_calib`
    /// samples of `calib` — the same procedure as the device deployment, so
    /// formats (and therefore logits) agree bitwise with the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty or its sample shape differs from the
    /// model input.
    pub fn quantize(model: &mut Model, calib: &Dataset, n_calib: usize) -> Self {
        assert!(!calib.is_empty(), "calibration set must not be empty");
        let weights = model.extract_weights();
        let info = model.info.clone();

        let mut max_abs = vec![0.0f32; info.buffers.len()];
        for i in 0..n_calib.min(calib.len()) {
            let bufs = run_graph(&info, &weights, &calib.sample(i));
            for (m, buf) in max_abs.iter_mut().zip(bufs.iter()) {
                for &v in buf {
                    *m = m.max(v.abs());
                }
            }
        }
        let mut buf_fmts: Vec<QFormat> =
            max_abs.iter().map(|&m| QFormat::for_max_abs(m * 1.1 + 1e-6)).collect();
        for op in &info.graph {
            match op {
                GraphOp::MaxPool { src, dst, .. }
                | GraphOp::GlobalAvgPool { src, dst }
                | GraphOp::Flatten { src, dst } => buf_fmts[*dst] = buf_fmts[*src],
                _ => {}
            }
        }

        let layers: Vec<QLayer> = weights
            .iter()
            .map(|lw| {
                let p = &info.prunables[lw.layer_id];
                let (m, k) = match &p.kind {
                    PrunableKind::Conv { cin, cout, kh, kw, .. } => (*cout, cin * kh * kw),
                    PrunableKind::Fc { din, dout } => (*dout, *din),
                };
                let qw = QTensor::quantize(&lw.w);
                let in_fmt = input_fmt_of_layer(&info, lw.layer_id, &buf_fmts);
                let acc_frac = in_fmt.frac_bits() + qw.format().frac_bits();
                let natural = QFormat::for_max_abs(lw.b.max_abs().max(1e-6));
                let bias_fmt = QFormat::new(natural.frac_bits().min(acc_frac).min(15));
                let bias: Vec<i16> = lw.b.data().iter().map(|&v| bias_fmt.quantize(v)).collect();
                QLayer {
                    w: qw.data().to_vec(),
                    w_frac: qw.format().frac_bits(),
                    bias,
                    bias_frac: bias_fmt.frac_bits(),
                    m,
                    k,
                }
            })
            .collect();

        QuantizedModel { info, layers, buf_fmts }
    }

    /// Fixed-point format of each activation buffer.
    pub fn buf_fmts(&self) -> &[QFormat] {
        &self.buf_fmts
    }

    /// Runs one `[c, h, w]` sample in device numerics; returns dequantized
    /// logits.
    pub fn forward_q15(&self, input: &Tensor) -> Vec<f32> {
        let mut bufs: Vec<Vec<i16>> =
            self.info.buffers.iter().map(|b| vec![0i16; b.numel()]).collect();
        assert_eq!(input.numel(), bufs[0].len(), "input size vs model input buffer");
        let in_fmt = self.buf_fmts[0];
        for (dst, &v) in bufs[0].iter_mut().zip(input.data()) {
            *dst = in_fmt.quantize(v);
        }

        for op in &self.info.graph {
            match op {
                GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                    let ql = &self.layers[*layer_id];
                    let p = &self.info.prunables[*layer_id];
                    let (kh, kw, stride, pad_h, pad_w, in_h, in_w) = match &p.kind {
                        PrunableKind::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, .. } => {
                            (*kh, *kw, *stride, *pad_h, *pad_w, *in_h, *in_w)
                        }
                        _ => unreachable!("conv op on non-conv layer"),
                    };
                    let (oh, ow) = p.out_hw();
                    let n = oh * ow;
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    // transposed im2col: one k-contiguous patch per output
                    // position, zero-filled where the kernel hangs over the
                    // padding — identical to the device's gathered strips.
                    let mut col = vec![0i16; n * ql.k];
                    let khw = kh * kw;
                    for (j, patch) in col.chunks_exact_mut(ql.k).enumerate() {
                        let (oy, ox) = (j / ow, j % ow);
                        for (ki, out) in patch.iter_mut().enumerate() {
                            let c = ki / khw;
                            let (ky, kx) = ((ki % khw) / kw, ki % kw);
                            let iy = (oy * stride + ky) as isize - pad_h as isize;
                            let ix = (ox * stride + kx) as isize - pad_w as isize;
                            if iy >= 0 && iy < in_h as isize && ix >= 0 && ix < in_w as isize {
                                *out = src_buf[(c * in_h + iy as usize) * in_w + ix as usize];
                            }
                        }
                    }
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    let bias_shift = (in_frac + ql.w_frac - ql.bias_frac) as u32;
                    // the destination rows are contiguous at the channel
                    // offset, so the GEMM writes the buffer slice directly
                    let c_out = &mut dst_buf[dst_c_off * n..(dst_c_off + ql.m) * n];
                    q15_gemm(
                        &ql.w, &col, &ql.bias, bias_shift, c_out, ql.m, ql.k, n, in_frac,
                        ql.w_frac, out_frac, *relu,
                    );
                }
                GraphOp::Fc { layer_id, src, dst, relu } => {
                    let ql = &self.layers[*layer_id];
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    let bias_shift = (in_frac + ql.w_frac - ql.bias_frac) as u32;
                    q15_gemm(
                        &ql.w,
                        &src_buf[..ql.k],
                        &ql.bias,
                        bias_shift,
                        &mut dst_buf[..ql.m],
                        ql.m,
                        ql.k,
                        1,
                        in_frac,
                        ql.w_frac,
                        out_frac,
                        *relu,
                    );
                }
                GraphOp::MaxPool { src, dst, kh, kw } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let ddims = self.info.buffers[*dst].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                    let (oh, ow) = (ddims[1], ddims[2]);
                    for ch in 0..c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = i16::MIN;
                                for ky in 0..*kh {
                                    for kx in 0..*kw {
                                        let v =
                                            src_buf[(ch * ih + oy * kh + ky) * iw + ox * kw + kx];
                                        best = best.max(v);
                                    }
                                }
                                dst_buf[(ch * oh + oy) * ow + ox] = best;
                            }
                        }
                    }
                }
                GraphOp::GlobalAvgPool { src, dst } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                    let hw = (h * w) as i64;
                    for ch in 0..c {
                        let sum: i64 =
                            src_buf[ch * h * w..(ch + 1) * h * w].iter().map(|&v| v as i64).sum();
                        let rounded =
                            if sum >= 0 { (sum + hw / 2) / hw } else { (sum - hw / 2) / hw };
                        dst_buf[ch] = rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
                    }
                }
                GraphOp::Flatten { src, dst } => {
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    dst_buf.copy_from_slice(src_buf);
                }
            }
        }

        let fmt = *self.buf_fmts.last().expect("formats");
        bufs.pop().expect("at least one buffer").iter().map(|&q| fmt.dequantize(q)).collect()
    }

    /// Top-1 accuracy of the Q15 engine on `ds` (same argmax tie-breaking
    /// as the float evaluator).
    pub fn evaluate_q15(&self, ds: &Dataset) -> f64 {
        if ds.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for i in 0..ds.len() {
            let logits = self.forward_q15(&ds.sample(i));
            let pred = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == ds.labels()[i] {
                correct += 1;
            }
        }
        correct as f64 / ds.len() as f64
    }
}

/// The activation format of the buffer a prunable layer reads.
fn input_fmt_of_layer(info: &ModelInfo, layer_id: usize, fmts: &[QFormat]) -> QFormat {
    for op in &info.graph {
        match op {
            GraphOp::Conv { layer_id: l, src, .. } | GraphOp::Fc { layer_id: l, src, .. }
                if *l == layer_id =>
            {
                return fmts[*src];
            }
            _ => {}
        }
    }
    panic!("layer {layer_id} not found in graph");
}

/// Borrow two distinct buffers mutably.
fn split_bufs(bufs: &mut [Vec<i16>], src: usize, dst: usize) -> (&[i16], &mut [i16]) {
    assert_ne!(src, dst, "graph ops must not read and write the same buffer");
    if src < dst {
        let (a, b) = bufs.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = bufs.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::App;
    use iprune_tensor::layer::Layer;

    /// Q15 logits track the float forward pass closely on every app.
    #[test]
    fn q15_logits_close_to_float() {
        for app in App::all() {
            let mut model = app.build();
            let ds = app.dataset(4, 41);
            let qm = QuantizedModel::quantize(&mut model, &ds, 4);
            for i in 0..3 {
                let x = ds.sample(i);
                let f = model.forward(&x, false);
                let q = qm.forward_q15(&x);
                for (a, b) in f.data().iter().zip(q.iter()) {
                    assert!((a - b).abs() < 0.05, "{} sample {i}: f32 {a} vs q15 {b}", app.name());
                }
            }
        }
    }

    /// Shape-preserving ops keep their input format after calibration.
    #[test]
    fn pool_buffers_share_input_format() {
        let mut model = App::Cks.build();
        let ds = App::Cks.dataset(2, 3);
        let qm = QuantizedModel::quantize(&mut model, &ds, 2);
        for op in &qm.info.graph {
            if let GraphOp::MaxPool { src, dst, .. }
            | GraphOp::GlobalAvgPool { src, dst }
            | GraphOp::Flatten { src, dst } = op
            {
                assert_eq!(qm.buf_fmts[*src], qm.buf_fmts[*dst]);
            }
        }
    }

    /// The Q15 evaluator is deterministic and in [0, 1].
    #[test]
    fn evaluate_q15_is_deterministic() {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(24, 5);
        let qm = QuantizedModel::quantize(&mut model, &ds, 8);
        let a = qm.evaluate_q15(&ds);
        let b = qm.evaluate_q15(&ds);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((0.0..=1.0).contains(&a));
    }
}
