//! Host-side quantized evaluation: device numerics at host speed.
//!
//! The device simulator (`iprune-hawaii`) evaluates quantized models one
//! accelerator job at a time — faithful, but far too slow for sweeping
//! accuracy over a model zoo. This module runs the *same* fixed-point
//! arithmetic through the host integer GEMMs ([`iprune_tensor::qgemm`]):
//! identical calibration, identical widened accumulation with the bias
//! preloaded at accumulator scale, identical arithmetic-shift
//! requantization, and identical integer pooling — so its logits are
//! bit-equal to the device engine's, at the host's SIMD throughput.
//!
//! Two precisions share the flow:
//!
//! * **Q15** ([`QuantizedModel`]): i16 activations/weights, i16×i16→i64
//!   accumulation — the format the paper's MSP430 deployment uses.
//!   `IPRUNE_EVAL=q15` routes [`crate::train::evaluate`] through it.
//! * **Q8** ([`Quantized8Model`]): i8 activations/weights, i8×i8→i32
//!   wrapping accumulation with the bias preloaded as i32 at accumulator
//!   scale (the standard int8 deployment convention). Half the memory
//!   traffic and twice the SIMD lanes of Q15, at a larger quantization
//!   error. `IPRUNE_EVAL=q8` routes evaluation through it.
//!
//! Calibration mirrors `iprune-hawaii`'s `deploy` step exactly: per-buffer
//! ranges from the float reference executor ([`crate::graphref`]) over a
//! handful of samples, shape-preserving ops pinned to their input format,
//! and (for Q15) the bias format capped at the accumulator depth.
//!
//! Both engines accept an [`ExecCtx`] (`forward_q15_with` /
//! `forward_q8_with`) so hot paths — the serving loop, repeated
//! evaluation — recycle the activation and im2col scratch instead of
//! reallocating per sample. The ctx-less entry points are thin wrappers
//! over a throwaway context and are bitwise identical.

use crate::arch::{GraphOp, ModelInfo, PrunableInfo, PrunableKind};
use crate::graphref::run_graph;
use crate::model::Model;
use iprune_datasets::Dataset;
use iprune_tensor::exec::ExecCtx;
use iprune_tensor::qgemm::{q15_gemm, q8_gemm};
use iprune_tensor::quant::{Q8Format, QFormat, QTensor};
use iprune_tensor::{pack, pool, Tensor};

/// Default number of calibration samples (matches the device deploy step).
pub const DEFAULT_CALIBRATION: usize = 8;

/// One quantized prunable layer: dense i16 weights in GEMM row-major
/// (`[m][k]`) plus the bias at its own format.
#[derive(Debug, Clone)]
struct QLayer {
    w: Vec<i16>,
    w_frac: u8,
    bias: Vec<i16>,
    bias_frac: u8,
    m: usize,
    k: usize,
}

/// A model quantized for host Q15 inference.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    info: ModelInfo,
    layers: Vec<QLayer>,
    buf_fmts: Vec<QFormat>,
}

/// The packing geometry of a conv prunable (one sample).
fn conv_shape(p: &PrunableInfo) -> pack::ConvShape {
    let (out_h, out_w) = p.out_hw();
    match &p.kind {
        PrunableKind::Conv { cin, kh, kw, stride, pad_h, pad_w, in_h, in_w, .. } => {
            pack::ConvShape {
                cin: *cin,
                kh: *kh,
                kw: *kw,
                stride: *stride,
                pad_h: *pad_h,
                pad_w: *pad_w,
                in_h: *in_h,
                in_w: *in_w,
                out_h,
                out_w,
            }
        }
        _ => unreachable!("conv op on non-conv layer"),
    }
}

impl QuantizedModel {
    /// Quantizes `model`, calibrating activation formats on up to `n_calib`
    /// samples of `calib` — the same procedure as the device deployment, so
    /// formats (and therefore logits) agree bitwise with the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty or its sample shape differs from the
    /// model input.
    pub fn quantize(model: &mut Model, calib: &Dataset, n_calib: usize) -> Self {
        assert!(!calib.is_empty(), "calibration set must not be empty");
        let weights = model.extract_weights();
        let info = model.info.clone();
        let buf_fmts = calibrate(&info, &weights, calib, n_calib, QFormat::for_max_abs);

        let layers: Vec<QLayer> = weights
            .iter()
            .map(|lw| {
                let (m, k) = gemm_dims(&info.prunables[lw.layer_id]);
                let qw = QTensor::quantize(&lw.w);
                let in_fmt = input_fmt_of_layer(&info, lw.layer_id, &buf_fmts);
                let acc_frac = in_fmt.frac_bits() + qw.format().frac_bits();
                let natural = QFormat::for_max_abs(lw.b.max_abs().max(1e-6));
                let bias_fmt = QFormat::new(natural.frac_bits().min(acc_frac).min(15));
                let bias: Vec<i16> = lw.b.data().iter().map(|&v| bias_fmt.quantize(v)).collect();
                QLayer {
                    w: qw.data().to_vec(),
                    w_frac: qw.format().frac_bits(),
                    bias,
                    bias_frac: bias_fmt.frac_bits(),
                    m,
                    k,
                }
            })
            .collect();

        QuantizedModel { info, layers, buf_fmts }
    }

    /// Fixed-point format of each activation buffer.
    pub fn buf_fmts(&self) -> &[QFormat] {
        &self.buf_fmts
    }

    /// Runs one `[c, h, w]` sample in device numerics; returns dequantized
    /// logits. Allocates a throwaway scratch context — prefer
    /// [`forward_q15_with`](Self::forward_q15_with) on hot paths.
    pub fn forward_q15(&self, input: &Tensor) -> Vec<f32> {
        self.forward_q15_with(input, &mut ExecCtx::new())
    }

    /// Runs one sample, loaning activation and im2col scratch from `ctx`.
    /// Bitwise identical to [`forward_q15`](Self::forward_q15) with any
    /// context, fresh or recycled.
    pub fn forward_q15_with(&self, input: &Tensor, ctx: &mut ExecCtx) -> Vec<f32> {
        let mut bufs: Vec<Vec<i16>> =
            self.info.buffers.iter().map(|b| ctx.take_i16(b.numel())).collect();
        assert_eq!(input.numel(), bufs[0].len(), "input size vs model input buffer");
        let in_fmt = self.buf_fmts[0];
        for (dst, &v) in bufs[0].iter_mut().zip(input.data()) {
            *dst = in_fmt.quantize(v);
        }

        for op in &self.info.graph {
            match op {
                GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                    let ql = &self.layers[*layer_id];
                    let s = conv_shape(&self.info.prunables[*layer_id]);
                    let n = s.out_hw();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    // transposed im2col: one k-contiguous patch per output
                    // position, zero-filled where the kernel hangs over the
                    // padding — identical to the device's gathered strips.
                    let mut col = ctx.take_i16(s.col_len());
                    pack::im2col_patches(&src_buf[..s.in_len()], &s, &mut col);
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    let bias_shift = (in_frac + ql.w_frac - ql.bias_frac) as u32;
                    // the destination rows are contiguous at the channel
                    // offset, so the GEMM writes the buffer slice directly
                    let c_out = &mut dst_buf[dst_c_off * n..(dst_c_off + ql.m) * n];
                    q15_gemm(
                        &ql.w, &col, &ql.bias, bias_shift, c_out, ql.m, ql.k, n, in_frac,
                        ql.w_frac, out_frac, *relu,
                    );
                    ctx.put_i16(col);
                }
                GraphOp::Fc { layer_id, src, dst, relu } => {
                    let ql = &self.layers[*layer_id];
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    let bias_shift = (in_frac + ql.w_frac - ql.bias_frac) as u32;
                    q15_gemm(
                        &ql.w,
                        &src_buf[..ql.k],
                        &ql.bias,
                        bias_shift,
                        &mut dst_buf[..ql.m],
                        ql.m,
                        ql.k,
                        1,
                        in_frac,
                        ql.w_frac,
                        out_frac,
                        *relu,
                    );
                }
                GraphOp::MaxPool { src, dst, kh, kw } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let ddims = self.info.buffers[*dst].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                    let (oh, ow) = (ddims[1], ddims[2]);
                    for ch in 0..c {
                        pool::maxpool2d_i16(
                            &src_buf[ch * ih * iw..(ch + 1) * ih * iw],
                            ih,
                            iw,
                            *kh,
                            *kw,
                            &mut dst_buf[ch * oh * ow..(ch + 1) * oh * ow],
                        );
                    }
                }
                GraphOp::GlobalAvgPool { src, dst } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                    let hw = (h * w) as i64;
                    for ch in 0..c {
                        let sum: i64 =
                            src_buf[ch * h * w..(ch + 1) * h * w].iter().map(|&v| v as i64).sum();
                        let rounded =
                            if sum >= 0 { (sum + hw / 2) / hw } else { (sum - hw / 2) / hw };
                        dst_buf[ch] = rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
                    }
                }
                GraphOp::Flatten { src, dst } => {
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    dst_buf.copy_from_slice(src_buf);
                }
            }
        }

        let fmt = *self.buf_fmts.last().expect("formats");
        let logits: Vec<f32> =
            bufs.last().expect("at least one buffer").iter().map(|&q| fmt.dequantize(q)).collect();
        for buf in bufs {
            ctx.put_i16(buf);
        }
        logits
    }

    /// Top-1 accuracy of the Q15 engine on `ds` (same argmax tie-breaking
    /// as the float evaluator).
    pub fn evaluate_q15(&self, ds: &Dataset) -> f64 {
        let mut ctx = ExecCtx::new();
        evaluate_with(ds, |x| self.forward_q15_with(x, &mut ctx))
    }
}

/// One int8 prunable layer: dense i8 weights in GEMM row-major (`[m][k]`)
/// plus the bias preloaded as i32 at accumulator scale
/// (`in_frac + w_frac` fractional bits) — the standard int8 deployment
/// convention, so the GEMM adds it without a shift.
#[derive(Debug, Clone)]
struct Q8Layer {
    w: Vec<i8>,
    w_frac: u8,
    bias: Vec<i32>,
    m: usize,
    k: usize,
}

/// A model quantized for host int8 inference.
#[derive(Debug, Clone)]
pub struct Quantized8Model {
    info: ModelInfo,
    layers: Vec<Q8Layer>,
    buf_fmts: Vec<Q8Format>,
}

impl Quantized8Model {
    /// Quantizes `model` to int8, calibrating activation formats on up to
    /// `n_calib` samples of `calib` — the same flow as the Q15 deploy
    /// (float reference ranges, shape-preserving ops pinned to their input
    /// format), at i8 precision.
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty or its sample shape differs from the
    /// model input.
    pub fn quantize(model: &mut Model, calib: &Dataset, n_calib: usize) -> Self {
        assert!(!calib.is_empty(), "calibration set must not be empty");
        let weights = model.extract_weights();
        let info = model.info.clone();
        let buf_fmts = calibrate(&info, &weights, calib, n_calib, Q8Format::for_max_abs);

        let layers: Vec<Q8Layer> = weights
            .iter()
            .map(|lw| {
                let (m, k) = gemm_dims(&info.prunables[lw.layer_id]);
                let w_fmt = Q8Format::for_max_abs(lw.w.max_abs().max(1e-6));
                let w: Vec<i8> = lw.w.data().iter().map(|&v| w_fmt.quantize(v)).collect();
                let in_fmt = input_fmt_of_layer(&info, lw.layer_id, &buf_fmts);
                let acc_frac = in_fmt.frac_bits() + w_fmt.frac_bits();
                let scale = (1i64 << acc_frac) as f64;
                let bias: Vec<i32> = lw
                    .b
                    .data()
                    .iter()
                    .map(|&v| {
                        (v as f64 * scale).round().clamp(i32::MIN as f64, i32::MAX as f64) as i32
                    })
                    .collect();
                Q8Layer { w, w_frac: w_fmt.frac_bits(), bias, m, k }
            })
            .collect();

        Quantized8Model { info, layers, buf_fmts }
    }

    /// Fixed-point format of each activation buffer.
    pub fn buf_fmts(&self) -> &[Q8Format] {
        &self.buf_fmts
    }

    /// Runs one `[c, h, w]` sample in int8 numerics; returns dequantized
    /// logits. Allocates a throwaway scratch context — prefer
    /// [`forward_q8_with`](Self::forward_q8_with) on hot paths.
    pub fn forward_q8(&self, input: &Tensor) -> Vec<f32> {
        self.forward_q8_with(input, &mut ExecCtx::new())
    }

    /// Runs one sample, loaning activation and im2col scratch from `ctx`.
    /// Bitwise identical to [`forward_q8`](Self::forward_q8) with any
    /// context, fresh or recycled.
    pub fn forward_q8_with(&self, input: &Tensor, ctx: &mut ExecCtx) -> Vec<f32> {
        let mut bufs: Vec<Vec<i8>> =
            self.info.buffers.iter().map(|b| ctx.take_i8(b.numel())).collect();
        assert_eq!(input.numel(), bufs[0].len(), "input size vs model input buffer");
        let in_fmt = self.buf_fmts[0];
        for (dst, &v) in bufs[0].iter_mut().zip(input.data()) {
            *dst = in_fmt.quantize(v);
        }

        for op in &self.info.graph {
            match op {
                GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                    let ql = &self.layers[*layer_id];
                    let s = conv_shape(&self.info.prunables[*layer_id]);
                    let n = s.out_hw();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let mut col = ctx.take_i8(s.col_len());
                    pack::im2col_patches(&src_buf[..s.in_len()], &s, &mut col);
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    let c_out = &mut dst_buf[dst_c_off * n..(dst_c_off + ql.m) * n];
                    q8_gemm(
                        &ql.w, &col, &ql.bias, c_out, ql.m, ql.k, n, in_frac, ql.w_frac, out_frac,
                        *relu,
                    );
                    ctx.put_i8(col);
                }
                GraphOp::Fc { layer_id, src, dst, relu } => {
                    let ql = &self.layers[*layer_id];
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (in_frac, out_frac) =
                        (self.buf_fmts[*src].frac_bits(), self.buf_fmts[*dst].frac_bits());
                    q8_gemm(
                        &ql.w,
                        &src_buf[..ql.k],
                        &ql.bias,
                        &mut dst_buf[..ql.m],
                        ql.m,
                        ql.k,
                        1,
                        in_frac,
                        ql.w_frac,
                        out_frac,
                        *relu,
                    );
                }
                GraphOp::MaxPool { src, dst, kh, kw } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let ddims = self.info.buffers[*dst].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                    let (oh, ow) = (ddims[1], ddims[2]);
                    for ch in 0..c {
                        pool::maxpool2d_i8(
                            &src_buf[ch * ih * iw..(ch + 1) * ih * iw],
                            ih,
                            iw,
                            *kh,
                            *kw,
                            &mut dst_buf[ch * oh * ow..(ch + 1) * oh * ow],
                        );
                    }
                }
                GraphOp::GlobalAvgPool { src, dst } => {
                    let sdims = self.info.buffers[*src].dims.clone();
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                    let hw = (h * w) as i64;
                    for ch in 0..c {
                        let sum: i64 =
                            src_buf[ch * h * w..(ch + 1) * h * w].iter().map(|&v| v as i64).sum();
                        let rounded =
                            if sum >= 0 { (sum + hw / 2) / hw } else { (sum - hw / 2) / hw };
                        dst_buf[ch] = rounded.clamp(i8::MIN as i64, i8::MAX as i64) as i8;
                    }
                }
                GraphOp::Flatten { src, dst } => {
                    let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                    dst_buf.copy_from_slice(src_buf);
                }
            }
        }

        let fmt = *self.buf_fmts.last().expect("formats");
        let logits: Vec<f32> =
            bufs.last().expect("at least one buffer").iter().map(|&q| fmt.dequantize(q)).collect();
        for buf in bufs {
            ctx.put_i8(buf);
        }
        logits
    }

    /// Top-1 accuracy of the int8 engine on `ds` (same argmax tie-breaking
    /// as the float evaluator).
    pub fn evaluate_q8(&self, ds: &Dataset) -> f64 {
        let mut ctx = ExecCtx::new();
        evaluate_with(ds, |x| self.forward_q8_with(x, &mut ctx))
    }
}

/// Per-buffer activation formats from float-reference ranges: `fmt_for`
/// maps each buffer's calibrated `max_abs * 1.1 + 1e-6` to a format, then
/// shape-preserving ops are pinned to their input's format.
fn calibrate<F, Fmt: Copy>(
    info: &ModelInfo,
    weights: &[crate::model::LayerWeights],
    calib: &Dataset,
    n_calib: usize,
    fmt_for: F,
) -> Vec<Fmt>
where
    F: Fn(f32) -> Fmt,
{
    let mut max_abs = vec![0.0f32; info.buffers.len()];
    for i in 0..n_calib.min(calib.len()) {
        let bufs = run_graph(info, weights, &calib.sample(i));
        for (m, buf) in max_abs.iter_mut().zip(bufs.iter()) {
            for &v in buf {
                *m = m.max(v.abs());
            }
        }
    }
    let mut buf_fmts: Vec<Fmt> = max_abs.iter().map(|&m| fmt_for(m * 1.1 + 1e-6)).collect();
    for op in &info.graph {
        match op {
            GraphOp::MaxPool { src, dst, .. }
            | GraphOp::GlobalAvgPool { src, dst }
            | GraphOp::Flatten { src, dst } => buf_fmts[*dst] = buf_fmts[*src],
            _ => {}
        }
    }
    buf_fmts
}

/// GEMM dims `(m, k)` of a prunable layer.
fn gemm_dims(p: &PrunableInfo) -> (usize, usize) {
    match &p.kind {
        PrunableKind::Conv { cin, cout, kh, kw, .. } => (*cout, cin * kh * kw),
        PrunableKind::Fc { din, dout } => (*dout, *din),
    }
}

/// Top-1 accuracy with the float evaluator's argmax tie-breaking.
fn evaluate_with<F>(ds: &Dataset, mut forward: F) -> f64
where
    F: FnMut(&Tensor) -> Vec<f32>,
{
    if ds.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..ds.len() {
        let logits = forward(&ds.sample(i));
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(j, _)| j)
            .unwrap_or(0);
        if pred == ds.labels()[i] {
            correct += 1;
        }
    }
    correct as f64 / ds.len() as f64
}

/// The activation format of the buffer a prunable layer reads.
fn input_fmt_of_layer<Fmt: Copy>(info: &ModelInfo, layer_id: usize, fmts: &[Fmt]) -> Fmt {
    for op in &info.graph {
        match op {
            GraphOp::Conv { layer_id: l, src, .. } | GraphOp::Fc { layer_id: l, src, .. }
                if *l == layer_id =>
            {
                return fmts[*src];
            }
            _ => {}
        }
    }
    panic!("layer {layer_id} not found in graph");
}

/// Borrow two distinct buffers mutably.
fn split_bufs<T>(bufs: &mut [Vec<T>], src: usize, dst: usize) -> (&[T], &mut [T]) {
    assert_ne!(src, dst, "graph ops must not read and write the same buffer");
    if src < dst {
        let (a, b) = bufs.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = bufs.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::App;
    use iprune_tensor::layer::Layer;

    /// Q15 logits track the float forward pass closely on every app.
    #[test]
    fn q15_logits_close_to_float() {
        for app in App::all() {
            let mut model = app.build();
            let ds = app.dataset(4, 41);
            let qm = QuantizedModel::quantize(&mut model, &ds, 4);
            for i in 0..3 {
                let x = ds.sample(i);
                let f = model.forward(&x, false);
                let q = qm.forward_q15(&x);
                for (a, b) in f.data().iter().zip(q.iter()) {
                    assert!((a - b).abs() < 0.05, "{} sample {i}: f32 {a} vs q15 {b}", app.name());
                }
            }
        }
    }

    /// Q8 logits track the float forward pass within int8 resolution on
    /// every app (coarser than Q15 — 7 fractional bits at best).
    #[test]
    fn q8_logits_close_to_float() {
        for app in App::all() {
            let mut model = app.build();
            let ds = app.dataset(4, 41);
            let qm = Quantized8Model::quantize(&mut model, &ds, 4);
            for i in 0..3 {
                let x = ds.sample(i);
                let f = model.forward(&x, false);
                let q = qm.forward_q8(&x);
                for (a, b) in f.data().iter().zip(q.iter()) {
                    assert!((a - b).abs() < 0.5, "{} sample {i}: f32 {a} vs q8 {b}", app.name());
                }
            }
        }
    }

    /// Shape-preserving ops keep their input format after calibration.
    #[test]
    fn pool_buffers_share_input_format() {
        let mut model = App::Cks.build();
        let ds = App::Cks.dataset(2, 3);
        let qm = QuantizedModel::quantize(&mut model, &ds, 2);
        for op in &qm.info.graph {
            if let GraphOp::MaxPool { src, dst, .. }
            | GraphOp::GlobalAvgPool { src, dst }
            | GraphOp::Flatten { src, dst } = op
            {
                assert_eq!(qm.buf_fmts[*src], qm.buf_fmts[*dst]);
            }
        }
    }

    /// The Q15 evaluator is deterministic and in [0, 1].
    #[test]
    fn evaluate_q15_is_deterministic() {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(24, 5);
        let qm = QuantizedModel::quantize(&mut model, &ds, 8);
        let a = qm.evaluate_q15(&ds);
        let b = qm.evaluate_q15(&ds);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((0.0..=1.0).contains(&a));
    }

    /// The int8 evaluator is deterministic and in [0, 1].
    #[test]
    fn evaluate_q8_is_deterministic() {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(24, 5);
        let qm = Quantized8Model::quantize(&mut model, &ds, 8);
        let a = qm.evaluate_q8(&ds);
        let b = qm.evaluate_q8(&ds);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((0.0..=1.0).contains(&a));
    }

    /// A recycled context reproduces the fresh-context logits bitwise, for
    /// both precisions — scratch reuse must not leak state across samples.
    #[test]
    fn recycled_ctx_is_bitwise_identical() {
        let mut model = App::Sqn.build();
        let ds = App::Sqn.dataset(4, 7);
        let q15 = QuantizedModel::quantize(&mut model, &ds, 4);
        let q8 = Quantized8Model::quantize(&mut model, &ds, 4);
        let mut ctx = ExecCtx::new();
        for i in 0..4 {
            let x = ds.sample(i);
            let a15 = q15.forward_q15_with(&x, &mut ctx);
            let b15 = q15.forward_q15(&x);
            assert!(a15.iter().zip(&b15).all(|(a, b)| a.to_bits() == b.to_bits()));
            let a8 = q8.forward_q8_with(&x, &mut ctx);
            let b8 = q8.forward_q8(&x);
            assert!(a8.iter().zip(&b8).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
