//! Float reference executor over a model's flat graph.
//!
//! Runs one sample through the [`crate::arch::GraphOp`] list using plain
//! f32 arithmetic. Used for quantization calibration (per-buffer ranges —
//! both the device deployment in `iprune-hawaii` and the host Q15
//! evaluator in [`crate::qeval`]) and as the semantic reference the
//! quantized engines are tested against. Must agree with the trainable
//! network's own forward pass.

use crate::arch::{GraphOp, ModelInfo, PrunableKind};
use crate::LayerWeights;
use iprune_tensor::Tensor;

/// Executes the graph for a single `[c, h, w]` input; returns the final
/// buffer (logits) and, for calibration, every buffer's contents.
///
/// # Panics
///
/// Panics if `weights` is not indexed by layer id or shapes disagree with
/// the graph.
pub fn run_graph(info: &ModelInfo, weights: &[LayerWeights], input: &Tensor) -> Vec<Vec<f32>> {
    assert_eq!(weights.len(), info.prunables.len(), "one LayerWeights per prunable layer");
    let mut bufs: Vec<Vec<f32>> = info.buffers.iter().map(|b| vec![0.0; b.numel()]).collect();
    let in_dims = &info.buffers[0].dims;
    assert_eq!(input.numel(), bufs[0].len(), "input size vs buffer 0");
    assert_eq!(in_dims.len(), 3, "input buffer must be [c, h, w]");
    bufs[0].copy_from_slice(input.data());

    for op in &info.graph {
        match op {
            GraphOp::Conv { layer_id, src, dst, dst_c_off, relu } => {
                let p = &info.prunables[*layer_id];
                let (cin, cout, kh, kw, stride, pad_h, pad_w, in_h, in_w) = match &p.kind {
                    PrunableKind::Conv { cin, cout, kh, kw, stride, pad_h, pad_w, in_h, in_w } => {
                        (*cin, *cout, *kh, *kw, *stride, *pad_h, *pad_w, *in_h, *in_w)
                    }
                    _ => unreachable!("conv op on non-conv layer"),
                };
                let (oh, ow) = p.out_hw();
                let lw = &weights[*layer_id];
                let w = lw.w.data();
                let b = lw.b.data();
                let dst_dims = info.buffers[*dst].dims.clone();
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                for m in 0..cout {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = b[m];
                            for c in 0..cin {
                                for ky in 0..kh {
                                    let iy = (oy * stride + ky) as isize - pad_h as isize;
                                    if iy < 0 || iy >= in_h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride + kx) as isize - pad_w as isize;
                                        if ix < 0 || ix >= in_w as isize {
                                            continue;
                                        }
                                        let wv = w[((m * cin + c) * kh + ky) * kw + kx];
                                        let xv =
                                            src_buf[(c * in_h + iy as usize) * in_w + ix as usize];
                                        acc += wv * xv;
                                    }
                                }
                            }
                            if *relu && acc < 0.0 {
                                acc = 0.0;
                            }
                            let dc = dst_c_off + m;
                            dst_buf[(dc * dst_dims[1] + oy) * dst_dims[2] + ox] = acc;
                        }
                    }
                }
            }
            GraphOp::Fc { layer_id, src, dst, relu } => {
                let p = &info.prunables[*layer_id];
                let (din, dout) = match &p.kind {
                    PrunableKind::Fc { din, dout } => (*din, *dout),
                    _ => unreachable!("fc op on non-fc layer"),
                };
                let lw = &weights[*layer_id];
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                for (o, out) in dst_buf.iter_mut().take(dout).enumerate() {
                    let mut acc = lw.b.data()[o];
                    let row = &lw.w.data()[o * din..(o + 1) * din];
                    for (wv, xv) in row.iter().zip(src_buf.iter()) {
                        acc += wv * xv;
                    }
                    if *relu && acc < 0.0 {
                        acc = 0.0;
                    }
                    *out = acc;
                }
            }
            GraphOp::MaxPool { src, dst, kh, kw } => {
                let sdims = info.buffers[*src].dims.clone();
                let ddims = info.buffers[*dst].dims.clone();
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                let (c, ih, iw) = (sdims[0], sdims[1], sdims[2]);
                let (oh, ow) = (ddims[1], ddims[2]);
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best = f32::NEG_INFINITY;
                            for ky in 0..*kh {
                                for kx in 0..*kw {
                                    let v = src_buf[(ch * ih + oy * kh + ky) * iw + ox * kw + kx];
                                    best = best.max(v);
                                }
                            }
                            dst_buf[(ch * oh + oy) * ow + ox] = best;
                        }
                    }
                }
            }
            GraphOp::GlobalAvgPool { src, dst } => {
                let sdims = info.buffers[*src].dims.clone();
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                let (c, h, w) = (sdims[0], sdims[1], sdims[2]);
                let inv = 1.0 / (h * w) as f32;
                for ch in 0..c {
                    let sum: f32 = src_buf[ch * h * w..(ch + 1) * h * w].iter().sum();
                    dst_buf[ch] = sum * inv;
                }
            }
            GraphOp::Flatten { src, dst } => {
                let (src_buf, dst_buf) = split_bufs(&mut bufs, *src, *dst);
                dst_buf.copy_from_slice(src_buf);
            }
        }
    }
    bufs
}

/// Logits of a single-sample graph execution.
pub fn run_graph_logits(info: &ModelInfo, weights: &[LayerWeights], input: &Tensor) -> Vec<f32> {
    run_graph(info, weights, input).pop().expect("at least one buffer")
}

/// Borrow two distinct buffers mutably.
fn split_bufs(bufs: &mut [Vec<f32>], src: usize, dst: usize) -> (&[f32], &mut [f32]) {
    assert_ne!(src, dst, "graph ops must not read and write the same buffer");
    if src < dst {
        let (a, b) = bufs.split_at_mut(dst);
        (&a[src], &mut b[0])
    } else {
        let (a, b) = bufs.split_at_mut(src);
        (&b[0], &mut a[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::App;
    use iprune_tensor::layer::Layer;

    /// The float graph executor must agree with the trainable network.
    #[test]
    fn graph_matches_trainable_forward() {
        for app in App::all() {
            let mut model = app.build();
            let ds = app.dataset(3, 99);
            let weights = model.extract_weights();
            for i in 0..3 {
                let x = ds.sample(i);
                let net_logits = model.forward(&x, false);
                let graph_logits = run_graph_logits(&model.info, &weights, &x);
                for (a, b) in net_logits.data().iter().zip(graph_logits.iter()) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "{} sample {}: net {} vs graph {}",
                        app.name(),
                        i,
                        a,
                        b
                    );
                }
            }
        }
    }

    #[test]
    fn buffers_have_expected_count() {
        let mut model = App::Har.build();
        let weights = model.extract_weights();
        let ds = App::Har.dataset(1, 0);
        let bufs = run_graph(&model.info, &weights, &ds.sample(0));
        assert_eq!(bufs.len(), model.info.buffers.len());
        assert_eq!(bufs.last().unwrap().len(), model.info.classes);
    }
}
