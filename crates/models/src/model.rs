//! The [`Model`] wrapper: a trainable network paired with its
//! [`ModelInfo`] structural description and weight import/export.

use crate::arch::ModelInfo;
use iprune_tensor::exec::ExecCtx;
use iprune_tensor::layer::{Layer, Param, Sequential};
use iprune_tensor::Tensor;
use std::collections::HashMap;

/// Weights of one prunable layer, as extracted for deployment.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// The prunable layer id.
    pub layer_id: usize,
    /// Weight tensor (`[cout, cin, kh, kw]` or `[dout, din]`), with pruning
    /// masks already applied (pruned weights are exactly zero).
    pub w: Tensor,
    /// Bias tensor.
    pub b: Tensor,
}

/// A trainable model plus its structural description.
///
/// The wrapper implements [`Layer`] by delegation so optimizers and losses
/// from `iprune-tensor` apply directly. Models are `Clone` so parallel
/// evaluation and sensitivity probes can hand each worker its own snapshot.
#[derive(Clone)]
pub struct Model {
    /// Structural description (graph, prunables, buffers).
    pub info: ModelInfo,
    net: Sequential,
}

impl Model {
    /// Pairs a network with its description.
    ///
    /// # Panics
    ///
    /// Panics if the network's prunable parameters do not cover exactly the
    /// layer ids `0..info.prunables.len()` or a weight shape disagrees with
    /// the declared geometry.
    pub fn new(info: ModelInfo, net: Sequential) -> Self {
        info.validate();
        let mut model = Self { info, net };
        let weights = model.extract_weights();
        assert_eq!(
            weights.len(),
            model.info.prunables.len(),
            "network prunable layers vs description"
        );
        for lw in &weights {
            let expect = model.info.prunables[lw.layer_id].weights();
            assert_eq!(
                lw.w.numel(),
                expect,
                "layer {} weight count {} vs declared {}",
                lw.layer_id,
                lw.w.numel(),
                expect
            );
        }
        model
    }

    /// The underlying trainable network.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Shared access to the underlying network (inference-side consumers).
    pub fn net(&self) -> &Sequential {
        &self.net
    }

    /// Shared-state inference: bitwise identical to `forward(x, false)`
    /// without `&mut` access, so one `Arc`-shared model can serve any number
    /// of concurrent [`ExecCtx`] holders with zero weight clones.
    pub fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        Layer::infer(self, x, ctx)
    }

    /// Clone of one prunable layer's weight tensor and current mask, by
    /// layer id. Single-layer cost: this is what sensitivity probes pay per
    /// probe instead of a full-model clone.
    pub fn layer_weight(&self, layer_id: usize) -> Option<(Tensor, Option<Tensor>)> {
        let mut out = None;
        self.net.visit_params_ref(&mut |p: &Param| {
            if p.layer_id == layer_id && p.name.ends_with(".w") {
                out = Some((p.value.clone(), p.mask.clone()));
            }
        });
        out
    }

    /// Fraction of weights kept per prunable layer (1.0 when unmasked),
    /// readable from a shared model.
    pub fn layer_densities(&self) -> HashMap<usize, f64> {
        let mut out = HashMap::new();
        self.net.visit_params_ref(&mut |p: &Param| {
            if p.layer_id != usize::MAX && p.name.ends_with(".w") {
                out.insert(p.layer_id, p.density());
            }
        });
        out
    }

    /// Deterministic per-layer magnitude masks keeping `keep_ppm / 1e6` of
    /// each prunable layer's weights: the largest-|w| weights survive, ties
    /// broken by ascending index. `keep_ppm >= 1_000_000` keeps everything.
    pub fn magnitude_masks(&self, keep_ppm: u32) -> HashMap<usize, Tensor> {
        let mut out = HashMap::new();
        self.net.visit_params_ref(&mut |p: &Param| {
            if p.layer_id == usize::MAX || !p.name.ends_with(".w") {
                return;
            }
            let n = p.value.numel();
            let keep = ((n as u64 * keep_ppm as u64).div_ceil(1_000_000) as usize).min(n);
            let mut order: Vec<usize> = (0..n).collect();
            let data = p.value.data();
            order.sort_by(|&a, &b| data[b].abs().total_cmp(&data[a].abs()).then_with(|| a.cmp(&b)));
            let mut mask = vec![0.0f32; n];
            for &i in &order[..keep] {
                mask[i] = 1.0;
            }
            out.insert(p.layer_id, Tensor::from_vec(p.value.dims(), mask));
        });
        out
    }

    /// Deterministic per-layer *block* magnitude masks: each prunable
    /// weight matrix (`rows = out`, `cols = k`) is tiled into the host
    /// kernels' [`BLOCK_ROWS`]×[`BLOCK_COLS`](iprune_tensor::sparse) blocks,
    /// the blocks with the largest L1 norm survive (ties broken by
    /// ascending block index), and whole blocks are zeroed. Unlike
    /// [`Self::magnitude_masks`], the resulting masks have a block-sparse
    /// structure the GEMM dispatch can exploit: the alive fraction tracks
    /// `keep_ppm`, so sufficiently pruned layers route through the sparse
    /// kernels.
    pub fn block_magnitude_masks(&self, keep_ppm: u32) -> HashMap<usize, Tensor> {
        use iprune_tensor::sparse::{BLOCK_COLS, BLOCK_ROWS};
        let mut out = HashMap::new();
        self.net.visit_params_ref(&mut |p: &Param| {
            if p.layer_id == usize::MAX || !p.name.ends_with(".w") {
                return;
            }
            let rows = p.value.dims()[0];
            if rows == 0 {
                return;
            }
            let cols = p.value.numel() / rows;
            let data = p.value.data();
            let rbs = rows.div_ceil(BLOCK_ROWS);
            let cbs = cols.div_ceil(BLOCK_COLS);
            let mut norms = vec![0.0f64; rbs * cbs];
            for r in 0..rows {
                for c in 0..cols {
                    norms[(r / BLOCK_ROWS) * cbs + c / BLOCK_COLS] +=
                        data[r * cols + c].abs() as f64;
                }
            }
            let nblocks = rbs * cbs;
            let keep =
                ((nblocks as u64 * keep_ppm as u64).div_ceil(1_000_000) as usize).min(nblocks);
            let mut order: Vec<usize> = (0..nblocks).collect();
            order.sort_by(|&a, &b| norms[b].total_cmp(&norms[a]).then_with(|| a.cmp(&b)));
            let mut alive = vec![false; nblocks];
            for &b in &order[..keep] {
                alive[b] = true;
            }
            let mut mask = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for c in 0..cols {
                    if alive[(r / BLOCK_ROWS) * cbs + c / BLOCK_COLS] {
                        mask[r * cols + c] = 1.0;
                    }
                }
            }
            out.insert(p.layer_id, Tensor::from_vec(p.value.dims(), mask));
        });
        out
    }

    /// Extracts per-layer weights and biases, sorted by layer id, with
    /// pruning masks applied.
    pub fn extract_weights(&mut self) -> Vec<LayerWeights> {
        let mut by_id: HashMap<usize, (Option<Tensor>, Option<Tensor>)> = HashMap::new();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id == usize::MAX {
                return;
            }
            p.apply_mask();
            let entry = by_id.entry(p.layer_id).or_default();
            if p.name.ends_with(".w") {
                entry.0 = Some(p.value.clone());
            } else {
                entry.1 = Some(p.value.clone());
            }
        });
        let mut out: Vec<LayerWeights> = by_id
            .into_iter()
            .map(|(layer_id, (w, b))| LayerWeights {
                layer_id,
                w: w.expect("weight present"),
                b: b.expect("bias present"),
            })
            .collect();
        out.sort_by_key(|lw| lw.layer_id);
        out
    }

    /// Loads per-layer weights and biases (e.g. from a checkpoint produced
    /// by [`Self::extract_weights`]). Masks are rebuilt so that exactly the
    /// zero weights stay pruned.
    ///
    /// # Panics
    ///
    /// Panics if a layer id is missing or a shape disagrees.
    pub fn load_weights(&mut self, weights: &[LayerWeights]) {
        use std::collections::HashMap as Map;
        let by_id: Map<usize, &LayerWeights> = weights.iter().map(|lw| (lw.layer_id, lw)).collect();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id == usize::MAX {
                return;
            }
            let lw = by_id.get(&p.layer_id).expect("layer weights present");
            if p.name.ends_with(".w") {
                assert_eq!(p.value.numel(), lw.w.numel(), "weight shape for {}", p.name);
                p.value = lw.w.reshape(p.value.dims());
                let mask = Tensor::from_vec(
                    p.value.dims(),
                    p.value.data().iter().map(|&v| if v == 0.0 { 0.0 } else { 1.0 }).collect(),
                );
                p.set_mask(mask);
            } else {
                assert_eq!(p.value.numel(), lw.b.numel(), "bias shape for {}", p.name);
                p.value = lw.b.reshape(p.value.dims());
            }
        });
    }

    /// Installs pruning masks keyed by layer id (missing ids keep their
    /// current mask).
    pub fn set_masks(&mut self, masks: &HashMap<usize, Tensor>) {
        self.net.visit_params(&mut |p: &mut Param| {
            if p.name.ends_with(".w") {
                if let Some(mask) = masks.get(&p.layer_id) {
                    p.set_mask(mask.clone());
                }
            }
        });
    }

    /// Current pruning masks per layer id (only layers that have one).
    pub fn masks(&mut self) -> HashMap<usize, Tensor> {
        let mut out = HashMap::new();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.name.ends_with(".w") {
                if let Some(m) = &p.mask {
                    out.insert(p.layer_id, m.clone());
                }
            }
        });
        out
    }

    /// Number of *kept* (non-pruned) weights across prunable layers.
    pub fn kept_weights(&mut self) -> usize {
        let mut kept = 0usize;
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id != usize::MAX && p.name.ends_with(".w") {
                kept += (p.density() * p.value.numel() as f64).round() as usize;
            }
        });
        kept
    }

    /// Snapshot of all parameter values (for checkpoint/rollback in the
    /// iterative pruning loop).
    pub fn snapshot(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.net.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores a snapshot taken with [`Self::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the parameter structure.
    pub fn restore(&mut self, snap: &[Tensor]) {
        let mut i = 0;
        self.net.visit_params(&mut |p| {
            p.value = snap[i].clone();
            i += 1;
        });
        assert_eq!(i, snap.len(), "snapshot length mismatch");
    }
}

impl Layer for Model {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward(x, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward(grad)
    }

    fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        self.net.infer(x, ctx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f)
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.net.visit_params_ref(f)
    }

    fn describe(&self) -> String {
        format!("{}: {}", self.info.name, self.net.describe())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::App;
    use iprune_tensor::exec::ExecCtx;

    #[test]
    fn model_infer_matches_forward_bitwise() {
        let mut m = App::Har.build();
        let masks = m.magnitude_masks(500_000);
        m.set_masks(&masks);
        let ds = App::Har.dataset(6, 42);
        let (x, _) = ds.gather(&[0, 1, 2, 3, 4, 5]);
        let want = m.forward(&x, false);
        let mut ctx = ExecCtx::new();
        let got = m.infer(&x, &mut ctx);
        assert_eq!(want.data(), got.data(), "shared-state inference must match forward bitwise");
    }

    #[test]
    fn magnitude_masks_keep_requested_fraction() {
        let m = App::Har.build();
        let masks = m.magnitude_masks(250_000);
        assert_eq!(masks.len(), m.info.prunables.len());
        for (id, mask) in &masks {
            let kept: f64 = mask.data().iter().map(|&v| v as f64).sum();
            let frac = kept / mask.numel() as f64;
            assert!(
                frac >= 0.25 && frac < 0.26 + 1.0 / mask.numel() as f64,
                "layer {id}: kept fraction {frac}"
            );
        }
        let all = m.magnitude_masks(1_000_000);
        assert!(all.values().all(|m| m.count_zeros() == 0), "full density keeps everything");
    }

    #[test]
    fn block_magnitude_masks_engage_sparse_dispatch() {
        let mut m = App::Har.build();
        let masks = m.block_magnitude_masks(300_000);
        assert_eq!(masks.len(), m.info.prunables.len());
        m.set_masks(&masks);
        let mut sparse_layers = 0;
        m.net().visit_params_ref(&mut |p| {
            if p.name.ends_with(".w") {
                let d = p.density();
                // small layers have few blocks, so the kept fraction
                // quantizes coarsely (HAR conv1 has 4 blocks: keep 2 = 0.5)
                assert!((0.2..0.55).contains(&d), "{}: block density {d}", p.name);
                if p.sparse_index().is_some_and(|i| i.below_dispatch_threshold()) {
                    sparse_layers += 1;
                }
            }
        });
        assert_eq!(
            sparse_layers,
            m.info.prunables.len(),
            "block masks at 30% density must route every layer through sparse dispatch"
        );
    }

    #[test]
    fn layer_weight_and_densities_read_shared_state() {
        let mut m = App::Har.build();
        let masks = m.magnitude_masks(500_000);
        m.set_masks(&masks);
        let d = m.layer_densities();
        assert!(d.values().all(|&v| (v - 0.5).abs() < 0.01), "densities: {d:?}");
        let (w, mask) = m.layer_weight(0).expect("layer 0 exists");
        assert_eq!(w.numel(), m.info.prunables[0].weights());
        assert!(mask.is_some());
    }
}
