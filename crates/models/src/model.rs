//! The [`Model`] wrapper: a trainable network paired with its
//! [`ModelInfo`] structural description and weight import/export.

use crate::arch::ModelInfo;
use iprune_tensor::layer::{Layer, Param, Sequential};
use iprune_tensor::Tensor;
use std::collections::HashMap;

/// Weights of one prunable layer, as extracted for deployment.
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// The prunable layer id.
    pub layer_id: usize,
    /// Weight tensor (`[cout, cin, kh, kw]` or `[dout, din]`), with pruning
    /// masks already applied (pruned weights are exactly zero).
    pub w: Tensor,
    /// Bias tensor.
    pub b: Tensor,
}

/// A trainable model plus its structural description.
///
/// The wrapper implements [`Layer`] by delegation so optimizers and losses
/// from `iprune-tensor` apply directly. Models are `Clone` so parallel
/// evaluation and sensitivity probes can hand each worker its own snapshot.
#[derive(Clone)]
pub struct Model {
    /// Structural description (graph, prunables, buffers).
    pub info: ModelInfo,
    net: Sequential,
}

impl Model {
    /// Pairs a network with its description.
    ///
    /// # Panics
    ///
    /// Panics if the network's prunable parameters do not cover exactly the
    /// layer ids `0..info.prunables.len()` or a weight shape disagrees with
    /// the declared geometry.
    pub fn new(info: ModelInfo, net: Sequential) -> Self {
        info.validate();
        let mut model = Self { info, net };
        let weights = model.extract_weights();
        assert_eq!(
            weights.len(),
            model.info.prunables.len(),
            "network prunable layers vs description"
        );
        for lw in &weights {
            let expect = model.info.prunables[lw.layer_id].weights();
            assert_eq!(
                lw.w.numel(),
                expect,
                "layer {} weight count {} vs declared {}",
                lw.layer_id,
                lw.w.numel(),
                expect
            );
        }
        model
    }

    /// The underlying trainable network.
    pub fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// Extracts per-layer weights and biases, sorted by layer id, with
    /// pruning masks applied.
    pub fn extract_weights(&mut self) -> Vec<LayerWeights> {
        let mut by_id: HashMap<usize, (Option<Tensor>, Option<Tensor>)> = HashMap::new();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id == usize::MAX {
                return;
            }
            p.apply_mask();
            let entry = by_id.entry(p.layer_id).or_default();
            if p.name.ends_with(".w") {
                entry.0 = Some(p.value.clone());
            } else {
                entry.1 = Some(p.value.clone());
            }
        });
        let mut out: Vec<LayerWeights> = by_id
            .into_iter()
            .map(|(layer_id, (w, b))| LayerWeights {
                layer_id,
                w: w.expect("weight present"),
                b: b.expect("bias present"),
            })
            .collect();
        out.sort_by_key(|lw| lw.layer_id);
        out
    }

    /// Loads per-layer weights and biases (e.g. from a checkpoint produced
    /// by [`Self::extract_weights`]). Masks are rebuilt so that exactly the
    /// zero weights stay pruned.
    ///
    /// # Panics
    ///
    /// Panics if a layer id is missing or a shape disagrees.
    pub fn load_weights(&mut self, weights: &[LayerWeights]) {
        use std::collections::HashMap as Map;
        let by_id: Map<usize, &LayerWeights> = weights.iter().map(|lw| (lw.layer_id, lw)).collect();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id == usize::MAX {
                return;
            }
            let lw = by_id.get(&p.layer_id).expect("layer weights present");
            if p.name.ends_with(".w") {
                assert_eq!(p.value.numel(), lw.w.numel(), "weight shape for {}", p.name);
                p.value = lw.w.reshape(p.value.dims());
                let mask = Tensor::from_vec(
                    p.value.dims(),
                    p.value.data().iter().map(|&v| if v == 0.0 { 0.0 } else { 1.0 }).collect(),
                );
                p.set_mask(mask);
            } else {
                assert_eq!(p.value.numel(), lw.b.numel(), "bias shape for {}", p.name);
                p.value = lw.b.reshape(p.value.dims());
            }
        });
    }

    /// Installs pruning masks keyed by layer id (missing ids keep their
    /// current mask).
    pub fn set_masks(&mut self, masks: &HashMap<usize, Tensor>) {
        self.net.visit_params(&mut |p: &mut Param| {
            if p.name.ends_with(".w") {
                if let Some(mask) = masks.get(&p.layer_id) {
                    p.set_mask(mask.clone());
                }
            }
        });
    }

    /// Current pruning masks per layer id (only layers that have one).
    pub fn masks(&mut self) -> HashMap<usize, Tensor> {
        let mut out = HashMap::new();
        self.net.visit_params(&mut |p: &mut Param| {
            if p.name.ends_with(".w") {
                if let Some(m) = &p.mask {
                    out.insert(p.layer_id, m.clone());
                }
            }
        });
        out
    }

    /// Number of *kept* (non-pruned) weights across prunable layers.
    pub fn kept_weights(&mut self) -> usize {
        let mut kept = 0usize;
        self.net.visit_params(&mut |p: &mut Param| {
            if p.layer_id != usize::MAX && p.name.ends_with(".w") {
                kept += (p.density() * p.value.numel() as f64).round() as usize;
            }
        });
        kept
    }

    /// Snapshot of all parameter values (for checkpoint/rollback in the
    /// iterative pruning loop).
    pub fn snapshot(&mut self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.net.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Restores a snapshot taken with [`Self::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the parameter structure.
    pub fn restore(&mut self, snap: &[Tensor]) {
        let mut i = 0;
        self.net.visit_params(&mut |p| {
            p.value = snap[i].clone();
            i += 1;
        });
        assert_eq!(i, snap.len(), "snapshot length mismatch");
    }
}

impl Layer for Model {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.net.forward(x, train)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        self.net.backward(grad)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.net.visit_params(f)
    }

    fn describe(&self) -> String {
        format!("{}: {}", self.info.name, self.net.describe())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}
