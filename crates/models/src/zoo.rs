//! The three TinyML applications of the paper's Table II.
//!
//! Architectures are calibrated so that parameter counts (→ 16-bit model
//! size), MAC counts, and layer tallies land on the paper's numbers:
//!
//! | App | Paper layers        | Paper size | Paper MACs | Ours (dense)      |
//! |-----|---------------------|-----------|------------|--------------------|
//! | SQN | CONV×11, POOL×2     | 147 KB    | 4442 K     | ~146 KB, ~4605 K   |
//! | HAR | CONV×3, POOL×3, FC×1| 28 KB     | 321 K      | ~27.5 KB, ~319 K   |
//! | CKS | CONV×2, FC×3        | 131 KB    | 2811 K     | ~131 KB, ~2770 K   |

use crate::arch::{BufDesc, GraphOp, ModelInfo, PrunableInfo, PrunableKind};
use crate::fire::Fire;
use crate::model::Model;
use iprune_datasets::keywords::KeywordSpec;
use iprune_datasets::motion::MotionSpec;
use iprune_datasets::synth_image::SynthImageSpec;
use iprune_datasets::Dataset;
use iprune_tensor::layer::{Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential};

/// The three evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// SqueezeNet-style image recognition (CIFAR-10 stand-in).
    Sqn,
    /// Human-activity detection on tri-axial accelerometer windows.
    Har,
    /// Speech keyword spotting on MFCC-like spectrograms.
    Cks,
}

impl App {
    /// All apps in the paper's presentation order.
    pub fn all() -> [App; 3] {
        [App::Sqn, App::Har, App::Cks]
    }

    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            App::Sqn => "SQN",
            App::Har => "HAR",
            App::Cks => "CKS",
        }
    }

    /// Builds the trainable model.
    pub fn build(&self) -> Model {
        match self {
            App::Sqn => build_sqn(),
            App::Har => build_har(),
            App::Cks => build_cks(),
        }
    }

    /// The initial (server-side) training recipe for this app. SQN — the
    /// deepest network, trained without normalization layers — needs a
    /// gentler learning rate than the shallow HAR/CKS models.
    pub fn train_recipe(&self) -> crate::train::TrainConfig {
        use crate::train::TrainConfig;
        match self {
            App::Sqn => TrainConfig { epochs: 14, lr: 0.01, lr_decay: 0.9, ..Default::default() },
            App::Har => TrainConfig { epochs: 10, lr: 0.05, lr_decay: 0.8, ..Default::default() },
            App::Cks => TrainConfig { epochs: 12, lr: 0.05, lr_decay: 0.75, ..Default::default() },
        }
    }

    /// The fine-tuning recipe used between pruning iterations.
    pub fn finetune_recipe(&self) -> crate::train::TrainConfig {
        use crate::train::TrainConfig;
        match self {
            App::Sqn => TrainConfig { epochs: 4, lr: 0.005, lr_decay: 0.85, ..Default::default() },
            App::Har => TrainConfig { epochs: 6, lr: 0.04, lr_decay: 0.75, ..Default::default() },
            App::Cks => TrainConfig { epochs: 5, lr: 0.03, lr_decay: 0.8, ..Default::default() },
        }
    }

    /// Generates the synthetic dataset for this app (`n` samples).
    pub fn dataset(&self, n: usize, seed: u64) -> Dataset {
        match self {
            App::Sqn => SynthImageSpec::default().generate(n, seed),
            App::Har => MotionSpec::default().generate(n, seed),
            App::Cks => KeywordSpec::default().generate(n, seed),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_info(
    layer_id: usize,
    name: &str,
    cin: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
    in_h: usize,
    in_w: usize,
) -> PrunableInfo {
    PrunableInfo {
        layer_id,
        name: name.to_string(),
        kind: PrunableKind::Conv { cin, cout, kh, kw, stride, pad_h, pad_w, in_h, in_w },
    }
}

fn fc_info(layer_id: usize, name: &str, din: usize, dout: usize) -> PrunableInfo {
    PrunableInfo { layer_id, name: name.to_string(), kind: PrunableKind::Fc { din, dout } }
}

/// SQN: conv(24,s2) + fire(20,40,40) + pool + fire(32,72,72) + pool +
/// fire(40,80,80) + 1×1 classifier + global average pooling.
/// 11 CONV, 2 POOL, 74 598 weights+biases ≈ 146 KB, ≈ 4605 K MACs.
fn build_sqn() -> Model {
    let prunables = vec![
        conv_info(0, "conv1", 3, 24, 3, 3, 2, 1, 1, 32, 32),
        conv_info(1, "fire1.squeeze", 24, 20, 1, 1, 1, 0, 0, 16, 16),
        conv_info(2, "fire1.expand1x1", 20, 40, 1, 1, 1, 0, 0, 16, 16),
        conv_info(3, "fire1.expand3x3", 20, 40, 3, 3, 1, 1, 1, 16, 16),
        conv_info(4, "fire2.squeeze", 80, 32, 1, 1, 1, 0, 0, 8, 8),
        conv_info(5, "fire2.expand1x1", 32, 72, 1, 1, 1, 0, 0, 8, 8),
        conv_info(6, "fire2.expand3x3", 32, 72, 3, 3, 1, 1, 1, 8, 8),
        conv_info(7, "fire3.squeeze", 144, 40, 1, 1, 1, 0, 0, 4, 4),
        conv_info(8, "fire3.expand1x1", 40, 80, 1, 1, 1, 0, 0, 4, 4),
        conv_info(9, "fire3.expand3x3", 40, 80, 3, 3, 1, 1, 1, 4, 4),
        conv_info(10, "classifier", 160, 10, 1, 1, 1, 0, 0, 4, 4),
    ];
    let buffers = vec![
        BufDesc { dims: vec![3, 32, 32] },  // 0: input
        BufDesc { dims: vec![24, 16, 16] }, // 1: conv1
        BufDesc { dims: vec![20, 16, 16] }, // 2: fire1 squeeze
        BufDesc { dims: vec![80, 16, 16] }, // 3: fire1 concat
        BufDesc { dims: vec![80, 8, 8] },   // 4: pool1
        BufDesc { dims: vec![32, 8, 8] },   // 5: fire2 squeeze
        BufDesc { dims: vec![144, 8, 8] },  // 6: fire2 concat
        BufDesc { dims: vec![144, 4, 4] },  // 7: pool2
        BufDesc { dims: vec![40, 4, 4] },   // 8: fire3 squeeze
        BufDesc { dims: vec![160, 4, 4] },  // 9: fire3 concat
        BufDesc { dims: vec![10, 4, 4] },   // 10: classifier
        BufDesc { dims: vec![10] },         // 11: logits
    ];
    let graph = vec![
        GraphOp::Conv { layer_id: 0, src: 0, dst: 1, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 1, src: 1, dst: 2, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 2, src: 2, dst: 3, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 3, src: 2, dst: 3, dst_c_off: 40, relu: true },
        GraphOp::MaxPool { src: 3, dst: 4, kh: 2, kw: 2 },
        GraphOp::Conv { layer_id: 4, src: 4, dst: 5, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 5, src: 5, dst: 6, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 6, src: 5, dst: 6, dst_c_off: 72, relu: true },
        GraphOp::MaxPool { src: 6, dst: 7, kh: 2, kw: 2 },
        GraphOp::Conv { layer_id: 7, src: 7, dst: 8, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 8, src: 8, dst: 9, dst_c_off: 0, relu: true },
        GraphOp::Conv { layer_id: 9, src: 8, dst: 9, dst_c_off: 80, relu: true },
        GraphOp::Conv { layer_id: 10, src: 9, dst: 10, dst_c_off: 0, relu: false },
        GraphOp::GlobalAvgPool { src: 10, dst: 11 },
    ];
    let info = ModelInfo {
        name: "SQN".to_string(),
        classes: 10,
        input_dims: [3, 32, 32],
        prunables,
        graph,
        buffers,
    };
    let net = Sequential::new(vec![
        Box::new(Conv2d::new(0, 3, 24, 3, 2, 1)),
        Box::new(Relu::new()),
        Box::new(Fire::new(1, 24, 20, 40, 40)),
        Box::new(MaxPool2d::new(2)),
        Box::new(Fire::new(4, 80, 32, 72, 72)),
        Box::new(MaxPool2d::new(2)),
        Box::new(Fire::new(7, 144, 40, 80, 80)),
        Box::new(Conv2d::new(10, 160, 10, 1, 1, 0)),
        Box::new(GlobalAvgPool::new()),
    ]);
    Model::new(info, net)
}

/// HAR: three temporal 3×1 convolutions with 2×1 pooling and one FC head.
/// 3 CONV, 3 POOL, 1 FC; 14 086 weights+biases ≈ 27.5 KB, ≈ 319 K MACs.
fn build_har() -> Model {
    let prunables = vec![
        conv_info(0, "conv1", 3, 16, 3, 1, 1, 1, 0, 128, 1),
        conv_info(1, "conv2", 16, 32, 3, 1, 1, 1, 0, 64, 1),
        conv_info(2, "conv3", 32, 64, 3, 1, 1, 1, 0, 32, 1),
        fc_info(3, "fc", 64 * 16, 6),
    ];
    let buffers = vec![
        BufDesc { dims: vec![3, 128, 1] },  // 0: input window
        BufDesc { dims: vec![16, 128, 1] }, // 1
        BufDesc { dims: vec![16, 64, 1] },  // 2
        BufDesc { dims: vec![32, 64, 1] },  // 3
        BufDesc { dims: vec![32, 32, 1] },  // 4
        BufDesc { dims: vec![64, 32, 1] },  // 5
        BufDesc { dims: vec![64, 16, 1] },  // 6
        BufDesc { dims: vec![1024] },       // 7: flattened
        BufDesc { dims: vec![6] },          // 8: logits
    ];
    let graph = vec![
        GraphOp::Conv { layer_id: 0, src: 0, dst: 1, dst_c_off: 0, relu: true },
        GraphOp::MaxPool { src: 1, dst: 2, kh: 2, kw: 1 },
        GraphOp::Conv { layer_id: 1, src: 2, dst: 3, dst_c_off: 0, relu: true },
        GraphOp::MaxPool { src: 3, dst: 4, kh: 2, kw: 1 },
        GraphOp::Conv { layer_id: 2, src: 4, dst: 5, dst_c_off: 0, relu: true },
        GraphOp::MaxPool { src: 5, dst: 6, kh: 2, kw: 1 },
        GraphOp::Flatten { src: 6, dst: 7 },
        GraphOp::Fc { layer_id: 3, src: 7, dst: 8, relu: false },
    ];
    let info = ModelInfo {
        name: "HAR".to_string(),
        classes: 6,
        input_dims: [3, 128, 1],
        prunables,
        graph,
        buffers,
    };
    let net = Sequential::new(vec![
        Box::new(Conv2d::with_shape(0, 3, 16, 3, 1, 1, 1, 0)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::with_window(2, 1)),
        Box::new(Conv2d::with_shape(1, 16, 32, 3, 1, 1, 1, 0)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::with_window(2, 1)),
        Box::new(Conv2d::with_shape(2, 32, 64, 3, 1, 1, 1, 0)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::with_window(2, 1)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(1024, 6, 3)),
    ]);
    Model::new(info, net)
}

/// CKS: two 3×3 convolutions with 2×2 pooling and a three-layer FC head.
/// 2 CONV, 3 FC; 67 186 weights+biases ≈ 131 KB, ≈ 2770 K MACs.
fn build_cks() -> Model {
    let prunables = vec![
        conv_info(0, "conv1", 1, 32, 3, 3, 1, 1, 1, 61, 13),
        conv_info(1, "conv2", 32, 48, 3, 3, 1, 1, 1, 30, 6),
        fc_info(2, "fc1", 48 * 15 * 3, 24),
        fc_info(3, "fc2", 24, 32),
        fc_info(4, "fc3", 32, 10),
    ];
    let buffers = vec![
        BufDesc { dims: vec![1, 61, 13] },  // 0: spectrogram
        BufDesc { dims: vec![32, 61, 13] }, // 1
        BufDesc { dims: vec![32, 30, 6] },  // 2
        BufDesc { dims: vec![48, 30, 6] },  // 3
        BufDesc { dims: vec![48, 15, 3] },  // 4
        BufDesc { dims: vec![2160] },       // 5: flattened
        BufDesc { dims: vec![24] },         // 6
        BufDesc { dims: vec![32] },         // 7
        BufDesc { dims: vec![10] },         // 8: logits
    ];
    let graph = vec![
        GraphOp::Conv { layer_id: 0, src: 0, dst: 1, dst_c_off: 0, relu: true },
        GraphOp::MaxPool { src: 1, dst: 2, kh: 2, kw: 2 },
        GraphOp::Conv { layer_id: 1, src: 2, dst: 3, dst_c_off: 0, relu: true },
        GraphOp::MaxPool { src: 3, dst: 4, kh: 2, kw: 2 },
        GraphOp::Flatten { src: 4, dst: 5 },
        GraphOp::Fc { layer_id: 2, src: 5, dst: 6, relu: true },
        GraphOp::Fc { layer_id: 3, src: 6, dst: 7, relu: true },
        GraphOp::Fc { layer_id: 4, src: 7, dst: 8, relu: false },
    ];
    let info = ModelInfo {
        name: "CKS".to_string(),
        classes: 10,
        input_dims: [1, 61, 13],
        prunables,
        graph,
        buffers,
    };
    let net = Sequential::new(vec![
        Box::new(Conv2d::new(0, 1, 32, 3, 1, 1)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Conv2d::new(1, 32, 48, 3, 1, 1)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(2160, 24, 2)),
        Box::new(Relu::new()),
        Box::new(Linear::new(24, 32, 3)),
        Box::new(Relu::new()),
        Box::new(Linear::new(32, 10, 4)),
    ]);
    Model::new(info, net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_tensor::layer::Layer;
    use iprune_tensor::Tensor;

    #[test]
    fn sqn_matches_table2_budgets() {
        let m = App::Sqn.build();
        let (convs, pools, fcs) = m.info.layer_tally();
        assert_eq!((convs, pools, fcs), (11, 2, 0));
        let params = m.info.total_weights() + m.info.total_biases();
        assert_eq!(params, 74_598);
        // paper: 147 KB, 4442 K MACs
        let kb = m.info.dense_size_bytes() as f64 / 1024.0;
        assert!((kb - 145.7).abs() < 1.0, "size {kb} KB");
        let macs = m.info.total_macs();
        assert!((macs as f64 - 4_605_000.0).abs() < 50_000.0, "MACs {macs}");
    }

    #[test]
    fn har_matches_table2_budgets() {
        let m = App::Har.build();
        let (convs, pools, fcs) = m.info.layer_tally();
        assert_eq!((convs, pools, fcs), (3, 3, 1));
        let params = m.info.total_weights() + m.info.total_biases();
        assert_eq!(params, 14_086);
        let macs = m.info.total_macs();
        assert!((macs as f64 - 319_000.0).abs() < 10_000.0, "MACs {macs}");
    }

    #[test]
    fn cks_matches_table2_budgets() {
        let m = App::Cks.build();
        let (convs, pools, fcs) = m.info.layer_tally();
        assert_eq!((convs, pools, fcs), (2, 2, 3));
        let params = m.info.total_weights() + m.info.total_biases();
        assert_eq!(params, 67_186);
        let kb = m.info.dense_size_bytes() as f64 / 1024.0;
        assert!((kb - 131.2).abs() < 1.0, "size {kb} KB");
        let macs = m.info.total_macs();
        assert!((macs as f64 - 2_770_000.0).abs() < 50_000.0, "MACs {macs}");
    }

    #[test]
    fn forward_shapes_reach_logits() {
        for app in App::all() {
            let mut m = app.build();
            let [c, h, w] = m.info.input_dims;
            let x = Tensor::zeros(&[2, c, h, w]);
            let y = m.forward(&x, false);
            assert_eq!(y.dims(), &[2, m.info.classes], "{}", app.name());
        }
    }

    #[test]
    fn extract_weights_covers_all_layers() {
        for app in App::all() {
            let mut m = app.build();
            let ws = m.extract_weights();
            assert_eq!(ws.len(), m.info.prunables.len());
            for (i, lw) in ws.iter().enumerate() {
                assert_eq!(lw.layer_id, i);
                assert_eq!(lw.w.numel(), m.info.prunables[i].weights());
            }
        }
    }

    #[test]
    fn datasets_match_input_dims() {
        for app in App::all() {
            let m = app.build();
            let ds = app.dataset(4, 1);
            assert_eq!(ds.sample_dims(), &m.info.input_dims, "{}", app.name());
            assert_eq!(ds.classes(), m.info.classes);
        }
    }
}
