//! Training and evaluation recipes.
//!
//! Used for the initial (server-side) training of each application model and
//! for the fine-tuning passes inside the iterative pruning loop.

use crate::model::Model;
use iprune_datasets::Dataset;
use iprune_tensor::exec::{ExecCtx, WeightOverride};
use iprune_tensor::layer::Layer;
use iprune_tensor::loss::softmax_cross_entropy;
use iprune_tensor::metrics::AccuracyMeter;
use iprune_tensor::optim::Sgd;
use iprune_tensor::par;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyper-parameters of an SGD training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Multiplicative LR decay applied after each epoch.
    pub lr_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 3, batch: 32, lr: 0.05, momentum: 0.9, lr_decay: 0.7, seed: 17 }
    }
}

impl TrainConfig {
    /// A fine-tuning recipe (used between pruning iterations): enough
    /// epochs at a moderate rate to recover a recoverable pruning step.
    pub fn fine_tune() -> Self {
        Self { epochs: 3, lr: 0.05, ..Self::default() }
    }
}

/// Trains `model` on `ds` with SGD + momentum; returns the mean loss of the
/// final epoch.
///
/// The batch loop is inherently sequential (each step depends on the
/// previous weights), so parallelism happens *inside* each step: the layers
/// fan the per-sample im2col/GEMM work of every forward and backward pass
/// out over [`iprune_tensor::par`] workers, with fixed-order reductions that
/// keep the trained weights bit-identical at any thread count.
///
/// On a pruned model (masks installed) the layers route forward *and*
/// backward GEMMs through the block-sparse kernels of
/// `iprune_tensor::sparse` once a layer's alive-block coverage drops below
/// the dispatch threshold — bit-identical to the dense path, so fine-tuning
/// gets monotonically faster as pruning iterations shrink the model.
pub fn train_sgd(model: &mut Model, ds: &Dataset, cfg: &TrainConfig) -> f32 {
    let mut opt = Sgd::new(cfg.lr, cfg.momentum);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..ds.len()).collect();
    let mut last_epoch_loss = 0.0f32;
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let (x, y) = ds.gather(chunk);
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(model);
            total += loss as f64;
            batches += 1;
        }
        last_epoch_loss = (total / batches.max(1) as f64) as f32;
        opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    last_epoch_loss
}

/// Which numerics [`evaluate`] runs: the float reference, or one of the
/// host fixed-point engines in [`crate::qeval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Float reference inference (default).
    F32,
    /// `IPRUNE_EVAL=q15` — i16 device numerics via
    /// [`crate::qeval::QuantizedModel`].
    Q15,
    /// `IPRUNE_EVAL=q8` — int8 deployment numerics via
    /// [`crate::qeval::Quantized8Model`].
    Q8,
}

/// The evaluation mode selected by `IPRUNE_EVAL` (read once per process).
/// Unrecognized values fall back to [`EvalMode::F32`] with a one-time
/// warning, mirroring `IPRUNE_SIMD` validation.
pub fn eval_mode() -> EvalMode {
    use std::sync::OnceLock;
    static MODE: OnceLock<EvalMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("IPRUNE_EVAL").as_deref() {
        Err(_) => EvalMode::F32,
        Ok("q15") => EvalMode::Q15,
        Ok("q8") => EvalMode::Q8,
        Ok(other) => {
            eprintln!(
                "iprune: unrecognized IPRUNE_EVAL value {other:?} \
                 (expected \"q15\" or \"q8\"); using float evaluation"
            );
            EvalMode::F32
        }
    })
}

/// Whether evaluation runs in *any* quantized mode (Q15 or Q8). Public so
/// callers that need a materialized model for quantization (e.g.
/// sensitivity probes) can detect the mode and avoid the zero-clone path.
pub fn quantized_mode() -> bool {
    eval_mode() != EvalMode::F32
}

/// Whether `IPRUNE_EVAL=q15` routes evaluation through the host Q15
/// engine. Kept alongside [`eval_mode`] for callers that care about the
/// specific precision.
pub fn q15_mode() -> bool {
    eval_mode() == EvalMode::Q15
}

/// Evaluates top-1 accuracy of `model` on `ds` (float reference inference).
///
/// With `IPRUNE_EVAL=q15` the model is instead quantized (calibrating on
/// the first [`crate::qeval::DEFAULT_CALIBRATION`] samples of `ds`, the
/// same recipe as device deployment) and evaluated in device numerics via
/// [`crate::qeval::QuantizedModel`] — for measuring the f32→Q15 accuracy
/// delta without the device simulator's overhead. `IPRUNE_EVAL=q8` does
/// the same through the int8 engine ([`crate::qeval::Quantized8Model`]).
///
/// Batches are independent in inference mode, so contiguous runs of batches
/// are spread over [`iprune_tensor::par`] workers. All workers borrow the
/// *same* model through the shared-state inference path ([`ExecCtx`] holds
/// only scratch), so evaluation clones no weights. Per-worker meters hold
/// integer counts, so the merged accuracy is exactly the serial result at
/// any thread count.
///
/// Pruned layers inherit the block-sparse GEMM dispatch (see
/// `iprune_tensor::sparse`) on this path too.
pub fn evaluate(model: &mut Model, ds: &Dataset, batch: usize) -> f64 {
    match eval_mode() {
        EvalMode::Q15 => {
            let qm = crate::qeval::QuantizedModel::quantize(
                model,
                ds,
                crate::qeval::DEFAULT_CALIBRATION,
            );
            qm.evaluate_q15(ds)
        }
        EvalMode::Q8 => {
            let qm = crate::qeval::Quantized8Model::quantize(
                model,
                ds,
                crate::qeval::DEFAULT_CALIBRATION,
            );
            qm.evaluate_q8(ds)
        }
        EvalMode::F32 => evaluate_shared(model, ds, batch),
    }
}

/// Float evaluation against a *shared* model: the zero-clone path.
///
/// Workers borrow the same `&Model` and execute through the shared-state
/// [`ExecCtx`] inference path, so no weight buffer is cloned no matter how
/// many workers run — this is the same contract the serving front end
/// relies on. Bitwise identical to [`evaluate`]'s float path (and to the
/// pre-refactor per-worker-clone implementation).
pub fn evaluate_shared(model: &Model, ds: &Dataset, batch: usize) -> f64 {
    evaluate_overridden(model, &[], ds, batch)
}

/// Float evaluation of a shared model with per-layer [`WeightOverride`]s
/// installed in every worker's context: the sensitivity-probe path. With an
/// empty override list this *is* [`evaluate_shared`]. Probing layer `i`'s
/// candidate mask costs one single-layer weight clone (inside the override)
/// instead of a full-model clone per probe.
pub fn evaluate_overridden(
    model: &Model,
    overrides: &[WeightOverride],
    ds: &Dataset,
    batch: usize,
) -> f64 {
    let make_ctx = || {
        let mut ctx = ExecCtx::new();
        for ov in overrides {
            ctx.push_override(ov.clone());
        }
        ctx
    };
    let batch = batch.max(1);
    let nb = ds.len().div_ceil(batch);
    let workers = par::workers_for(nb);
    if workers <= 1 {
        let mut ctx = make_ctx();
        let mut meter = AccuracyMeter::new();
        for (x, y) in ds.batches(batch) {
            let logits = model.infer(&x, &mut ctx);
            meter.update(&logits, &y);
        }
        return meter.value();
    }
    let per = nb.div_ceil(workers);
    let meters = par::par_map(workers, |wi| {
        let mut ctx = make_ctx();
        let mut meter = AccuracyMeter::new();
        for b in (wi * per)..((wi + 1) * per).min(nb) {
            let lo = b * batch;
            let hi = (lo + batch).min(ds.len());
            let idx: Vec<usize> = (lo..hi).collect();
            let (x, y) = ds.gather(&idx);
            let logits = model.infer(&x, &mut ctx);
            meter.update(&logits, &y);
        }
        meter
    });
    let mut meter = AccuracyMeter::new();
    for m in &meters {
        meter.merge(m);
    }
    meter.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::App;

    #[test]
    fn har_learns_above_chance_quickly() {
        let mut m = App::Har.build();
        let train = App::Har.dataset(180, 100);
        let test = App::Har.dataset(60, 101);
        let before = evaluate(&mut m, &test, 32);
        let cfg = TrainConfig { epochs: 4, lr: 0.08, ..Default::default() };
        train_sgd(&mut m, &train, &cfg);
        let after = evaluate(&mut m, &test, 32);
        assert!(after > before.max(1.0 / 6.0) + 0.2, "no learning: {before} -> {after}");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let mut m = App::Har.build();
        let ds = App::Har.dataset(30, 5);
        let a = evaluate(&mut m, &ds, 10);
        let b = evaluate(&mut m, &ds, 10);
        assert_eq!(a, b);
    }
}
