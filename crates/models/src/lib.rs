//! Model zoo for the iPrune reproduction: the three TinyML applications of
//! the paper's Table II (SQN, HAR, CKS), each as a trainable network paired
//! with a structural description consumed by the HAWAII⁺ deployment plan and
//! the pruning framework.
//!
//! # Example
//!
//! ```
//! use iprune_models::zoo::App;
//!
//! let model = App::Har.build();
//! let (convs, pools, fcs) = model.info.layer_tally();
//! assert_eq!((convs, pools, fcs), (3, 3, 1)); // Table II: CONV x3, POOL x3, FC x1
//! ```

pub mod arch;
pub mod builder;
pub mod fire;
pub mod graphref;
pub mod model;
pub mod qeval;
pub mod train;
pub mod zoo;

pub use arch::{GraphOp, ModelInfo, PrunableInfo, PrunableKind};
pub use model::{LayerWeights, Model};
pub use zoo::App;
