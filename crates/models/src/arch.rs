//! Architecture metadata shared by training, deployment, and pruning.
//!
//! A [`ModelInfo`] is the single source of truth about a model's structure:
//! the list of prunable layers with their geometry (used by the pruning
//! criterion and strategy), and a flat execution graph over explicit buffers
//! (used by the HAWAII⁺ engine to build per-layer execution plans — fire
//! modules appear as three convolutions whose expand halves write disjoint
//! channel ranges of one output buffer).

/// Geometry of a prunable (weight-bearing) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrunableKind {
    /// 2-D convolution.
    Conv {
        /// Input channels.
        cin: usize,
        /// Output channels.
        cout: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Padding in height.
        pad_h: usize,
        /// Padding in width.
        pad_w: usize,
        /// Input spatial height.
        in_h: usize,
        /// Input spatial width.
        in_w: usize,
    },
    /// Fully-connected layer.
    Fc {
        /// Input features.
        din: usize,
        /// Output features.
        dout: usize,
    },
}

/// One prunable layer: identity plus geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunableInfo {
    /// Stable layer id; matches `Param::layer_id` in the trainable network.
    pub layer_id: usize,
    /// Human-readable name (e.g. `"fire2.expand3x3"`).
    pub name: String,
    /// Layer geometry.
    pub kind: PrunableKind,
}

impl PrunableInfo {
    /// Output spatial size (1×1 for FC layers).
    pub fn out_hw(&self) -> (usize, usize) {
        match &self.kind {
            PrunableKind::Conv { kh, kw, stride, pad_h, pad_w, in_h, in_w, .. } => {
                ((in_h + 2 * pad_h - kh) / stride + 1, (in_w + 2 * pad_w - kw) / stride + 1)
            }
            PrunableKind::Fc { .. } => (1, 1),
        }
    }

    /// Number of weight parameters (biases excluded).
    pub fn weights(&self) -> usize {
        match &self.kind {
            PrunableKind::Conv { cin, cout, kh, kw, .. } => cout * cin * kh * kw,
            PrunableKind::Fc { din, dout } => din * dout,
        }
    }

    /// Number of output elements produced per inference.
    pub fn out_elems(&self) -> usize {
        match &self.kind {
            PrunableKind::Conv { cout, .. } => {
                let (oh, ow) = self.out_hw();
                cout * oh * ow
            }
            PrunableKind::Fc { dout, .. } => *dout,
        }
    }

    /// Dense reduction length per output element (`cin·kh·kw` or `din`).
    pub fn k_len(&self) -> usize {
        match &self.kind {
            PrunableKind::Conv { cin, kh, kw, .. } => cin * kh * kw,
            PrunableKind::Fc { din, .. } => *din,
        }
    }

    /// Dense MAC count per inference.
    pub fn macs(&self) -> usize {
        self.out_elems() * self.k_len()
    }

    /// True for convolutions.
    pub fn is_conv(&self) -> bool {
        matches!(self.kind, PrunableKind::Conv { .. })
    }
}

/// Index of an activation buffer in [`ModelInfo::buffers`].
pub type BufId = usize;

/// Shape of an activation buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufDesc {
    /// Dimensions: `[c, h, w]` for feature maps, `[d]` for vectors.
    pub dims: Vec<usize>,
}

impl BufDesc {
    /// Total element count.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }
}

/// One operation of the flat execution graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphOp {
    /// Convolution `layer_id` from `src` into channels
    /// `[dst_c_off, dst_c_off + cout)` of `dst`, optionally fused with ReLU.
    Conv {
        /// Prunable layer id.
        layer_id: usize,
        /// Input buffer.
        src: BufId,
        /// Output buffer.
        dst: BufId,
        /// First output channel written in `dst` (for fire-module concat).
        dst_c_off: usize,
        /// Fused ReLU on the outputs.
        relu: bool,
    },
    /// Fully-connected `layer_id` from `src` into `dst`, optionally with
    /// fused ReLU.
    Fc {
        /// Prunable layer id.
        layer_id: usize,
        /// Input buffer.
        src: BufId,
        /// Output buffer.
        dst: BufId,
        /// Fused ReLU on the outputs.
        relu: bool,
    },
    /// Non-overlapping max pooling.
    MaxPool {
        /// Input buffer.
        src: BufId,
        /// Output buffer.
        dst: BufId,
        /// Pool height.
        kh: usize,
        /// Pool width.
        kw: usize,
    },
    /// Global average pooling `[c,h,w] → [c]`.
    GlobalAvgPool {
        /// Input buffer.
        src: BufId,
        /// Output buffer.
        dst: BufId,
    },
    /// Reinterpret `[c,h,w]` as `[c·h·w]` (no data movement).
    Flatten {
        /// Input buffer.
        src: BufId,
        /// Output buffer.
        dst: BufId,
    },
}

/// Complete structural description of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelInfo {
    /// Application name as used in the paper (SQN / HAR / CKS).
    pub name: String,
    /// Number of output classes.
    pub classes: usize,
    /// Input dims `[c, h, w]`.
    pub input_dims: [usize; 3],
    /// Prunable layers, indexed by `layer_id`.
    pub prunables: Vec<PrunableInfo>,
    /// Flat execution graph.
    pub graph: Vec<GraphOp>,
    /// Activation buffers referenced by the graph. Buffer 0 is the input;
    /// the last buffer is the logits.
    pub buffers: Vec<BufDesc>,
}

impl ModelInfo {
    /// Total weight parameters across prunable layers (biases excluded).
    pub fn total_weights(&self) -> usize {
        self.prunables.iter().map(|p| p.weights()).sum()
    }

    /// Total dense MACs per inference.
    pub fn total_macs(&self) -> usize {
        self.prunables.iter().map(|p| p.macs()).sum()
    }

    /// Total bias parameters (one per output channel/feature).
    pub fn total_biases(&self) -> usize {
        self.prunables
            .iter()
            .map(|p| match &p.kind {
                PrunableKind::Conv { cout, .. } => *cout,
                PrunableKind::Fc { dout, .. } => *dout,
            })
            .sum()
    }

    /// Dense deployed model size in bytes (16-bit weights and biases).
    pub fn dense_size_bytes(&self) -> usize {
        2 * (self.total_weights() + self.total_biases())
    }

    /// `(convs, pools, fcs)` — the layer tally reported in Table II.
    pub fn layer_tally(&self) -> (usize, usize, usize) {
        let mut convs = 0;
        let mut pools = 0;
        let mut fcs = 0;
        for op in &self.graph {
            match op {
                GraphOp::Conv { .. } => convs += 1,
                GraphOp::MaxPool { .. } => pools += 1,
                GraphOp::Fc { .. } => fcs += 1,
                _ => {}
            }
        }
        (convs, pools, fcs)
    }

    /// Validates internal consistency: contiguous layer ids, buffer
    /// references in range, conv/fc geometry matching buffer shapes.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first inconsistency. Intended for
    /// tests and debug assertions on hand-built graphs.
    pub fn validate(&self) {
        for (i, p) in self.prunables.iter().enumerate() {
            assert_eq!(p.layer_id, i, "layer ids must be contiguous");
        }
        for op in &self.graph {
            match op {
                GraphOp::Conv { layer_id, src, dst, dst_c_off, .. } => {
                    let p = &self.prunables[*layer_id];
                    let (oh, ow) = p.out_hw();
                    let (cin, cout) = match &p.kind {
                        PrunableKind::Conv { cin, cout, .. } => (*cin, *cout),
                        _ => panic!("layer {layer_id} is not a conv"),
                    };
                    let sdims = &self.buffers[*src].dims;
                    let ddims = &self.buffers[*dst].dims;
                    assert_eq!(sdims[0], cin, "conv {layer_id} cin vs src buffer");
                    assert!(dst_c_off + cout <= ddims[0], "conv {layer_id} channel range");
                    assert_eq!((ddims[1], ddims[2]), (oh, ow), "conv {layer_id} spatial dims");
                }
                GraphOp::Fc { layer_id, src, dst, .. } => {
                    let p = &self.prunables[*layer_id];
                    let (din, dout) = match &p.kind {
                        PrunableKind::Fc { din, dout } => (*din, *dout),
                        _ => panic!("layer {layer_id} is not fc"),
                    };
                    assert_eq!(self.buffers[*src].numel(), din, "fc {layer_id} din");
                    assert_eq!(self.buffers[*dst].numel(), dout, "fc {layer_id} dout");
                }
                GraphOp::MaxPool { src, dst, kh, kw } => {
                    let s = &self.buffers[*src].dims;
                    let d = &self.buffers[*dst].dims;
                    assert_eq!(s[0], d[0], "pool channels");
                    assert_eq!(s[1] / kh, d[1], "pool height");
                    assert_eq!(s[2] / kw, d[2], "pool width");
                }
                GraphOp::GlobalAvgPool { src, dst } => {
                    assert_eq!(self.buffers[*src].dims[0], self.buffers[*dst].numel());
                }
                GraphOp::Flatten { src, dst } => {
                    assert_eq!(self.buffers[*src].numel(), self.buffers[*dst].numel());
                }
            }
        }
        let last = self.buffers.last().expect("at least one buffer");
        assert_eq!(last.numel(), self.classes, "final buffer must hold the logits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_info() -> PrunableInfo {
        PrunableInfo {
            layer_id: 0,
            name: "c".into(),
            kind: PrunableKind::Conv {
                cin: 3,
                cout: 8,
                kh: 3,
                kw: 3,
                stride: 2,
                pad_h: 1,
                pad_w: 1,
                in_h: 32,
                in_w: 32,
            },
        }
    }

    #[test]
    fn conv_geometry() {
        let p = conv_info();
        assert_eq!(p.out_hw(), (16, 16));
        assert_eq!(p.weights(), 8 * 3 * 9);
        assert_eq!(p.k_len(), 27);
        assert_eq!(p.out_elems(), 8 * 256);
        assert_eq!(p.macs(), 8 * 256 * 27);
    }

    #[test]
    fn fc_geometry() {
        let p = PrunableInfo {
            layer_id: 0,
            name: "f".into(),
            kind: PrunableKind::Fc { din: 100, dout: 10 },
        };
        assert_eq!(p.out_hw(), (1, 1));
        assert_eq!(p.weights(), 1000);
        assert_eq!(p.macs(), 1000);
        assert!(!p.is_conv());
    }
}
