//! SqueezeNet-style fire module: squeeze 1×1 → (expand 1×1 ‖ expand 3×3),
//! channel-concatenated, each convolution followed by ReLU.

use iprune_tensor::exec::ExecCtx;
use iprune_tensor::layer::{Conv2d, Layer, LayerKind, Param, Relu};
use iprune_tensor::Tensor;

/// A fire module built from three prunable convolutions.
#[derive(Clone)]
pub struct Fire {
    squeeze: Conv2d,
    relu_s: Relu,
    expand1: Conv2d,
    relu_e1: Relu,
    expand3: Conv2d,
    relu_e3: Relu,
    e1_out: usize,
    e3_out: usize,
}

impl Fire {
    /// Creates a fire module. The three convolutions get consecutive
    /// prunable layer ids `sq_id`, `sq_id + 1`, `sq_id + 2`.
    pub fn new(sq_id: usize, cin: usize, squeeze: usize, e1: usize, e3: usize) -> Self {
        Self {
            squeeze: Conv2d::new(sq_id, cin, squeeze, 1, 1, 0),
            relu_s: Relu::new(),
            expand1: Conv2d::new(sq_id + 1, squeeze, e1, 1, 1, 0),
            relu_e1: Relu::new(),
            expand3: Conv2d::new(sq_id + 2, squeeze, e3, 3, 1, 1),
            relu_e3: Relu::new(),
            e1_out: e1,
            e3_out: e3,
        }
    }

    /// Total output channels (`e1 + e3`).
    pub fn out_channels(&self) -> usize {
        self.e1_out + self.e3_out
    }
}

/// Concatenates two NCHW tensors along the channel dimension.
fn concat_channels(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, ca, h, w) = (a.dims()[0], a.dims()[1], a.dims()[2], a.dims()[3]);
    let cb = b.dims()[1];
    assert_eq!(&a.dims()[2..], &b.dims()[2..], "spatial dims must match");
    assert_eq!(a.dims()[0], b.dims()[0], "batch must match");
    let mut out = Tensor::zeros(&[n, ca + cb, h, w]);
    let plane = h * w;
    for s in 0..n {
        let dst = &mut out.data_mut()[s * (ca + cb) * plane..(s + 1) * (ca + cb) * plane];
        dst[..ca * plane].copy_from_slice(&a.data()[s * ca * plane..(s + 1) * ca * plane]);
        dst[ca * plane..].copy_from_slice(&b.data()[s * cb * plane..(s + 1) * cb * plane]);
    }
    out
}

/// Splits an NCHW tensor into `[.., 0..ca)` and `[.., ca..)` channel halves.
fn split_channels(g: &Tensor, ca: usize) -> (Tensor, Tensor) {
    let (n, c, h, w) = (g.dims()[0], g.dims()[1], g.dims()[2], g.dims()[3]);
    let cb = c - ca;
    let plane = h * w;
    let mut a = Tensor::zeros(&[n, ca, h, w]);
    let mut b = Tensor::zeros(&[n, cb, h, w]);
    for s in 0..n {
        let src = &g.data()[s * c * plane..(s + 1) * c * plane];
        a.data_mut()[s * ca * plane..(s + 1) * ca * plane].copy_from_slice(&src[..ca * plane]);
        b.data_mut()[s * cb * plane..(s + 1) * cb * plane].copy_from_slice(&src[ca * plane..]);
    }
    (a, b)
}

impl Layer for Fire {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = self.relu_s.forward(&self.squeeze.forward(x, train), train);
        let a = self.relu_e1.forward(&self.expand1.forward(&s, train), train);
        let b = self.relu_e3.forward(&self.expand3.forward(&s, train), train);
        concat_channels(&a, &b)
    }

    fn infer(&self, x: &Tensor, ctx: &mut ExecCtx) -> Tensor {
        let s = self.relu_s.infer(&self.squeeze.infer(x, ctx), ctx);
        let a = self.relu_e1.infer(&self.expand1.infer(&s, ctx), ctx);
        let b = self.relu_e3.infer(&self.expand3.infer(&s, ctx), ctx);
        concat_channels(&a, &b)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (ga, gb) = split_channels(grad, self.e1_out);
        let gs1 = self.expand1.backward(&self.relu_e1.backward(&ga));
        let gs2 = self.expand3.backward(&self.relu_e3.backward(&gb));
        let mut gs = gs1;
        gs.add_assign(&gs2);
        self.squeeze.backward(&self.relu_s.backward(&gs))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.squeeze.visit_params(f);
        self.expand1.visit_params(f);
        self.expand3.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.squeeze.visit_params_ref(f);
        self.expand1.visit_params_ref(f);
        self.expand3.visit_params_ref(f);
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn describe(&self) -> String {
        format!(
            "fire[{}, {}, {}]",
            self.squeeze.describe(),
            self.expand1.describe(),
            self.expand3.describe()
        )
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_concats_expands() {
        let mut fire = Fire::new(0, 8, 4, 6, 10);
        let x = Tensor::zeros(&[2, 8, 5, 5]);
        let y = fire.forward(&x, false);
        assert_eq!(y.dims(), &[2, 16, 5, 5]);
        assert_eq!(fire.out_channels(), 16);
    }

    #[test]
    fn visits_six_params() {
        let mut fire = Fire::new(3, 8, 4, 6, 10);
        let mut ids = Vec::new();
        fire.visit_params(&mut |p| ids.push(p.layer_id));
        assert_eq!(ids, vec![3, 3, 4, 4, 5, 5]); // w+b per conv
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[1, 1, 1, 2], vec![5.0, 6.0]);
        let c = concat_channels(&a, &b);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (a2, b2) = split_channels(&c, 2);
        assert_eq!(a2.data(), a.data());
        assert_eq!(b2.data(), b.data());
    }

    #[test]
    fn backward_gradient_matches_numeric() {
        let mut fire = Fire::new(0, 3, 2, 3, 3);
        // Push every pre-activation well above zero so the finite-difference
        // probe never crosses a ReLU kink; the test then tightly validates
        // the concat/split/sum plumbing of the composite backward.
        fire.visit_params(&mut |p| {
            if p.name.ends_with(".b") {
                p.value = Tensor::full(p.value.dims(), 5.0);
            }
        });
        let n: usize = 3 * 4 * 4;
        let x = Tensor::from_vec(
            &[1, 3, 4, 4],
            (0..n).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.0).collect(),
        );
        let out = fire.forward(&x, true);
        let gout = Tensor::full(out.dims(), 1.0);
        let gx = fire.backward(&gout);
        let eps = 1e-2f32;
        for i in (0..x.numel()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let sp: f32 = fire.forward(&xp, false).data().iter().sum();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let sm: f32 = fire.forward(&xm, false).data().iter().sum();
            let num = (sp - sm) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < 3e-2,
                "mismatch at {i}: {num} vs {}",
                gx.data()[i]
            );
        }
    }
}
