//! Fault injection and crash-consistency checking for intermittent
//! inference (`iprune-faults`).
//!
//! The HAWAII⁺ engine promises that inference survives *any* power-failure
//! point with progress preserved, yet the capacitor model only fails where
//! `½·C·(V_on² − V_off²)` happens to run dry. This crate turns that promise
//! into systematic coverage with three pieces:
//!
//! 1. **Fault scheduling** ([`plan`]): a [`plan::FaultPlan`] decides, per
//!    accelerator-job attempt, whether to cut power and where inside the
//!    job window. Implementations cover exhaustive job-boundary sweeps
//!    ([`plan::JobBoundary`]), periodic cuts ([`plan::EveryKth`]),
//!    seeded-random schedules ([`plan::SeededRandom`]), and the plain
//!    energy model ([`plan::EnergyDriven`]) behind the same interface.
//!    Plans drive the simulator through the
//!    [`iprune_device::inject::FaultHook`] installed by
//!    [`plan::PlanHook`].
//! 2. **Shadow NVM** ([`shadow`]): a byte-addressed FRAM model that records
//!    every progress-preservation write together with how many of its bytes
//!    became durable before the cut — a mid-footprint failure observably
//!    *tears* state instead of being silently atomic.
//! 3. **Differential campaigns** ([`campaign`]): for each workload ×
//!    execution mode × fault plan, the runner asserts the faulted outputs
//!    are bit-identical to a never-failing continuous execution and emits a
//!    structured [`campaign::CampaignReport`] (consumed by the `faults`
//!    bench, which writes `BENCH_faults.json`).

pub mod campaign;
pub mod plan;
pub mod shadow;

pub use campaign::{
    energy_campaign, exhaustive_boundary_sweep, exhaustive_boundary_sweep_cost,
    exhaustive_boundary_sweep_scratch, exhaustive_boundary_sweep_scratch_cost, mode_label,
    random_campaign, reference_logits, CampaignCtx, CampaignReport, FaultRun, Nominal, RunOutcome,
    SweepCost,
};
pub use plan::{EnergyDriven, EveryKth, FaultPlan, JobBoundary, PlanHook, SeededRandom};
pub use shadow::{ShadowNvm, ShadowStats, WriteRecord, WriteStatus};
