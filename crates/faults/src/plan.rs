//! Fault schedules: who decides where power dies.
//!
//! A [`FaultPlan`] is consulted once per accelerator-job attempt and may
//! cut power at any fraction of the attempt's window. Plans are
//! deterministic by construction — either stateless, driven by job
//! indices, or seeded — so every campaign run is exactly reproducible.

use crate::shadow::ShadowNvm;
use iprune_device::inject::{FaultDecision, FaultHook, JobOutcome, JobView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A deterministic power-failure schedule over accelerator-job attempts.
///
/// `Send + Sync` (inherited by every plan) lets hooked simulators cross
/// into the workspace's worker threads, which is how campaigns run their
/// independent entries in parallel.
pub trait FaultPlan: fmt::Debug + Send + Sync {
    /// Human-readable schedule name for reports.
    fn name(&self) -> String;

    /// Decides the fate of one job attempt.
    fn decide(&mut self, view: &JobView) -> FaultDecision;

    /// The plan's fixed cut period in committed jobs, if it has one.
    /// Periodic schedules ([`EveryKth`]) report `Some(k)`; aperiodic and
    /// one-shot schedules report `None`. Campaigns attach this to livelock
    /// outcomes so a report row shows *why* an atomic span starved (cut
    /// period < span re-execution length).
    fn cut_period(&self) -> Option<u64> {
        None
    }

    /// Clones the plan behind the object.
    fn box_clone(&self) -> Box<dyn FaultPlan>;
}

impl Clone for Box<dyn FaultPlan> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Fails exactly one attempt: the first one issued after `after_commits`
/// jobs have committed, at `frac` of its window. Sweeping `after_commits`
/// over `0..total_jobs` visits every job boundary of a workload.
#[derive(Debug, Clone)]
pub struct JobBoundary {
    after_commits: u64,
    frac: f64,
    fired: bool,
}

impl JobBoundary {
    /// Cut power on the attempt following `after_commits` committed jobs,
    /// at `frac ∈ [0, 1)` of that attempt's window.
    pub fn new(after_commits: u64, frac: f64) -> Self {
        Self { after_commits, frac, fired: false }
    }
}

impl FaultPlan for JobBoundary {
    fn name(&self) -> String {
        format!("boundary@{}+{:.2}", self.after_commits, self.frac)
    }

    fn decide(&mut self, view: &JobView) -> FaultDecision {
        if !self.fired && view.committed >= self.after_commits {
            self.fired = true;
            FaultDecision::FailAt(self.frac)
        } else {
            FaultDecision::Pass
        }
    }

    fn box_clone(&self) -> Box<dyn FaultPlan> {
        Box::new(self.clone())
    }
}

/// Fails once at every k-th committed job (after `k`, `2k`, `3k`, …
/// commits), at `frac` of the window. The retry of a failed job always
/// passes, so forward progress is guaranteed.
#[derive(Debug, Clone)]
pub struct EveryKth {
    k: u64,
    frac: f64,
    next: u64,
}

impl EveryKth {
    /// Cut power on the attempt after every `k`-th committed job.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64, frac: f64) -> Self {
        assert!(k > 0, "period must be positive");
        Self { k, frac, next: k }
    }
}

impl FaultPlan for EveryKth {
    fn name(&self) -> String {
        format!("every-{}th+{:.2}", self.k, self.frac)
    }

    fn decide(&mut self, view: &JobView) -> FaultDecision {
        if view.committed >= self.next {
            self.next = view.committed + self.k;
            FaultDecision::FailAt(self.frac)
        } else {
            FaultDecision::Pass
        }
    }

    fn cut_period(&self) -> Option<u64> {
        Some(self.k)
    }

    fn box_clone(&self) -> Box<dyn FaultPlan> {
        Box::new(self.clone())
    }
}

/// Fails each attempt independently with probability `prob`, at a random
/// fraction of the window — deterministic for a given seed (the workspace's
/// seeded xoshiro generator, as used by `iprune_datasets::rng`).
#[derive(Debug, Clone)]
pub struct SeededRandom {
    prob: f64,
    seed: u64,
    rng: StdRng,
}

impl SeededRandom {
    /// Cut each attempt with probability `prob ∈ [0, 1)`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1)` (an always-failing schedule can
    /// never make progress).
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&prob), "prob must be in [0, 1)");
        Self { prob, seed, rng: StdRng::seed_from_u64(seed) }
    }
}

impl FaultPlan for SeededRandom {
    fn name(&self) -> String {
        format!("random(p={:.2},seed={})", self.prob, self.seed)
    }

    fn decide(&mut self, _view: &JobView) -> FaultDecision {
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let frac: f64 = self.rng.gen_range(0.0..1.0);
        if roll < self.prob {
            FaultDecision::FailAt(frac)
        } else {
            FaultDecision::Pass
        }
    }

    fn box_clone(&self) -> Box<dyn FaultPlan> {
        Box::new(self.clone())
    }
}

/// Injects nothing: power fails only where the capacitor model runs dry.
/// Exists so campaigns can iterate the existing energy-driven behaviour
/// behind the same interface as the adversarial schedules.
#[derive(Debug, Clone, Default)]
pub struct EnergyDriven;

impl FaultPlan for EnergyDriven {
    fn name(&self) -> String {
        "energy-model".to_string()
    }

    fn decide(&mut self, _view: &JobView) -> FaultDecision {
        FaultDecision::Pass
    }

    fn box_clone(&self) -> Box<dyn FaultPlan> {
        Box::new(self.clone())
    }
}

/// Adapter installing a [`FaultPlan`] into a device simulator while
/// mirroring every preservation write into a shared [`ShadowNvm`].
///
/// The shadow store is behind `Arc<Mutex<…>>` so the campaign runner keeps
/// a handle for post-run inspection after the hook is moved into the
/// simulator.
#[derive(Debug)]
pub struct PlanHook {
    plan: Box<dyn FaultPlan>,
    shadow: Arc<Mutex<ShadowNvm>>,
}

impl PlanHook {
    /// Couples a schedule with a shadow-NVM store.
    pub fn new(plan: Box<dyn FaultPlan>, shadow: Arc<Mutex<ShadowNvm>>) -> Self {
        Self { plan, shadow }
    }
}

impl FaultHook for PlanHook {
    fn on_job(&mut self, view: &JobView) -> FaultDecision {
        self.plan.decide(view)
    }

    fn on_outcome(&mut self, view: &JobView, outcome: &JobOutcome) {
        self.shadow.lock().expect("shadow NVM lock").record_preserve(
            view.index,
            view.cost.preserve_bytes,
            outcome,
        );
    }

    fn box_clone(&self) -> Box<dyn FaultHook> {
        Box::new(Self { plan: self.plan.clone(), shadow: Arc::clone(&self.shadow) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_device::sim::JobCost;

    fn view(index: u64, committed: u64) -> JobView {
        JobView {
            index,
            committed,
            cost: JobCost { lea_macs: 10, preserve_bytes: 20, cpu_cycles: 5 },
            window_s: 1.0e-3,
            now_s: 0.0,
        }
    }

    #[test]
    fn job_boundary_fires_exactly_once() {
        let mut p = JobBoundary::new(3, 0.5);
        assert_eq!(p.decide(&view(0, 0)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(2, 2)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(3, 3)), FaultDecision::FailAt(0.5));
        // the retry of the failed attempt (same commit count) passes
        assert_eq!(p.decide(&view(4, 3)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(9, 8)), FaultDecision::Pass);
    }

    #[test]
    fn every_kth_reschedules_after_each_cut() {
        let mut p = EveryKth::new(2, 0.9);
        assert_eq!(p.decide(&view(0, 0)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(1, 1)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(2, 2)), FaultDecision::FailAt(0.9));
        // retry at the same boundary passes, next cut waits for 2 more
        assert_eq!(p.decide(&view(3, 2)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(4, 3)), FaultDecision::Pass);
        assert_eq!(p.decide(&view(5, 4)), FaultDecision::FailAt(0.9));
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let run = |seed| {
            let mut p = SeededRandom::new(0.3, seed);
            (0..64).map(|i| p.decide(&view(i, i))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should differ");
        let fails = run(7).iter().filter(|d| matches!(d, FaultDecision::FailAt(_))).count();
        assert!(fails > 0 && fails < 64, "p=0.3 over 64 draws, got {fails}");
    }

    #[test]
    fn cut_period_is_reported_only_by_periodic_plans() {
        assert_eq!(EveryKth::new(3, 0.5).cut_period(), Some(3));
        assert_eq!(JobBoundary::new(3, 0.5).cut_period(), None);
        assert_eq!(SeededRandom::new(0.3, 1).cut_period(), None);
        assert_eq!(EnergyDriven.cut_period(), None);
    }

    #[test]
    fn energy_driven_never_injects() {
        let mut p = EnergyDriven;
        for i in 0..32 {
            assert_eq!(p.decide(&view(i, i)), FaultDecision::Pass);
        }
    }
}
