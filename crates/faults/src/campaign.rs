//! Differential crash-consistency campaigns.
//!
//! The central invariant of the HAWAII⁺ engine is that intermittent
//! execution — under *any* power-failure schedule — produces outputs
//! bit-identical to a continuous, never-failing execution. The campaign
//! runner proves it under injected faults: for each workload × execution
//! mode × fault plan it runs one inference with the plan installed, checks
//! the logits against the continuous reference, runs the shadow-NVM oracle,
//! and folds everything into a structured [`CampaignReport`] (the `faults`
//! bench serializes it to `BENCH_faults.json`).

use crate::plan::{EnergyDriven, FaultPlan, JobBoundary, PlanHook, SeededRandom};
use crate::shadow::{ShadowNvm, ShadowStats};
use iprune_device::power::Supply;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_hawaii::DeployedModel;
use iprune_obs::{log_error, MemorySink, TraceEvent};
use iprune_tensor::Tensor;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Report label for an execution mode.
pub fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Intermittent => "intermittent",
        ExecMode::TileAtomic => "tile-atomic",
        ExecMode::Continuous => "continuous",
    }
}

/// Logits of the golden execution: continuous mode under bench power.
pub fn reference_logits(dm: &DeployedModel, input: &Tensor) -> Vec<f32> {
    let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
    infer(dm, input, &mut sim, ExecMode::Continuous).expect("continuous reference").logits
}

/// Failure-free cost of one mode, used to size sweeps and to measure
/// re-executed work.
#[derive(Debug, Clone, Copy)]
pub struct Nominal {
    /// Jobs one clean inference commits.
    pub jobs: u64,
    /// MACs one clean inference commits.
    pub macs: u64,
}

/// One fault-plan run and its verdicts.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Schedule name (see [`FaultPlan::name`]).
    pub plan: String,
    /// Execution mode label.
    pub mode: &'static str,
    /// Supply label.
    pub supply: String,
    /// Differential oracle: logits bit-identical to the continuous
    /// reference AND the shadow-NVM consistency check passed.
    pub ok: bool,
    /// Power cycles forced by the plan.
    pub injected_failures: u64,
    /// Total power cycles (injected + capacitor-driven).
    pub power_cycles: u64,
    /// Jobs committed.
    pub jobs: u64,
    /// Job/tile attempts re-issued after failures.
    pub retries: u64,
    /// Committed MACs beyond the failure-free execution (re-executed work).
    pub reexecuted_macs: u64,
    /// Shadow-NVM counters for the run.
    pub shadow: ShadowStats,
    /// End-to-end latency on the simulated device (seconds).
    pub latency_s: f64,
    /// Engine error, if the schedule denied forward progress (e.g. a
    /// periodic cut faster than a tile re-execution livelocks tile-atomic
    /// recovery — the nontermination hazard of coarse footprints).
    pub error: Option<String>,
}

/// A workload pinned to its golden reference, shared by every run of a
/// campaign.
pub struct CampaignCtx<'a> {
    dm: &'a DeployedModel,
    input: &'a Tensor,
    reference: Vec<f32>,
}

impl<'a> CampaignCtx<'a> {
    /// Computes the continuous reference for `input` once.
    pub fn new(dm: &'a DeployedModel, input: &'a Tensor) -> Self {
        let reference = reference_logits(dm, input);
        Self { dm, input, reference }
    }

    /// The golden logits.
    pub fn reference(&self) -> &[f32] {
        &self.reference
    }

    /// Failure-free job/MAC counts of `mode` under bench power.
    pub fn nominal(&self, mode: ExecMode) -> Nominal {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(self.dm, self.input, &mut sim, mode).expect("nominal probe");
        Nominal { jobs: out.jobs, macs: out.stats.lea_macs }
    }

    /// Runs `mode` once with `plan` installed over `supply` and checks the
    /// differential + shadow oracles.
    ///
    /// Every run is traced into a [`MemorySink`]; when a run fails either
    /// oracle (or violates the `SimStats` invariants), its full event trace
    /// is dumped as JSONL — to `IPRUNE_TRACE_DIR` if set, else the system
    /// temp dir — and the path is logged at error level, so a red
    /// differential campaign leaves the evidence behind.
    pub fn run_one(
        &self,
        mode: ExecMode,
        plan: Box<dyn FaultPlan>,
        supply: Supply,
        supply_label: &str,
        seed: u64,
        nominal: &Nominal,
    ) -> FaultRun {
        let plan_name = plan.name();
        let shadow = Arc::new(Mutex::new(ShadowNvm::with_device_capacity()));
        let mut sim = DeviceSim::with_supply(supply, seed);
        sim.set_fault_hook(Box::new(PlanHook::new(plan, Arc::clone(&shadow))));
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        let result = infer(self.dm, self.input, &mut sim, mode);
        let shadow = shadow.lock().expect("shadow NVM lock");
        let invariants = sim.stats().check_invariants();
        let run = match result {
            Ok(out) => {
                let bit_identical = out.logits == self.reference;
                let consistent = shadow.check_completed().is_ok();
                FaultRun {
                    plan: plan_name,
                    mode: mode_label(mode),
                    supply: supply_label.to_string(),
                    ok: bit_identical && consistent && invariants.is_ok(),
                    injected_failures: out.stats.injected_failures,
                    power_cycles: out.power_cycles,
                    jobs: out.jobs,
                    retries: out.retries,
                    reexecuted_macs: out.stats.lea_macs.saturating_sub(nominal.macs),
                    shadow: shadow.stats().clone(),
                    latency_s: out.latency_s,
                    error: invariants.err().map(|e| format!("stats invariant violated: {e}")),
                }
            }
            Err(e) => FaultRun {
                plan: plan_name,
                mode: mode_label(mode),
                supply: supply_label.to_string(),
                ok: false,
                injected_failures: sim.stats().injected_failures,
                power_cycles: sim.stats().power_cycles,
                jobs: sim.stats().jobs_committed,
                retries: 0,
                reexecuted_macs: 0,
                shadow: shadow.stats().clone(),
                latency_s: sim.now(),
                error: Some(e.to_string()),
            },
        };
        if !run.ok && run.error.is_none() {
            // A failed *differential* run (oracle mismatch, not an engine
            // error the caller asserts on) is exactly the case the trace
            // exists for: dump it and say where it went.
            let events = iprune_obs::drain_shared(&sink);
            match dump_failed_trace(&run, &events) {
                Some(path) => log_error!(
                    "faults",
                    "differential run failed (plan={} mode={} supply={}); trace dumped to {}",
                    run.plan,
                    run.mode,
                    run.supply,
                    path.display()
                ),
                None => log_error!(
                    "faults",
                    "differential run failed (plan={} mode={} supply={}); trace dump failed",
                    run.plan,
                    run.mode,
                    run.supply
                ),
            }
        }
        run
    }
}

/// Writes a failed run's event trace as JSONL and returns the path
/// (`IPRUNE_TRACE_DIR` if set, else the system temp dir).
fn dump_failed_trace(run: &FaultRun, events: &[TraceEvent]) -> Option<PathBuf> {
    let dir =
        std::env::var_os("IPRUNE_TRACE_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let slug: String = format!("{}-{}-{}", run.plan, run.mode, run.supply)
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("iprune-failed-{slug}.trace.jsonl"));
    std::fs::write(&path, iprune_obs::to_jsonl(events)).ok()?;
    Some(path)
}

/// Exhaustive job-boundary sweep: for each mode, fail once at every
/// `stride`-th job boundary (cut at `frac` of the job window) under bench
/// power, so every failure is adversarial rather than energy-driven.
pub fn exhaustive_boundary_sweep(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    stride: usize,
    frac: f64,
) -> Vec<FaultRun> {
    assert!(stride > 0, "stride must be positive");
    let mut runs = Vec::new();
    for &mode in modes {
        let nominal = ctx.nominal(mode);
        for boundary in (0..nominal.jobs).step_by(stride) {
            runs.push(ctx.run_one(
                mode,
                Box::new(JobBoundary::new(boundary, frac)),
                Supply::from(PowerStrength::Continuous),
                "continuous",
                0,
                &nominal,
            ));
        }
    }
    runs
}

/// Seeded-random campaign: `reps` independent random schedules per mode
/// (per-attempt failure probability `prob`), deterministic from `seed`.
pub fn random_campaign(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    reps: usize,
    prob: f64,
    seed: u64,
) -> Vec<FaultRun> {
    let mut runs = Vec::new();
    for &mode in modes {
        let nominal = ctx.nominal(mode);
        for rep in 0..reps {
            runs.push(ctx.run_one(
                mode,
                Box::new(SeededRandom::new(prob, seed.wrapping_add(rep as u64))),
                Supply::from(PowerStrength::Continuous),
                "continuous",
                0,
                &nominal,
            ));
        }
    }
    runs
}

/// Energy-model campaign: no injection — power fails only where the
/// capacitor runs dry under each supplied profile (the pre-existing
/// behaviour, now behind the same plan interface and oracle).
pub fn energy_campaign(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    supplies: &[(String, Supply)],
    seed: u64,
) -> Vec<FaultRun> {
    let mut runs = Vec::new();
    for &mode in modes {
        let nominal = ctx.nominal(mode);
        for (i, (label, supply)) in supplies.iter().enumerate() {
            runs.push(ctx.run_one(
                mode,
                Box::new(EnergyDriven),
                supply.clone(),
                label,
                seed.wrapping_add(i as u64),
                &nominal,
            ));
        }
    }
    runs
}

/// A full campaign: schedules run, failures injected, re-executed work,
/// and NVM bytes torn/replayed, per run and in aggregate.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Workload name.
    pub workload: String,
    /// Master seed the campaign derives every schedule from.
    pub seed: u64,
    /// All runs, in execution order.
    pub runs: Vec<FaultRun>,
}

impl CampaignReport {
    /// An empty report for `workload`.
    pub fn new(workload: impl Into<String>, seed: u64) -> Self {
        Self { workload: workload.into(), seed, runs: Vec::new() }
    }

    /// Whether every run passed both oracles.
    pub fn all_ok(&self) -> bool {
        self.runs.iter().all(|r| r.ok)
    }

    /// Total failures injected across the campaign.
    pub fn total_injected(&self) -> u64 {
        self.runs.iter().map(|r| r.injected_failures).sum()
    }

    /// Total power cycles (injected + natural) across the campaign.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.power_cycles).sum()
    }

    /// Total NVM bytes torn across the campaign.
    pub fn total_torn_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.shadow.torn_bytes).sum()
    }

    /// Total NVM bytes replayed across the campaign.
    pub fn total_replayed_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.shadow.replayed_bytes).sum()
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} runs ({} ok), {} injected failures / {} power cycles, \
             {} NVM bytes torn, {} replayed",
            self.workload,
            self.runs.len(),
            self.runs.iter().filter(|r| r.ok).count(),
            self.total_injected(),
            self.total_cycles(),
            self.total_torn_bytes(),
            self.total_replayed_bytes(),
        )
    }

    /// Machine-readable JSON (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"workload\": \"{}\",", self.workload);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"all_ok\": {},", self.all_ok());
        s.push_str("  \"summary\": {\n");
        let _ = writeln!(s, "    \"runs\": {},", self.runs.len());
        let _ = writeln!(s, "    \"ok\": {},", self.runs.iter().filter(|r| r.ok).count());
        let _ = writeln!(s, "    \"injected_failures\": {},", self.total_injected());
        let _ = writeln!(s, "    \"power_cycles\": {},", self.total_cycles());
        let _ = writeln!(s, "    \"torn_bytes\": {},", self.total_torn_bytes());
        let _ = writeln!(s, "    \"replayed_bytes\": {}", self.total_replayed_bytes());
        s.push_str("  },\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"plan\": \"{}\", \"mode\": \"{}\", \"supply\": \"{}\", \"ok\": {}, \
                 \"injected_failures\": {}, \"power_cycles\": {}, \"jobs\": {}, \"retries\": {}, \
                 \"reexecuted_macs\": {}, \"preserve_writes\": {}, \"torn_events\": {}, \
                 \"torn_bytes\": {}, \"lost_writes\": {}, \"replayed_writes\": {}, \
                 \"replayed_bytes\": {}, \"latency_s\": {:.9}",
                r.plan,
                r.mode,
                r.supply,
                r.ok,
                r.injected_failures,
                r.power_cycles,
                r.jobs,
                r.retries,
                r.reexecuted_macs,
                r.shadow.preserve_writes,
                r.shadow.torn_events,
                r.shadow.torn_bytes,
                r.shadow.lost_writes,
                r.shadow.replayed_writes,
                r.shadow.replayed_bytes,
                r.latency_s,
            );
            match &r.error {
                Some(err) => {
                    let _ = write!(s, ", \"error\": \"{}\"}}", err.replace('"', "'"));
                }
                None => s.push('}'),
            }
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}
