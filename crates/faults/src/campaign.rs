//! Differential crash-consistency campaigns.
//!
//! The central invariant of the HAWAII⁺ engine is that intermittent
//! execution — under *any* power-failure schedule — produces outputs
//! bit-identical to a continuous, never-failing execution. The campaign
//! runner proves it under injected faults: for each workload × execution
//! mode × fault plan it runs one inference with the plan installed, checks
//! the logits against the continuous reference, runs the shadow-NVM oracle,
//! and folds everything into a structured [`CampaignReport`] (the `faults`
//! bench serializes it to `BENCH_faults.json`).
//!
//! # Prefix reuse
//!
//! The exhaustive boundary sweep is the expensive campaign: failing once at
//! each of `J` job boundaries naively re-simulates the failure-free prefix
//! of every run, `O(J²)` simulated jobs in total. [`exhaustive_boundary_sweep`]
//! instead simulates the failure-free execution *once*, checkpointing the
//! simulator ([`iprune_device::SimCheckpoint`]) and cloning the engine at
//! every swept boundary, then forks each checkpoint, injects the failure,
//! and runs the fork only until recovery reconverges with the recording —
//! the next committed job (intermittent mode) or the next tile write-back
//! (tile-atomic mode). The suffix of the run is then *spliced* from the
//! recording's per-commit marks. In tile-atomic mode a failure rolls the
//! whole tile back, so the post-failure re-execution is the same job
//! sequence for every boundary of a tile: only the first swept boundary of
//! each tile (its *leader*) simulates it; the tile's other forks stop at
//! their first post-failure commit and splice the leader's segment in,
//! keeping the sweep `O(jobs)` even when tiles are large.
//! Reconvergence is not assumed: every fork
//! compares its engine-state digest ([`iprune_hawaii::Engine::state_fingerprint`])
//! and its own shadow-NVM oracle against the recording, and any mismatch
//! falls back to an honest from-scratch run of that boundary (which also
//! dumps its trace). [`exhaustive_boundary_sweep_scratch`] keeps the naive
//! sweep for differential testing, and the `*_cost` variants report
//! simulated-job and wall-clock costs ([`SweepCost`]) for both.
//!
//! Independent campaign entries (forks of a batch, boundaries of the
//! scratch sweep, random/energy schedules) run in parallel on the workspace
//! worker pool ([`iprune_tensor::par`]); results are assembled in index
//! order, so reports are byte-identical at any thread count.

use crate::plan::{EnergyDriven, FaultPlan, JobBoundary, PlanHook, SeededRandom};
use crate::shadow::{ShadowNvm, ShadowStats};
use iprune_device::power::Supply;
use iprune_device::sim::SimError;
use iprune_device::trace::SimStats;
use iprune_device::{DeviceSim, PowerStrength, SimCheckpoint};
use iprune_hawaii::exec::{infer, Engine, EngineError, ExecMode, Step};
use iprune_hawaii::DeployedModel;
use iprune_obs::{log_error, MemorySink, TraceEvent};
use iprune_tensor::par::par_map;
use iprune_tensor::Tensor;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many boundary forks are captured before dispatching them as one
/// parallel batch. Bounds the live checkpoints (engine + shadow-NVM clones)
/// held at once; the batch boundary does not depend on the worker count, so
/// results are identical at any parallelism.
const FORK_BATCH: usize = 32;

/// Report label for an execution mode.
pub fn mode_label(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Intermittent => "intermittent",
        ExecMode::TileAtomic => "tile-atomic",
        ExecMode::Continuous => "continuous",
    }
}

/// Logits of the golden execution: continuous mode under bench power.
pub fn reference_logits(dm: &DeployedModel, input: &Tensor) -> Vec<f32> {
    let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
    infer(dm, input, &mut sim, ExecMode::Continuous).expect("continuous reference").logits
}

/// Failure-free cost of one mode, used to size sweeps and to measure
/// re-executed work.
#[derive(Debug, Clone, Copy)]
pub struct Nominal {
    /// Jobs one clean inference commits.
    pub jobs: u64,
    /// MACs one clean inference commits.
    pub macs: u64,
}

/// Simulation cost of one boundary sweep, for before/after accounting.
#[derive(Debug, Clone, Copy)]
pub struct SweepCost {
    /// Accelerator-job attempts simulated (committed + failed), across
    /// recordings, forks, and any fallback runs.
    pub simulated_jobs: u64,
    /// Host wall-clock time of the sweep (seconds).
    pub wall_s: f64,
}

/// Structured terminal state of one campaign run (or one fleet device).
///
/// Replaces the old free-text `error` string so downstream consumers — the
/// crash-consistency tests, the `faults` bench compare, and the fleet
/// per-cell outcome counts — can match on *why* a run ended instead of
/// grepping messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The inference ran to completion (oracle verdicts live in
    /// [`FaultRun::ok`]).
    Completed,
    /// Recovery livelocked: an atomic span hit the engine's retry cap
    /// without committing. The classic trigger is a periodic cut faster
    /// than a tile-atomic tile's re-execution — the nontermination hazard
    /// of coarse footprints (DESIGN.md §6).
    Livelock {
        /// Layer id where progress stalled.
        layer: usize,
        /// Jobs the stalled atomic span re-executes per retry (1 for a
        /// job-granular commit, chunk-count + write-back for a tile).
        tile_jobs: u64,
        /// The schedule's fixed cut period in committed jobs, when it has
        /// one ([`FaultPlan::cut_period`]); a period shorter than
        /// `tile_jobs` explains the starvation.
        cut_period: Option<u64>,
    },
    /// An activity needs more energy per attempt than one full power cycle
    /// provides ([`SimError::Nontermination`]).
    Nontermination {
        /// The simulator's description of the offending activity.
        description: String,
    },
    /// Any other engine error (e.g. power lost in continuous mode).
    EngineError {
        /// The engine's error text.
        description: String,
    },
    /// The run completed but its `SimStats` violated an accounting
    /// invariant.
    StatsViolation {
        /// The violated invariant.
        description: String,
    },
}

impl RunOutcome {
    /// Whether the run reached its final logits.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Whether recovery livelocked.
    pub fn is_livelock(&self) -> bool {
        matches!(self, RunOutcome::Livelock { .. })
    }

    /// Whether the energy model proved the workload nonterminating.
    pub fn is_nontermination(&self) -> bool {
        matches!(self, RunOutcome::Nontermination { .. })
    }

    /// Stable snake_case serialization name, shared by the fault-campaign
    /// report, the fleet per-cell outcome counts, and the triage cause
    /// taxonomy (`iprune_obs::telemetry::AnomalyCause` pins the overlap).
    pub fn name(&self) -> &'static str {
        match self {
            RunOutcome::Completed => "completed",
            RunOutcome::Livelock { .. } => "livelock",
            RunOutcome::Nontermination { .. } => "nontermination",
            RunOutcome::EngineError { .. } => "engine_error",
            RunOutcome::StatsViolation { .. } => "stats_violation",
        }
    }

    /// Human-readable error text for non-completed outcomes (the old
    /// `error` string field).
    pub fn error_text(&self) -> Option<String> {
        match self {
            RunOutcome::Completed => None,
            RunOutcome::Livelock { layer, tile_jobs, cut_period } => Some(match cut_period {
                Some(k) => format!(
                    "livelock: no forward progress in layer {layer} \
                     (atomic span of {tile_jobs} jobs, cut period {k})"
                ),
                None => format!(
                    "livelock: no forward progress in layer {layer} \
                     (atomic span of {tile_jobs} jobs)"
                ),
            }),
            RunOutcome::Nontermination { description }
            | RunOutcome::EngineError { description } => Some(description.clone()),
            RunOutcome::StatsViolation { description } => {
                Some(format!("stats invariant violated: {description}"))
            }
        }
    }

    /// Classifies an engine error, attaching the plan's cut period to
    /// livelocks.
    pub fn from_engine_error(e: &EngineError, cut_period: Option<u64>) -> Self {
        match e {
            EngineError::NoProgress { layer, tile_jobs } => {
                RunOutcome::Livelock { layer: *layer, tile_jobs: *tile_jobs, cut_period }
            }
            EngineError::Sim(SimError::Nontermination { .. }) => {
                RunOutcome::Nontermination { description: e.to_string() }
            }
            other => RunOutcome::EngineError { description: other.to_string() },
        }
    }
}

impl std::fmt::Display for RunOutcome {
    /// `name` for completed runs, `name: detail` otherwise — log- and
    /// table-friendly without losing the structured detail.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.error_text() {
            None => f.write_str(self.name()),
            Some(detail) => write!(f, "{}: {}", self.name(), detail),
        }
    }
}

/// One fault-plan run and its verdicts.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Schedule name (see [`FaultPlan::name`]).
    pub plan: String,
    /// Execution mode label.
    pub mode: &'static str,
    /// Supply label.
    pub supply: String,
    /// Differential oracle: logits bit-identical to the continuous
    /// reference AND the shadow-NVM consistency check passed.
    pub ok: bool,
    /// Power cycles forced by the plan.
    pub injected_failures: u64,
    /// Total power cycles (injected + capacitor-driven).
    pub power_cycles: u64,
    /// Jobs committed.
    pub jobs: u64,
    /// Job/tile attempts re-issued after failures.
    pub retries: u64,
    /// Committed MACs beyond the failure-free execution (re-executed work).
    pub reexecuted_macs: u64,
    /// Shadow-NVM counters for the run.
    pub shadow: ShadowStats,
    /// End-to-end latency on the simulated device (seconds).
    pub latency_s: f64,
    /// Structured terminal state: completed, livelocked (with tile span
    /// and cut period), nonterminating, or another error.
    pub outcome: RunOutcome,
}

impl FaultRun {
    /// Error text of a non-completed run (the old string `error` field).
    pub fn error_text(&self) -> Option<String> {
        self.outcome.error_text()
    }
}

/// A workload pinned to its golden reference, shared by every run of a
/// campaign.
pub struct CampaignCtx<'a> {
    dm: &'a DeployedModel,
    input: &'a Tensor,
    reference: Vec<f32>,
}

impl<'a> CampaignCtx<'a> {
    /// Computes the continuous reference for `input` once.
    pub fn new(dm: &'a DeployedModel, input: &'a Tensor) -> Self {
        let reference = reference_logits(dm, input);
        Self { dm, input, reference }
    }

    /// The golden logits.
    pub fn reference(&self) -> &[f32] {
        &self.reference
    }

    /// Failure-free job/MAC counts of `mode` under bench power.
    pub fn nominal(&self, mode: ExecMode) -> Nominal {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(self.dm, self.input, &mut sim, mode).expect("nominal probe");
        Nominal { jobs: out.jobs, macs: out.stats.lea_macs }
    }

    /// Runs `mode` once with `plan` installed over `supply` and checks the
    /// differential + shadow oracles.
    ///
    /// Every run is traced into a [`MemorySink`]; when a run fails either
    /// oracle (or violates the `SimStats` invariants), its full event trace
    /// is dumped as JSONL — to `IPRUNE_TRACE_DIR` if set, else the system
    /// temp dir — and the path is logged at error level, so a red
    /// differential campaign leaves the evidence behind.
    pub fn run_one(
        &self,
        mode: ExecMode,
        plan: Box<dyn FaultPlan>,
        supply: Supply,
        supply_label: &str,
        seed: u64,
        nominal: &Nominal,
    ) -> FaultRun {
        let plan_name = plan.name();
        let cut_period = plan.cut_period();
        let shadow = Arc::new(Mutex::new(ShadowNvm::with_device_capacity()));
        let mut sim = DeviceSim::with_supply(supply, seed);
        sim.set_fault_hook(Box::new(PlanHook::new(plan, Arc::clone(&shadow))));
        let sink = MemorySink::shared();
        sim.set_trace_sink(sink.clone());
        let result = infer(self.dm, self.input, &mut sim, mode);
        let shadow = shadow.lock().expect("shadow NVM lock");
        let invariants = sim.stats().check_invariants();
        let run = match result {
            Ok(out) => {
                let bit_identical = out.logits == self.reference;
                let consistent = shadow.check_completed().is_ok();
                FaultRun {
                    plan: plan_name,
                    mode: mode_label(mode),
                    supply: supply_label.to_string(),
                    ok: bit_identical && consistent && invariants.is_ok(),
                    injected_failures: out.stats.injected_failures,
                    power_cycles: out.power_cycles,
                    jobs: out.jobs,
                    retries: out.retries,
                    reexecuted_macs: out.stats.lea_macs.saturating_sub(nominal.macs),
                    shadow: shadow.stats().clone(),
                    latency_s: out.latency_s,
                    outcome: match invariants.err() {
                        Some(e) => RunOutcome::StatsViolation { description: e },
                        None => RunOutcome::Completed,
                    },
                }
            }
            Err(e) => FaultRun {
                plan: plan_name,
                mode: mode_label(mode),
                supply: supply_label.to_string(),
                ok: false,
                injected_failures: sim.stats().injected_failures,
                power_cycles: sim.stats().power_cycles,
                jobs: sim.stats().jobs_committed,
                retries: 0,
                reexecuted_macs: 0,
                shadow: shadow.stats().clone(),
                latency_s: sim.now(),
                outcome: RunOutcome::from_engine_error(&e, cut_period),
            },
        };
        if !run.ok && run.outcome.is_completed() {
            // A failed *differential* run (oracle mismatch, not an engine
            // error the caller asserts on) is exactly the case the trace
            // exists for: dump it and say where it went.
            let events = iprune_obs::drain_shared(&sink);
            match dump_failed_trace(&run, &events) {
                Some(path) => log_error!(
                    "faults",
                    "differential run failed (plan={} mode={} supply={}); trace dumped to {}",
                    run.plan,
                    run.mode,
                    run.supply,
                    path.display()
                ),
                None => log_error!(
                    "faults",
                    "differential run failed (plan={} mode={} supply={}); trace dump failed",
                    run.plan,
                    run.mode,
                    run.supply
                ),
            }
        }
        run
    }
}

/// Writes a failed run's event trace as JSONL and returns the path
/// (`IPRUNE_TRACE_DIR` if set, else the system temp dir).
fn dump_failed_trace(run: &FaultRun, events: &[TraceEvent]) -> Option<PathBuf> {
    let dir =
        std::env::var_os("IPRUNE_TRACE_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
    let slug: String = format!("{}-{}-{}", run.plan, run.mode, run.supply)
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("iprune-failed-{slug}.trace.jsonl"));
    std::fs::write(&path, iprune_obs::to_jsonl(events)).ok()?;
    Some(path)
}

/// State of the failure-free recording at one committed job: enough to
/// splice a forked run's suffix and to verify the fork reconverged.
struct CommitMark {
    now: f64,
    stats: SimStats,
    shadow: ShadowStats,
    fp: u64,
}

impl CommitMark {
    fn capture(sim: &DeviceSim, eng: &Engine<'_>, shadow: &Arc<Mutex<ShadowNvm>>) -> Self {
        CommitMark {
            now: sim.now(),
            stats: sim.stats().clone(),
            shadow: shadow.lock().expect("shadow NVM lock").stats().clone(),
            fp: eng.state_fingerprint(),
        }
    }
}

/// A resumable copy of the failure-free execution at one job boundary.
struct ForkPoint<'m> {
    boundary: u64,
    /// Tile leader: in tile-atomic mode, the first swept boundary of each
    /// tile simulates the whole post-failure re-execution; the tile's other
    /// forks stop at their first post-failure commit and splice the
    /// leader's segment (see [`sweep_mode_fast`]).
    full: bool,
    ckpt: SimCheckpoint,
    eng: Engine<'m>,
    shadow: ShadowNvm,
}

/// Fork state at its first committed job after the injected failure — for
/// a tile leader, the start of the re-executed segment that the tile's
/// cheap forks splice in.
struct Mid {
    now: f64,
    stats: SimStats,
    shadow: ShadowStats,
    eng_jobs: u64,
    eng_retries: u64,
    fp: u64,
}

impl Mid {
    fn capture(sim: &DeviceSim, eng: &Engine<'_>, shadow: &Arc<Mutex<ShadowNvm>>) -> Self {
        Mid {
            now: sim.now(),
            stats: sim.stats().clone(),
            shadow: shadow.lock().expect("shadow NVM lock").stats().clone(),
            eng_jobs: eng.jobs_committed(),
            eng_retries: eng.retries(),
            fp: eng.state_fingerprint(),
        }
    }
}

/// What one boundary fork observed by the time it reconverged (or died).
struct RawFork {
    boundary: u64,
    full: bool,
    plan: String,
    now: f64,
    stats: SimStats,
    shadow_stats: ShadowStats,
    shadow_ok: bool,
    eng_jobs: u64,
    eng_retries: u64,
    fp: u64,
    done: bool,
    attempts: u64,
    mid: Option<Mid>,
    error: Option<String>,
}

/// `fork + (fin - mark)`, field-wise: the forked prefix plus the
/// recording's suffix. Integer fields are exact; float fields agree with a
/// from-scratch run to f64 re-association error.
fn splice_stats(fork: &SimStats, fin: &SimStats, mark: &SimStats) -> SimStats {
    SimStats {
        nvm_read_s: fork.nvm_read_s + (fin.nvm_read_s - mark.nvm_read_s),
        nvm_write_s: fork.nvm_write_s + (fin.nvm_write_s - mark.nvm_write_s),
        lea_s: fork.lea_s + (fin.lea_s - mark.lea_s),
        cpu_s: fork.cpu_s + (fin.cpu_s - mark.cpu_s),
        recovery_s: fork.recovery_s + (fin.recovery_s - mark.recovery_s),
        charging_s: fork.charging_s + (fin.charging_s - mark.charging_s),
        wasted_s: fork.wasted_s + (fin.wasted_s - mark.wasted_s),
        nvm_read_bytes: fork.nvm_read_bytes + (fin.nvm_read_bytes - mark.nvm_read_bytes),
        nvm_write_bytes: fork.nvm_write_bytes + (fin.nvm_write_bytes - mark.nvm_write_bytes),
        lea_macs: fork.lea_macs + (fin.lea_macs - mark.lea_macs),
        jobs_committed: fork.jobs_committed + (fin.jobs_committed - mark.jobs_committed),
        jobs_failed: fork.jobs_failed + (fin.jobs_failed - mark.jobs_failed),
        power_cycles: fork.power_cycles + (fin.power_cycles - mark.power_cycles),
        injected_failures: fork.injected_failures
            + (fin.injected_failures - mark.injected_failures),
    }
}

fn splice_shadow(fork: &ShadowStats, fin: &ShadowStats, mark: &ShadowStats) -> ShadowStats {
    ShadowStats {
        preserve_writes: fork.preserve_writes + (fin.preserve_writes - mark.preserve_writes),
        committed_writes: fork.committed_writes + (fin.committed_writes - mark.committed_writes),
        committed_bytes: fork.committed_bytes + (fin.committed_bytes - mark.committed_bytes),
        torn_events: fork.torn_events + (fin.torn_events - mark.torn_events),
        torn_bytes: fork.torn_bytes + (fin.torn_bytes - mark.torn_bytes),
        lost_writes: fork.lost_writes + (fin.lost_writes - mark.lost_writes),
        replayed_writes: fork.replayed_writes + (fin.replayed_writes - mark.replayed_writes),
        replayed_bytes: fork.replayed_bytes + (fin.replayed_bytes - mark.replayed_bytes),
    }
}

/// Forks the recording at `point`, injects the boundary failure, and runs
/// only until the engine is back at a recorded state: the retried job's
/// commit in intermittent mode (a failed job never mutates engine state),
/// or — in tile-atomic mode — the next tile write-back for a tile leader
/// (`point.full`), capturing the re-executed segment's start as a [`Mid`]
/// mark on the way, and just the first post-failure commit for every other
/// fork of the tile (the leader's segment is spliced in later; rollback
/// makes the re-execution identical for every boundary of a tile).
/// Reconvergence is *verified* later against the recording's marks, not
/// assumed here.
fn fork_raw(base: &DeviceSim, point: &ForkPoint<'_>, mode: ExecMode, frac: f64) -> RawFork {
    let plan = JobBoundary::new(point.boundary, frac);
    let plan_name = plan.name();
    let shadow = Arc::new(Mutex::new(point.shadow.clone()));
    let mut sim = base.fork(&point.ckpt);
    sim.set_fault_hook(Box::new(PlanHook::new(Box::new(plan), Arc::clone(&shadow))));
    let mut eng = point.eng.clone();
    let mut done = false;
    let mut error = None;
    let mut mid: Option<Mid> = None;
    loop {
        match eng.step(&mut sim) {
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
            Ok(Step::Done) => {
                done = true;
                break;
            }
            Ok(Step::Committed) => {
                if sim.stats().injected_failures == 0 {
                    continue;
                }
                if mode == ExecMode::TileAtomic && point.full {
                    if mid.is_none() {
                        mid = Some(Mid::capture(&sim, &eng, &shadow));
                    }
                    if eng.at_tile_boundary() {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    let stats = sim.stats().clone();
    let sh = shadow.lock().expect("shadow NVM lock");
    RawFork {
        boundary: point.boundary,
        full: point.full,
        plan: plan_name,
        now: sim.now(),
        shadow_ok: sh.check_completed().is_ok(),
        shadow_stats: sh.stats().clone(),
        eng_jobs: eng.jobs_committed(),
        eng_retries: eng.retries(),
        fp: eng.state_fingerprint(),
        done,
        attempts: (stats.jobs_committed - point.boundary) + stats.jobs_failed,
        mid,
        stats,
        error,
    }
}

/// One mode's boundary sweep via prefix reuse. Returns the runs in
/// boundary order plus the number of job attempts simulated, or `Err` if
/// the failure-free recording itself died (the caller then falls back to
/// the scratch sweep for the mode).
fn sweep_mode_fast(
    ctx: &CampaignCtx<'_>,
    mode: ExecMode,
    stride: usize,
    frac: f64,
) -> Result<(Vec<FaultRun>, u64), String> {
    let mut attempts: u64 = 0;

    // Failure-free recording: one stepped inference under bench power with
    // the shadow oracle installed (an `EnergyDriven` plan injects nothing,
    // and hooks don't perturb timing), capturing a mark per commit and a
    // fork point per swept boundary. Fork points are dispatched in fixed
    // batches as the recording advances, so at most `FORK_BATCH`
    // checkpoints are alive at once.
    let shadow = Arc::new(Mutex::new(ShadowNvm::with_device_capacity()));
    let mut sim = DeviceSim::with_supply(Supply::from(PowerStrength::Continuous), 0);
    sim.set_fault_hook(Box::new(PlanHook::new(Box::new(EnergyDriven), Arc::clone(&shadow))));
    let mut eng = Engine::new(ctx.dm, ctx.input, &sim, mode);
    let mut marks = vec![CommitMark::capture(&sim, &eng, &shadow)];
    let mut tile_ends: Vec<u64> = Vec::new();
    let mut raws: Vec<RawFork> = Vec::new();
    let mut batch: Vec<ForkPoint<'_>> = Vec::new();
    let mut commits: u64 = 0;
    let mut tile_has_leader = false;
    loop {
        // Capture before stepping, but only keep the point if a job
        // actually follows (the last boundary is `jobs - 1`). The first
        // swept boundary of each tile is its leader — the one fork that
        // simulates the tile's whole post-failure re-execution.
        let pending = commits.is_multiple_of(stride as u64).then(|| ForkPoint {
            boundary: commits,
            full: mode != ExecMode::TileAtomic || !tile_has_leader,
            ckpt: sim.checkpoint(),
            eng: eng.clone(),
            shadow: shadow.lock().expect("shadow NVM lock").clone(),
        });
        match eng.step(&mut sim).map_err(|e| e.to_string())? {
            Step::Done => break,
            Step::Committed => {
                attempts += 1;
                if let Some(point) = pending {
                    tile_has_leader = true;
                    batch.push(point);
                    if batch.len() >= FORK_BATCH {
                        raws.extend(par_map(batch.len(), |i| {
                            fork_raw(&sim, &batch[i], mode, frac)
                        }));
                        batch.clear();
                    }
                }
                commits += 1;
                marks.push(CommitMark::capture(&sim, &eng, &shadow));
                if eng.at_tile_boundary() {
                    tile_ends.push(commits);
                    tile_has_leader = false;
                }
            }
        }
    }
    if !batch.is_empty() {
        raws.extend(par_map(batch.len(), |i| fork_raw(&sim, &batch[i], mode, frac)));
        batch.clear();
    }
    let out = eng.outcome(&sim);
    let total = out.jobs;
    let nominal = Nominal { jobs: total, macs: out.stats.lea_macs };
    let logits_ok = out.logits == ctx.reference;
    let rec_shadow_ok = shadow.lock().expect("shadow NVM lock").check_completed().is_ok();
    let fin = marks.last().expect("recording has a final mark");

    // Resolve each fork: verify reconvergence against the recording's mark
    // at the fork's resync commit, then splice the recording's suffix onto
    // the forked prefix. Cheap tile forks additionally splice their tile
    // leader's re-executed segment between the two. Any doubt — engine
    // error, state-digest mismatch, shadow-oracle failure, bad verdicts on
    // the recording itself, or a stats-invariant violation in the spliced
    // totals — re-runs that boundary from scratch (traced, so failures
    // leave evidence).
    let mut runs = Vec::with_capacity(raws.len());
    // The current tile's leader fork, its tile-end commit, and its health.
    let mut lead: Option<(&RawFork, u64, bool)> = None;
    for raw in &raws {
        let resolved = if mode == ExecMode::TileAtomic && !raw.full {
            // Cheap tile fork: own prefix (through the first re-executed
            // commit) + the tile leader's re-executed segment + the
            // recording's suffix. The fork is compared against the
            // *leader's* mid-mark, not the recording's — rollback restores
            // the preserved tile-start image, whose dead bytes legitimately
            // differ from the recording's mid-tile buffers; the leader's
            // verified end-of-tile digest anchors the segment to the
            // recording. Its own `shadow_ok` is likewise not consulted —
            // mid-tile the failure's torn write is legitimately not yet
            // replayed; the leader's end-of-tile oracle covers the tile.
            let te = tile_ends.iter().copied().find(|&t| t > raw.boundary).unwrap_or(total);
            let end = &marks[te as usize];
            lead.filter(|&(_, lte, lok)| lte == te && lok).and_then(|(l, _, _)| {
                let m = l.mid.as_ref()?;
                let base_ok = raw.error.is_none() && raw.fp == m.fp && logits_ok && rec_shadow_ok;
                if !base_ok {
                    return None;
                }
                let seg = splice_stats(&raw.stats, &l.stats, &m.stats);
                let spliced = splice_stats(&seg, &fin.stats, &end.stats);
                if spliced.check_invariants().is_err() {
                    return None;
                }
                Some(FaultRun {
                    plan: raw.plan.clone(),
                    mode: mode_label(mode),
                    supply: "continuous".to_string(),
                    ok: true,
                    injected_failures: spliced.injected_failures,
                    power_cycles: spliced.power_cycles,
                    jobs: raw.eng_jobs + (l.eng_jobs - m.eng_jobs) + (total - te),
                    retries: raw.eng_retries + (l.eng_retries - m.eng_retries),
                    reexecuted_macs: spliced.lea_macs.saturating_sub(nominal.macs),
                    shadow: splice_shadow(
                        &splice_shadow(&raw.shadow_stats, &l.shadow_stats, &m.shadow),
                        &fin.shadow,
                        &end.shadow,
                    ),
                    latency_s: raw.now + (l.now - m.now) + (fin.now - end.now),
                    outcome: RunOutcome::Completed,
                })
            })
        } else {
            let resync = if raw.done {
                total
            } else if mode == ExecMode::TileAtomic {
                tile_ends.iter().copied().find(|&t| t > raw.boundary).unwrap_or(total)
            } else {
                raw.eng_jobs
            };
            let mark = &marks[resync as usize];
            let spliced = splice_stats(&raw.stats, &fin.stats, &mark.stats);
            let healthy = raw.error.is_none()
                && raw.fp == mark.fp
                && raw.shadow_ok
                && logits_ok
                && rec_shadow_ok
                && spliced.check_invariants().is_ok();
            if mode == ExecMode::TileAtomic {
                lead = Some((raw, resync, healthy));
            }
            healthy.then(|| FaultRun {
                plan: raw.plan.clone(),
                mode: mode_label(mode),
                supply: "continuous".to_string(),
                ok: true,
                injected_failures: spliced.injected_failures,
                power_cycles: spliced.power_cycles,
                jobs: raw.eng_jobs + (total - resync),
                retries: raw.eng_retries,
                reexecuted_macs: spliced.lea_macs.saturating_sub(nominal.macs),
                shadow: splice_shadow(&raw.shadow_stats, &fin.shadow, &mark.shadow),
                latency_s: raw.now + (fin.now - mark.now),
                outcome: RunOutcome::Completed,
            })
        };
        match resolved {
            Some(run) => {
                attempts += raw.attempts;
                runs.push(run);
            }
            None => {
                let run = ctx.run_one(
                    mode,
                    Box::new(JobBoundary::new(raw.boundary, frac)),
                    Supply::from(PowerStrength::Continuous),
                    "continuous",
                    0,
                    &nominal,
                );
                attempts += run.jobs + run.power_cycles;
                runs.push(run);
            }
        }
    }
    Ok((runs, attempts))
}

/// Exhaustive job-boundary sweep: for each mode, fail once at every
/// `stride`-th job boundary (cut at `frac` of the job window) under bench
/// power, so every failure is adversarial rather than energy-driven.
///
/// Uses prefix reuse (see the module docs): the failure-free prefix of
/// every run is simulated once per mode, forked per boundary, and each
/// fork's suffix is spliced from the recording after its reconvergence is
/// verified — `O(jobs)` simulated work instead of `O(jobs²)`, with
/// per-boundary fallback to [`exhaustive_boundary_sweep_scratch`] semantics
/// on any mismatch.
pub fn exhaustive_boundary_sweep(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    stride: usize,
    frac: f64,
) -> Vec<FaultRun> {
    exhaustive_boundary_sweep_cost(ctx, modes, stride, frac).0
}

/// [`exhaustive_boundary_sweep`] plus its simulation cost.
pub fn exhaustive_boundary_sweep_cost(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    stride: usize,
    frac: f64,
) -> (Vec<FaultRun>, SweepCost) {
    assert!(stride > 0, "stride must be positive");
    let start = Instant::now();
    let mut runs = Vec::new();
    let mut simulated_jobs: u64 = 0;
    for &mode in modes {
        match sweep_mode_fast(ctx, mode, stride, frac) {
            Ok((mode_runs, attempts)) => {
                runs.extend(mode_runs);
                simulated_jobs += attempts;
            }
            Err(_) => {
                // The failure-free recording itself failed to complete —
                // nothing to fork from. Run this mode the slow, honest way.
                let (mode_runs, attempts) = sweep_mode_scratch(ctx, mode, stride, frac);
                runs.extend(mode_runs);
                simulated_jobs += attempts;
            }
        }
    }
    (runs, SweepCost { simulated_jobs, wall_s: start.elapsed().as_secs_f64() })
}

/// One mode's boundary sweep from scratch: a full independent run per
/// boundary (in parallel, assembled in boundary order).
fn sweep_mode_scratch(
    ctx: &CampaignCtx<'_>,
    mode: ExecMode,
    stride: usize,
    frac: f64,
) -> (Vec<FaultRun>, u64) {
    let nominal = ctx.nominal(mode);
    let mut attempts = nominal.jobs;
    let boundaries: Vec<u64> = (0..nominal.jobs).step_by(stride).collect();
    let runs = par_map(boundaries.len(), |i| {
        ctx.run_one(
            mode,
            Box::new(JobBoundary::new(boundaries[i], frac)),
            Supply::from(PowerStrength::Continuous),
            "continuous",
            0,
            &nominal,
        )
    });
    for r in &runs {
        attempts += r.jobs + r.power_cycles;
    }
    (runs, attempts)
}

/// The naive exhaustive boundary sweep: one full simulation per boundary.
/// Bit-identical to [`exhaustive_boundary_sweep`] (the fast path's
/// correctness bar) but `O(jobs²)`; kept for differential testing and
/// cost accounting.
pub fn exhaustive_boundary_sweep_scratch(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    stride: usize,
    frac: f64,
) -> Vec<FaultRun> {
    exhaustive_boundary_sweep_scratch_cost(ctx, modes, stride, frac).0
}

/// [`exhaustive_boundary_sweep_scratch`] plus its simulation cost.
pub fn exhaustive_boundary_sweep_scratch_cost(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    stride: usize,
    frac: f64,
) -> (Vec<FaultRun>, SweepCost) {
    assert!(stride > 0, "stride must be positive");
    let start = Instant::now();
    let mut runs = Vec::new();
    let mut simulated_jobs: u64 = 0;
    for &mode in modes {
        let (mode_runs, attempts) = sweep_mode_scratch(ctx, mode, stride, frac);
        runs.extend(mode_runs);
        simulated_jobs += attempts;
    }
    (runs, SweepCost { simulated_jobs, wall_s: start.elapsed().as_secs_f64() })
}

/// Seeded-random campaign: `reps` independent random schedules per mode
/// (per-attempt failure probability `prob`), deterministic from `seed`.
/// Entries run in parallel; the returned order is mode-major, then rep.
pub fn random_campaign(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    reps: usize,
    prob: f64,
    seed: u64,
) -> Vec<FaultRun> {
    let mut entries: Vec<(ExecMode, Nominal, u64)> = Vec::new();
    for &mode in modes {
        let nominal = ctx.nominal(mode);
        for rep in 0..reps {
            entries.push((mode, nominal, rep as u64));
        }
    }
    par_map(entries.len(), |i| {
        let (mode, nominal, rep) = entries[i];
        ctx.run_one(
            mode,
            Box::new(SeededRandom::new(prob, seed.wrapping_add(rep))),
            Supply::from(PowerStrength::Continuous),
            "continuous",
            0,
            &nominal,
        )
    })
}

/// Energy-model campaign: no injection — power fails only where the
/// capacitor runs dry under each supplied profile (the pre-existing
/// behaviour, now behind the same plan interface and oracle). Entries run
/// in parallel; the returned order is mode-major, then supply.
pub fn energy_campaign(
    ctx: &CampaignCtx<'_>,
    modes: &[ExecMode],
    supplies: &[(String, Supply)],
    seed: u64,
) -> Vec<FaultRun> {
    let mut entries: Vec<(ExecMode, Nominal, usize)> = Vec::new();
    for &mode in modes {
        let nominal = ctx.nominal(mode);
        for i in 0..supplies.len() {
            entries.push((mode, nominal, i));
        }
    }
    par_map(entries.len(), |e| {
        let (mode, nominal, i) = entries[e];
        let (label, supply) = &supplies[i];
        ctx.run_one(
            mode,
            Box::new(EnergyDriven),
            supply.clone(),
            label,
            seed.wrapping_add(i as u64),
            &nominal,
        )
    })
}

/// A full campaign: schedules run, failures injected, re-executed work,
/// and NVM bytes torn/replayed, per run and in aggregate.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Workload name.
    pub workload: String,
    /// Master seed the campaign derives every schedule from.
    pub seed: u64,
    /// All runs, in execution order.
    pub runs: Vec<FaultRun>,
}

/// Everything serialized about a run except its plan name: two runs with
/// equal fingerprints are indistinguishable outcomes, which is what the
/// deduplicated report groups by.
fn outcome_fingerprint(r: &FaultRun) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:.9}|{:?}",
        r.mode,
        r.supply,
        r.ok,
        r.injected_failures,
        r.power_cycles,
        r.jobs,
        r.retries,
        r.reexecuted_macs,
        r.shadow.preserve_writes,
        r.shadow.torn_events,
        r.shadow.torn_bytes,
        r.shadow.lost_writes,
        r.shadow.replayed_writes,
        r.shadow.replayed_bytes,
        r.latency_s,
        r.outcome,
    )
}

impl CampaignReport {
    /// An empty report for `workload`.
    pub fn new(workload: impl Into<String>, seed: u64) -> Self {
        Self { workload: workload.into(), seed, runs: Vec::new() }
    }

    /// Whether every run passed both oracles.
    pub fn all_ok(&self) -> bool {
        self.runs.iter().all(|r| r.ok)
    }

    /// Total failures injected across the campaign.
    pub fn total_injected(&self) -> u64 {
        self.runs.iter().map(|r| r.injected_failures).sum()
    }

    /// Total power cycles (injected + natural) across the campaign.
    pub fn total_cycles(&self) -> u64 {
        self.runs.iter().map(|r| r.power_cycles).sum()
    }

    /// Total NVM bytes torn across the campaign.
    pub fn total_torn_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.shadow.torn_bytes).sum()
    }

    /// Total NVM bytes replayed across the campaign.
    pub fn total_replayed_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.shadow.replayed_bytes).sum()
    }

    /// Distinct run outcomes (see [`Self::to_json`]'s grouping), in first-
    /// appearance order: `(index of first run with the outcome, count)`.
    fn outcome_groups(&self) -> Vec<(usize, u64)> {
        let mut groups: Vec<(usize, u64)> = Vec::new();
        let mut seen: HashMap<String, usize> = HashMap::new();
        for (i, r) in self.runs.iter().enumerate() {
            match seen.entry(outcome_fingerprint(r)) {
                std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].1 += 1,
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push((i, 1));
                }
            }
        }
        groups
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} runs ({} ok, {} distinct outcomes), {} injected failures / {} power cycles, \
             {} NVM bytes torn, {} replayed",
            self.workload,
            self.runs.len(),
            self.runs.iter().filter(|r| r.ok).count(),
            self.outcome_groups().len(),
            self.total_injected(),
            self.total_cycles(),
            self.total_torn_bytes(),
            self.total_replayed_bytes(),
        )
    }

    fn json_header(&self, s: &mut String) {
        s.push_str("{\n");
        let _ = writeln!(s, "  \"workload\": \"{}\",", self.workload);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"all_ok\": {},", self.all_ok());
        s.push_str("  \"summary\": {\n");
        let _ = writeln!(s, "    \"runs\": {},", self.runs.len());
        let _ = writeln!(s, "    \"ok\": {},", self.runs.iter().filter(|r| r.ok).count());
        let _ = writeln!(s, "    \"distinct_outcomes\": {},", self.outcome_groups().len());
        let _ = writeln!(s, "    \"injected_failures\": {},", self.total_injected());
        let _ = writeln!(s, "    \"power_cycles\": {},", self.total_cycles());
        let _ = writeln!(s, "    \"torn_bytes\": {},", self.total_torn_bytes());
        let _ = writeln!(s, "    \"replayed_bytes\": {}", self.total_replayed_bytes());
        s.push_str("  },\n");
    }

    fn json_run(s: &mut String, r: &FaultRun, count: Option<u64>) {
        let _ = write!(s, "    {{\"plan\": \"{}\", ", r.plan);
        if let Some(c) = count {
            let _ = write!(s, "\"count\": {c}, ");
        }
        let _ = write!(
            s,
            "\"mode\": \"{}\", \"supply\": \"{}\", \"ok\": {}, \
             \"injected_failures\": {}, \"power_cycles\": {}, \"jobs\": {}, \"retries\": {}, \
             \"reexecuted_macs\": {}, \"preserve_writes\": {}, \"torn_events\": {}, \
             \"torn_bytes\": {}, \"lost_writes\": {}, \"replayed_writes\": {}, \
             \"replayed_bytes\": {}, \"latency_s\": {:.9}",
            r.mode,
            r.supply,
            r.ok,
            r.injected_failures,
            r.power_cycles,
            r.jobs,
            r.retries,
            r.reexecuted_macs,
            r.shadow.preserve_writes,
            r.shadow.torn_events,
            r.shadow.torn_bytes,
            r.shadow.lost_writes,
            r.shadow.replayed_writes,
            r.shadow.replayed_bytes,
            r.latency_s,
        );
        let _ = write!(s, ", \"outcome\": \"{}\"", r.outcome.name());
        if let RunOutcome::Livelock { layer, tile_jobs, cut_period } = &r.outcome {
            let _ = write!(s, ", \"livelock_layer\": {layer}, \"livelock_tile_jobs\": {tile_jobs}");
            match cut_period {
                Some(k) => {
                    let _ = write!(s, ", \"livelock_cut_period\": {k}");
                }
                None => s.push_str(", \"livelock_cut_period\": null"),
            }
        }
        match r.outcome.error_text() {
            Some(err) => {
                let _ = write!(s, ", \"error\": \"{}\"}}", err.replace('"', "'"));
            }
            None => s.push('}'),
        }
    }

    /// Machine-readable JSON (hand-rolled: the workspace has no serde),
    /// with identical run outcomes deduplicated: runs differing only in
    /// their plan name are emitted once, in first-appearance order, with a
    /// `"count"` field and the first plan's name. A boundary sweep where
    /// every cut inside a layer behaves identically collapses to one row
    /// per distinct behaviour; [`Self::to_json_detailed`] keeps every row.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.json_header(&mut s);
        s.push_str("  \"runs_deduped\": true,\n");
        s.push_str("  \"runs\": [\n");
        let groups = self.outcome_groups();
        for (gi, (first, count)) in groups.iter().enumerate() {
            Self::json_run(&mut s, &self.runs[*first], Some(*count));
            s.push_str(if gi + 1 < groups.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Machine-readable JSON with one row per run, no deduplication (the
    /// pre-dedup report format; the `faults` bench emits it when
    /// `IPRUNE_FAULTS_DETAIL=1`).
    pub fn to_json_detailed(&self) -> String {
        let mut s = String::new();
        self.json_header(&mut s);
        s.push_str("  \"runs_deduped\": false,\n");
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            Self::json_run(&mut s, r, None);
            s.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_are_stable_snake_case() {
        let cases: [(RunOutcome, &str); 5] = [
            (RunOutcome::Completed, "completed"),
            (RunOutcome::Livelock { layer: 2, tile_jobs: 3, cut_period: Some(1) }, "livelock"),
            (RunOutcome::Nontermination { description: "d".into() }, "nontermination"),
            (RunOutcome::EngineError { description: "d".into() }, "engine_error"),
            (RunOutcome::StatsViolation { description: "d".into() }, "stats_violation"),
        ];
        for (outcome, want) in &cases {
            assert_eq!(outcome.name(), *want);
            let n = outcome.name();
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{n}");
        }
    }

    #[test]
    fn display_carries_the_structured_detail() {
        assert_eq!(format!("{}", RunOutcome::Completed), "completed");
        let ll = RunOutcome::Livelock { layer: 2, tile_jobs: 3, cut_period: Some(1) };
        let text = format!("{ll}");
        assert!(text.starts_with("livelock: "), "{text}");
        assert!(text.contains("layer 2"), "{text}");
        let sv = RunOutcome::StatsViolation { description: "busy_s < 0".into() };
        assert_eq!(format!("{sv}"), "stats_violation: stats invariant violated: busy_s < 0");
    }
}
