//! Shadow-NVM model: a byte-addressed FRAM store that makes torn
//! progress-preservation writes observable.
//!
//! The device simulator accounts preservation writes only as time and
//! energy; whether a mid-write power failure left the footprint half
//! written is invisible to it. The shadow store mirrors every preservation
//! write into a byte image of the FRAM: bytes that the DMA streamed out
//! before the cut keep their payload pattern, bytes after the cut hold
//! [`TORN_BYTE`]. A crash-consistency oracle can then check that the
//! engine never *commits* on top of torn state and that every interrupted
//! write is eventually replayed in place.
//!
//! Addresses follow the HAWAII⁺ double-buffered footprint discipline:
//! committed writes advance a bump cursor (wrapping over the FRAM
//! capacity, like a circular preservation log), while an interrupted write
//! stays at its address so the re-issued attempt overwrites — and thereby
//! heals — the torn region.

use iprune_device::inject::JobOutcome;
use iprune_device::DeviceSpec;

/// Fill byte for the unwritten (erased) FRAM image.
pub const ERASED_BYTE: u8 = 0xFF;
/// Fill byte marking bytes a power failure cut off mid-write.
pub const TORN_BYTE: u8 = 0xDB;

/// Durability status of one recorded preservation write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteStatus {
    /// Every byte reached the FRAM before the job committed.
    Committed,
    /// The cut struck mid-write: a durable prefix, then torn bytes.
    Torn,
    /// The cut struck before the DMA moved a single byte.
    Lost,
}

/// One recorded preservation write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Start address in the shadow image.
    pub addr: usize,
    /// Requested length in bytes.
    pub len: usize,
    /// Bytes durable before the cut (equals `len` when committed).
    pub durable: usize,
    /// Durability status.
    pub status: WriteStatus,
    /// Attempt index of the job that issued the write.
    pub job_index: u64,
    /// Whether this write re-executed work lost to an earlier failure.
    pub replay: bool,
}

/// Aggregate shadow-store counters for campaign reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowStats {
    /// Preservation writes observed (committed or not).
    pub preserve_writes: u64,
    /// Writes whose every byte became durable.
    pub committed_writes: u64,
    /// Bytes committed durably.
    pub committed_bytes: u64,
    /// Failures that left a partially-written (torn) region.
    pub torn_events: u64,
    /// Bytes lost off the tail of torn writes.
    pub torn_bytes: u64,
    /// Failures that struck before any byte was written.
    pub lost_writes: u64,
    /// Committed writes that re-executed previously lost work.
    pub replayed_writes: u64,
    /// Bytes of re-executed preservation work.
    pub replayed_bytes: u64,
}

/// A detected crash-consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShadowViolation {
    /// A write was reported committed with fewer durable bytes than its
    /// length — the "silently atomic" bug this store exists to catch.
    CommittedButTorn {
        /// Attempt index of the offending write.
        job_index: u64,
    },
    /// The run ended with the latest preservation write not committed.
    TrailingTear {
        /// Attempt index of the dangling write.
        job_index: u64,
    },
    /// The image region of the final committed write still contains torn
    /// bytes (an interrupted write was never replayed in place).
    UnhealedRegion {
        /// Start address of the unhealed region.
        addr: usize,
    },
}

/// The byte-addressed shadow FRAM.
#[derive(Debug, Clone)]
pub struct ShadowNvm {
    mem: Vec<u8>,
    cursor: usize,
    records: Vec<WriteRecord>,
    stats: ShadowStats,
    /// A failure was observed and its re-execution has not committed yet.
    pending_replay: bool,
}

impl ShadowNvm {
    /// A shadow store of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shadow NVM needs capacity");
        Self {
            mem: vec![ERASED_BYTE; capacity],
            cursor: 0,
            records: Vec::new(),
            stats: ShadowStats::default(),
            pending_replay: false,
        }
    }

    /// A shadow store sized like the evaluation platform's FRAM (512 KB).
    pub fn with_device_capacity() -> Self {
        Self::new(DeviceSpec::default().nvm_bytes)
    }

    /// Payload pattern for a job's preservation bytes — never collides
    /// with [`ERASED_BYTE`] or [`TORN_BYTE`].
    fn pattern(job_index: u64) -> u8 {
        (job_index % 200) as u8
    }

    /// Records the preservation write of one job attempt. `len` of zero
    /// (a job without preservation, e.g. tile-atomic compute) records
    /// nothing, but a failure still arms replay tracking: whatever commits
    /// next re-executes lost work.
    pub fn record_preserve(&mut self, job_index: u64, len: usize, outcome: &JobOutcome) {
        let failed_frac = match outcome {
            JobOutcome::Committed => None,
            JobOutcome::Failed { preserve_frac, .. } => Some(*preserve_frac),
        };
        if len == 0 {
            if failed_frac.is_some() {
                self.pending_replay = true;
            }
            return;
        }
        self.stats.preserve_writes += 1;
        let addr = self.cursor;
        match failed_frac {
            None => {
                self.fill(addr, len, Self::pattern(job_index));
                let replay = self.pending_replay;
                if replay {
                    self.stats.replayed_writes += 1;
                    self.stats.replayed_bytes += len as u64;
                    self.pending_replay = false;
                }
                self.stats.committed_writes += 1;
                self.stats.committed_bytes += len as u64;
                self.records.push(WriteRecord {
                    addr,
                    len,
                    durable: len,
                    status: WriteStatus::Committed,
                    job_index,
                    replay,
                });
                // only a committed write advances the preservation log
                self.cursor = (self.cursor + len) % self.mem.len();
            }
            Some(frac) => {
                let durable = ((len as f64 * frac).floor() as usize).min(len);
                self.fill(addr, durable, Self::pattern(job_index));
                self.fill_raw(addr + durable, len - durable, TORN_BYTE);
                let status = if durable == 0 {
                    self.stats.lost_writes += 1;
                    WriteStatus::Lost
                } else {
                    self.stats.torn_events += 1;
                    self.stats.torn_bytes += (len - durable) as u64;
                    WriteStatus::Torn
                };
                self.pending_replay = true;
                self.records.push(WriteRecord {
                    addr,
                    len,
                    durable,
                    status,
                    job_index,
                    replay: false,
                });
                // cursor stays: the re-issued attempt overwrites in place
            }
        }
    }

    fn fill(&mut self, addr: usize, len: usize, byte: u8) {
        self.fill_raw(addr, len, byte);
    }

    fn fill_raw(&mut self, addr: usize, len: usize, byte: u8) {
        let cap = self.mem.len();
        for i in 0..len {
            self.mem[(addr + i) % cap] = byte;
        }
    }

    /// Reads `len` bytes at `addr` from the shadow image (wrapping).
    pub fn read(&self, addr: usize, len: usize) -> Vec<u8> {
        let cap = self.mem.len();
        (0..len).map(|i| self.mem[(addr + i) % cap]).collect()
    }

    /// All recorded writes, in issue order.
    pub fn records(&self) -> &[WriteRecord] {
        &self.records
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ShadowStats {
        &self.stats
    }

    /// Crash-consistency oracle for a run that claims to have completed:
    ///
    /// * no write may be both committed and torn (atomicity of commit);
    /// * the final preservation write must be committed (no dangling
    ///   footprint);
    /// * the final committed write's image region must be fully healed
    ///   (every interrupted write was replayed in place).
    ///
    /// # Errors
    ///
    /// The first [`ShadowViolation`] found, if any.
    pub fn check_completed(&self) -> Result<(), ShadowViolation> {
        for r in &self.records {
            if r.status == WriteStatus::Committed && r.durable != r.len {
                return Err(ShadowViolation::CommittedButTorn { job_index: r.job_index });
            }
        }
        if let Some(last) = self.records.last() {
            if last.status != WriteStatus::Committed {
                return Err(ShadowViolation::TrailingTear { job_index: last.job_index });
            }
            if self.read(last.addr, last.len).contains(&TORN_BYTE) {
                return Err(ShadowViolation::UnhealedRegion { addr: last.addr });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed() -> JobOutcome {
        JobOutcome::Committed
    }

    fn failed(frac: f64) -> JobOutcome {
        JobOutcome::Failed { injected: true, fail_time_s: 0.0, preserve_frac: frac }
    }

    #[test]
    fn committed_writes_advance_the_log() {
        let mut nvm = ShadowNvm::new(1024);
        nvm.record_preserve(0, 16, &committed());
        nvm.record_preserve(1, 16, &committed());
        assert_eq!(nvm.records()[0].addr, 0);
        assert_eq!(nvm.records()[1].addr, 16);
        assert_eq!(nvm.stats().committed_bytes, 32);
        assert!(nvm.check_completed().is_ok());
    }

    #[test]
    fn mid_footprint_failure_observably_tears() {
        let mut nvm = ShadowNvm::new(1024);
        nvm.record_preserve(0, 40, &failed(0.5));
        let r = &nvm.records()[0];
        assert_eq!(r.status, WriteStatus::Torn);
        assert_eq!(r.durable, 20);
        let image = nvm.read(0, 40);
        assert!(image[..20].iter().all(|&b| b == ShadowNvm::pattern(0)));
        assert!(image[20..].iter().all(|&b| b == TORN_BYTE), "tail must be torn");
        assert_eq!(nvm.stats().torn_events, 1);
        assert_eq!(nvm.stats().torn_bytes, 20);
        // a run ending here is NOT consistent
        assert_eq!(nvm.check_completed(), Err(ShadowViolation::TrailingTear { job_index: 0 }));
    }

    #[test]
    fn replay_heals_the_torn_region_in_place() {
        let mut nvm = ShadowNvm::new(1024);
        nvm.record_preserve(0, 40, &failed(0.7));
        nvm.record_preserve(1, 40, &committed());
        let replay = &nvm.records()[1];
        assert_eq!(replay.addr, 0, "replay overwrites in place");
        assert!(replay.replay);
        assert_eq!(nvm.stats().replayed_bytes, 40);
        assert!(nvm.read(0, 40).iter().all(|&b| b != TORN_BYTE));
        assert!(nvm.check_completed().is_ok());
    }

    #[test]
    fn cut_before_the_write_loses_everything_cleanly() {
        let mut nvm = ShadowNvm::new(1024);
        nvm.record_preserve(0, 32, &failed(0.0));
        assert_eq!(nvm.records()[0].status, WriteStatus::Lost);
        assert_eq!(nvm.stats().lost_writes, 1);
        assert_eq!(nvm.stats().torn_events, 0);
        assert!(nvm.read(0, 32).iter().all(|&b| b == TORN_BYTE));
    }

    #[test]
    fn zero_length_failure_still_arms_replay_tracking() {
        let mut nvm = ShadowNvm::new(64);
        nvm.record_preserve(0, 0, &failed(0.0));
        nvm.record_preserve(1, 8, &committed());
        assert!(nvm.records()[0].replay, "tile re-execution write counts as replay");
        assert_eq!(nvm.stats().replayed_writes, 1);
    }

    #[test]
    fn the_log_wraps_like_a_ring() {
        let mut nvm = ShadowNvm::new(32);
        for i in 0..5 {
            nvm.record_preserve(i, 10, &committed());
        }
        assert!(nvm.records().iter().all(|r| r.addr < 32));
        assert!(nvm.check_completed().is_ok());
    }

    #[test]
    fn silent_atomicity_bug_is_flagged() {
        // Simulate the bug class the oracle exists for: a commit whose
        // durable count disagrees with its length.
        let mut nvm = ShadowNvm::new(64);
        nvm.record_preserve(0, 16, &committed());
        nvm.records[0].durable = 8;
        assert_eq!(nvm.check_completed(), Err(ShadowViolation::CommittedButTorn { job_index: 0 }));
    }
}
