//! End-to-end crash-consistency campaigns over a real deployed model.
//!
//! These are the adversarial counterparts of `iprune-hawaii`'s
//! "intermittent equals continuous" tests: instead of failing where the
//! capacitor happens to run dry, power is cut at chosen job boundaries and
//! window fractions, and the differential + shadow-NVM oracles must still
//! hold.

use iprune_device::power::{PowerTrace, Supply};
use iprune_device::{DeviceSim, PowerStrength};
use iprune_faults::{
    energy_campaign, exhaustive_boundary_sweep, random_campaign, CampaignCtx, CampaignReport,
    EveryKth, JobBoundary, RunOutcome,
};
use iprune_hawaii::deploy::{deploy, DeployedModel};
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_models::zoo::App;

const FAULT_MODES: [ExecMode; 2] = [ExecMode::Intermittent, ExecMode::TileAtomic];

fn har_workload() -> (DeployedModel, iprune_datasets::Dataset) {
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    (dm, ds)
}

/// Jobs in the largest tile (weight chunks + write-back): a periodic cut
/// with a shorter period can livelock tile-atomic recovery, because every
/// tile re-execution commits enough jobs to arm the next cut.
fn max_tile_jobs(dm: &DeployedModel) -> u64 {
    dm.layers
        .iter()
        .flat_map(|dl| {
            (0..dl.plan.row_blocks()).map(|rb| dl.bsr.row_blocks_iter(rb).count() as u64 + 1)
        })
        .max()
        .unwrap_or(1)
}

#[test]
fn strided_boundary_sweep_passes_both_oracles() {
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    // Stride the boundaries so the test stays fast; the faults bench runs
    // the exhaustive (stride-1) sweep.
    let nominal_jobs = ctx.nominal(ExecMode::Intermittent).jobs;
    let stride = (nominal_jobs as usize / 12).max(1);
    let mut report = CampaignReport::new("har-tiny", 0);
    report.runs = exhaustive_boundary_sweep(&ctx, &FAULT_MODES, stride, 0.9);
    assert!(report.runs.len() >= 12, "expected a real sweep, got {}", report.runs.len());
    assert!(report.all_ok(), "oracle failures:\n{}", report.summary());
    assert_eq!(report.total_injected() as usize, report.runs.len(), "one cut per run");
    // frac 0.9 lands inside write-dominated windows often enough that the
    // campaign must observe real torn footprints
    assert!(report.total_torn_bytes() > 0, "no tears observed at frac 0.9");
    assert!(report.total_replayed_bytes() > 0, "tears must be replayed");
}

#[test]
fn boundary_cut_during_compute_phase_also_recovers() {
    let (dm, ds) = har_workload();
    let x = ds.sample(1);
    let ctx = CampaignCtx::new(&dm, &x);
    let nominal = ctx.nominal(ExecMode::Intermittent);
    let stride = (nominal.jobs as usize / 6).max(1);
    for boundary in (0..nominal.jobs).step_by(stride) {
        let run = ctx.run_one(
            ExecMode::Intermittent,
            Box::new(JobBoundary::new(boundary, 0.0)),
            Supply::from(PowerStrength::Continuous),
            "continuous",
            0,
            &nominal,
        );
        assert!(run.ok, "boundary {boundary} at frac 0.0 failed the oracle");
        assert_eq!(run.injected_failures, 1);
    }
}

#[test]
fn tile_atomic_reexecutes_whole_tiles_and_accounts_the_macs() {
    // Satellite: a forced failure mid-tile must re-run the whole tile, and
    // the re-executed MACs must show up in SimStats.
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    let nominal = ctx.nominal(ExecMode::TileAtomic);
    // Cut mid-tile, with a period long enough that every re-executed tile
    // can complete before the next cut arms. HAR's output layer is one
    // 513-job tile spanning most of the workload, so with a livelock-safe
    // period only a cut or two fits.
    let period = (nominal.jobs / 3).max(max_tile_jobs(&dm) + 1);
    let run = ctx.run_one(
        ExecMode::TileAtomic,
        Box::new(EveryKth::new(period, 0.5)),
        Supply::from(PowerStrength::Continuous),
        "continuous",
        0,
        &nominal,
    );
    assert!(run.ok, "tile-atomic oracle failed");
    assert!(run.injected_failures >= 1, "expected a mid-tile cut, got none");
    assert!(run.retries >= run.injected_failures, "every cut forces a tile retry");
    assert!(
        run.reexecuted_macs > 0,
        "re-executed tile MACs must appear in SimStats.lea_macs beyond the nominal {}",
        nominal.macs
    );
    assert!(run.jobs > nominal.jobs, "re-run tiles commit extra jobs");

    // The same schedule under job-granular preservation re-executes *less*
    // accelerator work — the paper's core argument for fine footprints.
    let nominal_i = ctx.nominal(ExecMode::Intermittent);
    let run_i = ctx.run_one(
        ExecMode::Intermittent,
        Box::new(EveryKth::new(period, 0.5)),
        Supply::from(PowerStrength::Continuous),
        "continuous",
        0,
        &nominal_i,
    );
    assert!(run_i.ok);
    assert!(
        run_i.reexecuted_macs <= run.reexecuted_macs,
        "job-granular preservation must not re-execute more than tile-atomic \
         ({} vs {})",
        run_i.reexecuted_macs,
        run.reexecuted_macs
    );
}

#[test]
fn seeded_random_campaign_is_deterministic_and_consistent() {
    let (dm, ds) = har_workload();
    let x = ds.sample(2);
    let ctx = CampaignCtx::new(&dm, &x);
    // p must stay small: a tile of m jobs only completes a pass with
    // probability (1-p)^m, and HAR's largest tile has m = 513, so even
    // p = 0.02 livelocks tile-atomic recovery.
    let mut a = CampaignReport::new("har-tiny", 7);
    a.runs = random_campaign(&ctx, &FAULT_MODES, 3, 0.005, 7);
    let mut b = CampaignReport::new("har-tiny", 7);
    b.runs = random_campaign(&ctx, &FAULT_MODES, 3, 0.005, 7);
    assert!(a.all_ok(), "{}", a.summary());
    assert!(a.total_injected() > 0, "p=0.005 across runs should fire");
    assert_eq!(a.to_json(), b.to_json(), "same seed must reproduce the report");
}

#[test]
fn cuts_faster_than_a_tile_livelock_tile_atomic_but_not_hawaii() {
    // Adversarial finding the subsystem makes checkable: with a cut after
    // every committed job, tile-atomic recovery re-executes each tile
    // forever (every re-run commits enough chunks to arm the next cut),
    // while job-granular preservation still terminates — it never re-runs
    // more than the single interrupted job.
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    let nominal_i = ctx.nominal(ExecMode::Intermittent);
    let hawaii = ctx.run_one(
        ExecMode::Intermittent,
        Box::new(EveryKth::new(1, 0.5)),
        Supply::from(PowerStrength::Continuous),
        "continuous",
        0,
        &nominal_i,
    );
    assert!(hawaii.ok, "job-granular recovery must survive per-job cuts");
    assert!(hawaii.retries >= nominal_i.jobs - 1);

    let nominal_t = ctx.nominal(ExecMode::TileAtomic);
    let tile = ctx.run_one(
        ExecMode::TileAtomic,
        Box::new(EveryKth::new(1, 0.5)),
        Supply::from(PowerStrength::Continuous),
        "continuous",
        0,
        &nominal_t,
    );
    assert!(!tile.ok);
    // The livelock surfaces as a structured outcome: the cut period (1) is
    // shorter than the tile's atomic span, so recovery can never win.
    match &tile.outcome {
        RunOutcome::Livelock { layer, tile_jobs, cut_period } => {
            assert_eq!(*cut_period, Some(1), "EveryKth(1) must report its period");
            assert!(
                *tile_jobs > 1,
                "a tile-atomic span must cover more than one job, got {tile_jobs}"
            );
            assert!(
                cut_period.unwrap() < *tile_jobs,
                "the starvation condition is cut period < tile span"
            );
            assert!(
                *tile_jobs <= max_tile_jobs(&dm),
                "span {tile_jobs} cannot exceed the largest tile {}",
                max_tile_jobs(&dm)
            );
            assert!(*layer < dm.layers.len(), "layer id {layer} out of range");
        }
        other => panic!("livelock must be reported structurally, got {other:?}"),
    }
}

#[test]
fn energy_campaign_covers_constant_and_trace_supplies() {
    let (dm, ds) = har_workload();
    let x = ds.sample(3);
    let ctx = CampaignCtx::new(&dm, &x);
    let supplies = vec![
        ("strong (8 mW)".to_string(), Supply::from(PowerStrength::Strong)),
        ("weak (4 mW)".to_string(), Supply::from(PowerStrength::Weak)),
        ("solar trace".to_string(), Supply::Trace(PowerTrace::solar(8.0e-3, 2.0, 64, 3))),
    ];
    let mut report = CampaignReport::new("har-tiny", 1);
    report.runs = energy_campaign(&ctx, &FAULT_MODES, &supplies, 1);
    assert_eq!(report.runs.len(), 6);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.total_injected(), 0, "energy-driven plans inject nothing");
    assert!(report.total_cycles() > 0, "harvested supplies must brown out");
}

#[test]
fn injection_composes_with_harvested_power() {
    // Adversarial cuts layered on top of natural capacitor failures: the
    // earliest cut wins inside each window and the oracle still holds.
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    let nominal = ctx.nominal(ExecMode::Intermittent);
    let run = ctx.run_one(
        ExecMode::Intermittent,
        Box::new(EveryKth::new((nominal.jobs / 5).max(1), 0.7)),
        Supply::from(PowerStrength::Weak),
        "weak (4 mW)",
        3,
        &nominal,
    );
    assert!(run.ok, "mixed natural+injected schedule failed the oracle");
    assert!(run.injected_failures > 0);
    assert!(
        run.power_cycles > run.injected_failures,
        "weak power should add natural cycles on top of injected ones"
    );
}

#[test]
fn reference_is_reproducible_across_sim_instances() {
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let a = iprune_faults::reference_logits(&dm, &x);
    let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
    let b = infer(&dm, &x, &mut sim, ExecMode::Continuous).unwrap().logits;
    assert_eq!(a, b);
}
