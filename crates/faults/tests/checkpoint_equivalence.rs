//! Checkpoint/fork equivalence and fast-sweep fidelity.
//!
//! The boundary-sweep fast path rests on two claims, each tested here
//! against ground truth:
//!
//! 1. **Fork exactness** — cloning the engine and checkpointing the
//!    simulator at job boundary `k` of a failure-free run, then forking and
//!    injecting the boundary failure, is bit-identical (logits, `SimStats`,
//!    shadow-NVM torn-write accounting) to a from-scratch run that fails at
//!    `k`. This holds for all three execution modes.
//! 2. **Sweep fidelity** — [`exhaustive_boundary_sweep`] (prefix reuse +
//!    suffix splicing) reports the same runs as
//!    [`exhaustive_boundary_sweep_scratch`] (one full simulation per
//!    boundary), at a fraction of the simulated jobs, and byte-identically
//!    at any worker-thread count.

use iprune_device::power::Supply;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_faults::{
    exhaustive_boundary_sweep, exhaustive_boundary_sweep_cost,
    exhaustive_boundary_sweep_scratch_cost, random_campaign, CampaignCtx, CampaignReport,
    EnergyDriven, FaultPlan, JobBoundary, PlanHook, ShadowNvm,
};
use iprune_hawaii::deploy::{deploy, DeployedModel};
use iprune_hawaii::exec::ExecMode;
use iprune_hawaii::Engine;
use iprune_models::zoo::App;
use iprune_tensor::par;
use std::sync::{Arc, Mutex, OnceLock};

const ALL_MODES: [ExecMode; 3] =
    [ExecMode::Intermittent, ExecMode::TileAtomic, ExecMode::Continuous];
const FAULT_MODES: [ExecMode; 2] = [ExecMode::Intermittent, ExecMode::TileAtomic];
const FRAC: f64 = 0.9;

fn har_workload() -> (DeployedModel, iprune_datasets::Dataset) {
    let mut model = App::Har.build();
    let ds = App::Har.dataset(4, 42);
    let dm = deploy(&mut model, &ds, 2);
    (dm, ds)
}

/// Serializes tests that flip the process-wide parallelism overrides.
fn par_overrides_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the parallelism overrides even if the test panics.
struct ParOverrideGuard;
impl Drop for ParOverrideGuard {
    fn drop(&mut self) {
        par::set_threads(0);
        par::set_host_cores(0);
    }
}

struct RunResult {
    logits: Vec<f32>,
    stats: iprune_device::trace::SimStats,
    shadow: ShadowNvm,
    jobs: u64,
    retries: u64,
    error: Option<String>,
}

/// Runs `dm` stepwise with `plan` installed, from a fresh simulator.
fn run_scratch(
    dm: &DeployedModel,
    input: &iprune_tensor::Tensor,
    mode: ExecMode,
    plan: Box<dyn FaultPlan>,
) -> RunResult {
    let shadow = Arc::new(Mutex::new(ShadowNvm::with_device_capacity()));
    let mut sim = DeviceSim::with_supply(Supply::from(PowerStrength::Continuous), 0);
    sim.set_fault_hook(Box::new(PlanHook::new(plan, Arc::clone(&shadow))));
    let mut eng = Engine::new(dm, input, &sim, mode);
    let error = run_to_end(&mut eng, &mut sim);
    finish(eng, sim, &shadow, error)
}

/// Runs failure-free to `boundary` commits, snapshots (checkpoint + engine
/// clone + shadow clone), forks, installs `plan` on the fork only, and runs
/// the fork to completion.
fn run_forked(
    dm: &DeployedModel,
    input: &iprune_tensor::Tensor,
    mode: ExecMode,
    boundary: u64,
    plan: Box<dyn FaultPlan>,
) -> RunResult {
    let rec_shadow = Arc::new(Mutex::new(ShadowNvm::with_device_capacity()));
    let mut rec_sim = DeviceSim::with_supply(Supply::from(PowerStrength::Continuous), 0);
    rec_sim
        .set_fault_hook(Box::new(PlanHook::new(Box::new(EnergyDriven), Arc::clone(&rec_shadow))));
    let mut rec_eng = Engine::new(dm, input, &rec_sim, mode);
    for _ in 0..boundary {
        assert_eq!(
            rec_eng.step(&mut rec_sim).expect("failure-free prefix"),
            iprune_hawaii::Step::Committed,
            "boundary beyond the workload"
        );
    }
    let ckpt = rec_sim.checkpoint();
    let fork_shadow = Arc::new(Mutex::new(rec_shadow.lock().unwrap().clone()));
    let mut sim = rec_sim.fork(&ckpt);
    sim.set_fault_hook(Box::new(PlanHook::new(plan, Arc::clone(&fork_shadow))));
    let mut eng = rec_eng.clone();
    let error = run_to_end(&mut eng, &mut sim);
    finish(eng, sim, &fork_shadow, error)
}

fn run_to_end(eng: &mut Engine<'_>, sim: &mut DeviceSim) -> Option<String> {
    loop {
        match eng.step(sim) {
            Err(e) => return Some(e.to_string()),
            Ok(iprune_hawaii::Step::Done) => return None,
            Ok(iprune_hawaii::Step::Committed) => {}
        }
    }
}

fn finish(
    eng: Engine<'_>,
    sim: DeviceSim,
    shadow: &Arc<Mutex<ShadowNvm>>,
    error: Option<String>,
) -> RunResult {
    let (logits, jobs, retries) = if error.is_none() {
        let out = eng.outcome(&sim);
        (out.logits, out.jobs, out.retries)
    } else {
        (Vec::new(), eng.jobs_committed(), eng.retries())
    };
    RunResult {
        logits,
        stats: sim.stats().clone(),
        shadow: shadow.lock().unwrap().clone(),
        jobs,
        retries,
        error,
    }
}

#[test]
fn fork_at_boundary_matches_from_scratch_in_every_mode() {
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    for mode in ALL_MODES {
        let jobs = ctx.nominal(mode).jobs;
        // first boundary, one mid-stream, one near the end
        for boundary in [0, jobs / 2, jobs - 1] {
            let plan = || Box::new(JobBoundary::new(boundary, FRAC));
            let scratch = run_scratch(&dm, &x, mode, plan());
            let forked = run_forked(&dm, &x, mode, boundary, plan());
            let tag = format!("mode {mode:?}, boundary {boundary}");
            assert_eq!(scratch.error, forked.error, "{tag}: error divergence");
            assert_eq!(scratch.logits, forked.logits, "{tag}: logits diverged");
            assert_eq!(scratch.stats, forked.stats, "{tag}: SimStats diverged");
            assert_eq!(scratch.jobs, forked.jobs, "{tag}: job counters diverged");
            assert_eq!(scratch.retries, forked.retries, "{tag}: retry counters diverged");
            // Torn-write accounting must agree record by record, bytes and
            // all — the shadow NVM is the crash-consistency ground truth.
            assert_eq!(
                scratch.shadow.stats(),
                forked.shadow.stats(),
                "{tag}: shadow stats diverged"
            );
            assert_eq!(
                scratch.shadow.records(),
                forked.shadow.records(),
                "{tag}: shadow write records diverged"
            );
            if mode == ExecMode::Continuous {
                // Continuous mode treats any cut as an unrecoverable brownout;
                // the point of parity is that fork and scratch agree on it.
                assert!(scratch.error.is_some(), "{tag}: continuous run should brown out");
            } else {
                assert!(scratch.error.is_none(), "{tag}: unexpected engine error");
                assert_eq!(scratch.logits, ctx.reference(), "{tag}: differential oracle");
            }
        }
    }
}

#[test]
fn fast_sweep_matches_scratch_sweep_with_fewer_simulated_jobs() {
    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    let jobs = ctx.nominal(ExecMode::Intermittent).jobs;
    let stride = (jobs as usize / 16).max(1);

    let (fast, fast_cost) = exhaustive_boundary_sweep_cost(&ctx, &FAULT_MODES, stride, FRAC);
    let (scratch, scratch_cost) =
        exhaustive_boundary_sweep_scratch_cost(&ctx, &FAULT_MODES, stride, FRAC);

    assert_eq!(fast.len(), scratch.len(), "run counts diverged");
    for (f, s) in fast.iter().zip(&scratch) {
        let tag = format!("plan {} mode {}", s.plan, s.mode);
        assert_eq!(f.plan, s.plan, "{tag}: plan");
        assert_eq!(f.mode, s.mode, "{tag}: mode");
        assert_eq!(f.supply, s.supply, "{tag}: supply");
        assert_eq!(f.ok, s.ok, "{tag}: verdict");
        assert_eq!(f.injected_failures, s.injected_failures, "{tag}: injected");
        assert_eq!(f.power_cycles, s.power_cycles, "{tag}: cycles");
        assert_eq!(f.jobs, s.jobs, "{tag}: jobs");
        assert_eq!(f.retries, s.retries, "{tag}: retries");
        assert_eq!(f.reexecuted_macs, s.reexecuted_macs, "{tag}: re-executed MACs");
        assert_eq!(f.shadow, s.shadow, "{tag}: shadow stats");
        assert_eq!(f.outcome, s.outcome, "{tag}: outcome");
        // Splicing reassociates f64 sums; report precision must still agree.
        assert_eq!(
            format!("{:.9}", f.latency_s),
            format!("{:.9}", s.latency_s),
            "{tag}: latency at report precision (fast {} vs scratch {})",
            f.latency_s,
            s.latency_s,
        );
    }
    assert!(fast.iter().all(|r| r.ok), "fast sweep failed its oracles");
    assert!(
        fast_cost.simulated_jobs * 3 <= scratch_cost.simulated_jobs,
        "prefix reuse saved too little: fast {} vs scratch {} simulated jobs",
        fast_cost.simulated_jobs,
        scratch_cost.simulated_jobs,
    );
}

#[test]
fn campaign_reports_are_byte_identical_across_thread_counts() {
    let _serial = par_overrides_lock();
    let _restore = ParOverrideGuard;
    // Pretend the host has 8 cores so the requested thread counts take
    // effect even on single-core CI machines.
    par::set_host_cores(8);

    let (dm, ds) = har_workload();
    let x = ds.sample(0);
    let ctx = CampaignCtx::new(&dm, &x);
    let jobs = ctx.nominal(ExecMode::Intermittent).jobs;
    let stride = (jobs as usize / 8).max(1);

    let report_at = |threads: usize| {
        par::set_threads(threads);
        let mut report = CampaignReport::new("har-tiny", 0);
        report.runs.extend(exhaustive_boundary_sweep(&ctx, &FAULT_MODES, stride, FRAC));
        report.runs.extend(random_campaign(&ctx, &FAULT_MODES, 2, 0.005, 7));
        (report.to_json(), report.to_json_detailed())
    };

    let (base, base_detailed) = report_at(1);
    assert!(base.contains("\"count\""), "deduped report should carry counts");
    for threads in [2, 8] {
        let (json, detailed) = report_at(threads);
        assert_eq!(base, json, "deduped report diverged at {threads} threads");
        assert_eq!(base_detailed, detailed, "detailed report diverged at {threads} threads");
    }
}
