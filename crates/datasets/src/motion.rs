//! Synthetic human-activity-recognition workload (the paper's HAR stand-in).
//!
//! Six activity classes over tri-axial accelerometer windows. Each class has
//! a characteristic frequency/amplitude signature (still, walking, running,
//! stairs up/down, sitting drift); samples add phase jitter, per-axis gain
//! variation, and Gaussian noise. Window shape is `[3, 128, 1]` (channels ×
//! time × 1) so the 1-D convolutional HAR model can treat it as NCHW.

use crate::rng::{fill_noise, normal};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic motion task.
#[derive(Debug, Clone)]
pub struct MotionSpec {
    /// Samples per window.
    pub window: usize,
    /// Number of activity classes (at most 6).
    pub classes: usize,
    /// Additive Gaussian noise sigma.
    pub noise: f32,
    /// Phase jitter range in radians.
    pub phase_jitter: f32,
}

impl Default for MotionSpec {
    fn default() -> Self {
        Self { window: 128, classes: 6, noise: 0.45, phase_jitter: std::f32::consts::PI }
    }
}

impl MotionSpec {
    /// Generates `n` labelled windows, labels cycling through the classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes > 6` (only six activity signatures are defined).
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        assert!(self.classes <= 6, "at most 6 activity classes");
        let per = 3 * self.window;
        let mut inputs = vec![0.0f32; n * per];
        let mut labels = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4A52_0000);
        for (i, label) in labels.iter_mut().enumerate() {
            let class = i % self.classes;
            *label = class;
            let phase = rng.gen_range(0.0..self.phase_jitter);
            let gain: [f32; 3] = [
                1.0 + 0.15 * normal(&mut rng),
                1.0 + 0.15 * normal(&mut rng),
                1.0 + 0.15 * normal(&mut rng),
            ];
            let base = i * per;
            for t in 0..self.window {
                let ft = t as f32 * std::f32::consts::TAU / self.window as f32;
                let (x, y, z) = activity_signature(class, ft, phase);
                inputs[base + t] = gain[0] * x;
                inputs[base + self.window + t] = gain[1] * y;
                inputs[base + 2 * self.window + t] = gain[2] * z;
            }
            fill_noise(&mut rng, &mut inputs[base..base + per], self.noise);
        }
        for v in inputs.iter_mut() {
            *v = v.clamp(-1.0, 1.0);
        }
        Dataset::new(&[3, self.window, 1], inputs, labels, self.classes)
    }
}

/// The deterministic (x, y, z) accelerometer signature of a class at angular
/// position `ft` with phase offset `phase`.
fn activity_signature(class: usize, ft: f32, phase: f32) -> (f32, f32, f32) {
    match class {
        // still: small gravity-like bias on z
        0 => (0.0, 0.0, 0.35),
        // walking: ~2 cycles, moderate amplitude, xy antiphase
        1 => (
            0.45 * (2.0 * ft + phase).sin(),
            0.45 * (2.0 * ft + phase + std::f32::consts::PI).sin(),
            0.3 + 0.15 * (4.0 * ft + phase).sin(),
        ),
        // running: higher frequency and amplitude
        2 => (
            0.8 * (5.0 * ft + phase).sin(),
            0.7 * (5.0 * ft + phase + 1.0).sin(),
            0.3 + 0.3 * (10.0 * ft + phase).sin(),
        ),
        // stairs up: slow ramp modulated steps
        3 => (
            0.5 * (3.0 * ft + phase).sin() * (0.5 + 0.5 * (ft * 0.5).sin()),
            0.25 * (3.0 * ft + phase).cos(),
            0.45 + 0.2 * (6.0 * ft + phase).sin(),
        ),
        // stairs down: like up but inverted z emphasis
        4 => (
            0.5 * (3.0 * ft + phase).cos(),
            0.25 * (3.0 * ft + phase).sin() * (0.5 + 0.5 * (ft * 0.5).cos()),
            0.2 - 0.3 * (6.0 * ft + phase).sin(),
        ),
        // sitting: slow drift, little dynamics
        _ => (0.1 * (0.5 * ft + phase).sin(), 0.1 * (0.5 * ft + phase).cos(), 0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_cycling_labels() {
        let ds = MotionSpec::default().generate(13, 1);
        assert_eq!(ds.sample_dims(), &[3, 128, 1]);
        assert_eq!(ds.labels()[6], 0);
        assert_eq!(ds.labels()[7], 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MotionSpec::default().generate(4, 9);
        let b = MotionSpec::default().generate(4, 9);
        assert_eq!(a.sample(3).data(), b.sample(3).data());
    }

    #[test]
    fn running_has_more_energy_than_still() {
        let spec = MotionSpec { noise: 0.0, ..Default::default() };
        let ds = spec.generate(12, 2);
        // sample 0 is class 0 (still), sample 2 class 2 (running)
        let e_still: f32 = ds.sample(0).data().iter().map(|v| v * v).sum();
        let e_run: f32 = ds.sample(2).data().iter().map(|v| v * v).sum();
        assert!(e_run > 2.0 * e_still, "running {e_run} vs still {e_still}");
    }

    #[test]
    #[should_panic(expected = "at most 6")]
    fn too_many_classes_panics() {
        let spec = MotionSpec { classes: 7, ..Default::default() };
        let _ = spec.generate(1, 0);
    }
}
