//! A tiny, fast classification task for unit tests of the pruning pipeline.
//!
//! Gaussian blobs in a low-dimensional space, reshaped as a minuscule
//! "image" so both convolutional and fully-connected toy models can train on
//! it in milliseconds.

use crate::rng::normal;
use crate::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the toy blob task.
#[derive(Debug, Clone)]
pub struct ToySpec {
    /// Number of classes.
    pub classes: usize,
    /// Spatial edge length of the square single-channel "image".
    pub size: usize,
    /// Noise sigma around each class centroid.
    pub noise: f32,
    /// Seed defining the class centroids (shared between train and test).
    pub template_seed: u64,
}

impl Default for ToySpec {
    fn default() -> Self {
        Self { classes: 4, size: 8, noise: 0.25, template_seed: 0xD15E_A5E2 }
    }
}

impl ToySpec {
    /// Generates `n` samples of shape `[1, size, size]`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let per = self.size * self.size;
        let mut centroid_rng = StdRng::seed_from_u64(self.template_seed ^ 0x70_59);
        let centroids: Vec<Vec<f32>> = (0..self.classes)
            .map(|_| (0..per).map(|_| 0.6 * normal(&mut centroid_rng)).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs = vec![0.0f32; n * per];
        let mut labels = vec![0usize; n];
        for (i, label) in labels.iter_mut().enumerate() {
            let class = i % self.classes;
            *label = class;
            for (j, v) in inputs[i * per..(i + 1) * per].iter_mut().enumerate() {
                *v = (centroids[class][j] + self.noise * normal(&mut rng)).clamp(-1.0, 1.0);
            }
        }
        Dataset::new(&[1, self.size, self.size], inputs, labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_shape() {
        let ds = ToySpec::default().generate(10, 0);
        assert_eq!(ds.sample_dims(), &[1, 8, 8]);
        assert_eq!(ds.classes(), 4);
    }

    #[test]
    fn deterministic() {
        let a = ToySpec::default().generate(6, 42);
        let b = ToySpec::default().generate(6, 42);
        assert_eq!(a.sample(5).data(), b.sample(5).data());
    }
}
