//! Synthetic image-recognition workload (the paper's SQN/CIFAR-10 stand-in).
//!
//! Each class is a smooth random RGB "texture" template built from a few
//! low-frequency sinusoids. A sample is its class template under a random
//! translation, amplitude jitter, and additive Gaussian noise — enough
//! intra-class variation that a convolutional network is genuinely needed,
//! and tunable noise so the ceiling accuracy can be placed near the paper's
//! 76.3 %.

use crate::rng::{fill_noise, normal};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic image task.
#[derive(Debug, Clone)]
pub struct SynthImageSpec {
    /// Image height and width.
    pub size: usize,
    /// Number of channels.
    pub channels: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of sinusoidal components per channel template.
    pub components: usize,
    /// Maximum absolute translation applied per sample, in pixels.
    pub max_shift: i32,
    /// Additive Gaussian noise sigma.
    pub noise: f32,
    /// Relative amplitude jitter (e.g. 0.3 → amplitude in [0.7, 1.3]).
    pub amp_jitter: f32,
    /// Probability that a sample carries a wrong (uniformly random) label —
    /// irreducible error that places the accuracy ceiling, mimicking the
    /// inherent difficulty of the real dataset.
    pub label_noise: f32,
    /// Seed defining the class templates. Train and test sets of one task
    /// must share this; the `generate` seed only drives per-sample noise.
    pub template_seed: u64,
}

impl Default for SynthImageSpec {
    fn default() -> Self {
        Self {
            size: 32,
            channels: 3,
            classes: 10,
            components: 4,
            max_shift: 5,
            noise: 0.55,
            amp_jitter: 0.35,
            label_noise: 0.26,
            template_seed: 0xD15E_A5E0,
        }
    }
}

struct Component {
    fy: f32,
    fx: f32,
    phase: f32,
    amp: f32,
}

impl SynthImageSpec {
    /// Generates `n` labelled samples (labels cycle through the classes so a
    /// prefix split stays stratified). Values are clipped to `[-1, 1]`.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut class_rng = StdRng::seed_from_u64(self.template_seed ^ 0xC1A5_5E5E);
        // Per class, per channel: a few sinusoidal components.
        let templates: Vec<Vec<Vec<Component>>> = (0..self.classes)
            .map(|_| {
                (0..self.channels)
                    .map(|_| {
                        (0..self.components)
                            .map(|_| Component {
                                fy: class_rng.gen_range(0.5..3.0),
                                fx: class_rng.gen_range(0.5..3.0),
                                phase: class_rng.gen_range(0.0..std::f32::consts::TAU),
                                amp: class_rng.gen_range(0.3..0.8),
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let per = self.channels * self.size * self.size;
        let mut inputs = vec![0.0f32; n * per];
        let mut labels = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(seed);
        let inv = std::f32::consts::TAU / self.size as f32;
        for (i, label) in labels.iter_mut().enumerate() {
            let class = i % self.classes;
            *label = class;
            let dy = rng.gen_range(-self.max_shift..=self.max_shift);
            let dx = rng.gen_range(-self.max_shift..=self.max_shift);
            let amp = 1.0 + self.amp_jitter * normal(&mut rng).clamp(-1.0, 1.0);
            let base = i * per;
            for c in 0..self.channels {
                let comps = &templates[class][c];
                for y in 0..self.size {
                    let fy = (y as i32 + dy) as f32 * inv;
                    for x in 0..self.size {
                        let fx = (x as i32 + dx) as f32 * inv;
                        let mut v = 0.0;
                        for comp in comps {
                            v += comp.amp * (comp.fy * fy + comp.fx * fx + comp.phase).sin();
                        }
                        inputs[base + (c * self.size + y) * self.size + x] = amp * v;
                    }
                }
            }
            fill_noise(&mut rng, &mut inputs[base..base + per], self.noise);
            if self.label_noise > 0.0 && rng.gen_range(0.0..1.0f32) < self.label_noise {
                *label = rng.gen_range(0..self.classes);
            }
        }
        for v in inputs.iter_mut() {
            *v = v.clamp(-1.0, 1.0);
        }
        Dataset::new(&[self.channels, self.size, self.size], inputs, labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let spec = SynthImageSpec { label_noise: 0.0, ..Default::default() };
        let ds = spec.generate(25, 7);
        assert_eq!(ds.sample_dims(), &[3, 32, 32]);
        assert_eq!(ds.len(), 25);
        assert_eq!(ds.labels()[0], 0);
        assert_eq!(ds.labels()[10], 0);
        assert_eq!(ds.labels()[13], 3);
    }

    #[test]
    fn label_noise_flips_roughly_the_requested_fraction() {
        let spec = SynthImageSpec { label_noise: 0.3, ..Default::default() };
        let ds = spec.generate(1000, 9);
        let flipped =
            ds.labels().iter().enumerate().filter(|(i, &l)| l != i % spec.classes).count();
        let frac = flipped as f64 / 1000.0;
        // ~0.3 * (1 - 1/classes) of labels visibly change
        assert!((frac - 0.27).abs() < 0.06, "flipped {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SynthImageSpec::default().generate(8, 3);
        let b = SynthImageSpec::default().generate(8, 3);
        let c = SynthImageSpec::default().generate(8, 4);
        assert_eq!(a.sample(0).data(), b.sample(0).data());
        assert_ne!(a.sample(0).data(), c.sample(0).data());
    }

    #[test]
    fn values_clipped_to_unit_range() {
        let ds = SynthImageSpec::default().generate(10, 5);
        for i in 0..10 {
            assert!(ds.sample(i).max_abs() <= 1.0);
        }
    }

    /// A nearest-class-centroid classifier on noise-free retraining data
    /// should beat chance by a wide margin — i.e. the task carries signal.
    #[test]
    fn classes_are_separable() {
        let spec = SynthImageSpec { noise: 0.2, label_noise: 0.0, ..Default::default() };
        let train = spec.generate(100, 11);
        let test = spec.generate(40, 12);
        let per: usize = train.sample_dims().iter().product();
        let mut centroids = vec![vec![0.0f64; per]; spec.classes];
        let mut counts = vec![0usize; spec.classes];
        for i in 0..train.len() {
            let s = train.sample(i);
            let l = train.labels()[i];
            counts[l] += 1;
            for (c, &v) in centroids[l].iter_mut().zip(s.data()) {
                *c += v as f64;
            }
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            c.iter_mut().for_each(|v| *v /= n.max(1) as f64);
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let s = test.sample(i);
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f64 =
                        a.iter().zip(s.data()).map(|(x, &y)| (x - y as f64).powi(2)).sum();
                    let db: f64 =
                        b.iter().zip(s.data()).map(|(x, &y)| (x - y as f64).powi(2)).sum();
                    da.partial_cmp(&db).unwrap()
                })
                .map(|(i, _)| i)
                .unwrap();
            if best == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.5, "centroid accuracy only {acc}");
    }
}
