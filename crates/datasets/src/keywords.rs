//! Synthetic keyword-spotting workload (the paper's CKS stand-in).
//!
//! Each of the ten "keywords" is a characteristic pattern of time–frequency
//! energy blobs on an MFCC-like spectrogram of shape `[1, 61, 13]`
//! (channel × time × mel-bins). Samples jitter the blob positions and
//! widths, add babble-like structured background, and Gaussian noise.

use crate::rng::{fill_noise, normal};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic keyword-spotting task.
#[derive(Debug, Clone)]
pub struct KeywordSpec {
    /// Time frames.
    pub frames: usize,
    /// Mel/MFCC bins per frame.
    pub bins: usize,
    /// Number of keyword classes.
    pub classes: usize,
    /// Energy blobs per keyword template.
    pub blobs: usize,
    /// Additive Gaussian noise sigma.
    pub noise: f32,
    /// Positional jitter of blob centres (fraction of each axis).
    pub jitter: f32,
    /// Probability of a wrong (uniformly random) label — irreducible error
    /// placing the accuracy ceiling.
    pub label_noise: f32,
    /// Seed defining the keyword templates. Train and test sets of one task
    /// must share this; the `generate` seed only drives per-sample noise.
    pub template_seed: u64,
}

impl Default for KeywordSpec {
    fn default() -> Self {
        Self {
            frames: 61,
            bins: 13,
            classes: 10,
            blobs: 5,
            noise: 0.30,
            jitter: 0.11,
            label_noise: 0.10,
            template_seed: 0xD15E_A5E1,
        }
    }
}

struct Blob {
    t: f32,
    f: f32,
    st: f32,
    sf: f32,
    amp: f32,
}

impl KeywordSpec {
    /// Generates `n` labelled spectrograms, labels cycling through classes.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        let mut class_rng = StdRng::seed_from_u64(self.template_seed ^ 0x4B57_5350);
        let templates: Vec<Vec<Blob>> = (0..self.classes)
            .map(|_| {
                (0..self.blobs)
                    .map(|_| Blob {
                        t: class_rng.gen_range(0.1..0.9),
                        f: class_rng.gen_range(0.1..0.9),
                        st: class_rng.gen_range(0.04..0.15),
                        sf: class_rng.gen_range(0.06..0.2),
                        amp: class_rng.gen_range(0.5..1.0),
                    })
                    .collect()
            })
            .collect();

        let per = self.frames * self.bins;
        let mut inputs = vec![0.0f32; n * per];
        let mut labels = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(seed);
        for (i, label) in labels.iter_mut().enumerate() {
            let class = i % self.classes;
            *label = class;
            let base = i * per;
            let jt = self.jitter * normal(&mut rng);
            let jf = self.jitter * normal(&mut rng);
            let amp = 1.0 + 0.2 * normal(&mut rng).clamp(-1.5, 1.5);
            for blob in &templates[class] {
                let ct = (blob.t + jt).clamp(0.0, 1.0) * self.frames as f32;
                let cf = (blob.f + jf).clamp(0.0, 1.0) * self.bins as f32;
                let st = blob.st * self.frames as f32;
                let sf = blob.sf * self.bins as f32;
                for t in 0..self.frames {
                    let dt = (t as f32 - ct) / st;
                    if dt.abs() > 3.0 {
                        continue;
                    }
                    for f in 0..self.bins {
                        let df = (f as f32 - cf) / sf;
                        let v = amp * blob.amp * (-0.5 * (dt * dt + df * df)).exp();
                        inputs[base + t * self.bins + f] += v;
                    }
                }
            }
            fill_noise(&mut rng, &mut inputs[base..base + per], self.noise);
            if self.label_noise > 0.0 && rng.gen_range(0.0..1.0f32) < self.label_noise {
                *label = rng.gen_range(0..self.classes);
            }
        }
        for v in inputs.iter_mut() {
            *v = v.clamp(-1.0, 1.0);
        }
        Dataset::new(&[1, self.frames, self.bins], inputs, labels, self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_labels() {
        let spec = KeywordSpec { label_noise: 0.0, ..Default::default() };
        let ds = spec.generate(21, 3);
        assert_eq!(ds.sample_dims(), &[1, 61, 13]);
        assert_eq!(ds.labels()[20], 0);
        assert_eq!(ds.labels()[19], 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KeywordSpec::default().generate(4, 5);
        let b = KeywordSpec::default().generate(4, 5);
        assert_eq!(a.sample(1).data(), b.sample(1).data());
    }

    #[test]
    fn noise_free_templates_differ_between_classes() {
        let spec = KeywordSpec { noise: 0.0, jitter: 0.0, ..Default::default() };
        let ds = spec.generate(10, 8);
        let a = ds.sample(0);
        let b = ds.sample(1);
        let diff: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 10.0, "templates nearly identical: {diff}");
    }

    #[test]
    fn energy_is_bounded() {
        let ds = KeywordSpec::default().generate(6, 4);
        for i in 0..6 {
            assert!(ds.sample(i).max_abs() <= 1.0);
        }
    }
}
