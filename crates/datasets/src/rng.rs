//! Random-sampling helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Kept local so the workspace needs no distribution crate beyond `rand`.
pub fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fills `buf` with N(0, sigma²) noise.
pub fn fill_noise(rng: &mut StdRng, buf: &mut [f32], sigma: f32) {
    for v in buf.iter_mut() {
        *v += sigma * normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn fill_noise_scales_by_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut a = vec![0.0f32; 1000];
        fill_noise(&mut rng, &mut a, 0.1);
        let rms = (a.iter().map(|x| x * x).sum::<f32>() / 1000.0).sqrt();
        assert!((rms - 0.1).abs() < 0.02, "rms {rms}");
    }
}
