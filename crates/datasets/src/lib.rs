//! Seeded synthetic TinyML workloads for the iPrune reproduction.
//!
//! The paper evaluates three applications (Table II): image recognition on
//! CIFAR-10 (*SQN*), human-activity detection on accelerometer data (*HAR*),
//! and speech keyword spotting (*CKS*). Those datasets cannot ship with this
//! reproduction, so each generator here synthesizes a classification task
//! with the same tensor shapes and a comparable difficulty profile:
//! class-dependent structure plus controllable noise, learnable by the
//! paper's model architectures and degradable/recoverable under pruning and
//! fine-tuning — which is all the pruning pipeline observes.
//!
//! All generators are deterministic given a `u64` seed.
//!
//! # Example
//!
//! ```
//! use iprune_datasets::{synth_image::SynthImageSpec, Dataset};
//!
//! let ds = SynthImageSpec::default().generate(64, 42);
//! assert_eq!(ds.len(), 64);
//! assert_eq!(ds.sample_dims(), &[3, 32, 32]);
//! let (train, test) = ds.split(0.75);
//! assert_eq!(train.len() + test.len(), 64);
//! ```

pub mod keywords;
pub mod motion;
pub mod rng;
pub mod synth_image;
pub mod toy;

use iprune_tensor::Tensor;

/// An in-memory labelled dataset with fixed per-sample shape.
#[derive(Debug, Clone)]
pub struct Dataset {
    sample_dims: Vec<usize>,
    inputs: Vec<f32>,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from a flat input buffer (`len * prod(sample_dims)`
    /// values) and one label per sample.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is inconsistent or any label is out of
    /// range.
    pub fn new(
        sample_dims: &[usize],
        inputs: Vec<f32>,
        labels: Vec<usize>,
        classes: usize,
    ) -> Self {
        let per: usize = sample_dims.iter().product();
        assert_eq!(inputs.len(), per * labels.len(), "input buffer length");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Self { sample_dims: sample_dims.to_vec(), inputs, labels, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample dimensions (without the batch dimension).
    pub fn sample_dims(&self) -> &[usize] {
        &self.sample_dims
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies sample `i` into a `[1, ...sample_dims]` tensor.
    pub fn sample(&self, i: usize) -> Tensor {
        let per: usize = self.sample_dims.iter().product();
        let mut dims = vec![1];
        dims.extend_from_slice(&self.sample_dims);
        Tensor::from_vec(&dims, self.inputs[i * per..(i + 1) * per].to_vec())
    }

    /// Builds a batch tensor `[indices.len(), ...sample_dims]` plus labels.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let per: usize = self.sample_dims.iter().product();
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.inputs[i * per..(i + 1) * per]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_dims);
        (Tensor::from_vec(&dims, data), labels)
    }

    /// Iterates over contiguous batches of at most `batch` samples.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = (Tensor, Vec<usize>)> + '_ {
        let n = self.len();
        let batch = batch.max(1);
        (0..n.div_ceil(batch)).map(move |b| {
            let lo = b * batch;
            let hi = ((b + 1) * batch).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            self.gather(&idx)
        })
    }

    /// Splits into `(first, second)` where `first` holds `ratio` of the
    /// samples (stratification is inherited from the generator's interleaved
    /// label order).
    pub fn split(&self, ratio: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * ratio).round() as usize;
        let cut = cut.min(self.len());
        let per: usize = self.sample_dims.iter().product();
        let a = Dataset {
            sample_dims: self.sample_dims.clone(),
            inputs: self.inputs[..cut * per].to_vec(),
            labels: self.labels[..cut].to_vec(),
            classes: self.classes,
        };
        let b = Dataset {
            sample_dims: self.sample_dims.clone(),
            inputs: self.inputs[cut * per..].to_vec(),
            labels: self.labels[cut..].to_vec(),
            classes: self.classes,
        };
        (a, b)
    }

    /// Returns a dataset containing only the first `n` samples.
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let per: usize = self.sample_dims.iter().product();
        Dataset {
            sample_dims: self.sample_dims.clone(),
            inputs: self.inputs[..n * per].to_vec(),
            labels: self.labels[..n].to_vec(),
            classes: self.classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        // 4 samples of shape [2], labels 0,1,0,1
        Dataset::new(&[2], vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1, 3.0, 3.1], vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn gather_builds_batches() {
        let ds = tiny();
        let (x, y) = ds.gather(&[2, 0]);
        assert_eq!(x.dims(), &[2, 2]);
        assert_eq!(x.data(), &[2.0, 2.1, 0.0, 0.1]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn batches_cover_everything() {
        let ds = tiny();
        let total: usize = ds.batches(3).map(|(x, _)| x.dims()[0]).sum();
        assert_eq!(total, 4);
        let sizes: Vec<usize> = ds.batches(3).map(|(x, _)| x.dims()[0]).collect();
        assert_eq!(sizes, vec![3, 1]);
    }

    #[test]
    fn split_partitions() {
        let ds = tiny();
        let (a, b) = ds.split(0.5);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.labels(), &[0, 1]);
    }

    #[test]
    fn take_truncates() {
        let ds = tiny();
        assert_eq!(ds.take(3).len(), 3);
        assert_eq!(ds.take(99).len(), 4);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        let _ = Dataset::new(&[1], vec![0.0], vec![5], 2);
    }
}
