//! Host-side metrics: a process-global registry of cheap atomic counters
//! and log₂-bucketed histograms.
//!
//! Hot call sites cache the `Arc<Counter>` in a `OnceLock` so the steady
//! state is one atomic add — the registry lookup (hash + RwLock read)
//! happens once per site:
//!
//! ```
//! use iprune_obs::metrics::{self, Counter};
//! use std::sync::{Arc, OnceLock};
//!
//! static CALLS: OnceLock<Arc<Counter>> = OnceLock::new();
//! CALLS.get_or_init(|| metrics::counter("mycrate.calls")).inc();
//! ```
//!
//! [`snapshot`] returns all instruments sorted by name, so reports are
//! deterministic regardless of registration order. Counters monotonically
//! increase over the process lifetime; benches that want per-phase deltas
//! snapshot before and after.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically-increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ histogram buckets (`u64` value range).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over `u64` samples with one bucket per power of two:
/// bucket `i` counts samples whose value has `i` significant bits
/// (bucket 0 holds zeros, bucket 1 holds ones, bucket 2 holds 2–3, …).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS], sum: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// `(lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((if i == 0 { 0 } else { 1u64 << (i - 1) }, n))
                }
            })
            .collect()
    }
}

#[derive(Default)]
struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter named `name`, creating it on first use.
pub fn counter(name: &str) -> Arc<Counter> {
    if let Some(c) = registry().counters.read().expect("metrics lock").get(name) {
        return Arc::clone(c);
    }
    let mut map = registry().counters.write().expect("metrics lock");
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// The histogram named `name`, creating it on first use.
pub fn histogram(name: &str) -> Arc<Histogram> {
    if let Some(h) = registry().histograms.read().expect("metrics lock").get(name) {
        return Arc::clone(h);
    }
    let mut map = registry().histograms.write().expect("metrics lock");
    Arc::clone(map.entry(name.to_string()).or_default())
}

/// One instrument's current reading.
#[derive(Debug, Clone, PartialEq)]
pub enum Reading {
    /// A counter value.
    Counter(u64),
    /// A histogram: sample count, sum, mean.
    Histogram {
        /// Number of samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Mean sample.
        mean: f64,
    },
}

/// Sort rank of a reading's kind — counters before histograms, so a name
/// registered as both has a pinned order in [`snapshot`].
fn kind_rank(r: &Reading) -> u8 {
    match r {
        Reading::Counter(_) => 0,
        Reading::Histogram { .. } => 1,
    }
}

/// All registered instruments, sorted by `(name, kind)` — fully
/// deterministic regardless of registration order, including the
/// degenerate case where one name is registered as both a counter and a
/// histogram (the counter sorts first).
pub fn snapshot() -> Vec<(String, Reading)> {
    let mut out: Vec<(String, Reading)> = Vec::new();
    for (name, c) in registry().counters.read().expect("metrics lock").iter() {
        out.push((name.clone(), Reading::Counter(c.get())));
    }
    for (name, h) in registry().histograms.read().expect("metrics lock").iter() {
        out.push((
            name.clone(),
            Reading::Histogram { count: h.count(), sum: h.sum(), mean: h.mean() },
        ));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| kind_rank(&a.1).cmp(&kind_rank(&b.1))));
    out
}

/// Renders [`snapshot`] as one aligned `name value` line per instrument.
pub fn render_snapshot() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, reading) in snapshot() {
        match reading {
            Reading::Counter(v) => {
                let _ = writeln!(out, "{name:<40} {v}");
            }
            Reading::Histogram { count, sum, mean } => {
                let _ = writeln!(out, "{name:<40} n={count} sum={sum} mean={mean:.2}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let a = counter("test.shared");
        let b = counter("test.shared");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
        assert!((h.mean() - 206.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        counter("test.zz").inc();
        histogram("test.aa").record(7);
        let snap = snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        let aa = names.iter().position(|n| *n == "test.aa").unwrap();
        let zz = names.iter().position(|n| *n == "test.zz").unwrap();
        assert!(aa < zz);
        assert!(matches!(snap[aa].1, Reading::Histogram { count: 1, sum: 7, .. }));
        assert!(render_snapshot().contains("test.zz"));
    }

    #[test]
    fn same_name_counter_precedes_histogram() {
        // One name registered as both kinds: the snapshot order must be
        // pinned (counter first), not registration- or hash-order.
        histogram("test.dual").record(3);
        counter("test.dual").inc();
        let snap = snapshot();
        let dual: Vec<&Reading> =
            snap.iter().filter(|(n, _)| n == "test.dual").map(|(_, r)| r).collect();
        assert_eq!(dual.len(), 2);
        assert!(matches!(dual[0], Reading::Counter(_)), "counter must sort before histogram");
        assert!(matches!(dual[1], Reading::Histogram { .. }));
    }
}
