//! Per-layer × per-activity-class attribution of simulated time.
//!
//! Folding a trace gives the paper's Figure 2 latency breakdown *per
//! layer*: for every graph operation, how much committed busy time went to
//! NVM reads, NVM writes (progress preservation), LEA compute, and CPU
//! work — plus the intermittence overheads (recovery, recharge, wasted
//! re-executed time) that struck while that layer was executing.
//!
//! The table is not an estimate: device events carry the exact durations
//! the simulator added to its `SimStats`, so [`Attribution::reconcile`]
//! audits the trace against the aggregate statistics field by field.
//! A reconciled trace provably accounts for every simulated second (to
//! 1e-9, the slack fp summation order is allowed) and every byte, MAC,
//! job, and power cycle exactly.

use crate::event::TraceEvent;
use std::fmt;

/// Activity classes, matching the `SimStats` time fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityClass {
    /// Committed NVM read busy time.
    NvmRead,
    /// Committed NVM write busy time (incl. progress preservation).
    NvmWrite,
    /// Committed LEA busy time.
    Lea,
    /// Committed CPU busy time.
    Cpu,
    /// Reboot + progress-recovery time.
    Recovery,
    /// Off time, recharging the capacitor.
    Charging,
    /// Busy time lost to power failures (re-executed).
    Wasted,
}

impl ActivityClass {
    /// All classes, in `SimStats` field order.
    pub const ALL: [ActivityClass; 7] = [
        ActivityClass::NvmRead,
        ActivityClass::NvmWrite,
        ActivityClass::Lea,
        ActivityClass::Cpu,
        ActivityClass::Recovery,
        ActivityClass::Charging,
        ActivityClass::Wasted,
    ];

    /// Short column label.
    pub fn label(&self) -> &'static str {
        match self {
            ActivityClass::NvmRead => "nvm_read",
            ActivityClass::NvmWrite => "nvm_write",
            ActivityClass::Lea => "lea",
            ActivityClass::Cpu => "cpu",
            ActivityClass::Recovery => "recovery",
            ActivityClass::Charging => "charging",
            ActivityClass::Wasted => "wasted",
        }
    }
}

const N_CLASSES: usize = ActivityClass::ALL.len();

/// One attribution row: a graph operation (or the inter-layer gap).
#[derive(Debug, Clone)]
pub struct LayerRow {
    /// Graph-operation index; `None` for time outside any layer scope.
    pub op: Option<u32>,
    /// Operation label from the `LayerStart` event.
    pub label: String,
    /// Seconds per activity class, indexed by [`ActivityClass::ALL`] order.
    pub secs: [f64; N_CLASSES],
    /// Bytes read from NVM inside this scope.
    pub read_bytes: u64,
    /// Bytes written to NVM inside this scope (preservation + output).
    pub write_bytes: u64,
    /// MACs committed inside this scope.
    pub macs: u64,
    /// Jobs committed inside this scope.
    pub jobs: u64,
    /// Power failures that struck inside this scope.
    pub power_fails: u64,
}

impl LayerRow {
    fn new(op: Option<u32>, label: String) -> Self {
        Self {
            op,
            label,
            secs: [0.0; N_CLASSES],
            read_bytes: 0,
            write_bytes: 0,
            macs: 0,
            jobs: 0,
            power_fails: 0,
        }
    }

    /// This row's seconds in `class`.
    pub fn secs_in(&self, class: ActivityClass) -> f64 {
        self.secs[ActivityClass::ALL.iter().position(|c| *c == class).expect("known class")]
    }

    /// Committed busy seconds (read + write + lea + cpu) of this row.
    pub fn busy_s(&self) -> f64 {
        self.secs_in(ActivityClass::NvmRead)
            + self.secs_in(ActivityClass::NvmWrite)
            + self.secs_in(ActivityClass::Lea)
            + self.secs_in(ActivityClass::Cpu)
    }

    /// All seconds including intermittence overheads.
    pub fn total_s(&self) -> f64 {
        self.secs.iter().sum()
    }
}

/// Aggregate totals to reconcile a trace against — a mirror of the device
/// crate's `SimStats` (this crate sits below `iprune-device` in the
/// dependency order, so the device crate provides the conversion).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsTotals {
    /// Committed NVM read busy time (s).
    pub nvm_read_s: f64,
    /// Committed NVM write busy time (s).
    pub nvm_write_s: f64,
    /// Committed LEA busy time (s).
    pub lea_s: f64,
    /// Committed CPU busy time (s).
    pub cpu_s: f64,
    /// Reboot + recovery time (s).
    pub recovery_s: f64,
    /// Capacitor recharge time (s).
    pub charging_s: f64,
    /// Busy time lost to power failures (s).
    pub wasted_s: f64,
    /// Bytes read from NVM.
    pub nvm_read_bytes: u64,
    /// Bytes written to NVM.
    pub nvm_write_bytes: u64,
    /// MACs committed.
    pub lea_macs: u64,
    /// Jobs committed.
    pub jobs_committed: u64,
    /// Job attempts aborted by power failure.
    pub jobs_failed: u64,
    /// Power cycles.
    pub power_cycles: u64,
    /// Power cycles forced by a fault hook.
    pub injected_failures: u64,
}

/// A failed reconciliation: every field that disagreed.
#[derive(Debug, Clone)]
pub struct AuditError {
    /// One `field: trace=… stats=…` entry per mismatch.
    pub mismatches: Vec<String>,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace does not reconcile with SimStats: {}", self.mismatches.join("; "))
    }
}

impl std::error::Error for AuditError {}

/// The folded per-layer attribution table.
#[derive(Debug, Clone)]
pub struct Attribution {
    rows: Vec<LayerRow>,
    /// Per-class totals accumulated in event order (the same chronological
    /// order the simulator used), so reconciliation is immune to row
    /// regrouping.
    class_totals: [f64; N_CLASSES],
    read_bytes: u64,
    write_bytes: u64,
    macs: u64,
    jobs_committed: u64,
    jobs_failed: u64,
    power_cycles: u64,
    injected_failures: u64,
}

impl Attribution {
    /// Folds a trace into the attribution table.
    ///
    /// Device activity between a `LayerStart { op }` and its matching
    /// `LayerEnd` is attributed to that operation; activity outside any
    /// scope lands in a synthetic `(outside)` row. Re-entering an `op`
    /// (which the engine never does within one inference) accumulates into
    /// the existing row.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut attr = Attribution {
            rows: Vec::new(),
            class_totals: [0.0; N_CLASSES],
            read_bytes: 0,
            write_bytes: 0,
            macs: 0,
            jobs_committed: 0,
            jobs_failed: 0,
            power_cycles: 0,
            injected_failures: 0,
        };
        let mut current: Option<usize> = None;
        for ev in events {
            match ev {
                TraceEvent::LayerStart { op, label, .. } => {
                    let idx = match attr.rows.iter().position(|r| r.op == Some(*op)) {
                        Some(i) => i,
                        None => {
                            attr.rows.push(LayerRow::new(Some(*op), label.clone()));
                            attr.rows.len() - 1
                        }
                    };
                    current = Some(idx);
                }
                TraceEvent::LayerEnd { .. } => current = None,
                TraceEvent::TileStart { .. } | TraceEvent::TileCommit { .. } => {}
                TraceEvent::JobStart { .. } => {}
                TraceEvent::JobCommit { lea_s, cpu_s, write_s, write_bytes, macs, .. } => {
                    let row = attr.row_mut(current);
                    row.secs[2] += *lea_s; // Lea
                    row.secs[3] += *cpu_s; // Cpu
                    row.secs[1] += *write_s; // NvmWrite
                    row.write_bytes += *write_bytes;
                    row.macs += *macs;
                    row.jobs += 1;
                    attr.class_totals[2] += *lea_s;
                    attr.class_totals[3] += *cpu_s;
                    attr.class_totals[1] += *write_s;
                    attr.write_bytes += *write_bytes;
                    attr.macs += *macs;
                    attr.jobs_committed += 1;
                }
                TraceEvent::JobAbort { .. } => attr.jobs_failed += 1,
                TraceEvent::NvmRead { dur, bytes, .. } => {
                    let row = attr.row_mut(current);
                    row.secs[0] += *dur;
                    row.read_bytes += *bytes;
                    attr.class_totals[0] += *dur;
                    attr.read_bytes += *bytes;
                }
                TraceEvent::NvmWrite { dur, bytes, .. } => {
                    let row = attr.row_mut(current);
                    row.secs[1] += *dur;
                    row.write_bytes += *bytes;
                    attr.class_totals[1] += *dur;
                    attr.write_bytes += *bytes;
                }
                TraceEvent::CpuWork { dur, .. } => {
                    attr.row_mut(current).secs[3] += *dur;
                    attr.class_totals[3] += *dur;
                }
                TraceEvent::RecoveryRead { dur, .. } => {
                    attr.row_mut(current).secs[4] += *dur;
                    attr.class_totals[4] += *dur;
                }
                TraceEvent::PowerFail { injected, wasted_s, .. } => {
                    let row = attr.row_mut(current);
                    row.secs[6] += *wasted_s;
                    row.power_fails += 1;
                    attr.class_totals[6] += *wasted_s;
                    attr.power_cycles += 1;
                    if *injected {
                        attr.injected_failures += 1;
                    }
                }
                TraceEvent::Recharge { dur, .. } => {
                    attr.row_mut(current).secs[5] += *dur;
                    attr.class_totals[5] += *dur;
                }
                TraceEvent::Reboot { dur, .. } => {
                    attr.row_mut(current).secs[4] += *dur;
                    attr.class_totals[4] += *dur;
                }
            }
        }
        attr
    }

    fn row_mut(&mut self, current: Option<usize>) -> &mut LayerRow {
        match current {
            Some(i) => &mut self.rows[i],
            None => {
                if self.rows.last().map(|r| r.op.is_none()) != Some(true) {
                    self.rows.push(LayerRow::new(None, "(outside)".to_string()));
                }
                self.rows.last_mut().expect("just ensured")
            }
        }
    }

    /// The per-layer rows, in first-seen order.
    pub fn rows(&self) -> &[LayerRow] {
        &self.rows
    }

    /// Total seconds in `class` across all rows (chronological
    /// accumulation).
    pub fn total_in(&self, class: ActivityClass) -> f64 {
        self.class_totals[ActivityClass::ALL.iter().position(|c| *c == class).expect("known")]
    }

    /// Committed busy seconds across all rows.
    pub fn busy_s(&self) -> f64 {
        self.total_in(ActivityClass::NvmRead)
            + self.total_in(ActivityClass::NvmWrite)
            + self.total_in(ActivityClass::Lea)
            + self.total_in(ActivityClass::Cpu)
    }

    /// Audits the table against the simulator's aggregate statistics.
    ///
    /// Time fields must agree within `1e-9` (absolute, and relative for
    /// values above one second); count fields must agree exactly.
    ///
    /// # Errors
    ///
    /// [`AuditError`] listing every disagreeing field.
    pub fn reconcile(&self, stats: &StatsTotals) -> Result<(), AuditError> {
        let mut mismatches = Vec::new();
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        let time_fields: [(&str, f64, f64); 7] = [
            ("nvm_read_s", self.total_in(ActivityClass::NvmRead), stats.nvm_read_s),
            ("nvm_write_s", self.total_in(ActivityClass::NvmWrite), stats.nvm_write_s),
            ("lea_s", self.total_in(ActivityClass::Lea), stats.lea_s),
            ("cpu_s", self.total_in(ActivityClass::Cpu), stats.cpu_s),
            ("recovery_s", self.total_in(ActivityClass::Recovery), stats.recovery_s),
            ("charging_s", self.total_in(ActivityClass::Charging), stats.charging_s),
            ("wasted_s", self.total_in(ActivityClass::Wasted), stats.wasted_s),
        ];
        for (name, trace, expect) in time_fields {
            if !close(trace, expect) {
                mismatches.push(format!("{name}: trace={trace:.12e} stats={expect:.12e}"));
            }
        }
        let count_fields: [(&str, u64, u64); 7] = [
            ("nvm_read_bytes", self.read_bytes, stats.nvm_read_bytes),
            ("nvm_write_bytes", self.write_bytes, stats.nvm_write_bytes),
            ("lea_macs", self.macs, stats.lea_macs),
            ("jobs_committed", self.jobs_committed, stats.jobs_committed),
            ("jobs_failed", self.jobs_failed, stats.jobs_failed),
            ("power_cycles", self.power_cycles, stats.power_cycles),
            ("injected_failures", self.injected_failures, stats.injected_failures),
        ];
        for (name, trace, expect) in count_fields {
            if trace != expect {
                mismatches.push(format!("{name}: trace={trace} stats={expect}"));
            }
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(AuditError { mismatches })
        }
    }

    /// Renders the table as aligned text: one row per layer, one column
    /// per activity class (seconds), plus each row's share of the total
    /// committed busy time.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:<12}", "layer");
        for c in ActivityClass::ALL {
            let _ = write!(out, " {:>11}", c.label());
        }
        let _ = writeln!(out, " {:>7}", "busy%");
        let busy = self.busy_s().max(f64::MIN_POSITIVE);
        for row in &self.rows {
            let _ = write!(out, "{:<12}", row.label);
            for s in row.secs {
                let _ = write!(out, " {:>11.6}", s);
            }
            let _ = writeln!(out, " {:>6.1}%", 100.0 * row.busy_s() / busy);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed_job(lea_s: f64, write_s: f64, bytes: u64, macs: u64) -> TraceEvent {
        TraceEvent::JobCommit {
            t: 0.0,
            index: 0,
            lea_start: 0.0,
            lea_s,
            cpu_s: 0.0,
            write_start: 0.0,
            write_s,
            write_bytes: bytes,
            macs,
        }
    }

    #[test]
    fn attribution_assigns_to_the_open_layer() {
        let events = vec![
            TraceEvent::LayerStart { t: 0.0, op: 0, label: "conv0".into() },
            committed_job(1.0, 2.0, 34, 64),
            TraceEvent::LayerEnd { t: 3.0, op: 0 },
            TraceEvent::LayerStart { t: 3.0, op: 1, label: "fc1".into() },
            committed_job(0.5, 0.25, 10, 8),
            TraceEvent::LayerEnd { t: 4.0, op: 1 },
        ];
        let attr = Attribution::from_events(&events);
        assert_eq!(attr.rows().len(), 2);
        assert_eq!(attr.rows()[0].label, "conv0");
        assert_eq!(attr.rows()[0].secs_in(ActivityClass::Lea), 1.0);
        assert_eq!(attr.rows()[1].secs_in(ActivityClass::NvmWrite), 0.25);
        assert_eq!(attr.total_in(ActivityClass::Lea), 1.5);
        assert_eq!(attr.busy_s(), 3.75);
    }

    #[test]
    fn unscoped_activity_lands_outside() {
        let events = vec![
            TraceEvent::NvmRead { t: 0.0, dur: 0.5, bytes: 100 },
            TraceEvent::LayerStart { t: 1.0, op: 0, label: "conv0".into() },
            TraceEvent::LayerEnd { t: 1.0, op: 0 },
        ];
        let attr = Attribution::from_events(&events);
        assert_eq!(attr.rows()[0].op, None);
        assert_eq!(attr.rows()[0].secs_in(ActivityClass::NvmRead), 0.5);
    }

    #[test]
    fn reconcile_accepts_matching_totals() {
        let events = vec![
            TraceEvent::LayerStart { t: 0.0, op: 0, label: "conv0".into() },
            committed_job(1.0, 2.0, 34, 64),
            TraceEvent::PowerFail { t: 3.0, injected: true, wasted_s: 0.125 },
            TraceEvent::JobAbort { t: 3.0, index: 1, injected: true, preserve_frac: 0.0 },
            TraceEvent::Recharge { t: 3.0, dur: 4.0 },
            TraceEvent::Reboot { t: 7.0, dur: 0.5 },
            TraceEvent::RecoveryRead { t: 7.5, dur: 0.25, bytes: 16 },
            TraceEvent::LayerEnd { t: 8.0, op: 0 },
        ];
        let attr = Attribution::from_events(&events);
        let stats = StatsTotals {
            nvm_write_s: 2.0,
            lea_s: 1.0,
            recovery_s: 0.75,
            charging_s: 4.0,
            wasted_s: 0.125,
            nvm_write_bytes: 34,
            lea_macs: 64,
            jobs_committed: 1,
            jobs_failed: 1,
            power_cycles: 1,
            injected_failures: 1,
            ..Default::default()
        };
        attr.reconcile(&stats).expect("reconciles");
    }

    #[test]
    fn reconcile_rejects_and_names_mismatches() {
        let attr = Attribution::from_events(&[committed_job(1.0, 2.0, 34, 64)]);
        let err = attr
            .reconcile(&StatsTotals {
                nvm_write_s: 2.0,
                lea_s: 1.0,
                nvm_write_bytes: 34,
                lea_macs: 99, // wrong
                jobs_committed: 1,
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(err.mismatches.len(), 1);
        assert!(err.mismatches[0].contains("lea_macs"), "{err}");
    }

    #[test]
    fn render_table_has_one_line_per_row_plus_header() {
        let events = vec![
            TraceEvent::LayerStart { t: 0.0, op: 0, label: "conv0".into() },
            committed_job(1.0, 2.0, 34, 64),
            TraceEvent::LayerEnd { t: 3.0, op: 0 },
        ];
        let table = Attribution::from_events(&events).render_table();
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("nvm_write"));
        assert!(table.contains("conv0"));
    }
}
