//! Observability for the iPrune reproduction (`iprune-obs`).
//!
//! Three independent pieces, shared by every execution path in the
//! workspace:
//!
//! 1. **Sim-time event tracing** ([`event`], [`sink`], [`export`]): the
//!    device simulator and the HAWAII⁺ engine emit structured
//!    [`event::TraceEvent`]s into a [`sink::TraceSink`]. Timestamps are
//!    *simulated* seconds, so a trace of a deterministic simulation is
//!    itself deterministic — byte-reproducible run to run. Exporters
//!    produce Chrome `trace_event` JSON (open in `chrome://tracing` or
//!    [Perfetto](https://ui.perfetto.dev)) and a line-oriented JSONL form
//!    that round-trips through [`export::parse_jsonl`].
//! 2. **Attribution** ([`attr`]): folding a trace into a per-layer ×
//!    per-activity-class latency/energy table — the paper's Figure 2
//!    breakdown *per layer* instead of per run. The table carries an audit:
//!    [`attr::Attribution::reconcile`] must agree with the simulator's own
//!    aggregate `SimStats` to 1e-9, so the trace provably accounts for
//!    every simulated second.
//! 3. **Host-side metrics & logging** ([`metrics`], [`log`]): cheap atomic
//!    counters/histograms for the prune–retrain pipeline (GEMM calls,
//!    sensitivity probes, thread-pool fan-outs) and a leveled stderr
//!    logger controlled by `IPRUNE_LOG` that keeps human narration off
//!    stdout, where benches emit machine-readable rows.
//! 4. **Fleet telemetry & bench trajectory** ([`telemetry`], [`history`]):
//!    per-device health records with exact-integer anomaly fences (the
//!    vocabulary `iprune-fleet`'s triage pass speaks), and structural
//!    fingerprints of the deterministic `BENCH_*.json` reports backing the
//!    committed `BENCH_HISTORY.jsonl` regression gate.
//!
//! Tracing is zero-overhead when disabled: with no sink installed the
//! simulator's emission points are a single `Option` branch, and no event
//! values are constructed.

pub mod agg;
pub mod attr;
pub mod event;
pub mod export;
pub mod history;
pub mod log;
pub mod metrics;
pub mod sink;
pub mod telemetry;

pub use attr::{ActivityClass, Attribution, AuditError, StatsTotals};
pub use event::TraceEvent;
pub use export::{parse_jsonl, to_chrome_json, to_jsonl};
pub use log::Level;
pub use sink::{drain_shared, MemorySink, NullSink, SharedSink, TraceSink};
pub use telemetry::{AnomalyCause, CellBaseline, CellFences, DeviceHealth, FenceConfig};
