//! Bench-trajectory tracking: structural hashes of `BENCH_*.json` files
//! and a regression gate over a committed `BENCH_HISTORY.jsonl`.
//!
//! Every bench in this workspace writes a deterministic report whose
//! *structural* lines are byte-identical across thread counts, shard
//! sizes, and hosts; only a short list of host-measurement markers
//! (`wall_s`, `gflops`, …) may differ. That discipline makes a bench
//! report fingerprint-able: [`structural_hash`] is FNV-1a over exactly the
//! lines the CI byte-compares keep, so *any* structural change — a
//! determinism break, a format change, a different device outcome — moves
//! the hash, while re-running on a faster machine does not.
//!
//! [`HistoryEntry`] records `(bench name, structural hash, wall ms)` as
//! one JSONL line. The committed `BENCH_HISTORY.jsonl` is regenerated
//! alongside the `BENCH_*.json` files; [`gate`] fails when a current
//! report's hash disagrees with history (structural regression) or, when a
//! growth bound is given, when its wall time grew past `N%` (used in CI
//! between two same-machine runs, never across machines).

use std::fmt::Write as _;

/// Markers of host-measurement lines excluded from the structural hash.
/// Mirrors (and supersets) the `grep -v` filters CI's byte-compares use:
/// a line containing any of these is not structural.
pub const NONSTRUCTURAL_MARKERS: [&str; 13] = [
    "wall_s", // includes sweep_wall_s
    "wall_ms",
    "gflops",
    "gops",
    "gmacs", // integer-GEMM throughput (GMAC/s)
    "gbs",   // data-movement throughput (GB/s)
    "speedup",
    "simd_dispatch",
    "lanes",
    "host_cores",
    "acc_f32", // float-path accuracy rides SIMD dispatch ULPs
    "rps",     // serving throughput
    "lat_us",  // serving latency quantiles
];

/// Whether a report line is structural (participates in the hash).
pub fn is_structural(line: &str) -> bool {
    !NONSTRUCTURAL_MARKERS.iter().any(|m| line.contains(m))
}

/// FNV-1a (64-bit) over the structural lines of a bench report, each line
/// terminated by `\n` so line boundaries are part of the fingerprint.
pub fn structural_hash(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for line in text.lines().filter(|l| is_structural(l)) {
        for &b in line.as_bytes() {
            step(b);
        }
        step(b'\n');
    }
    h
}

/// First wall-clock reading in a report (seconds), scanning for the
/// benches' dedicated `"wall_s"`/`"sweep_wall_s"` lines. `None` when the
/// report carries no wall line.
pub fn wall_of(text: &str) -> Option<f64> {
    for line in text.lines() {
        if let Some(pos) = line.find("wall_s\"") {
            let tail = &line[pos + "wall_s\"".len()..];
            let num: String = tail
                .chars()
                .skip_while(|c| *c == ':' || c.is_whitespace())
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            if let Ok(v) = num.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

/// One bench's trajectory record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Bench name (e.g. `"fleet"` — the `BENCH_<name>.json` stem).
    pub name: String,
    /// Structural hash of the report.
    pub hash: u64,
    /// Wall clock in milliseconds (rounded), 0 when the report has none.
    pub wall_ms: u64,
}

impl HistoryEntry {
    /// Fingerprints one report body.
    pub fn of(name: &str, report_text: &str) -> Self {
        Self {
            name: name.to_string(),
            hash: structural_hash(report_text),
            wall_ms: wall_of(report_text).map(|s| (s * 1e3).round() as u64).unwrap_or(0),
        }
    }
}

/// Renders entries as JSONL, one object per line, sorted by name so the
/// committed file is canonical.
pub fn render_history(entries: &[HistoryEntry]) -> String {
    let mut sorted: Vec<&HistoryEntry> = entries.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    for e in sorted {
        let _ = writeln!(
            out,
            "{{\"bench\": \"{}\", \"structural_hash\": \"{:016x}\", \"wall_ms\": {}}}",
            e.name, e.hash, e.wall_ms
        );
    }
    out
}

/// Parses a history JSONL back. Tolerant of blank lines; a malformed line
/// is an error (the file is machine-written). When a bench appears more
/// than once the **last** line wins — appends supersede.
pub fn parse_history(text: &str) -> Result<Vec<HistoryEntry>, String> {
    fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat).ok_or_else(|| format!("missing {key}: {line}"))?;
        let rest = line[start + pat.len()..].trim_start();
        let end = rest.find([',', '}']).ok_or_else(|| format!("unterminated {key}: {line}"))?;
        Ok(rest[..end].trim().trim_matches('"'))
    }
    let mut out: Vec<HistoryEntry> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let name = field(line, "bench")?.to_string();
        let hash = u64::from_str_radix(field(line, "structural_hash")?, 16)
            .map_err(|e| format!("bad hash on {line}: {e}"))?;
        let wall_ms = field(line, "wall_ms")?
            .parse::<u64>()
            .map_err(|e| format!("bad wall_ms on {line}: {e}"))?;
        if let Some(prev) = out.iter_mut().find(|e| e.name == name) {
            *prev = HistoryEntry { name, hash, wall_ms };
        } else {
            out.push(HistoryEntry { name, hash, wall_ms });
        }
    }
    Ok(out)
}

/// The regression gate. For every current entry with a recorded history:
///
/// * the structural hash must match exactly — a mismatch is a structural
///   regression (determinism break or deliberate format change; the fix
///   for the latter is re-recording the history);
/// * when `max_wall_growth_pct` is `Some(n)`, wall time must not exceed
///   `history · (100 + n) / 100` (integer arithmetic). Only meaningful
///   between runs on the same machine.
///
/// Benches absent from history (new benches) and history entries absent
/// from `current` pass. Returns all violations, not just the first.
pub fn gate(
    history: &[HistoryEntry],
    current: &[HistoryEntry],
    max_wall_growth_pct: Option<u64>,
) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    for cur in current {
        let Some(old) = history.iter().find(|e| e.name == cur.name) else {
            continue;
        };
        if old.hash != cur.hash {
            violations.push(format!(
                "{}: structural hash changed {:016x} -> {:016x} \
                 (determinism break or un-recorded format change)",
                cur.name, old.hash, cur.hash
            ));
        }
        if let Some(pct) = max_wall_growth_pct {
            let bound = old.wall_ms as u128 * (100 + pct) as u128 / 100;
            if cur.wall_ms as u128 > bound && old.wall_ms > 0 {
                violations.push(format!(
                    "{}: wall time grew {} ms -> {} ms (> {pct}% growth bound)",
                    cur.name, old.wall_ms, cur.wall_ms
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str =
        "{\n  \"bench\": \"toy\",\n  \"wall_s\": 1.250,\n  \"rows\": [1, 2, 3]\n}\n";

    #[test]
    fn hash_ignores_host_measurement_lines() {
        let faster = REPORT.replace("1.250", "0.010");
        assert_eq!(structural_hash(REPORT), structural_hash(&faster));
        let regressed = REPORT.replace("[1, 2, 3]", "[1, 2, 4]");
        assert_ne!(structural_hash(REPORT), structural_hash(&regressed));
    }

    #[test]
    fn wall_is_extracted_in_seconds() {
        assert_eq!(wall_of(REPORT), Some(1.25));
        assert_eq!(wall_of("{\"sweep_wall_s\": 0.034}"), Some(0.034));
        assert_eq!(wall_of("{\"rows\": []}"), None);
        assert_eq!(HistoryEntry::of("toy", REPORT).wall_ms, 1250);
    }

    #[test]
    fn history_round_trips_and_last_line_wins() {
        let entries = vec![
            HistoryEntry { name: "fleet".into(), hash: 0xdead_beef, wall_ms: 42 },
            HistoryEntry { name: "abl".into(), hash: 7, wall_ms: 0 },
        ];
        let text = render_history(&entries);
        assert!(text.lines().next().unwrap().contains("\"abl\""), "canonical order is by name");
        let parsed = parse_history(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed.contains(&entries[0]) && parsed.contains(&entries[1]));

        let appended = format!(
            "{text}{{\"bench\": \"fleet\", \"structural_hash\": \"{:016x}\", \"wall_ms\": 9}}\n",
            11u64
        );
        let latest = parse_history(&appended).unwrap();
        let fleet = latest.iter().find(|e| e.name == "fleet").unwrap();
        assert_eq!((fleet.hash, fleet.wall_ms), (11, 9), "append supersedes");
    }

    #[test]
    fn gate_catches_hash_and_wall_regressions() {
        let old = vec![HistoryEntry { name: "toy".into(), hash: 1, wall_ms: 100 }];
        let same = vec![HistoryEntry { name: "toy".into(), hash: 1, wall_ms: 120 }];
        assert!(gate(&old, &same, None).is_ok());
        assert!(gate(&old, &same, Some(50)).is_ok());
        assert!(gate(&old, &same, Some(10)).is_err(), "20% growth past a 10% bound");

        let changed = vec![HistoryEntry { name: "toy".into(), hash: 2, wall_ms: 100 }];
        let errs = gate(&old, &changed, None).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("structural hash changed"));

        let unknown = vec![HistoryEntry { name: "new".into(), hash: 9, wall_ms: 1 }];
        assert!(gate(&old, &unknown, Some(0)).is_ok(), "new benches pass until recorded");
    }
}
