//! Streaming, mergeable, byte-reproducible aggregators.
//!
//! Two consumers share these: fleet campaigns reduce millions of
//! per-device metrics without ever holding them (each shard folds its
//! devices into a [`StreamStat`] — count / sum / min / max plus a
//! sub-bucketed log₂ histogram — and shard results are merged pairwise),
//! and the serving front end keeps a rolling [`LogHist`] of per-request
//! service costs for its deterministic p99 admission estimate. Everything is integer arithmetic —
//! `u64` counts, `u128` sums, histogram bucket counts — so every operation
//! is *exactly* associative and commutative. That is the whole
//! reproducibility argument: any partition of the device population into
//! shards, folded in any grouping (but a fixed per-cell shard order),
//! produces bit-identical aggregates, so reports are byte-identical at any
//! thread count and any shard size.
//!
//! Percentiles come from the histogram: with [`SUB_BITS`] = 4, every
//! octave is split into 16 sub-buckets, bounding the relative quantile
//! error at 2⁻⁴ ≈ 6 % while keeping a histogram at ~7.6 KB — memory stays
//! O(shards), not O(devices).

/// Sub-bucket bits per octave: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 4;

const SUB: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB as u64) - 1;

/// Total bucket count: values below `2^SUB_BITS` get exact buckets, each
/// further octave contributes `2^SUB_BITS` sub-buckets up to `u64::MAX`.
pub const BUCKETS: usize = (65 - SUB_BITS as usize) << SUB_BITS;

/// Log₂ histogram over `u64` values with linear sub-buckets.
///
/// Merging two histograms is element-wise `u64` addition — exactly
/// associative and commutative, the property the shard-invariance
/// guarantee rests on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    buckets: Vec<u64>,
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: vec![0u64; BUCKETS] }
    }

    /// Bucket index of `v`: exact below `2^SUB_BITS`, then the top
    /// `SUB_BITS` bits after the leading one select the sub-bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) & SUB_MASK;
        ((((exp - SUB_BITS) as usize) + 1) << SUB_BITS) + sub as usize
    }

    /// Smallest value that lands in bucket `idx` (the bucket's lower
    /// bound); percentile queries report this value.
    pub fn bucket_floor(idx: usize) -> u64 {
        let block = idx >> SUB_BITS;
        if block == 0 {
            return idx as u64;
        }
        let sub = (idx as u64) & SUB_MASK;
        let exp = (block as u32 - 1) + SUB_BITS;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Element-wise merge — the shard fold.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// Total recorded count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Lower bound of the bucket holding the `q_ppm`-quantile value
    /// (q in parts-per-million), using the nearest-rank rule
    /// `rank = floor(q · (n − 1) / 10⁶)` in pure integer arithmetic.
    ///
    /// # Bucket-floor rounding contract
    ///
    /// The reported value is [`Self::bucket_floor`] of the bucket holding
    /// the rank-selected element — i.e. quantiles **round down to the
    /// bucket boundary**, never up, so the result is always `<=` the exact
    /// nearest-rank value and always a representable bucket floor:
    ///
    /// * values below `2^SUB_BITS` have exact single-value buckets, so
    ///   quantiles of small counters (power cycles, retries) are exact;
    /// * above that, the relative rounding error is `< 2^-SUB_BITS`
    ///   (one sub-bucket of the value's octave);
    /// * `q_ppm = 0` reports the minimum's bucket floor and
    ///   `q_ppm = 1_000_000` the maximum's; `q_ppm > 1_000_000` is clamped
    ///   to `1_000_000`;
    /// * an empty histogram reports `0`.
    pub fn quantile_ppm(&self, q_ppm: u64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (q_ppm.min(1_000_000) as u128 * (n - 1) as u128 / 1_000_000) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_floor(idx);
            }
        }
        Self::bucket_floor(BUCKETS - 1)
    }
}

/// Streaming summary of one integer metric: count, sum, min, max, and a
/// [`LogHist`] for percentiles. All fields merge exactly, so a fold over
/// any sharding of the input yields identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStat {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum (u128: 2⁶⁴ values of up to 2⁶⁴ cannot overflow).
    pub sum: u128,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
    /// Log₂ histogram of the recorded values.
    pub hist: LogHist,
}

impl Default for StreamStat {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamStat {
    /// An empty summary.
    pub fn new() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, hist: LogHist::new() }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.hist.record(v);
    }

    /// Merges another summary in — exact in every field.
    pub fn merge(&mut self, other: &StreamStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.hist.merge(&other.hist);
    }

    /// Integer mean (floor); 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// `min` clamped for display (0 when empty).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Histogram quantile in parts-per-million (see
    /// [`LogHist::quantile_ppm`]).
    pub fn quantile_ppm(&self, q_ppm: u64) -> u64 {
        self.hist.quantile_ppm(q_ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0usize;
        for &v in &[0u64, 1, 15, 16, 17, 255, 256, 1 << 20, u64::MAX / 2, u64::MAX] {
            let b = LogHist::bucket_of(v);
            assert!(b >= prev, "bucket order broke at {v}");
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            prev = b;
        }
        assert_eq!(LogHist::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_floor_is_the_smallest_member() {
        for idx in 0..BUCKETS {
            let floor = LogHist::bucket_floor(idx);
            assert_eq!(LogHist::bucket_of(floor), idx, "floor of bucket {idx} maps back");
            if floor > 0 {
                assert!(LogHist::bucket_of(floor - 1) < idx, "floor-1 must fall below");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Below 2^SUB_BITS every value has its own bucket, so quantiles on
        // small counters (power cycles, retries) are exact.
        let mut h = LogHist::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_ppm(0), 0);
        assert_eq!(h.quantile_ppm(1_000_000), SUB as u64 - 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHist::new();
        for q in [0u64, 500_000, 1_000_000, u64::MAX] {
            assert_eq!(h.quantile_ppm(q), 0, "q={q}");
        }
        assert_eq!(h.count(), 0);
        let s = StreamStat::new();
        assert_eq!((s.quantile_ppm(990_000), s.mean(), s.min_or_zero()), (0, 0, 0));
    }

    #[test]
    fn single_saturating_value_reports_the_top_bucket_floor() {
        // u64::MAX lands in the final bucket; every quantile of a
        // single-value histogram is that bucket's floor (<= the value).
        let mut h = LogHist::new();
        h.record(u64::MAX);
        let floor = LogHist::bucket_floor(BUCKETS - 1);
        assert!(floor > u64::MAX / 2, "top bucket floor must be in the upper half of u64");
        for q in [0u64, 1, 500_000, 999_999, 1_000_000] {
            assert_eq!(h.quantile_ppm(q), floor, "q={q}");
        }
    }

    #[test]
    fn extreme_quantiles_hit_min_and_max_buckets() {
        let mut h = LogHist::new();
        for &v in &[3u64, 900, 70_000] {
            h.record(v);
        }
        assert_eq!(h.quantile_ppm(0), 3, "q=0 is the minimum (exact: small bucket)");
        let top = h.quantile_ppm(1_000_000);
        assert_eq!(LogHist::bucket_of(top), LogHist::bucket_of(70_000), "q=1e6 is the maximum");
        assert!(top <= 70_000, "bucket-floor rounding never rounds up");
        // q past the ppm scale clamps to the maximum, not beyond
        assert_eq!(h.quantile_ppm(2_000_000), top);
    }

    #[test]
    fn quantiles_track_nearest_rank_within_bucket_resolution() {
        let mut h = LogHist::new();
        let vals: Vec<u64> = (0..1000u64).map(|i| i * i + 7).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0u64, 250_000, 500_000, 900_000, 990_000, 1_000_000] {
            let rank = (q as u128 * (sorted.len() as u128 - 1) / 1_000_000) as usize;
            let exact = sorted[rank];
            let approx = h.quantile_ppm(q);
            // the reported value is the lower bound of the exact value's bucket
            assert!(approx <= exact, "q={q}: {approx} > exact {exact}");
            assert_eq!(LogHist::bucket_of(approx), LogHist::bucket_of(exact), "q={q}");
        }
    }

    proptest! {
        #[test]
        fn merge_equals_sequential_fold(vals in prop::collection::vec(0u64..1u64 << 48, 1..200),
                                        split in 0usize..200) {
            let split = split % vals.len();
            let mut whole = StreamStat::new();
            for &v in &vals { whole.record(v); }
            let mut left = StreamStat::new();
            let mut right = StreamStat::new();
            for &v in &vals[..split] { left.record(v); }
            for &v in &vals[split..] { right.record(v); }
            left.merge(&right);
            prop_assert_eq!(&left, &whole);
        }

        #[test]
        fn merge_is_commutative(a in prop::collection::vec(0u64..1u64 << 32, 0..100),
                                b in prop::collection::vec(0u64..1u64 << 32, 0..100)) {
            let stat = |vals: &[u64]| {
                let mut s = StreamStat::new();
                for &v in vals { s.record(v); }
                s
            };
            let mut ab = stat(&a);
            ab.merge(&stat(&b));
            let mut ba = stat(&b);
            ba.merge(&stat(&a));
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn bucket_roundtrip(v in any::<u64>()) {
            let idx = LogHist::bucket_of(v);
            prop_assert!(idx < BUCKETS);
            prop_assert!(LogHist::bucket_floor(idx) <= v);
            if idx + 1 < BUCKETS {
                prop_assert!(LogHist::bucket_floor(idx + 1) > v);
            }
        }
    }
}
