//! Leveled stderr logger controlled by the `IPRUNE_LOG` environment
//! variable (`error|warn|info|debug|trace|off`, default `info`).
//!
//! All human-oriented narration goes to **stderr**, keeping stdout clean
//! for machine-readable artifacts (`BENCH_*.json`). The level is read
//! once, on first use; lines look like `[iprune info bench] message`.
//!
//! ```
//! iprune_obs::log_info!("bench", "ran {} apps", 3);
//! ```

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or correctness-relevant problems.
    Error,
    /// Suspicious conditions the run survives.
    Warn,
    /// Progress narration (the default).
    Info,
    /// Per-step detail.
    Debug,
    /// Firehose.
    Trace,
}

impl Level {
    /// Lower-case name as printed in log lines.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// The maximum enabled level, `None` when logging is off entirely.
fn max_level() -> Option<Level> {
    static MAX: OnceLock<Option<Level>> = OnceLock::new();
    *MAX.get_or_init(|| match std::env::var("IPRUNE_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => None,
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => Some(Level::Info),
        },
        Err(_) => Some(Level::Info),
    })
}

/// Whether messages at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Writes one formatted line to stderr if `level` is enabled.
///
/// Prefer the [`log_info!`](crate::log_info)-family macros, which skip
/// argument formatting when the level is disabled.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("[iprune {} {}] {}", level.name(), target, args);
    }
}

/// Logs at [`Level::Error`]: `log_error!("target", "fmt", args...)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`]: `log_warn!("target", "fmt", args...)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`]: `log_info!("target", "fmt", args...)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`]: `log_debug!("target", "fmt", args...)`.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`]: `log_trace!("target", "fmt", args...)`.
#[macro_export]
macro_rules! log_trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::Warn.name(), "warn");
    }

    #[test]
    fn default_level_is_info() {
        // The env var is unset in the test environment, so Info is on and
        // Debug is off.
        if std::env::var("IPRUNE_LOG").is_err() {
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Info));
            assert!(!enabled(Level::Debug));
        }
    }

    #[test]
    fn macros_compile_at_every_level() {
        crate::log_error!("test", "e {}", 1);
        crate::log_warn!("test", "w");
        crate::log_info!("test", "i");
        crate::log_debug!("test", "d");
        crate::log_trace!("test", "t");
    }
}
