//! The trace event taxonomy.
//!
//! Events fall into three groups:
//!
//! * **Engine scope markers**, emitted by the HAWAII⁺ executor:
//!   [`TraceEvent::LayerStart`]/[`TraceEvent::LayerEnd`] bracket one graph
//!   operation, [`TraceEvent::TileStart`]/[`TraceEvent::TileCommit`] mark
//!   output-tile attempts inside a layer.
//! * **Device activity spans**, emitted by the simulator with the *exact*
//!   durations it adds to `SimStats` — this is what makes the attribution
//!   audit an equality check rather than an estimate.
//! * **Power events**: a failure (natural or injected), the recharge span
//!   while the device is off, and the reboot span after it.
//!
//! All timestamps (`t`) and durations are simulated seconds. For span-like
//! events `t` is the span's *start*; for instants it is the event time.

/// One structured trace event. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The executor enters graph operation `op` (its index in the model
    /// graph). `label` names it for humans, e.g. `conv0` or `maxpool`.
    LayerStart {
        /// Event time (s).
        t: f64,
        /// Graph-operation index.
        op: u32,
        /// Human-readable operation label.
        label: String,
    },
    /// The executor leaves graph operation `op`.
    LayerEnd {
        /// Event time (s).
        t: f64,
        /// Graph-operation index.
        op: u32,
    },
    /// One output-tile attempt begins (row block `rb` over spatial strip
    /// starting at `strip`). Re-emitted on every tile re-execution.
    TileStart {
        /// Event time (s).
        t: f64,
        /// Row-block index within the layer.
        rb: u32,
        /// First spatial position of the strip.
        strip: u32,
    },
    /// The tile's outputs were written back.
    TileCommit {
        /// Event time (s).
        t: f64,
        /// Row-block index within the layer.
        rb: u32,
        /// First spatial position of the strip.
        strip: u32,
    },
    /// One accelerator-job attempt is submitted.
    JobStart {
        /// Event time (s) — the commit frontier when the attempt starts.
        t: f64,
        /// Attempt index (committed + failed so far).
        index: u64,
        /// MACs the job will perform.
        macs: u64,
        /// Progress-preservation bytes the job will write.
        preserve_bytes: u64,
        /// Wall-clock window of the attempt (s).
        window_s: f64,
    },
    /// The job's outputs and footprint reached NVM. Carries the exact
    /// per-class busy times the simulator credited to `SimStats`.
    JobCommit {
        /// Commit time (s) — end of the preservation write.
        t: f64,
        /// Attempt index.
        index: u64,
        /// Start of the LEA+CPU busy span (s).
        lea_start: f64,
        /// Committed LEA busy time (s).
        lea_s: f64,
        /// Committed CPU busy time (s).
        cpu_s: f64,
        /// Start of the DMA preservation write (s).
        write_start: f64,
        /// Committed NVM write busy time (s).
        write_s: f64,
        /// Preservation bytes written.
        write_bytes: u64,
        /// MACs committed.
        macs: u64,
    },
    /// The job attempt was cut by a power failure before its footprint
    /// committed. The lost time is carried by the paired
    /// [`TraceEvent::PowerFail`].
    JobAbort {
        /// Failure time (s).
        t: f64,
        /// Attempt index.
        index: u64,
        /// Whether the cut was injected by a fault hook.
        injected: bool,
        /// Fraction of the preservation write durable before the cut.
        preserve_frac: f64,
    },
    /// A committed blocking NVM read (one DMA command).
    NvmRead {
        /// Span start (s).
        t: f64,
        /// Busy time (s).
        dur: f64,
        /// Bytes transferred.
        bytes: u64,
    },
    /// A committed blocking NVM write outside progress preservation.
    NvmWrite {
        /// Span start (s).
        t: f64,
        /// Busy time (s).
        dur: f64,
        /// Bytes transferred.
        bytes: u64,
    },
    /// Committed blocking CPU work.
    CpuWork {
        /// Span start (s).
        t: f64,
        /// Busy time (s).
        dur: f64,
        /// CPU cycles.
        cycles: u64,
    },
    /// A progress-recovery NVM re-fetch (accounted as recovery time, not
    /// read time).
    RecoveryRead {
        /// Span start (s).
        t: f64,
        /// Busy time (s).
        dur: f64,
        /// Bytes re-fetched.
        bytes: u64,
    },
    /// Power failed. `wasted_s` is the busy time lost with the volatile
    /// state (it will be re-executed).
    PowerFail {
        /// Failure time (s).
        t: f64,
        /// Whether a fault hook forced the cut.
        injected: bool,
        /// Interrupted busy time lost to the cut (s).
        wasted_s: f64,
    },
    /// The device is off, recharging the capacitor.
    Recharge {
        /// Span start (s) — the failure time.
        t: f64,
        /// Off time until the capacitor refills (s).
        dur: f64,
    },
    /// Reboot after recharge (accounted as recovery time).
    Reboot {
        /// Span start (s).
        t: f64,
        /// Reboot duration (s).
        dur: f64,
    },
}

impl TraceEvent {
    /// The event's kind tag, used by the exporters and the JSONL parser.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::LayerStart { .. } => "layer_start",
            TraceEvent::LayerEnd { .. } => "layer_end",
            TraceEvent::TileStart { .. } => "tile_start",
            TraceEvent::TileCommit { .. } => "tile_commit",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobCommit { .. } => "job_commit",
            TraceEvent::JobAbort { .. } => "job_abort",
            TraceEvent::NvmRead { .. } => "nvm_read",
            TraceEvent::NvmWrite { .. } => "nvm_write",
            TraceEvent::CpuWork { .. } => "cpu_work",
            TraceEvent::RecoveryRead { .. } => "recovery_read",
            TraceEvent::PowerFail { .. } => "power_fail",
            TraceEvent::Recharge { .. } => "recharge",
            TraceEvent::Reboot { .. } => "reboot",
        }
    }

    /// The event's timestamp (span start for spans), simulated seconds.
    pub fn t(&self) -> f64 {
        match *self {
            TraceEvent::LayerStart { t, .. }
            | TraceEvent::LayerEnd { t, .. }
            | TraceEvent::TileStart { t, .. }
            | TraceEvent::TileCommit { t, .. }
            | TraceEvent::JobStart { t, .. }
            | TraceEvent::JobCommit { t, .. }
            | TraceEvent::JobAbort { t, .. }
            | TraceEvent::NvmRead { t, .. }
            | TraceEvent::NvmWrite { t, .. }
            | TraceEvent::CpuWork { t, .. }
            | TraceEvent::RecoveryRead { t, .. }
            | TraceEvent::PowerFail { t, .. }
            | TraceEvent::Recharge { t, .. }
            | TraceEvent::Reboot { t, .. } => t,
        }
    }
}
