//! Trace exporters: Chrome `trace_event` JSON and round-trippable JSONL.
//!
//! Both formats are hand-rolled (the workspace has no serde) and
//! deterministic: floats are written with Rust's shortest-round-trip
//! formatting, so identical event streams serialize to identical bytes,
//! and [`parse_jsonl`] recovers the exact `f64`/`u64` values.
//!
//! The Chrome export follows the [Trace Event Format] (`ph: "X"` complete
//! spans, `"B"`/`"E"` scoped layers, `"i"` instants, `"M"` metadata) with
//! timestamps in microseconds, and opens directly in `chrome://tracing` or
//! Perfetto. Tracks: engine (layers/tiles), LEA, DMA/NVM, CPU, power/EMU.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::TraceEvent;
use std::fmt::Write as _;

/// Seconds → Chrome trace microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

const TID_ENGINE: u32 = 1;
const TID_LEA: u32 = 2;
const TID_NVM: u32 = 3;
const TID_CPU: u32 = 4;
const TID_POWER: u32 = 5;

fn push_meta(out: &mut String, tid: u32, name: &str) {
    let _ = writeln!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}},"
    );
}

fn push_span(out: &mut String, name: &str, cat: &str, tid: u32, t: f64, dur: f64, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{tid}",
        us(t),
        us(dur)
    );
    if !args.is_empty() {
        let _ = write!(out, ",\"args\":{{{args}}}");
    }
    out.push_str("},\n");
}

fn push_instant(out: &mut String, name: &str, cat: &str, tid: u32, t: f64, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
         \"pid\":1,\"tid\":{tid}",
        us(t)
    );
    if !args.is_empty() {
        let _ = write!(out, ",\"args\":{{{args}}}");
    }
    out.push_str("},\n");
}

/// Serializes a trace to Chrome `trace_event` JSON.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 512);
    out.push_str("{\"traceEvents\":[\n");
    push_meta(&mut out, TID_ENGINE, "engine (layers/tiles)");
    push_meta(&mut out, TID_LEA, "LEA accelerator");
    push_meta(&mut out, TID_NVM, "DMA / NVM");
    push_meta(&mut out, TID_CPU, "CPU");
    push_meta(&mut out, TID_POWER, "power / EMU");
    for ev in events {
        match ev {
            TraceEvent::LayerStart { t, op, label } => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"layer\",\"ph\":\"B\",\"ts\":{},\
                     \"pid\":1,\"tid\":{TID_ENGINE},\"args\":{{\"op\":{op}}}}},",
                    escape(label),
                    us(*t)
                );
            }
            TraceEvent::LayerEnd { t, op } => {
                let _ = writeln!(
                    out,
                    "{{\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{TID_ENGINE},\
                     \"args\":{{\"op\":{op}}}}},",
                    us(*t)
                );
            }
            TraceEvent::TileStart { t, rb, strip } => {
                push_instant(
                    &mut out,
                    "tile_start",
                    "tile",
                    TID_ENGINE,
                    *t,
                    &format!("\"rb\":{rb},\"strip\":{strip}"),
                );
            }
            TraceEvent::TileCommit { t, rb, strip } => {
                push_instant(
                    &mut out,
                    "tile_commit",
                    "tile",
                    TID_ENGINE,
                    *t,
                    &format!("\"rb\":{rb},\"strip\":{strip}"),
                );
            }
            TraceEvent::JobStart { .. } => {} // JSONL only: one per attempt, too dense to render
            TraceEvent::JobCommit {
                index,
                lea_start,
                lea_s,
                cpu_s,
                write_start,
                write_s,
                write_bytes,
                macs,
                ..
            } => {
                if lea_s + cpu_s > 0.0 {
                    push_span(
                        &mut out,
                        "job",
                        "lea",
                        TID_LEA,
                        *lea_start,
                        lea_s + cpu_s,
                        &format!("\"index\":{index},\"macs\":{macs}"),
                    );
                }
                if *write_s > 0.0 {
                    push_span(
                        &mut out,
                        "preserve",
                        "nvm_write",
                        TID_NVM,
                        *write_start,
                        *write_s,
                        &format!("\"index\":{index},\"bytes\":{write_bytes}"),
                    );
                }
            }
            TraceEvent::JobAbort { t, index, injected, preserve_frac } => {
                push_instant(
                    &mut out,
                    "job_abort",
                    "lea",
                    TID_LEA,
                    *t,
                    &format!(
                        "\"index\":{index},\"injected\":{injected},\
                         \"preserve_frac\":{preserve_frac}"
                    ),
                );
            }
            TraceEvent::NvmRead { t, dur, bytes } => {
                push_span(
                    &mut out,
                    "read",
                    "nvm_read",
                    TID_NVM,
                    *t,
                    *dur,
                    &format!("\"bytes\":{bytes}"),
                );
            }
            TraceEvent::NvmWrite { t, dur, bytes } => {
                push_span(
                    &mut out,
                    "write",
                    "nvm_write",
                    TID_NVM,
                    *t,
                    *dur,
                    &format!("\"bytes\":{bytes}"),
                );
            }
            TraceEvent::CpuWork { t, dur, cycles } => {
                push_span(
                    &mut out,
                    "cpu",
                    "cpu",
                    TID_CPU,
                    *t,
                    *dur,
                    &format!("\"cycles\":{cycles}"),
                );
            }
            TraceEvent::RecoveryRead { t, dur, bytes } => {
                push_span(
                    &mut out,
                    "recovery_read",
                    "recovery",
                    TID_NVM,
                    *t,
                    *dur,
                    &format!("\"bytes\":{bytes}"),
                );
            }
            TraceEvent::PowerFail { t, injected, wasted_s } => {
                push_instant(
                    &mut out,
                    "power_fail",
                    "power",
                    TID_POWER,
                    *t,
                    &format!("\"injected\":{injected},\"wasted_s\":{wasted_s}"),
                );
            }
            TraceEvent::Recharge { t, dur } => {
                push_span(&mut out, "recharge", "power", TID_POWER, *t, *dur, "");
            }
            TraceEvent::Reboot { t, dur } => {
                push_span(&mut out, "reboot", "power", TID_POWER, *t, *dur, "");
            }
        }
    }
    // close the list without a trailing comma
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Serializes a trace to JSONL: one flat JSON object per line, first key
/// `kind`. Inverse of [`parse_jsonl`].
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for ev in events {
        let _ = write!(out, "{{\"kind\":\"{}\",\"t\":{}", ev.kind(), ev.t());
        match ev {
            TraceEvent::LayerStart { label, op, .. } => {
                let _ = write!(out, ",\"op\":{op},\"label\":\"{}\"", escape(label));
            }
            TraceEvent::LayerEnd { op, .. } => {
                let _ = write!(out, ",\"op\":{op}");
            }
            TraceEvent::TileStart { rb, strip, .. } | TraceEvent::TileCommit { rb, strip, .. } => {
                let _ = write!(out, ",\"rb\":{rb},\"strip\":{strip}");
            }
            TraceEvent::JobStart { index, macs, preserve_bytes, window_s, .. } => {
                let _ = write!(
                    out,
                    ",\"index\":{index},\"macs\":{macs},\"preserve_bytes\":{preserve_bytes},\
                     \"window_s\":{window_s}"
                );
            }
            TraceEvent::JobCommit {
                index,
                lea_start,
                lea_s,
                cpu_s,
                write_start,
                write_s,
                write_bytes,
                macs,
                ..
            } => {
                let _ = write!(
                    out,
                    ",\"index\":{index},\"lea_start\":{lea_start},\"lea_s\":{lea_s},\
                     \"cpu_s\":{cpu_s},\"write_start\":{write_start},\"write_s\":{write_s},\
                     \"write_bytes\":{write_bytes},\"macs\":{macs}"
                );
            }
            TraceEvent::JobAbort { index, injected, preserve_frac, .. } => {
                let _ = write!(
                    out,
                    ",\"index\":{index},\"injected\":{injected},\"preserve_frac\":{preserve_frac}"
                );
            }
            TraceEvent::NvmRead { dur, bytes, .. }
            | TraceEvent::NvmWrite { dur, bytes, .. }
            | TraceEvent::RecoveryRead { dur, bytes, .. } => {
                let _ = write!(out, ",\"dur\":{dur},\"bytes\":{bytes}");
            }
            TraceEvent::CpuWork { dur, cycles, .. } => {
                let _ = write!(out, ",\"dur\":{dur},\"cycles\":{cycles}");
            }
            TraceEvent::PowerFail { injected, wasted_s, .. } => {
                let _ = write!(out, ",\"injected\":{injected},\"wasted_s\":{wasted_s}");
            }
            TraceEvent::Recharge { dur, .. } | TraceEvent::Reboot { dur, .. } => {
                let _ = write!(out, ",\"dur\":{dur}");
            }
        }
        out.push_str("}\n");
    }
    out
}

/// JSONL parse failure, with the 1-based offending line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace JSONL line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One parsed field value. Numbers keep their source token so integer
/// fields round-trip without an `f64` detour.
enum Value {
    Num(String),
    Str(String),
    Bool(bool),
}

/// Parses one flat JSON object (no nesting) into key/value pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let bytes = inner.as_bytes();
    let mut fields = Vec::new();
    let mut i = 0usize;

    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err("expected '\"'".into());
        }
        *i += 1;
        let mut out = String::new();
        while *i < bytes.len() {
            match bytes[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'u') => {
                            let hex = inner
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                            *i += 4;
                        }
                        _ => return Err("unsupported escape".into()),
                    }
                    *i += 1;
                }
                _ => {
                    // multi-byte UTF-8 is copied through byte by byte via char
                    let ch_start = *i;
                    let ch = inner[ch_start..].chars().next().ok_or("bad utf-8")?;
                    out.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".into())
    };

    while i < bytes.len() {
        let key = parse_string(&mut i)?;
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key `{key}`"));
        }
        i += 1;
        let value = match bytes.get(i) {
            Some(b'"') => Value::Str(parse_string(&mut i)?),
            Some(b't') if inner[i..].starts_with("true") => {
                i += 4;
                Value::Bool(true)
            }
            Some(b'f') if inner[i..].starts_with("false") => {
                i += 5;
                Value::Bool(false)
            }
            Some(_) => {
                let start = i;
                while i < bytes.len() && bytes[i] != b',' {
                    i += 1;
                }
                Value::Num(inner[start..i].trim().to_string())
            }
            None => return Err(format!("missing value for key `{key}`")),
        };
        fields.push((key, value));
        if bytes.get(i) == Some(&b',') {
            i += 1;
        }
    }
    Ok(fields)
}

struct Fields(Vec<(String, Value)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Value, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Value::Num(s) => s.parse::<f64>().map_err(|_| format!("field `{key}` is not a number")),
            _ => Err(format!("field `{key}` is not a number")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            Value::Num(s) => {
                s.parse::<u64>().map_err(|_| format!("field `{key}` is not an integer"))
            }
            _ => Err(format!("field `{key}` is not an integer")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        self.u64(key)?.try_into().map_err(|_| format!("field `{key}` overflows u32"))
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("field `{key}` is not a bool")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            _ => Err(format!("field `{key}` is not a string")),
        }
    }
}

fn event_from_fields(f: &Fields) -> Result<TraceEvent, String> {
    let kind = f.str("kind")?;
    let t = f.f64("t")?;
    Ok(match kind {
        "layer_start" => {
            TraceEvent::LayerStart { t, op: f.u32("op")?, label: f.str("label")?.to_string() }
        }
        "layer_end" => TraceEvent::LayerEnd { t, op: f.u32("op")? },
        "tile_start" => TraceEvent::TileStart { t, rb: f.u32("rb")?, strip: f.u32("strip")? },
        "tile_commit" => TraceEvent::TileCommit { t, rb: f.u32("rb")?, strip: f.u32("strip")? },
        "job_start" => TraceEvent::JobStart {
            t,
            index: f.u64("index")?,
            macs: f.u64("macs")?,
            preserve_bytes: f.u64("preserve_bytes")?,
            window_s: f.f64("window_s")?,
        },
        "job_commit" => TraceEvent::JobCommit {
            t,
            index: f.u64("index")?,
            lea_start: f.f64("lea_start")?,
            lea_s: f.f64("lea_s")?,
            cpu_s: f.f64("cpu_s")?,
            write_start: f.f64("write_start")?,
            write_s: f.f64("write_s")?,
            write_bytes: f.u64("write_bytes")?,
            macs: f.u64("macs")?,
        },
        "job_abort" => TraceEvent::JobAbort {
            t,
            index: f.u64("index")?,
            injected: f.bool("injected")?,
            preserve_frac: f.f64("preserve_frac")?,
        },
        "nvm_read" => TraceEvent::NvmRead { t, dur: f.f64("dur")?, bytes: f.u64("bytes")? },
        "nvm_write" => TraceEvent::NvmWrite { t, dur: f.f64("dur")?, bytes: f.u64("bytes")? },
        "cpu_work" => TraceEvent::CpuWork { t, dur: f.f64("dur")?, cycles: f.u64("cycles")? },
        "recovery_read" => {
            TraceEvent::RecoveryRead { t, dur: f.f64("dur")?, bytes: f.u64("bytes")? }
        }
        "power_fail" => {
            TraceEvent::PowerFail { t, injected: f.bool("injected")?, wasted_s: f.f64("wasted_s")? }
        }
        "recharge" => TraceEvent::Recharge { t, dur: f.f64("dur")? },
        "reboot" => TraceEvent::Reboot { t, dur: f.f64("dur")? },
        other => return Err(format!("unknown event kind `{other}`")),
    })
}

/// Parses a JSONL trace produced by [`to_jsonl`]. Empty lines are skipped.
///
/// # Errors
///
/// Returns the first malformed line (1-based) and a description.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_flat_object(line).map_err(|m| ParseError { line: i + 1, message: m })?;
        let ev = event_from_fields(&Fields(fields))
            .map_err(|m| ParseError { line: i + 1, message: m })?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::LayerStart { t: 0.0, op: 0, label: "conv0".into() },
            TraceEvent::TileStart { t: 0.0, rb: 0, strip: 0 },
            TraceEvent::JobStart { t: 0.0, index: 0, macs: 64, preserve_bytes: 34, window_s: 1e-4 },
            TraceEvent::JobCommit {
                t: 1.25e-4,
                index: 0,
                lea_start: 0.0,
                lea_s: 6.4e-5,
                cpu_s: 1.5e-6,
                write_start: 6.55e-5,
                write_s: 5.95e-5,
                write_bytes: 34,
                macs: 64,
            },
            TraceEvent::JobAbort { t: 2e-4, index: 1, injected: true, preserve_frac: 0.5 },
            TraceEvent::PowerFail { t: 2e-4, injected: true, wasted_s: 7.5e-5 },
            TraceEvent::Recharge { t: 2e-4, dur: 0.013 },
            TraceEvent::Reboot { t: 0.0132, dur: 0.001 },
            TraceEvent::RecoveryRead { t: 0.0142, dur: 1e-5, bytes: 128 },
            TraceEvent::NvmRead { t: 0.015, dur: 2e-5, bytes: 2048 },
            TraceEvent::NvmWrite { t: 0.016, dur: 2e-5, bytes: 512 },
            TraceEvent::CpuWork { t: 0.017, dur: 3e-6, cycles: 48 },
            TraceEvent::TileCommit { t: 0.018, rb: 0, strip: 0 },
            TraceEvent::LayerEnd { t: 0.018, op: 0 },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, events);
        // byte-stable second serialization
        assert_eq!(to_jsonl(&parsed), text);
    }

    #[test]
    fn jsonl_label_escaping_round_trips() {
        let events = vec![TraceEvent::LayerStart { t: 0.5, op: 3, label: "we\"ird\\\n".into() }];
        let parsed = parse_jsonl(&to_jsonl(&events)).expect("parse");
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_reports_offending_line() {
        let err = parse_jsonl("{\"kind\":\"reboot\",\"t\":0,\"dur\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let err = parse_jsonl("{\"kind\":\"warp\",\"t\":0}\n").unwrap_err();
        assert!(err.message.contains("unknown event kind"));
    }

    #[test]
    fn chrome_export_is_schemaish() {
        let json = to_chrome_json(&sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        // balanced B/E layer markers
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        // spans carry non-negative microsecond timestamps
        assert!(json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ts\":-"));
    }

    #[test]
    fn chrome_export_has_no_trailing_comma() {
        let json = to_chrome_json(&sample_events());
        assert!(!json.contains(",\n]"));
        assert!(!json.contains(",]"));
    }
}
