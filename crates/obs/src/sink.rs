//! Trace sinks: where emitted events go.
//!
//! Emitters hold an `Option<SharedSink>`; with `None` installed, tracing
//! costs one branch per emission point and no event is ever constructed.
//! [`NullSink`] exists for measuring the cost of *emission itself* (event
//! construction + dynamic dispatch) separately from collection.

use crate::event::TraceEvent;
use std::sync::{Arc, Mutex};

/// Receives trace events, in emission order.
///
/// Sinks must be `Send` (simulators are created inside host worker
/// threads) and `Debug` (the simulator derives `Debug`). Implementations
/// must not reorder or drop events if they intend to feed
/// [`crate::attr::Attribution`], whose audit reconciles against the
/// simulator's aggregate statistics.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Handles one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// The shared, clonable handle emitters hold.
///
/// A plain `Arc<Mutex<..>>` rather than a channel: simulation is
/// single-threaded, so the lock is uncontended and events arrive in
/// deterministic order.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Discards every event (but still pays for constructing them) — the
/// "tracing enabled, collection free" baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// Collects events into a `Vec` for later export or attribution.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sink behind the shared handle emitters take. Keep a clone
    /// of the returned `Arc` to read the events back after the run.
    pub fn shared() -> Arc<Mutex<MemorySink>> {
        Arc::new(Mutex::new(MemorySink::new()))
    }

    /// The collected events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// Takes the events out of a shared [`MemorySink`] once the run is done.
///
/// # Panics
///
/// Panics if the sink's lock is poisoned (an emitter panicked mid-run).
pub fn drain_shared(sink: &Arc<Mutex<MemorySink>>) -> Vec<TraceEvent> {
    std::mem::take(&mut sink.lock().expect("trace sink lock").events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects_in_order() {
        let mut s = MemorySink::new();
        s.emit(&TraceEvent::Reboot { t: 0.5, dur: 0.1 });
        s.emit(&TraceEvent::Recharge { t: 1.0, dur: 2.0 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].t(), 0.5);
        assert_eq!(s.events()[1].kind(), "recharge");
    }

    #[test]
    fn shared_sink_drains() {
        let shared = MemorySink::shared();
        shared.lock().unwrap().emit(&TraceEvent::Reboot { t: 0.0, dur: 0.1 });
        let evs = drain_shared(&shared);
        assert_eq!(evs.len(), 1);
        assert!(shared.lock().unwrap().is_empty());
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.emit(&TraceEvent::Reboot { t: 0.0, dur: 0.1 });
    }
}
