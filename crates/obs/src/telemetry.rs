//! Fleet telemetry: per-device health records and exact-integer anomaly
//! detection.
//!
//! A fleet campaign compresses 100k+ devices into per-cell aggregates;
//! this module is the layer that can still point at *individual* devices.
//! Each replay emits a compact [`DeviceHealth`] record (all integers,
//! quantized at the source exactly like the fleet aggregators), a cell's
//! aggregate quantiles become a [`CellBaseline`], and [`CellFences`] turns
//! the baseline into robust outlier fences. [`classify`] then flags a
//! device with one or more [`AnomalyCause`]s using **pure integer
//! comparisons** — no floats anywhere past quantization — so flagging is
//! byte-identical at any thread count and any shard size: whether a device
//! is anomalous depends only on its own health record and its cell's
//! merged baseline, never on the execution partition.
//!
//! The module is deliberately free of fleet-crate types: `iprune-fleet`
//! produces the health records and baselines; this crate owns the
//! vocabulary so CLI surfaces (`doctor`) and reports share one taxonomy.
//! The failure half of that taxonomy mirrors the fault subsystem's
//! `RunOutcome` snake_case names (pinned by test in `iprune-fleet`).

/// Compact health record of one device's replay. Every field is an exact
/// integer produced by the fleet's quantizers (nanoseconds,
/// parts-per-million, counts), so records compare identically on every
/// host and partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Whether the inference ran to completion.
    pub completed: bool,
    /// End-to-end latency (ns). For failed devices: time simulated until
    /// the failure verdict.
    pub latency_ns: u64,
    /// Powered share of wall time (ppm).
    pub availability_ppm: u64,
    /// Power cycles suffered (every cycle ends in exactly one reboot).
    pub reboots: u64,
    /// Failed job attempts (re-executions).
    pub retries: u64,
    /// Whether the device hit the per-job retry cap (livelock verdict).
    pub livelock: bool,
    /// Longest single off-time waiting for the capacitor to refill (ns).
    pub max_stall_ns: u64,
}

impl DeviceHealth {
    /// Off-time share of wall time (ppm) — the energy-stall fraction.
    /// Exactly `1_000_000 - availability_ppm` by construction.
    pub fn energy_stall_ppm(&self) -> u64 {
        1_000_000 - self.availability_ppm.min(1_000_000)
    }
}

/// Robust per-cell baseline: the quantile floors of a cell's merged
/// aggregate, as reported by the fleet's integer `LogHist` (each value is
/// a histogram bucket floor — see `LogHist::quantile_ppm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellBaseline {
    /// p99 end-to-end latency (ns), completed devices.
    pub latency_p99_ns: u64,
    /// p99 power-cycle count.
    pub reboots_p99: u64,
    /// p99 retry count.
    pub retries_p99: u64,
    /// p99 worst single stall (ns).
    pub max_stall_p99_ns: u64,
    /// p01 availability (ppm) — the *low* tail, since low is bad.
    pub availability_p01_ppm: u64,
}

/// Fence policy: how far past the baseline a device must stray to be
/// flagged. Multipliers are integer percentages; the absolute floors stop
/// degenerate cells (e.g. a p99 of 0 reboots) from flagging every device
/// that reboots once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceConfig {
    /// Multiplier over the p99 baselines, in percent (200 = 2×).
    pub mult_pct: u64,
    /// Minimum latency fence (ns).
    pub min_latency_ns: u64,
    /// Minimum reboot fence.
    pub min_reboots: u64,
    /// Minimum retry fence.
    pub min_retries: u64,
    /// Minimum worst-stall fence (ns).
    pub min_stall_ns: u64,
    /// Absolute margin subtracted from the availability p01 (ppm).
    pub availability_margin_ppm: u64,
}

impl Default for FenceConfig {
    fn default() -> Self {
        Self {
            mult_pct: 200,
            min_latency_ns: 1_000_000, // 1 ms
            min_reboots: 4,
            min_retries: 4,
            min_stall_ns: 1_000_000,
            availability_margin_ppm: 50_000, // 5 points below the p01
        }
    }
}

/// Concrete per-cell outlier fences: a device past any fence is flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellFences {
    /// Flag when `latency_ns > latency_ns` fence.
    pub latency_ns: u64,
    /// Flag when `reboots > reboots` fence.
    pub reboots: u64,
    /// Flag when `retries > retries` fence.
    pub retries: u64,
    /// Flag when `max_stall_ns > max_stall_ns` fence.
    pub max_stall_ns: u64,
    /// Flag when `availability_ppm < availability_ppm` fence.
    pub availability_ppm: u64,
}

impl CellFences {
    /// Builds fences from a cell baseline under `cfg`: each upper fence is
    /// `max(p99 · mult_pct / 100, min_*)` in exact integer arithmetic; the
    /// availability fence is `p01 − margin`, saturating at 0 (a fence of 0
    /// never fires, since availability cannot go below 0).
    pub fn from_baseline(b: &CellBaseline, cfg: &FenceConfig) -> Self {
        let scale = |v: u64| (v as u128 * cfg.mult_pct as u128 / 100).min(u64::MAX as u128) as u64;
        Self {
            latency_ns: scale(b.latency_p99_ns).max(cfg.min_latency_ns),
            reboots: scale(b.reboots_p99).max(cfg.min_reboots),
            retries: scale(b.retries_p99).max(cfg.min_retries),
            max_stall_ns: scale(b.max_stall_p99_ns).max(cfg.min_stall_ns),
            availability_ppm: b.availability_p01_ppm.saturating_sub(cfg.availability_margin_ppm),
        }
    }
}

/// Why a device was flagged. The failure causes mirror the fault
/// subsystem's `RunOutcome` snake_case names; the outlier causes are
/// telemetry's own vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyCause {
    /// Hit the per-job retry cap — recovery livelock.
    Livelock,
    /// The energy budget can never fit an activity.
    Nontermination,
    /// Completed, but latency beyond the cell's tail fence.
    TailLatency,
    /// Completed, but power-cycled far more than the cell's tail.
    RebootStorm,
    /// Completed, but re-executed jobs far more than the cell's tail.
    RetryStorm,
    /// Completed, but spent an outlier share of wall time off, or suffered
    /// an outlier single stall.
    EnergyStall,
}

/// Number of distinct anomaly causes.
pub const N_CAUSES: usize = 6;

impl AnomalyCause {
    /// All causes, in severity order (report column order).
    pub const ALL: [AnomalyCause; N_CAUSES] = [
        AnomalyCause::Livelock,
        AnomalyCause::Nontermination,
        AnomalyCause::TailLatency,
        AnomalyCause::RebootStorm,
        AnomalyCause::RetryStorm,
        AnomalyCause::EnergyStall,
    ];

    /// Stable snake_case serialization name.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyCause::Livelock => "livelock",
            AnomalyCause::Nontermination => "nontermination",
            AnomalyCause::TailLatency => "tail_latency",
            AnomalyCause::RebootStorm => "reboot_storm",
            AnomalyCause::RetryStorm => "retry_storm",
            AnomalyCause::EnergyStall => "energy_stall",
        }
    }

    /// Index into [`Self::ALL`] (report cause-count columns).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("cause in ALL")
    }
}

impl std::fmt::Display for AnomalyCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classifies one device against its cell fences. Returns the (possibly
/// empty) cause list in [`AnomalyCause::ALL`] order; an empty list means
/// healthy. Failed devices are always anomalous (their structured outcome
/// *is* the cause); completed devices are tested against every fence with
/// pure integer comparisons.
pub fn classify(h: &DeviceHealth, fences: &CellFences) -> Vec<AnomalyCause> {
    if !h.completed {
        return vec![if h.livelock {
            AnomalyCause::Livelock
        } else {
            AnomalyCause::Nontermination
        }];
    }
    let mut causes = Vec::new();
    if h.latency_ns > fences.latency_ns {
        causes.push(AnomalyCause::TailLatency);
    }
    if h.reboots > fences.reboots {
        causes.push(AnomalyCause::RebootStorm);
    }
    if h.retries > fences.retries {
        causes.push(AnomalyCause::RetryStorm);
    }
    if h.availability_ppm < fences.availability_ppm || h.max_stall_ns > fences.max_stall_ns {
        causes.push(AnomalyCause::EnergyStall);
    }
    causes
}

/// Integer severity score for top-K ranking. Failures dominate outliers;
/// among outliers the score sums how far past each fence the device is,
/// in parts-per-million of the fence (exact integer ratios), each term
/// capped at 10¹¹ so no sum of outlier terms can reach the failure
/// floors. Ties are broken by the caller with `(cell, device)` so the
/// ranking is total and partition-independent.
pub fn severity(h: &DeviceHealth, fences: &CellFences) -> u64 {
    if !h.completed {
        return if h.livelock { 2_000_000_000_000 } else { 1_500_000_000_000 };
    }
    // ppm of the fence, exact: v * 1e6 / fence (fence >= 1 by the min_*
    // floors; availability fence may be 0 and is guarded)
    let over = |v: u64, fence: u64| {
        ((v as u128 * 1_000_000 / fence.max(1) as u128) as u64).min(10u64.pow(11))
    };
    let mut score = 0u64;
    if h.latency_ns > fences.latency_ns {
        score += over(h.latency_ns, fences.latency_ns);
    }
    if h.reboots > fences.reboots {
        score += over(h.reboots, fences.reboots);
    }
    if h.retries > fences.retries {
        score += over(h.retries, fences.retries);
    }
    if h.max_stall_ns > fences.max_stall_ns {
        score += over(h.max_stall_ns, fences.max_stall_ns);
    }
    if h.availability_ppm < fences.availability_ppm {
        score += fences.availability_ppm - h.availability_ppm;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> DeviceHealth {
        DeviceHealth {
            completed: true,
            latency_ns: 500_000_000,
            availability_ppm: 960_000,
            reboots: 2,
            retries: 2,
            livelock: false,
            max_stall_ns: 3_000_000,
        }
    }

    fn fences() -> CellFences {
        CellFences {
            latency_ns: 1_100_000_000,
            reboots: 8,
            retries: 8,
            max_stall_ns: 20_000_000,
            availability_ppm: 900_000,
        }
    }

    #[test]
    fn healthy_devices_are_not_flagged() {
        assert!(classify(&healthy(), &fences()).is_empty());
        assert_eq!(severity(&healthy(), &fences()), 0);
    }

    #[test]
    fn failures_dominate_everything() {
        let ll = DeviceHealth { completed: false, livelock: true, ..healthy() };
        let nt = DeviceHealth { completed: false, livelock: false, ..healthy() };
        assert_eq!(classify(&ll, &fences()), vec![AnomalyCause::Livelock]);
        assert_eq!(classify(&nt, &fences()), vec![AnomalyCause::Nontermination]);
        assert!(severity(&ll, &fences()) > severity(&nt, &fences()));
        let worst_outlier = DeviceHealth {
            latency_ns: u64::MAX / 2,
            reboots: 1 << 30,
            retries: 1 << 30,
            availability_ppm: 0,
            max_stall_ns: u64::MAX / 2,
            ..healthy()
        };
        assert!(severity(&nt, &fences()) > severity(&worst_outlier, &fences()));
    }

    #[test]
    fn each_fence_fires_independently() {
        let f = fences();
        let cases = [
            (DeviceHealth { latency_ns: f.latency_ns + 1, ..healthy() }, AnomalyCause::TailLatency),
            (DeviceHealth { reboots: f.reboots + 1, ..healthy() }, AnomalyCause::RebootStorm),
            (DeviceHealth { retries: f.retries + 1, ..healthy() }, AnomalyCause::RetryStorm),
            (
                DeviceHealth { max_stall_ns: f.max_stall_ns + 1, ..healthy() },
                AnomalyCause::EnergyStall,
            ),
            (
                DeviceHealth { availability_ppm: f.availability_ppm - 1, ..healthy() },
                AnomalyCause::EnergyStall,
            ),
        ];
        for (h, want) in cases {
            assert_eq!(classify(&h, &f), vec![want], "{h:?}");
            assert!(severity(&h, &f) > 0);
        }
        // exactly at the fence is healthy: the fences are strict bounds
        let at = DeviceHealth {
            latency_ns: f.latency_ns,
            reboots: f.reboots,
            retries: f.retries,
            max_stall_ns: f.max_stall_ns,
            availability_ppm: f.availability_ppm,
            ..healthy()
        };
        assert!(classify(&at, &f).is_empty());
    }

    #[test]
    fn fences_scale_the_baseline_with_floors() {
        let b = CellBaseline {
            latency_p99_ns: 1_000_000_000,
            reboots_p99: 0, // degenerate: healthy cell never reboots
            retries_p99: 10,
            max_stall_p99_ns: 0,
            availability_p01_ppm: 30_000, // degenerate: near-dark cell
        };
        let cfg = FenceConfig::default();
        let f = CellFences::from_baseline(&b, &cfg);
        assert_eq!(f.latency_ns, 2_000_000_000);
        assert_eq!(f.reboots, cfg.min_reboots, "floor must replace the 0 baseline");
        assert_eq!(f.retries, 20);
        assert_eq!(f.max_stall_ns, cfg.min_stall_ns);
        assert_eq!(f.availability_ppm, 0, "margin saturates at 0 — fence never fires");
        // a device rebooting once in a never-rebooting cell is NOT flagged
        let h = DeviceHealth { reboots: 1, availability_ppm: 10_000, ..healthy() };
        assert!(!classify(&h, &f).contains(&AnomalyCause::RebootStorm));
    }

    #[test]
    fn stall_fraction_is_the_availability_complement() {
        let h = DeviceHealth { availability_ppm: 940_000, ..healthy() };
        assert_eq!(h.energy_stall_ppm(), 60_000);
    }

    #[test]
    fn cause_names_are_snake_case_and_indexed() {
        for (i, c) in AnomalyCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            let n = c.name();
            assert!(n.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'), "{n}");
            assert_eq!(format!("{c}"), n);
        }
    }
}
