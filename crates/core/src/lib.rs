//! iPrune — intermittent-aware neural network pruning (DAC 2023).
//!
//! The framework follows the estimate–prune–retrain principle with the
//! paper's three design elements:
//!
//! 1. **Pruning criterion** ([`criterion`]): the number of *accelerator
//!    outputs*, which correlates with both progress-preservation and
//!    progress-recovery cost on intermittently-powered devices.
//! 2. **Three-step pruning strategy** ([`strategy`], [`sa`]): a
//!    sensitivity-guided overall ratio Γ per iteration, simulated-annealing
//!    allocation of per-layer ratios γᵢ with Σγᵢkᵢ = ΓK, and block-level
//!    selection at the accelerator-operation granularity by minimum RMS.
//! 3. **Iterative prune–fine-tune loop** ([`pipeline`]) with a recoverable
//!    accuracy-loss threshold ε and a "second chance" stop rule.
//!
//! The comparison baselines of the paper's evaluation are here too:
//! *ePrune* (energy-aware, for continuously-powered systems) via
//! [`criterion::Criterion::Energy`], plus a magnitude/fine-grained ablation.
//!
//! # Example
//!
//! ```no_run
//! use iprune::pipeline::{prune, PruneConfig};
//! use iprune_models::zoo::App;
//!
//! let mut model = App::Har.build();
//! let train = App::Har.dataset(600, 1);
//! let val = App::Har.dataset(200, 2);
//! // ... train the model first (iprune_models::train::train_sgd) ...
//! let report = prune(&mut model, &train, &val, &PruneConfig::iprune());
//! println!("kept {:.1}% of weights", 100.0 * report.final_density);
//! ```

pub mod blocks;
pub mod criterion;
pub mod greedy;
pub mod pipeline;
pub mod report;
pub mod sa;
pub mod sensitivity;
pub mod strategy;

pub use criterion::Criterion;
pub use pipeline::{prune, PruneConfig, PruneReport};
pub use report::{characterize, Characteristics};
