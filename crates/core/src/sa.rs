//! Simulated-annealing search for per-layer pruning ratios.
//!
//! Step 2 of the strategy (Section III-C): given the iteration's overall
//! ratio Γ, find per-layer ratios γᵢ with Σ γᵢ·kᵢ = Γ·K that minimize the
//! criterion cost remaining after removal while penalizing pressure on
//! sensitive layers. The paper uses simulated annealing "but any search
//! algorithm could be used instead".

use crate::blocks::{LayerState, RemovalSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated-annealing parameters.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (relative to the cost scale).
    pub t0: f64,
    /// Geometric cooling factor applied each step.
    pub cooling: f64,
    /// Weight of the sensitivity penalty term.
    pub lambda: f64,
    /// Maximum per-layer ratio (a layer can never be pruned entirely in one
    /// iteration).
    pub gamma_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self { steps: 1200, t0: 0.05, cooling: 0.996, lambda: 4.0, gamma_max: 0.4, seed: 0x5A }
    }
}

/// Outcome of the ratio search.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Per-layer pruning ratios (fraction of the layer's *alive* weights).
    pub gammas: Vec<f64>,
    /// Final objective value.
    pub cost: f64,
}

/// Objective: criterion cost remaining after applying `gammas`, normalized,
/// plus the sensitivity penalty.
fn objective(
    states: &[LayerState],
    scheds: &[RemovalSchedule],
    gammas: &[f64],
    sens_norm: &[f64],
    lambda: f64,
    total_cost: f64,
) -> f64 {
    let mut removed = 0.0;
    let mut penalty = 0.0;
    for ((state, sched), (&g, &s)) in states.iter().zip(scheds).zip(gammas.iter().zip(sens_norm)) {
        let budget = (state.alive_weights as f64 * g).round() as usize;
        let n = sched.blocks_for_budget(budget);
        removed += sched.cost_removed(n);
        penalty += s * g;
    }
    let remaining = (total_cost - removed) / total_cost.max(1e-12);
    remaining + lambda * penalty
}

/// Searches per-layer ratios for the weight budget `gamma * Σ kᵢ`.
///
/// `sens` is the per-layer accuracy drop from sensitivity analysis; only
/// its relative magnitudes matter.
///
/// # Panics
///
/// Panics if `states` is empty or lengths disagree.
pub fn allocate_ratios(
    states: &[LayerState],
    sens: &[f64],
    gamma: f64,
    cfg: &SaConfig,
) -> Allocation {
    assert!(!states.is_empty(), "need at least one layer");
    assert_eq!(states.len(), sens.len(), "one sensitivity per layer");
    let n = states.len();
    let k: Vec<f64> = states.iter().map(|s| s.alive_weights as f64).collect();
    let k_total: f64 = k.iter().sum();
    let budget = gamma * k_total;
    let total_cost: f64 = states.iter().map(|s| s.alive_cost).sum();
    let scheds: Vec<RemovalSchedule> = states.iter().map(|s| s.removal_schedule()).collect();
    // Normalize sensitivities to sum 1 (guarding all-zero drops).
    let sens_sum: f64 = sens.iter().map(|d| d.max(0.0)).sum();
    let sens_norm: Vec<f64> = if sens_sum > 1e-12 {
        sens.iter().map(|d| d.max(0.0) / sens_sum).collect()
    } else {
        vec![1.0 / n as f64; n]
    };

    // Start uniform: γᵢ = Γ for all layers satisfies the constraint.
    let mut gammas = vec![gamma.min(cfg.gamma_max); n];
    let mut cost = objective(states, &scheds, &gammas, &sens_norm, cfg.lambda, total_cost);
    let mut best = Allocation { gammas: gammas.clone(), cost };

    if n == 1 {
        return best;
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut temp = cfg.t0;
    for _ in 0..cfg.steps {
        // Move weight-budget mass between two random layers.
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let delta = rng.gen_range(0.0..0.05) * budget;
        let gi = gammas[i] + delta / k[i];
        let gj = gammas[j] - delta / k[j];
        if !(0.0..=cfg.gamma_max).contains(&gi) || !(0.0..=cfg.gamma_max).contains(&gj) {
            temp *= cfg.cooling;
            continue;
        }
        // Apply the two-entry move in place and revert on rejection instead
        // of cloning the whole ratio vector once per proposal.
        let (old_i, old_j) = (gammas[i], gammas[j]);
        gammas[i] = gi;
        gammas[j] = gj;
        let c = objective(states, &scheds, &gammas, &sens_norm, cfg.lambda, total_cost);
        let accept = c < cost || rng.gen_range(0.0..1.0) < ((cost - c) / temp.max(1e-12)).exp();
        if accept {
            cost = c;
            if cost < best.cost {
                best.cost = cost;
                best.gammas.clone_from(&gammas);
            }
        } else {
            gammas[i] = old_i;
            gammas[j] = old_j;
        }
        temp *= cfg.cooling;
    }
    best
}

/// Verifies that an allocation meets its weight budget (within one block of
/// slack per layer). Returns the absolute relative error.
pub fn budget_error(states: &[LayerState], gammas: &[f64], gamma: f64) -> f64 {
    let k: Vec<f64> = states.iter().map(|s| s.alive_weights as f64).collect();
    let k_total: f64 = k.iter().sum();
    let allocated: f64 = gammas.iter().zip(&k).map(|(g, ki)| g * ki).sum();
    ((allocated - gamma * k_total) / k_total.max(1e-12)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_states;
    use crate::criterion::Criterion;
    use iprune_device::energy::EnergyModel;
    use iprune_device::timing::TimingModel;
    use iprune_models::zoo::App;

    fn cks_states() -> Vec<LayerState> {
        let mut m = App::Cks.build();
        build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        )
    }

    #[test]
    fn allocation_respects_budget() {
        let states = cks_states();
        let sens = vec![0.1; states.len()];
        let alloc = allocate_ratios(&states, &sens, 0.2, &SaConfig::default());
        assert!(budget_error(&states, &alloc.gammas, 0.2) < 1e-9, "moves preserve the constraint");
        assert!(alloc.gammas.iter().all(|&g| (0.0..=0.4).contains(&g)));
    }

    #[test]
    fn sa_beats_uniform_on_diverse_model() {
        // CKS is the high-diversity model: SA should shift pruning mass
        // toward the layer with many acc outputs per weight.
        let states = cks_states();
        let sens = vec![0.05; states.len()];
        let cfg = SaConfig::default();
        let scheds: Vec<_> = states.iter().map(|s| s.removal_schedule()).collect();
        let total: f64 = states.iter().map(|s| s.alive_cost).sum();
        let sens_norm = vec![1.0 / states.len() as f64; states.len()];
        let uniform = vec![0.25; states.len()];
        let u_cost = objective(&states, &scheds, &uniform, &sens_norm, cfg.lambda, total);
        let alloc = allocate_ratios(&states, &sens, 0.25, &cfg);
        assert!(alloc.cost <= u_cost + 1e-12, "SA {:.4} vs uniform {:.4}", alloc.cost, u_cost);
    }

    #[test]
    fn sensitive_layers_get_lower_ratios() {
        let states = cks_states();
        // make conv1 (layer 0, huge acc-output density) extremely sensitive
        let mut sens = vec![0.0; states.len()];
        sens[0] = 1.0;
        let hi_lambda = SaConfig { lambda: 50.0, ..Default::default() };
        let alloc = allocate_ratios(&states, &sens, 0.2, &hi_lambda);
        let others_mean: f64 =
            alloc.gammas[1..].iter().sum::<f64>() / (alloc.gammas.len() - 1) as f64;
        assert!(
            alloc.gammas[0] < others_mean,
            "sensitive layer {} vs others {}",
            alloc.gammas[0],
            others_mean
        );
    }

    #[test]
    fn single_layer_is_trivial() {
        let states = vec![cks_states().remove(0)];
        let alloc = allocate_ratios(&states, &[0.2], 0.3, &SaConfig::default());
        assert!((alloc.gammas[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn acc_output_and_energy_criteria_allocate_differently() {
        // The paper's core claim needs the two criteria to actually steer
        // pruning toward different layers on a diverse model.
        let mut m = App::Cks.build();
        let acc_states = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        let energy_states = build_states(
            &mut m,
            Criterion::Energy,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        let sens = vec![0.05; acc_states.len()];
        let cfg = SaConfig::default();
        let a = allocate_ratios(&acc_states, &sens, 0.25, &cfg);
        let e = allocate_ratios(&energy_states, &sens, 0.25, &cfg);
        let diff: f64 = a.gammas.iter().zip(&e.gammas).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 0.05, "criteria should produce different allocations: {diff}");
    }

    #[test]
    fn deterministic_per_seed() {
        let states = cks_states();
        let sens = vec![0.1; states.len()];
        let a = allocate_ratios(&states, &sens, 0.2, &SaConfig::default());
        let b = allocate_ratios(&states, &sens, 0.2, &SaConfig::default());
        assert_eq!(a.gammas, b.gammas);
    }
}
