//! Greedy per-layer ratio allocation — the simple alternative to simulated
//! annealing (the paper: "any search algorithm could be used instead").
//!
//! Blocks across all layers are pooled and taken in order of best
//! *criterion-cost removed per unit of sensitivity-weighted weight*, until
//! the iteration's weight budget Γ·K is spent. Deterministic and fast;
//! used as a cross-check on the annealer and as a documented drop-in.

use crate::blocks::LayerState;
use crate::sa::Allocation;

/// Allocates per-layer ratios for budget `gamma · Σ kᵢ` by greedy
/// block-by-block selection.
///
/// `sens` are the per-layer accuracy drops; `lambda` trades criterion gain
/// against sensitivity exactly like the annealer's penalty. Layers are
/// capped at `gamma_max` like the annealer.
///
/// # Panics
///
/// Panics if `states` is empty or lengths disagree.
pub fn allocate_ratios_greedy(
    states: &[LayerState],
    sens: &[f64],
    gamma: f64,
    lambda: f64,
    gamma_max: f64,
) -> Allocation {
    assert!(!states.is_empty(), "need at least one layer");
    assert_eq!(states.len(), sens.len(), "one sensitivity per layer");
    let k_total: f64 = states.iter().map(|s| s.alive_weights as f64).sum();
    let budget = gamma * k_total;
    let total_cost: f64 = states.iter().map(|s| s.alive_cost).sum();

    let sens_sum: f64 = sens.iter().map(|d| d.max(0.0)).sum();
    let sens_norm: Vec<f64> = if sens_sum > 1e-12 {
        sens.iter().map(|d| d.max(0.0) / sens_sum).collect()
    } else {
        vec![1.0 / states.len() as f64; states.len()]
    };

    // Candidate blocks: (score, layer, weights, cost), score = cost removed
    // per sensitivity-inflated weight. Blocks within a layer are taken in
    // ascending-RMS order, so a candidate's score uses that ordering.
    struct Cand {
        layer: usize,
        weights: usize,
        cost: f64,
        score: f64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (li, state) in states.iter().enumerate() {
        let sched = state.removal_schedule();
        let mut prev_w = 0usize;
        let mut prev_c = 0.0f64;
        for n in 1..=sched.order.len() {
            let w = sched.weights_removed(n) - prev_w;
            let c = sched.cost_removed(n) - prev_c;
            prev_w += w;
            prev_c += c;
            // sensitivity-inflated weight price: sensitive layers cost more
            let price = w as f64 * (1.0 + lambda * sens_norm[li] * states.len() as f64);
            cands.push(Cand { layer: li, weights: w, cost: c, score: c / price.max(1e-12) });
        }
    }
    cands.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));

    let mut taken_w = vec![0usize; states.len()];
    let mut spent = 0.0f64;
    let mut removed_cost = 0.0f64;
    for c in &cands {
        if spent + c.weights as f64 > budget {
            continue;
        }
        let cap = (states[c.layer].alive_weights as f64 * gamma_max) as usize;
        if taken_w[c.layer] + c.weights > cap {
            continue;
        }
        taken_w[c.layer] += c.weights;
        spent += c.weights as f64;
        removed_cost += c.cost;
    }

    let gammas: Vec<f64> = states
        .iter()
        .zip(&taken_w)
        .map(|(s, &w)| w as f64 / (s.alive_weights as f64).max(1.0))
        .collect();
    let penalty: f64 = gammas.iter().zip(&sens_norm).map(|(g, s)| g * s).sum();
    let cost = (total_cost - removed_cost) / total_cost.max(1e-12) + lambda * penalty;
    Allocation { gammas, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_states;
    use crate::criterion::Criterion;
    use crate::sa::{allocate_ratios, SaConfig};
    use iprune_device::energy::EnergyModel;
    use iprune_device::timing::TimingModel;
    use iprune_models::zoo::App;

    fn states_for(app: App) -> Vec<LayerState> {
        let mut m = app.build();
        build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        )
    }

    #[test]
    fn greedy_respects_budget_and_caps() {
        let states = states_for(App::Cks);
        let sens = vec![0.1; states.len()];
        let alloc = allocate_ratios_greedy(&states, &sens, 0.25, 2.0, 0.4);
        let k: f64 = states.iter().map(|s| s.alive_weights as f64).sum();
        let spent: f64 =
            alloc.gammas.iter().zip(&states).map(|(g, s)| g * s.alive_weights as f64).sum();
        assert!(spent <= 0.25 * k + 1.0, "budget respected");
        assert!(spent >= 0.2 * k, "budget mostly used: {}", spent / k);
        assert!(alloc.gammas.iter().all(|&g| g <= 0.4 + 1e-9));
    }

    #[test]
    fn greedy_prefers_high_density_layers() {
        // On CKS, conv layers carry far more acc outputs per weight than
        // FC1: greedy must prune conv-heavy.
        let states = states_for(App::Cks);
        let sens = vec![0.0; states.len()];
        let alloc = allocate_ratios_greedy(&states, &sens, 0.2, 0.0, 0.6);
        // fc1 (layer 2) has the most weights but the fewest outputs per
        // weight: it should receive less pruning than conv2 (layer 1).
        assert!(
            alloc.gammas[1] > alloc.gammas[2],
            "conv2 {} vs fc1 {}",
            alloc.gammas[1],
            alloc.gammas[2]
        );
    }

    #[test]
    fn greedy_and_sa_land_in_the_same_ballpark() {
        let states = states_for(App::Har);
        let sens = vec![0.05; states.len()];
        let sa = allocate_ratios(&states, &sens, 0.25, &SaConfig::default());
        let greedy = allocate_ratios_greedy(&states, &sens, 0.25, 4.0, 0.4);
        // both must actually allocate the budget and land in the same
        // objective regime (the annealer is allowed to be better — that is
        // why the paper uses it — but not by an order of magnitude)
        assert!(greedy.gammas.iter().sum::<f64>() > 0.1);
        assert!(
            greedy.cost < sa.cost * 2.0 + 0.5,
            "greedy unreasonably bad: {} vs sa {}",
            greedy.cost,
            sa.cost
        );
    }

    #[test]
    fn deterministic() {
        let states = states_for(App::Har);
        let sens = vec![0.1; states.len()];
        let a = allocate_ratios_greedy(&states, &sens, 0.3, 2.0, 0.4);
        let b = allocate_ratios_greedy(&states, &sens, 0.3, 2.0, 0.4);
        assert_eq!(a.gammas, b.gammas);
    }
}
