//! The iterative estimate–prune–retrain loop (Section III-A, Figure 3).
//!
//! Each iteration estimates per-layer criterion cost and sensitivity, picks
//! an overall ratio Γ (guideline 1), allocates per-layer ratios γᵢ by
//! simulated annealing (guideline 2), removes minimum-RMS weight blocks
//! (guideline 3), and fine-tunes. Pruning continues until the accuracy drop
//! exceeds the recoverable threshold ε *twice* (the "second chance"), then
//! the most compact model whose accuracy recovered is adopted.

use crate::blocks::{alive_cost_total, build_states};
use crate::criterion::Criterion;
use crate::sa::SaConfig;
use crate::sensitivity::{analyze, Sensitivity};
use crate::strategy::{magnitude_element_step, overall_ratio, prune_step};
use iprune_datasets::Dataset;
use iprune_device::energy::EnergyModel;
use iprune_device::timing::TimingModel;
use iprune_models::train::{evaluate, train_sgd, TrainConfig};
use iprune_models::Model;

/// Pruning granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Accelerator-operation weight blocks (the paper's guideline 3).
    Block,
    /// Individual weights (fine-grained ablation baseline).
    Element,
}

/// How pruning mass is scheduled over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Schedule {
    /// The paper's iterative schedule: a small, sensitivity-chosen ratio per
    /// iteration with fine-tuning in between, until two strikes.
    Iterative,
    /// One-shot pruning (Han et al. style): remove `target` of the weights
    /// in a single step, then fine-tune once. The classic baseline the
    /// paper contrasts iterative pruning against.
    OneShot {
        /// Total fraction of weights to remove.
        target: f64,
    },
}

/// Configuration of a pruning run.
#[derive(Debug, Clone)]
pub struct PruneConfig {
    /// The optimized criterion.
    pub criterion: Criterion,
    /// Pruning granularity.
    pub granularity: Granularity,
    /// Iterative (the paper) or one-shot scheduling.
    pub schedule: Schedule,
    /// Upper bound Γ̂ on the per-iteration overall ratio (paper: 40 %).
    pub gamma_hat: f64,
    /// Recoverable accuracy-loss threshold ε (paper: 1 %).
    pub epsilon: f64,
    /// Stop after the drop exceeds ε this many times (paper: twice).
    pub strikes_allowed: u32,
    /// Hard cap on iterations.
    pub max_iterations: usize,
    /// Fraction of a layer probed during sensitivity analysis.
    pub probe_ratio: f64,
    /// Validation samples used for sensitivity probes.
    pub sens_eval: usize,
    /// Validation samples used for the per-iteration accuracy check
    /// (0 = use the whole validation set).
    pub val_eval: usize,
    /// Fine-tuning recipe applied after each pruning step.
    pub finetune: TrainConfig,
    /// Simulated-annealing parameters for ratio allocation.
    pub sa: SaConfig,
    /// Evaluation batch size.
    pub batch: usize,
}

impl PruneConfig {
    /// The iPrune configuration of the paper (accelerator-output criterion,
    /// block granularity, Γ̂ = 40 %, ε = 1 %).
    pub fn iprune() -> Self {
        Self {
            criterion: Criterion::AccOutputs,
            granularity: Granularity::Block,
            schedule: Schedule::Iterative,
            gamma_hat: 0.4,
            epsilon: 0.01,
            strikes_allowed: 2,
            max_iterations: 10,
            probe_ratio: 0.3,
            sens_eval: 96,
            val_eval: 0,
            finetune: TrainConfig::fine_tune(),
            sa: SaConfig::default(),
            batch: 32,
        }
    }

    /// The ePrune comparison baseline: identical loop, energy criterion.
    pub fn eprune() -> Self {
        Self { criterion: Criterion::Energy, ..Self::iprune() }
    }

    /// Fine-grained magnitude pruning (granularity ablation).
    pub fn magnitude() -> Self {
        Self {
            criterion: Criterion::Magnitude,
            granularity: Granularity::Element,
            ..Self::iprune()
        }
    }

    /// One-shot block pruning at `target` total ratio (schedule ablation).
    pub fn one_shot(target: f64) -> Self {
        Self { schedule: Schedule::OneShot { target }, ..Self::iprune() }
    }
}

/// One iteration's record.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Overall ratio Γ used.
    pub gamma: f64,
    /// Per-layer ratios γᵢ (empty for element granularity).
    pub gammas: Vec<f64>,
    /// Post-fine-tune validation accuracy.
    pub accuracy: f64,
    /// Fraction of weights still alive after this iteration.
    pub density: f64,
    /// Remaining criterion cost (acc outputs / energy) after this iteration.
    pub remaining_cost: f64,
    /// Whether this iteration struck out (drop > ε).
    pub struck: bool,
}

/// Result of a pruning run.
#[derive(Debug, Clone)]
pub struct PruneReport {
    /// Validation accuracy of the input (already trained) model.
    pub baseline_accuracy: f64,
    /// Accuracy of the adopted model.
    pub final_accuracy: f64,
    /// Weight density of the adopted model.
    pub final_density: f64,
    /// Iteration whose state was adopted (`None` = the unpruned input).
    pub adopted_iteration: Option<usize>,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
}

/// Runs the iterative pruning loop on an already-trained model. On return
/// the model holds the adopted weights and masks.
pub fn prune(model: &mut Model, train: &Dataset, val: &Dataset, cfg: &PruneConfig) -> PruneReport {
    let timing = TimingModel::default();
    let energy = EnergyModel::default();
    let eval_set = if cfg.val_eval == 0 { val.clone() } else { val.take(cfg.val_eval) };
    let sens_set = val.take(cfg.sens_eval.max(1));

    let baseline_accuracy = evaluate(model, &eval_set, cfg.batch);
    let total_weights = model.info.total_weights() as f64;

    let mut best_snapshot = model.snapshot();
    let mut best_masks = model.masks();
    let mut best_accuracy = baseline_accuracy;
    let mut best_density = model.kept_weights() as f64 / total_weights;
    let mut adopted: Option<usize> = None;

    let mut strikes = 0u32;
    let mut iterations = Vec::new();

    let max_iterations = match cfg.schedule {
        Schedule::Iterative => cfg.max_iterations,
        Schedule::OneShot { .. } => 1,
    };
    for iter in 0..max_iterations {
        let mut states = build_states(model, cfg.criterion, &timing, &energy);
        let (gamma, gammas) = match cfg.granularity {
            Granularity::Block => {
                let sens = analyze(model, &states, &sens_set, cfg.probe_ratio, cfg.batch);
                let gamma = match cfg.schedule {
                    Schedule::Iterative => overall_ratio(&states, &sens, cfg.gamma_hat),
                    Schedule::OneShot { target } => target,
                };
                let mut sa = SaConfig { seed: cfg.sa.seed ^ (iter as u64) << 8, ..cfg.sa.clone() };
                if let Schedule::OneShot { target } = cfg.schedule {
                    // a single shot must be allowed to exceed the cautious
                    // per-iteration layer cap
                    sa.gamma_max = sa.gamma_max.max((target * 1.5).min(0.95));
                }
                let (masks, gammas) = prune_step(model, &mut states, &sens, gamma, &sa);
                model.set_masks(&masks);
                (gamma, gammas)
            }
            Granularity::Element => {
                // no layer allocation; a fixed cautious step per iteration
                let gamma = cfg.gamma_hat / 2.0;
                let masks = magnitude_element_step(model, gamma);
                model.set_masks(&masks);
                (gamma, Vec::new())
            }
        };

        let mut ft = cfg.finetune.clone();
        ft.seed ^= iter as u64;
        train_sgd(model, train, &ft);
        let accuracy = evaluate(model, &eval_set, cfg.batch);
        let density = model.kept_weights() as f64 / total_weights;
        let remaining_cost = alive_cost_total(model, cfg.criterion, &timing, &energy);

        let struck = baseline_accuracy - accuracy > cfg.epsilon;
        iterations.push(IterationRecord {
            iteration: iter,
            gamma,
            gammas,
            accuracy,
            density,
            remaining_cost,
            struck,
        });

        if struck {
            strikes += 1;
            if strikes >= cfg.strikes_allowed {
                break;
            }
            // Second chance: roll back to the last recovered state so the
            // next iteration retries from healthy weights with a different
            // annealing draw, instead of compounding an unrecoverable cut.
            model.set_masks(&best_masks);
            model.restore(&best_snapshot);
        } else {
            best_snapshot = model.snapshot();
            best_masks = model.masks();
            best_accuracy = accuracy;
            best_density = density;
            adopted = Some(iter);
        }
    }

    // adopt the most compact model whose accuracy recovered
    model.set_masks(&best_masks);
    model.restore(&best_snapshot);

    PruneReport {
        baseline_accuracy,
        final_accuracy: best_accuracy,
        final_density: best_density,
        adopted_iteration: adopted,
        iterations,
    }
}

/// Convenience: sensitivity analysis with freshly-built states (used by
/// examples and benches).
pub fn analyze_sensitivity(model: &mut Model, val: &Dataset, cfg: &PruneConfig) -> Sensitivity {
    let states =
        build_states(model, cfg.criterion, &TimingModel::default(), &EnergyModel::default());
    analyze(model, &states, &val.take(cfg.sens_eval.max(1)), cfg.probe_ratio, cfg.batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    fn quick_cfg() -> PruneConfig {
        PruneConfig {
            max_iterations: 4,
            sens_eval: 24,
            val_eval: 48,
            sa: SaConfig { steps: 200, ..Default::default() },
            finetune: TrainConfig { epochs: 3, lr: 0.05, ..Default::default() },
            ..PruneConfig::iprune()
        }
    }

    #[test]
    fn iprune_compresses_har_within_epsilon() {
        let mut model = App::Har.build();
        let train = App::Har.dataset(240, 11);
        let val = App::Har.dataset(90, 12);
        train_sgd(&mut model, &train, &TrainConfig { epochs: 3, ..Default::default() });
        let report = prune(&mut model, &train, &val, &quick_cfg());
        assert!(
            report.iterations.iter().any(|it| it.density < 1.0),
            "no iteration pruned anything"
        );
        let adopted = report.adopted_iteration.expect("HAR should recover at least one step");
        assert!(
            report.baseline_accuracy - report.final_accuracy <= 0.01 + 1e-9,
            "adopted model lost too much accuracy: {} -> {} (iter {adopted})",
            report.baseline_accuracy,
            report.final_accuracy
        );
        assert!(report.final_density < 0.95);
        // model state matches the report
        assert!(
            (model.kept_weights() as f64 / model.info.total_weights() as f64
                - report.final_density)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn recovered_iterations_get_monotonically_more_compact() {
        let mut model = App::Har.build();
        let train = App::Har.dataset(180, 21);
        let val = App::Har.dataset(60, 22);
        train_sgd(&mut model, &train, &TrainConfig { epochs: 2, ..Default::default() });
        let report = prune(&mut model, &train, &val, &quick_cfg());
        // struck iterations roll back, so only the *recovered* trajectory is
        // monotone; the adopted model is its most compact point.
        let recovered: Vec<f64> =
            report.iterations.iter().filter(|it| !it.struck).map(|it| it.density).collect();
        for w in recovered.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        if let Some(last) = recovered.last() {
            assert!((report.final_density - last).abs() < 1e-9);
        }
    }

    #[test]
    fn one_shot_prunes_to_target_in_one_iteration() {
        let mut model = App::Har.build();
        let train = App::Har.dataset(200, 41);
        let val = App::Har.dataset(80, 42);
        train_sgd(&mut model, &train, &TrainConfig { epochs: 2, ..Default::default() });
        let cfg = PruneConfig {
            sens_eval: 24,
            val_eval: 48,
            sa: SaConfig { steps: 200, ..Default::default() },
            finetune: TrainConfig { epochs: 2, lr: 0.04, ..Default::default() },
            ..PruneConfig::one_shot(0.5)
        };
        let report = prune(&mut model, &train, &val, &cfg);
        assert_eq!(report.iterations.len(), 1);
        let it = &report.iterations[0];
        assert!((it.density - 0.5).abs() < 0.1, "one-shot density {}", it.density);
    }

    #[test]
    fn element_granularity_barely_reduces_criterion_cost() {
        // Guideline 3's motivation: fine-grained pruning removes weights but
        // keeps blocks (and their accelerator outputs) alive.
        let mut block_model = App::Har.build();
        let mut elem_model = App::Har.build();
        let train = App::Har.dataset(150, 31);
        let val = App::Har.dataset(60, 32);
        train_sgd(&mut block_model, &train, &TrainConfig { epochs: 2, ..Default::default() });
        train_sgd(&mut elem_model, &train, &TrainConfig { epochs: 2, ..Default::default() });
        let mut cfg = quick_cfg();
        cfg.max_iterations = 2;
        let block_report = prune(&mut block_model, &train, &val, &cfg);
        let mut ecfg = PruneConfig { max_iterations: 2, ..PruneConfig::magnitude() };
        ecfg.sens_eval = 24;
        ecfg.val_eval = 48;
        ecfg.finetune = TrainConfig { epochs: 1, lr: 0.02, ..Default::default() };
        let elem_report = prune(&mut elem_model, &train, &val, &ecfg);

        // compare acc-output cost per pruned weight
        let timing = TimingModel::default();
        let energy = EnergyModel::default();
        let cost = |m: &mut Model| -> f64 {
            build_states(m, Criterion::AccOutputs, &timing, &energy)
                .iter()
                .map(|s| s.alive_cost)
                .sum()
        };
        let dense_cost = {
            let mut fresh = App::Har.build();
            cost(&mut fresh)
        };
        let block_cost = cost(&mut block_model);
        let elem_cost = cost(&mut elem_model);
        if block_report.final_density < 0.99 && elem_report.final_density < 0.99 {
            let block_eff = (dense_cost - block_cost) / (1.0 - block_report.final_density);
            let elem_eff = (dense_cost - elem_cost) / (1.0 - elem_report.final_density).max(1e-9);
            assert!(
                block_eff > 2.0 * elem_eff,
                "block pruning should remove far more acc outputs per weight: {block_eff} vs {elem_eff}"
            );
        }
    }
}
