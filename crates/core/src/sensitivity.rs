//! Layer-wise sensitivity analysis.
//!
//! The sensitivity of a layer is how much model accuracy drops when a probe
//! fraction of its (remaining) weights — lowest-RMS blocks first — is
//! temporarily pruned (Section III-A/C). Each probe is evaluated on a small
//! validation subset and fully rolled back.

use crate::blocks::{mask_as_weight_shape, mask_out_block, LayerState};
use iprune_datasets::Dataset;
use iprune_models::train::{self, evaluate};
use iprune_models::Model;
use iprune_obs::metrics::{self, Counter};
use iprune_tensor::exec::WeightOverride;
use iprune_tensor::par;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Result of the per-layer sensitivity analysis.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Accuracy drop (baseline − probed accuracy) per layer, by layer id.
    pub drops: Vec<f64>,
    /// Accuracy of the unprobed model on the evaluation subset.
    pub baseline: f64,
}

impl Sensitivity {
    /// Layer ids ranked by *descending* sensitivity (rank 0 = most
    /// sensitive). Ties break toward the lower layer id.
    pub fn ranking(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.drops.len()).collect();
        ids.sort_by(|&a, &b| {
            self.drops[b].partial_cmp(&self.drops[a]).unwrap_or(std::cmp::Ordering::Equal)
        });
        ids
    }

    /// The rank (0-based, 0 = most sensitive) of each layer.
    pub fn rank_of(&self) -> Vec<usize> {
        let mut rank = vec![0usize; self.drops.len()];
        for (r, &id) in self.ranking().iter().enumerate() {
            rank[id] = r;
        }
        rank
    }
}

/// Measures per-layer sensitivity by probing `probe_ratio` of each layer's
/// alive weights on `eval` (a small validation subset).
///
/// Probes are independent and spread over [`iprune_tensor::par`] workers.
/// All probes share the caller's model through the shared-state inference
/// path: a probe builds a [`WeightOverride`] for its one layer (base
/// weights ⊙ probe mask, a single-layer clone) and evaluates through a
/// per-probe `ExecCtx` — no full-model clone per probe. The caller's model
/// is never mutated — weights and masks are untouched, which is the
/// exact-restoration guarantee the serial loop achieved by snapshot and
/// rollback. Each probe performs identical work regardless of the thread
/// count, so the drops are bit-identical to a serial run (and to the
/// pre-refactor clone-per-probe implementation).
///
/// Probe evaluation inherits the layers' block-sparse GEMM dispatch: each
/// override builds the probe mask's `SparseIndex` exactly as `set_masks`
/// would, so heavily probed layers are evaluated through the sparse
/// kernels (bit-identical to dense, see `iprune_tensor::sparse`).
///
/// Under `IPRUNE_EVAL=q15` probes fall back to materializing a probe model
/// (quantization consumes `&mut`), keeping the legacy behavior.
pub fn analyze(
    model: &mut Model,
    states: &[LayerState],
    eval: &Dataset,
    probe_ratio: f64,
    batch: usize,
) -> Sensitivity {
    let baseline = evaluate(model, eval, batch);

    static PROBES: OnceLock<Arc<Counter>> = OnceLock::new();
    let probes = PROBES.get_or_init(|| metrics::counter("sensitivity.probes"));
    let model_ref = &*model;
    let drops = par::par_map(states.len(), |li| {
        probes.inc();
        let state = &states[li];
        let sched = state.removal_schedule();
        let budget = ((state.alive_weights as f64) * probe_ratio).round() as usize;
        let n = sched.blocks_for_budget(budget);
        if n == 0 {
            return 0.0;
        }
        let mut probe = state.clone();
        for &bi in sched.order.iter().take(n) {
            mask_out_block(&mut probe, bi);
        }
        let probe_mask = mask_as_weight_shape(&probe, model_ref);
        let probed = if train::quantized_mode() {
            let mut probe_model = model_ref.clone();
            let mut masks = HashMap::new();
            masks.insert(state.layer_id, probe_mask);
            probe_model.set_masks(&masks);
            evaluate(&mut probe_model, eval, batch)
        } else {
            let (base_w, _) =
                model_ref.layer_weight(state.layer_id).expect("prunable layer has weights");
            let ov = WeightOverride::masked(state.layer_id, &base_w, &probe_mask);
            train::evaluate_overridden(model_ref, &[ov], eval, batch)
        };
        baseline - probed
    });
    Sensitivity { drops, baseline }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_states;
    use crate::criterion::Criterion;
    use iprune_device::energy::EnergyModel;
    use iprune_device::timing::TimingModel;
    use iprune_models::train::{train_sgd, TrainConfig};
    use iprune_models::zoo::App;

    #[test]
    fn analysis_restores_model_exactly() {
        let mut m = App::Har.build();
        let ds = App::Har.dataset(60, 3);
        train_sgd(&mut m, &ds, &TrainConfig { epochs: 1, ..Default::default() });
        let before = m.snapshot();
        let states = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        let sens = analyze(&mut m, &states, &ds.take(24), 0.3, 12);
        let after = m.snapshot();
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a.data(), b.data(), "weights must be restored");
        }
        assert_eq!(sens.drops.len(), m.info.prunables.len());
        // any masks left installed must be all-ones (i.e. no pruning)
        for (id, mask) in m.masks() {
            assert_eq!(mask.count_zeros(), 0, "layer {id} still has pruned weights");
        }
    }

    #[test]
    fn ranking_orders_by_drop() {
        let s = Sensitivity { drops: vec![0.1, 0.5, -0.02, 0.3], baseline: 0.9 };
        assert_eq!(s.ranking(), vec![1, 3, 0, 2]);
        assert_eq!(s.rank_of(), vec![2, 0, 3, 1]);
    }

    #[test]
    fn probing_a_trained_layer_changes_accuracy_more_than_zero_probe() {
        let mut m = App::Har.build();
        let ds = App::Har.dataset(120, 4);
        train_sgd(&mut m, &ds, &TrainConfig { epochs: 2, ..Default::default() });
        let states = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        let sens = analyze(&mut m, &states, &ds.take(36), 0.6, 12);
        // at a 60% probe at least one layer should visibly matter
        assert!(sens.drops.iter().any(|&d| d > 0.0), "drops: {:?}", sens.drops);
        assert!(sens.baseline > 0.2);
    }
}
