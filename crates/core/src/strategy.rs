//! The three-step pruning strategy (Section III-C, Figure 4).
//!
//! 1. **Network level** — pick the iteration's overall ratio Γ: rank layers
//!    by sensitivity, map rank *i* (descending, 1-based) to `i·Γ̂/n`, and
//!    select the ratio mapped to the layer with the most criterion cost
//!    (accelerator outputs for iPrune, energy for ePrune). A sensitive
//!    high-cost layer thus forces a cautious iteration.
//! 2. **Layer level** — allocate per-layer ratios γᵢ by simulated annealing
//!    ([`crate::sa`]).
//! 3. **Block level** — within each layer, remove minimum-RMS weight blocks
//!    until γᵢ is met.

use crate::blocks::{mask_as_weight_shape, mask_out_block, LayerState};
use crate::sa::{allocate_ratios, SaConfig};
use crate::sensitivity::Sensitivity;
use iprune_models::Model;
use iprune_tensor::Tensor;
use std::collections::HashMap;

/// Step 1: the overall pruning ratio for this iteration.
///
/// # Panics
///
/// Panics if `states` is empty or lengths disagree.
pub fn overall_ratio(states: &[LayerState], sens: &Sensitivity, gamma_hat: f64) -> f64 {
    assert!(!states.is_empty());
    assert_eq!(states.len(), sens.drops.len());
    let n = states.len();
    // the layer with the most (remaining) criterion cost
    let heaviest = states
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.alive_cost.partial_cmp(&b.1.alive_cost).unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    // rank 0 = most sensitive → mapped to the smallest ratio (1·Γ̂/n)
    let rank = sens.rank_of()[heaviest];
    (rank + 1) as f64 * gamma_hat / n as f64
}

/// Steps 2–3: allocate per-layer ratios and prune minimum-RMS blocks.
/// Returns the new per-layer masks (combined with any existing pruning) and
/// the per-layer ratios used.
pub fn prune_step(
    model: &Model,
    states: &mut [LayerState],
    sens: &Sensitivity,
    gamma: f64,
    sa: &SaConfig,
) -> (HashMap<usize, Tensor>, Vec<f64>) {
    let alloc = allocate_ratios(states, &sens.drops, gamma, sa);
    let mut masks = HashMap::new();
    for (state, &g) in states.iter_mut().zip(&alloc.gammas) {
        let sched = state.removal_schedule();
        let budget = (state.alive_weights as f64 * g).round() as usize;
        let n = sched.blocks_for_budget(budget);
        for &bi in sched.order.iter().take(n) {
            mask_out_block(state, bi);
        }
        masks.insert(state.layer_id, mask_as_weight_shape(state, model));
    }
    (masks, alloc.gammas)
}

/// Fine-grained (element) pruning at ratio `gamma` across all layers by
/// global magnitude threshold — the granularity-ablation baseline. Returns
/// per-layer masks.
pub fn magnitude_element_step(model: &mut Model, gamma: f64) -> HashMap<usize, Tensor> {
    let weights = model.extract_weights();
    let masks = model.masks();
    // global threshold over alive weights
    let mut mags: Vec<f32> = Vec::new();
    for lw in &weights {
        let mask = masks.get(&lw.layer_id);
        for (i, &v) in lw.w.data().iter().enumerate() {
            let alive = mask.map(|m| m.data()[i] != 0.0).unwrap_or(true);
            if alive {
                mags.push(v.abs());
            }
        }
    }
    mags.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cut = ((mags.len() as f64) * gamma).floor() as usize;
    let threshold = if cut == 0 { -1.0 } else { mags[cut.min(mags.len() - 1)] };

    let mut out = HashMap::new();
    for lw in &weights {
        let mut mask =
            masks.get(&lw.layer_id).cloned().unwrap_or_else(|| Tensor::full(lw.w.dims(), 1.0));
        for (i, &v) in lw.w.data().iter().enumerate() {
            if v.abs() <= threshold {
                mask.data_mut()[i] = 0.0;
            }
        }
        out.insert(lw.layer_id, mask);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::build_states;
    use crate::criterion::Criterion;
    use iprune_device::energy::EnergyModel;
    use iprune_device::timing::TimingModel;
    use iprune_models::zoo::App;

    fn har_setup() -> (Model, Vec<LayerState>) {
        let mut m = App::Har.build();
        let s = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        (m, s)
    }

    #[test]
    fn overall_ratio_follows_guideline_one() {
        let (_, states) = har_setup();
        let n = states.len() as f64;
        // HAR's heaviest layer by acc outputs is conv3 (layer 2).
        // If it is the most sensitive (rank 0) → smallest ratio.
        let mut drops = vec![0.0; states.len()];
        drops[2] = 0.5;
        let sens = Sensitivity { drops, baseline: 0.9 };
        let g = overall_ratio(&states, &sens, 0.4);
        assert!((g - 0.4 / n).abs() < 1e-12);
        // If it is the least sensitive → the full upper bound.
        let mut drops2 = vec![0.5; states.len()];
        drops2[2] = 0.0;
        let sens2 = Sensitivity { drops: drops2, baseline: 0.9 };
        let g2 = overall_ratio(&states, &sens2, 0.4);
        assert!((g2 - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prune_step_removes_requested_mass() {
        let (m, mut states) = har_setup();
        let total_before: usize = states.iter().map(|s| s.alive_weights).sum();
        let sens = Sensitivity { drops: vec![0.01; states.len()], baseline: 0.9 };
        let (masks, gammas) = prune_step(&m, &mut states, &sens, 0.25, &SaConfig::default());
        let total_after: usize = states.iter().map(|s| s.alive_weights).sum();
        let removed = total_before - total_after;
        let frac = removed as f64 / total_before as f64;
        assert!((frac - 0.25).abs() < 0.05, "removed {frac} of weights");
        assert_eq!(masks.len(), states.len());
        assert_eq!(gammas.len(), states.len());
    }

    #[test]
    fn magnitude_step_prunes_smallest_elements() {
        let (mut m, _) = har_setup();
        let masks = magnitude_element_step(&mut m, 0.3);
        m.set_masks(&masks);
        let mut zeroed = 0usize;
        let mut total = 0usize;
        for lw in m.extract_weights() {
            zeroed += lw.w.count_zeros();
            total += lw.w.numel();
        }
        let frac = zeroed as f64 / total as f64;
        assert!((0.28..=0.35).contains(&frac), "pruned {frac}");
    }
}
