//! Weight-block bookkeeping at the accelerator-operation granularity.
//!
//! The paper's third guideline: the pruning granularity should be a block of
//! weights computed by one single accelerator operation, because removing
//! anything smaller leaves the operation (and its preserved outputs) in
//! place. Block importance is the RMS of its weights (Section III-D).

use crate::criterion::{block_cost, Criterion};
use iprune_device::energy::EnergyModel;
use iprune_device::timing::TimingModel;
use iprune_hawaii::LayerPlan;
use iprune_models::Model;
use iprune_tensor::Tensor;

/// One weight block of one layer.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// Block-row index.
    pub rb: usize,
    /// Block-column (reduction chunk) index.
    pub cb: usize,
    /// RMS of the block's current weights.
    pub rms: f64,
    /// Weights the block covers (edge blocks cover fewer).
    pub weights: usize,
    /// Criterion cost the block contributes per inference.
    pub cost: f64,
    /// Whether the block is still unpruned.
    pub alive: bool,
}

/// Pruning-relevant state of one prunable layer.
#[derive(Debug, Clone)]
pub struct LayerState {
    /// Prunable layer id.
    pub layer_id: usize,
    /// Execution plan.
    pub plan: LayerPlan,
    /// All blocks of the layer.
    pub blocks: Vec<BlockInfo>,
    /// Currently unpruned weights.
    pub alive_weights: usize,
    /// Criterion cost of the alive blocks.
    pub alive_cost: f64,
    /// Current weight mask (1 = keep), flat `[m*k]`.
    pub mask: Tensor,
}

impl LayerState {
    /// Alive blocks sorted by ascending RMS, with cumulative weights and
    /// cost — the removal order of the block-selection step.
    pub fn removal_schedule(&self) -> RemovalSchedule {
        let mut order: Vec<usize> =
            (0..self.blocks.len()).filter(|&i| self.blocks[i].alive).collect();
        order.sort_by(|&a, &b| {
            self.blocks[a].rms.partial_cmp(&self.blocks[b].rms).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cum_weights = Vec::with_capacity(order.len());
        let mut cum_cost = Vec::with_capacity(order.len());
        let (mut w, mut c) = (0usize, 0.0f64);
        for &i in &order {
            w += self.blocks[i].weights;
            c += self.blocks[i].cost;
            cum_weights.push(w);
            cum_cost.push(c);
        }
        RemovalSchedule { order, cum_weights, cum_cost }
    }
}

/// Blocks of one layer in removal (ascending-RMS) order.
#[derive(Debug, Clone)]
pub struct RemovalSchedule {
    /// Block indices in removal order.
    pub order: Vec<usize>,
    /// Cumulative weights removed after taking a prefix.
    pub cum_weights: Vec<usize>,
    /// Cumulative criterion cost removed after taking a prefix.
    pub cum_cost: Vec<f64>,
}

impl RemovalSchedule {
    /// Number of leading blocks needed to remove at least `weight_budget`
    /// weights (clamped to all blocks).
    pub fn blocks_for_budget(&self, weight_budget: usize) -> usize {
        if weight_budget == 0 {
            return 0;
        }
        match self.cum_weights.binary_search(&weight_budget) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.order.len()),
        }
    }

    /// Criterion cost removed by taking `n` leading blocks.
    pub fn cost_removed(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.cum_cost[n.min(self.cum_cost.len()) - 1]
        }
    }

    /// Weights removed by taking `n` leading blocks.
    pub fn weights_removed(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.cum_weights[n.min(self.cum_weights.len()) - 1]
        }
    }
}

/// Builds per-layer pruning state from the model's current weights and
/// masks.
pub fn build_states(
    model: &mut Model,
    criterion: Criterion,
    timing: &TimingModel,
    energy: &EnergyModel,
) -> Vec<LayerState> {
    let weights = model.extract_weights();
    let masks = model.masks();
    weights
        .iter()
        .map(|lw| {
            let p = &model.info.prunables[lw.layer_id];
            let plan = LayerPlan::for_layer(p);
            let mask = masks
                .get(&lw.layer_id)
                .map(|m| m.reshape(&[plan.m * plan.k]))
                .unwrap_or_else(|| Tensor::full(&[plan.m * plan.k], 1.0));
            let w = lw.w.reshape(&[plan.m * plan.k]);
            let (br, bc) = (plan.tile.br, plan.tile.bc);
            let mut blocks = Vec::with_capacity(plan.row_blocks() * plan.chunks());
            let mut alive_weights = 0usize;
            let mut alive_cost = 0.0f64;
            for rb in 0..plan.row_blocks() {
                let rows = plan.rows_in_block(rb);
                for cb in 0..plan.chunks() {
                    let cols = bc.min(plan.k - cb * bc);
                    let mut ss = 0.0f64;
                    let mut alive = false;
                    for r in 0..rows {
                        let row = rb * br + r;
                        for c in 0..cols {
                            let idx = row * plan.k + cb * bc + c;
                            let v = w.data()[idx] as f64;
                            ss += v * v;
                            alive |= mask.data()[idx] != 0.0;
                        }
                    }
                    let nweights = rows * cols;
                    let rms = (ss / nweights as f64).sqrt();
                    let cost = block_cost(criterion, &plan, rows, timing, energy);
                    if alive {
                        alive_weights += nweights;
                        alive_cost += cost;
                    }
                    blocks.push(BlockInfo { rb, cb, rms, weights: nweights, cost, alive });
                }
            }
            LayerState { layer_id: lw.layer_id, plan, blocks, alive_weights, alive_cost, mask }
        })
        .collect()
}

/// Sums the criterion cost of every alive block across all prunable
/// layers — the quantity [`build_states`] reports as the sum of
/// `alive_cost` — without materializing per-block records, RMS statistics,
/// or weight extraction. Progress records that only need the scalar use
/// this instead of rebuilding full [`LayerState`]s.
pub fn alive_cost_total(
    model: &mut Model,
    criterion: Criterion,
    timing: &TimingModel,
    energy: &EnergyModel,
) -> f64 {
    let masks = model.masks();
    model
        .info
        .prunables
        .iter()
        .enumerate()
        .map(|(layer_id, p)| {
            let plan = LayerPlan::for_layer(p);
            let (br, bc) = (plan.tile.br, plan.tile.bc);
            let mask = masks.get(&layer_id).map(|m| m.reshape(&[plan.m * plan.k]));
            let mut total = 0.0f64;
            for rb in 0..plan.row_blocks() {
                let rows = plan.rows_in_block(rb);
                for cb in 0..plan.chunks() {
                    let alive = match &mask {
                        None => true,
                        Some(m) => {
                            let cols = bc.min(plan.k - cb * bc);
                            (0..rows).any(|r| {
                                let row = (rb * br + r) * plan.k + cb * bc;
                                m.data()[row..row + cols].iter().any(|&v| v != 0.0)
                            })
                        }
                    };
                    if alive {
                        total += block_cost(criterion, &plan, rows, timing, energy);
                    }
                }
            }
            total
        })
        .sum()
}

/// Zeroes the mask region of one block.
pub fn mask_out_block(state: &mut LayerState, block_idx: usize) {
    let plan = &state.plan;
    let (br, bc) = (plan.tile.br, plan.tile.bc);
    let b = state.blocks[block_idx].clone();
    let rows = plan.rows_in_block(b.rb);
    let cols = bc.min(plan.k - b.cb * bc);
    for r in 0..rows {
        let row = b.rb * br + r;
        for c in 0..cols {
            state.mask.data_mut()[row * plan.k + b.cb * bc + c] = 0.0;
        }
    }
    if state.blocks[block_idx].alive {
        state.alive_weights -= b.weights;
        state.alive_cost -= b.cost;
        state.blocks[block_idx].alive = false;
    }
}

/// The mask reshaped to the layer's weight-tensor shape.
pub fn mask_as_weight_shape(state: &LayerState, model: &Model) -> Tensor {
    let p = &model.info.prunables[state.layer_id];
    let dims: Vec<usize> = match &p.kind {
        iprune_models::PrunableKind::Conv { cin, cout, kh, kw, .. } => vec![*cout, *cin, *kh, *kw],
        iprune_models::PrunableKind::Fc { din, dout } => vec![*dout, *din],
    };
    state.mask.reshape(&dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    fn har_states() -> (Model, Vec<LayerState>) {
        let mut m = App::Har.build();
        let states = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        (m, states)
    }

    #[test]
    fn fresh_model_is_fully_alive() {
        let (m, states) = har_states();
        for (s, p) in states.iter().zip(&m.info.prunables) {
            assert_eq!(s.alive_weights, p.weights(), "{}", p.name);
            assert!((s.alive_cost - s.plan.dense_acc_outputs() as f64).abs() < 1e-6);
            assert!(s.blocks.iter().all(|b| b.alive));
        }
    }

    #[test]
    fn alive_cost_total_matches_full_state_rebuild() {
        let (mut m, mut states) = har_states();
        // fresh model
        let summed: f64 = states.iter().map(|s| s.alive_cost).sum();
        let (timing, energy) = (TimingModel::default(), EnergyModel::default());
        assert_eq!(alive_cost_total(&mut m, Criterion::AccOutputs, &timing, &energy), summed);
        // after masking out a few blocks
        mask_out_block(&mut states[0], 0);
        mask_out_block(&mut states[0], 3);
        mask_out_block(&mut states[2], 1);
        let mut masks = std::collections::HashMap::new();
        masks.insert(0usize, mask_as_weight_shape(&states[0], &m));
        masks.insert(2usize, mask_as_weight_shape(&states[2], &m));
        m.set_masks(&masks);
        let rebuilt = build_states(&mut m, Criterion::Energy, &timing, &energy);
        let summed: f64 = rebuilt.iter().map(|s| s.alive_cost).sum();
        assert_eq!(alive_cost_total(&mut m, Criterion::Energy, &timing, &energy), summed);
    }

    #[test]
    fn removal_schedule_is_sorted_and_cumulative() {
        let (_, states) = har_states();
        let sched = states[0].removal_schedule();
        for w in sched.order.windows(2) {
            assert!(states[0].blocks[w[0]].rms <= states[0].blocks[w[1]].rms);
        }
        assert_eq!(sched.weights_removed(sched.order.len()), states[0].alive_weights);
        assert!(sched.cost_removed(3) > sched.cost_removed(1));
    }

    #[test]
    fn blocks_for_budget_is_minimal() {
        let (_, states) = har_states();
        let sched = states[1].removal_schedule();
        let budget = states[1].alive_weights / 4;
        let n = sched.blocks_for_budget(budget);
        assert!(sched.weights_removed(n) >= budget);
        if n > 0 {
            assert!(sched.weights_removed(n - 1) < budget);
        }
    }

    #[test]
    fn mask_out_block_updates_tallies() {
        let (_, mut states) = har_states();
        let before_w = states[2].alive_weights;
        let before_c = states[2].alive_cost;
        let zeros_before = states[2].mask.count_zeros();
        mask_out_block(&mut states[2], 0);
        assert!(states[2].alive_weights < before_w);
        assert!(states[2].alive_cost < before_c);
        assert!(states[2].mask.count_zeros() > zeros_before);
        // double-kill is a no-op on tallies
        let w = states[2].alive_weights;
        mask_out_block(&mut states[2], 0);
        assert_eq!(states[2].alive_weights, w);
    }

    #[test]
    fn masked_blocks_report_dead_on_rebuild() {
        let (mut m, mut states) = har_states();
        mask_out_block(&mut states[0], 0);
        mask_out_block(&mut states[0], 1);
        let mask = mask_as_weight_shape(&states[0], &m);
        let mut masks = std::collections::HashMap::new();
        masks.insert(0usize, mask);
        m.set_masks(&masks);
        let rebuilt = build_states(
            &mut m,
            Criterion::AccOutputs,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        assert_eq!(rebuilt[0].blocks.iter().filter(|b| !b.alive).count(), 2);
        assert_eq!(rebuilt[0].alive_weights, states[0].alive_weights);
    }
}
