//! Pruned-model characterization — the rows of the paper's Table III.

use iprune_datasets::Dataset;
use iprune_device::{DeviceSim, PowerStrength};
use iprune_hawaii::deploy::deploy;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_hawaii::DeployedModel;
use iprune_models::train::evaluate;
use iprune_models::Model;

/// Characteristics of a (possibly pruned) model, as reported in Table III.
#[derive(Debug, Clone)]
pub struct Characteristics {
    /// Row label (`Unpruned`, `ePrune`, `iPrune`, …).
    pub label: String,
    /// Top-1 accuracy on the validation set (float inference).
    pub accuracy: f64,
    /// Deployed model size in bytes (dense for unpruned, BSR when smaller).
    pub size_bytes: usize,
    /// MACs per inference (whole accelerator blocks).
    pub macs: usize,
    /// Accelerator outputs per inference (the pruning criterion).
    pub acc_outputs: usize,
}

impl Characteristics {
    /// Formats the row like the paper's table.
    pub fn row(&self) -> String {
        format!(
            "{:<10} {:>6.1}% {:>8.0} KB {:>8.0} K {:>8.0} K",
            self.label,
            self.accuracy * 100.0,
            self.size_bytes as f64 / 1024.0,
            self.macs as f64 / 1000.0,
            self.acc_outputs as f64 / 1000.0,
        )
    }
}

/// Characterizes a model: accuracy on `val`, plus deployed size / MACs /
/// accelerator outputs via an actual deployment.
pub fn characterize(
    model: &mut Model,
    val: &Dataset,
    label: &str,
) -> (Characteristics, DeployedModel) {
    let accuracy = evaluate(model, val, 32);
    let dm = deploy(model, val, iprune_hawaii::deploy::DEFAULT_CALIBRATION);
    let ch = Characteristics {
        label: label.to_string(),
        accuracy,
        size_bytes: dm.reported_size_bytes(),
        macs: dm.total_macs(),
        acc_outputs: dm.total_acc_outputs(),
    };
    (ch, dm)
}

/// Top-1 accuracy of the *deployed quantized* model over the first `n`
/// samples of `ds`, executed by the continuous-mode engine.
pub fn quantized_accuracy(dm: &DeployedModel, ds: &Dataset, n: usize) -> f64 {
    let n = n.min(ds.len());
    let mut correct = 0usize;
    for i in 0..n {
        let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
        let out = infer(dm, &ds.sample(i), &mut sim, ExecMode::Continuous)
            .expect("continuous power cannot fail");
        if out.argmax == ds.labels()[i] {
            correct += 1;
        }
    }
    correct as f64 / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::train::{train_sgd, TrainConfig};
    use iprune_models::zoo::App;

    #[test]
    fn characterize_unpruned_har() {
        let mut m = App::Har.build();
        let val = App::Har.dataset(40, 5);
        let (ch, dm) = characterize(&mut m, &val, "Unpruned");
        assert_eq!(ch.label, "Unpruned");
        assert!(ch.size_bytes > 20_000 && ch.size_bytes < 32_000);
        assert!(ch.acc_outputs > 50_000);
        assert_eq!(ch.acc_outputs, dm.total_acc_outputs());
        assert!(!ch.row().is_empty());
    }

    #[test]
    fn quantized_accuracy_tracks_float() {
        let mut m = App::Har.build();
        let train = App::Har.dataset(180, 6);
        let val = App::Har.dataset(36, 7);
        train_sgd(&mut m, &train, &TrainConfig { epochs: 3, ..Default::default() });
        let (ch, dm) = characterize(&mut m, &val, "Unpruned");
        let qacc = quantized_accuracy(&dm, &val, 36);
        assert!((qacc - ch.accuracy).abs() < 0.12, "quantized {qacc} vs float {}", ch.accuracy);
    }
}
