//! Pruning criteria: what "importance for the objective" means.
//!
//! iPrune's criterion is the number of accelerator outputs (Section III-B).
//! The ePrune baseline uses per-layer energy the way an energy-aware pruning
//! framework for continuously-powered systems would (NVM reads + MACs, since
//! such systems accumulate outputs in VM). Magnitude is the classic
//! hardware-oblivious baseline used in the granularity ablation.

use iprune_device::energy::EnergyModel;
use iprune_device::timing::TimingModel;
use iprune_hawaii::LayerPlan;

/// The objective a pruning run optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Criterion {
    /// iPrune: minimize accelerator outputs (progress-preservation and
    /// recovery cost on intermittent systems).
    AccOutputs,
    /// ePrune: minimize continuous-system energy (MACs + weight fetches).
    Energy,
    /// Magnitude: no hardware objective; remove smallest weights.
    Magnitude,
}

impl Criterion {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Criterion::AccOutputs => "iPrune",
            Criterion::Energy => "ePrune",
            Criterion::Magnitude => "mPrune",
        }
    }
}

/// Per-inference cost of one weight block of a layer under a criterion.
///
/// `rows` is the number of output features the block covers (edge blocks
/// may cover fewer than `br`).
pub fn block_cost(
    criterion: Criterion,
    plan: &LayerPlan,
    rows: usize,
    timing: &TimingModel,
    energy: &EnergyModel,
) -> f64 {
    match criterion {
        Criterion::AccOutputs => (plan.n_spatial * rows) as f64,
        Criterion::Energy => {
            let macs = plan.n_spatial * rows * plan.tile.bc;
            let strips = plan.n_spatial.div_ceil(plan.tile.strip);
            let weight_bytes = 2 * plan.tile.br * plan.tile.bc * strips;
            macs as f64 * energy.e_mac_j(timing)
                + weight_bytes as f64 * energy.e_nvm_read_byte_j(timing)
        }
        Criterion::Magnitude => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_models::zoo::App;

    #[test]
    fn acc_output_cost_sums_to_dense_count() {
        let m = App::Har.build();
        let timing = TimingModel::default();
        let energy = EnergyModel::default();
        for p in &m.info.prunables {
            let plan = LayerPlan::for_layer(p);
            let mut total = 0.0;
            for rb in 0..plan.row_blocks() {
                let rows = plan.rows_in_block(rb);
                total += plan.chunks() as f64
                    * block_cost(Criterion::AccOutputs, &plan, rows, &timing, &energy);
            }
            assert_eq!(total as usize, plan.dense_acc_outputs(), "{}", p.name);
        }
    }

    #[test]
    fn energy_cost_positive_and_scales_with_rows() {
        let m = App::Cks.build();
        let plan = LayerPlan::for_layer(&m.info.prunables[0]);
        let timing = TimingModel::default();
        let energy = EnergyModel::default();
        let one = block_cost(Criterion::Energy, &plan, 1, &timing, &energy);
        let eight = block_cost(Criterion::Energy, &plan, 8, &timing, &energy);
        assert!(one > 0.0);
        assert!(eight > one);
    }

    #[test]
    fn magnitude_has_no_hardware_cost() {
        let m = App::Har.build();
        let plan = LayerPlan::for_layer(&m.info.prunables[0]);
        let c = block_cost(
            Criterion::Magnitude,
            &plan,
            4,
            &TimingModel::default(),
            &EnergyModel::default(),
        );
        assert_eq!(c, 0.0);
    }
}
