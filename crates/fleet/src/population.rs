//! Parameterized device populations, sampled deterministically from a seed.
//!
//! A fleet cell is (workload × harvest profile × device variant); inside a
//! cell, every device is an independent draw: its capacitor size, turn-on /
//! turn-off thresholds, and FRAM latency are sampled from the variant's
//! ranges, and seeded harvest traces (solar, RF bursts, thermal drift) get
//! a per-device seed, so no two devices see the same clouds.
//!
//! Determinism is the load-bearing property: a device's parameters depend
//! *only* on `(campaign_seed, cell index, device index)` via a SplitMix64
//! chain — never on which shard or worker thread simulates it — so any
//! partition of the population produces the same per-device draws and,
//! with the exact aggregators of [`crate::agg`], byte-identical reports.

use iprune_device::energy::EnergyModel;
use iprune_device::power::{PowerStrength, PowerTrace, Supply};
use iprune_device::sim::DeviceSim;
use iprune_device::spec::DeviceSpec;
use iprune_device::timing::TimingModel;

/// SplitMix64 finalizer — the same mixing core the device's seeded traces
/// use; full-avalanche so adjacent indices decorrelate.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-device seed from the campaign seed and the device's global
/// coordinates. Partition-independent by construction.
pub fn device_seed(campaign_seed: u64, cell: u64, device: u64) -> u64 {
    splitmix(splitmix(splitmix(campaign_seed ^ 0xF1EE_7CA4) ^ cell) ^ device)
}

/// Uniform draw in `[lo, hi)` from one lane of a device seed.
fn uniform(seed: u64, lane: u64, lo: f64, hi: f64) -> f64 {
    let frac = (splitmix(seed ^ lane.wrapping_mul(0xA24B_AED4_963E_E407)) >> 11) as f64
        / (1u64 << 53) as f64;
    lo + (hi - lo) * frac
}

/// An ambient energy-harvesting profile. Constant profiles are shared by
/// the whole cell; trace profiles are re-instantiated per device with a
/// derived seed.
#[derive(Debug, Clone, PartialEq)]
pub enum Harvest {
    /// Constant input power (the paper's strong/weak operating points).
    Constant {
        /// Display label, e.g. `"strong (8 mW)"`.
        label: &'static str,
        /// Input power in watts.
        watts: f64,
    },
    /// Solar day/night trace (see [`PowerTrace::solar`]).
    Solar {
        /// Peak daytime power in watts.
        peak_w: f64,
        /// Day+night period in seconds.
        period_s: f64,
        /// Samples per period.
        samples: usize,
    },
    /// RF energy bursts (see [`PowerTrace::rf_bursts`]).
    RfBursts {
        /// Burst power in watts.
        peak_w: f64,
        /// Idle floor in watts.
        idle_w: f64,
        /// Trace period in seconds.
        period_s: f64,
        /// Samples per period.
        samples: usize,
        /// Samples per burst window.
        burst_len: usize,
    },
    /// Slow thermal-gradient drift (see [`PowerTrace::thermal_drift`]).
    ThermalDrift {
        /// Mean power in watts.
        base_w: f64,
        /// Sinusoidal swing amplitude in watts.
        swing_w: f64,
        /// Drift period in seconds.
        period_s: f64,
        /// Samples per period.
        samples: usize,
    },
}

impl Harvest {
    /// Stable display label (cell key component in reports).
    pub fn label(&self) -> &'static str {
        match self {
            Harvest::Constant { label, .. } => label,
            Harvest::Solar { .. } => "solar trace",
            Harvest::RfBursts { .. } => "rf bursts",
            Harvest::ThermalDrift { .. } => "thermal drift",
        }
    }

    /// Instantiates the supply for one device. Constant profiles ignore
    /// the seed; trace profiles derive per-device weather from it.
    pub fn supply_for(&self, device_seed: u64) -> Supply {
        match *self {
            Harvest::Constant { watts, .. } => Supply::Constant(watts),
            Harvest::Solar { peak_w, period_s, samples } => {
                Supply::Trace(PowerTrace::solar(peak_w, period_s, samples, device_seed))
            }
            Harvest::RfBursts { peak_w, idle_w, period_s, samples, burst_len } => Supply::Trace(
                PowerTrace::rf_bursts(peak_w, idle_w, period_s, samples, burst_len, device_seed),
            ),
            Harvest::ThermalDrift { base_w, swing_w, period_s, samples } => Supply::Trace(
                PowerTrace::thermal_drift(base_w, swing_w, period_s, samples, device_seed),
            ),
        }
    }

    /// The fleet's standard harvest sweep: the paper's two constant
    /// operating points plus the three seeded trace families. Constants
    /// match [`PowerStrength`] so fleet, fig5, and the fault campaigns
    /// share one source of truth.
    pub fn default_sweep() -> Vec<Harvest> {
        vec![
            Harvest::Constant { label: "strong (8 mW)", watts: PowerStrength::Strong.watts() },
            Harvest::Constant { label: "weak (4 mW)", watts: PowerStrength::Weak.watts() },
            // same shape as `iprune_device::power::solar_trace()` but
            // per-device seeded
            Harvest::Solar { peak_w: 8.0e-3, period_s: 2.0, samples: 64 },
            Harvest::RfBursts {
                peak_w: 20.0e-3,
                idle_w: 1.0e-3,
                period_s: 1.0,
                samples: 64,
                burst_len: 4,
            },
            Harvest::ThermalDrift { base_w: 5.0e-3, swing_w: 2.0e-3, period_s: 4.0, samples: 64 },
        ]
    }
}

/// Manufacturing/deployment spread of one hardware bin: each device draws
/// its parameters uniformly from these ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceVariant {
    /// Variant name (cell key component in reports).
    pub name: &'static str,
    /// Buffer capacitance range in farads.
    pub capacitance_f: (f64, f64),
    /// Turn-on threshold range in volts.
    pub v_on: (f64, f64),
    /// Turn-off threshold range in volts (clamped below the drawn V_on).
    pub v_off: (f64, f64),
    /// Multiplier range applied to FRAM per-byte read/write latency.
    pub fram_mult: (f64, f64),
}

impl DeviceVariant {
    /// Tight spread around the paper's MSP430FR5994 + 100 µF reference.
    pub fn nominal() -> Self {
        Self {
            name: "nominal",
            capacitance_f: (90.0e-6, 110.0e-6),
            v_on: (2.75, 2.85),
            v_off: (2.35, 2.45),
            fram_mult: (0.95, 1.05),
        }
    }

    /// Smaller buffer capacitor: more power cycles per inference.
    pub fn small_cap() -> Self {
        Self { capacitance_f: (55.0e-6, 75.0e-6), name: "small-cap", ..Self::nominal() }
    }

    /// Larger buffer capacitor: longer recharges, fewer cycles.
    pub fn big_cap() -> Self {
        Self { capacitance_f: (180.0e-6, 220.0e-6), name: "big-cap", ..Self::nominal() }
    }

    /// Slow FRAM part: 2–3× per-byte latency, stressing write-dominated
    /// progress preservation.
    pub fn slow_fram() -> Self {
        Self { fram_mult: (2.0, 3.0), name: "slow-fram", ..Self::nominal() }
    }

    /// The fleet's standard variant set.
    pub fn default_set() -> Vec<DeviceVariant> {
        vec![Self::nominal(), Self::small_cap(), Self::big_cap(), Self::slow_fram()]
    }

    /// Draws one device's spec and timing from the ranges. Deterministic
    /// in `device_seed` alone.
    pub fn sample(&self, device_seed: u64) -> (DeviceSpec, TimingModel) {
        let mut spec = DeviceSpec::msp430fr5994();
        spec.capacitance_f = uniform(device_seed, 1, self.capacitance_f.0, self.capacitance_f.1);
        spec.v_on = uniform(device_seed, 2, self.v_on.0, self.v_on.1);
        // keep a real hysteresis window even at extreme draws
        spec.v_off = uniform(device_seed, 3, self.v_off.0, self.v_off.1).min(spec.v_on - 0.1);
        let mult = uniform(device_seed, 4, self.fram_mult.0, self.fram_mult.1);
        let mut timing = TimingModel::default();
        timing.nvm_read_byte_s *= mult;
        timing.nvm_write_byte_s *= mult;
        (spec, timing)
    }
}

/// One fully sampled device, ready to simulate.
#[derive(Debug, Clone)]
pub struct SampledDevice {
    /// Hardware parameters drawn from the variant ranges.
    pub spec: DeviceSpec,
    /// FRAM-latency-adjusted timing model.
    pub timing: TimingModel,
    /// The device's (possibly seeded-trace) supply.
    pub supply: Supply,
    /// Seed handed to the simulator (initial charge draw).
    pub sim_seed: u64,
}

impl SampledDevice {
    /// Builds the simulator for this device.
    pub fn build_sim(&self) -> DeviceSim {
        DeviceSim::with_models_and_supply(
            self.spec.clone(),
            self.timing.clone(),
            EnergyModel::default(),
            self.supply.clone(),
            self.sim_seed,
        )
    }
}

/// The population half of a fleet campaign: which harvest profiles and
/// hardware variants to cross, how many devices per cell, and the master
/// seed everything derives from.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Harvest profiles (cell axis 1).
    pub harvests: Vec<Harvest>,
    /// Device variants (cell axis 2).
    pub variants: Vec<DeviceVariant>,
    /// Devices drawn per (workload × harvest × variant) cell.
    pub devices_per_cell: u64,
    /// Master campaign seed.
    pub seed: u64,
}

impl PopulationSpec {
    /// The standard fleet cross: 5 harvest profiles × 4 variants.
    pub fn default_fleet(devices_per_cell: u64, seed: u64) -> Self {
        Self {
            harvests: Harvest::default_sweep(),
            variants: DeviceVariant::default_set(),
            devices_per_cell,
            seed,
        }
    }

    /// Samples device `device` of the cell with global index `cell`
    /// (harvest `h`, variant `v`). The draw depends only on
    /// `(seed, cell, device)`.
    pub fn sample(&self, cell: u64, h: usize, v: usize, device: u64) -> SampledDevice {
        let ds = device_seed(self.seed, cell, device);
        let (spec, timing) = self.variants[v].sample(ds);
        let supply = self.harvests[h].supply_for(splitmix(ds ^ 0x5EED_7EA2));
        // a nonzero sim seed draws away up to 50% of the initial charge
        let sim_seed = splitmix(ds ^ 0xCAB1_E0FF) | 1;
        SampledDevice { spec, timing, supply, sim_seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_fleet_crosses_harvests_and_variants() {
        let pop = PopulationSpec::default_fleet(10, 7);
        assert_eq!(pop.harvests.len(), 5);
        assert_eq!(pop.variants.len(), 4);
        let labels: Vec<_> = pop.harvests.iter().map(|h| h.label()).collect();
        assert!(labels.contains(&"strong (8 mW)"));
        assert!(labels.contains(&"solar trace"));
        assert!(labels.contains(&"rf bursts"));
        assert!(labels.contains(&"thermal drift"));
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let pop = PopulationSpec::default_fleet(10, 7);
        let a = pop.sample(3, 2, 1, 5);
        let b = pop.sample(3, 2, 1, 5);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.timing, b.timing);
        assert_eq!(a.supply, b.supply);
        assert_eq!(a.sim_seed, b.sim_seed);

        let other = PopulationSpec { seed: 8, ..pop.clone() };
        let c = other.sample(3, 2, 1, 5);
        assert_ne!(a.spec, c.spec, "campaign seed must reshuffle the draws");
    }

    #[test]
    fn devices_in_a_cell_differ() {
        let pop = PopulationSpec::default_fleet(10, 7);
        let a = pop.sample(0, 2, 0, 0); // solar harvest: per-device trace
        let b = pop.sample(0, 2, 0, 1);
        assert_ne!(a.spec, b.spec);
        assert_ne!(a.supply, b.supply, "trace harvests must differ per device");
    }

    proptest! {
        #[test]
        fn draws_stay_inside_the_variant_ranges(seed in any::<u64>(), device in 0u64..1000) {
            for variant in DeviceVariant::default_set() {
                let ds = device_seed(seed, 0, device);
                let (spec, timing) = variant.sample(ds);
                prop_assert!(spec.capacitance_f >= variant.capacitance_f.0);
                prop_assert!(spec.capacitance_f < variant.capacitance_f.1);
                prop_assert!(spec.v_on >= variant.v_on.0 && spec.v_on < variant.v_on.1);
                prop_assert!(spec.v_off < spec.v_on, "hysteresis window collapsed");
                prop_assert!(spec.energy_span_j() > 0.0);
                let base = TimingModel::default();
                let mult = timing.nvm_read_byte_s / base.nvm_read_byte_s;
                prop_assert!(mult >= variant.fram_mult.0 * 0.999);
                prop_assert!(mult <= variant.fram_mult.1 * 1.001);
            }
        }

        #[test]
        fn device_seed_is_partition_independent(seed in any::<u64>(),
                                                cell in 0u64..64,
                                                device in 0u64..100_000) {
            // the seed is a pure function of global coordinates — computing
            // it twice (as two different shards would) agrees
            prop_assert_eq!(device_seed(seed, cell, device), device_seed(seed, cell, device));
            // and neighboring devices decorrelate
            prop_assert_ne!(device_seed(seed, cell, device), device_seed(seed, cell, device + 1));
        }
    }
}
