//! Sharded fleet-campaign execution.
//!
//! A campaign crosses recorded workloads with a [`PopulationSpec`] into
//! cells, splits each cell's device range into fixed-size shards, and fans
//! the (cell × shard) task list out over the `iprune_tensor::par` worker
//! pool. Each shard simulates its devices in index order and folds them
//! into one [`CellAgg`]; shard results are then merged per cell **in shard
//! order**, which together with the exact integer aggregators makes the
//! final report independent of both the thread count (par_map returns in
//! index order) and the shard size (integer merges are associative).
//!
//! Peak memory is O(number of shards): a shard's working state is one
//! simulator plus one [`CellAgg`] (~30 KB), never the per-device samples.

use crate::agg::StreamStat;
use crate::population::PopulationSpec;
use crate::report::{CellRow, FleetReport};
use crate::workload::{replay, ReplayOutcome, Workload};
use iprune_faults::RunOutcome;
use iprune_obs::metrics;
use iprune_tensor::par;

/// Streaming aggregate of one fleet cell. Per-device metrics are quantized
/// to integers at the source (nanoseconds, parts-per-million) so every
/// downstream reduction is exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellAgg {
    /// Devices simulated.
    pub devices: u64,
    /// Devices whose inference completed.
    pub completed: u64,
    /// Devices that hit the job retry cap (livelock).
    pub livelocked: u64,
    /// Devices whose energy budget can never fit an activity.
    pub nonterminated: u64,
    /// End-to-end latency (ns), completed devices only.
    pub latency_ns: StreamStat,
    /// Powered share of wall time (ppm), completed devices only.
    pub availability_ppm: StreamStat,
    /// Natural power failures per device, completed devices only.
    pub power_cycles: StreamStat,
    /// Job re-executions per device, completed devices only.
    pub retries: StreamStat,
    /// Worst single off-time per device (ns), completed devices only.
    /// `availability_ppm` already captures the *total* stall share (its
    /// complement), so this adds the orthogonal signal: one long blackout
    /// vs many short brown-outs.
    pub max_stall_ns: StreamStat,
}

impl CellAgg {
    /// Latency in nanoseconds, rounded — the integer the fleet aggregates.
    pub fn quantize_latency_ns(latency_s: f64) -> u64 {
        (latency_s * 1e9).round() as u64
    }

    /// Powered share of wall time in parts-per-million.
    pub fn quantize_availability_ppm(charging_s: f64, total_s: f64) -> u64 {
        if total_s <= 0.0 {
            return 1_000_000;
        }
        ((1.0 - charging_s / total_s) * 1e6).round().clamp(0.0, 1e6) as u64
    }

    /// Folds one completed device in.
    pub fn record_completed(&mut self, out: &ReplayOutcome) {
        self.devices += 1;
        self.completed += 1;
        self.latency_ns.record(Self::quantize_latency_ns(out.latency_s));
        self.availability_ppm
            .record(Self::quantize_availability_ppm(out.charging_s, out.latency_s));
        self.power_cycles.record(out.power_cycles);
        self.retries.record(out.retries);
        self.max_stall_ns.record(Self::quantize_latency_ns(out.max_stall_s));
    }

    /// Folds one failed device in, by structured outcome.
    pub fn record_failed(&mut self, outcome: &RunOutcome) {
        self.devices += 1;
        match outcome {
            RunOutcome::Livelock { .. } => self.livelocked += 1,
            RunOutcome::Nontermination { .. } => self.nonterminated += 1,
            // replay cannot produce the remaining variants (no differential
            // oracle runs fleet-side); count them as nontermination-class
            // failures rather than dropping them
            _ => self.nonterminated += 1,
        }
    }

    /// Merges another cell aggregate in — exact, associative, commutative.
    pub fn merge(&mut self, other: &CellAgg) {
        self.devices += other.devices;
        self.completed += other.completed;
        self.livelocked += other.livelocked;
        self.nonterminated += other.nonterminated;
        self.latency_ns.merge(&other.latency_ns);
        self.availability_ppm.merge(&other.availability_ppm);
        self.power_cycles.merge(&other.power_cycles);
        self.retries.merge(&other.retries);
        self.max_stall_ns.merge(&other.max_stall_ns);
    }
}

/// A full fleet campaign: workloads × population, with a shard size that
/// tiles every cell's device range.
#[derive(Debug, Clone)]
pub struct FleetCampaign {
    /// The device population model.
    pub population: PopulationSpec,
    /// Devices per shard (the unit of parallel work). Must be > 0;
    /// independent of the worker-thread count by design.
    pub shard_size: u64,
}

impl FleetCampaign {
    /// Runs the campaign and assembles the deterministic report.
    pub fn run(&self, workloads: &[Workload]) -> FleetReport {
        assert!(self.shard_size > 0, "shard size must be positive");
        assert!(!workloads.is_empty(), "a campaign needs at least one workload");
        let pop = &self.population;
        let n_cells = workloads.len() * pop.harvests.len() * pop.variants.len();
        let shards_per_cell = pop.devices_per_cell.div_ceil(self.shard_size);

        // the global task list: every (cell, shard) pair
        struct Task {
            cell: usize,
            w: usize,
            h: usize,
            v: usize,
            first: u64,
            count: u64,
        }
        let mut tasks = Vec::with_capacity(n_cells * shards_per_cell as usize);
        let mut cell = 0usize;
        for w in 0..workloads.len() {
            for h in 0..pop.harvests.len() {
                for v in 0..pop.variants.len() {
                    for s in 0..shards_per_cell {
                        let first = s * self.shard_size;
                        let count = self.shard_size.min(pop.devices_per_cell - first);
                        tasks.push(Task { cell, w, h, v, first, count });
                    }
                    cell += 1;
                }
            }
        }

        let t0 = std::time::Instant::now();
        // one flat fan-out: results come back in task order regardless of
        // the thread count
        let shard_aggs = par::par_map(tasks.len(), |i| {
            let t = &tasks[i];
            run_shard(&workloads[t.w], pop, t.cell as u64, t.h, t.v, t.first, t.count)
        });
        let wall_s = t0.elapsed().as_secs_f64();

        // fold shard results per cell, in shard (= task) order
        let mut cell_aggs: Vec<CellAgg> = vec![CellAgg::default(); n_cells];
        for (t, agg) in tasks.iter().zip(&shard_aggs) {
            cell_aggs[t.cell].merge(agg);
        }

        let mut rows = Vec::with_capacity(n_cells);
        let mut idx = 0usize;
        for w in workloads {
            for h in &pop.harvests {
                for v in &pop.variants {
                    rows.push(CellRow {
                        workload: w.name.clone(),
                        harvest: h.label().to_string(),
                        variant: v.name.to_string(),
                        agg: std::mem::take(&mut cell_aggs[idx]),
                    });
                    idx += 1;
                }
            }
        }

        let total_devices = n_cells as u64 * pop.devices_per_cell;
        metrics::counter("fleet.devices").add(total_devices);
        metrics::counter("fleet.shards").add(tasks.len() as u64);
        metrics::counter("fleet.cells").add(n_cells as u64);
        metrics::counter("fleet.livelocks").add(rows.iter().map(|r| r.agg.livelocked).sum::<u64>());
        metrics::counter("fleet.nonterminations")
            .add(rows.iter().map(|r| r.agg.nonterminated).sum::<u64>());

        FleetReport {
            seed: pop.seed,
            devices_per_cell: pop.devices_per_cell,
            shard_size: self.shard_size,
            shards: tasks.len() as u64,
            devices: total_devices,
            cells: rows,
            wall_s,
        }
    }
}

/// Simulates one shard's device range and folds it into a [`CellAgg`].
fn run_shard(
    w: &Workload,
    pop: &PopulationSpec,
    cell: u64,
    h: usize,
    v: usize,
    first: u64,
    count: u64,
) -> CellAgg {
    let mut agg = CellAgg::default();
    for d in first..first + count {
        let device = pop.sample(cell, h, v, d);
        let mut sim = device.build_sim();
        match replay(w, &mut sim) {
            Ok(out) => agg.record_completed(&out),
            Err(outcome) => agg.record_failed(&outcome),
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{DeviceVariant, Harvest};

    fn synthetic_outcome(latency_s: f64, cycles: u64) -> ReplayOutcome {
        ReplayOutcome {
            latency_s,
            power_cycles: cycles,
            retries: cycles,
            charging_s: latency_s * 0.25,
            max_stall_s: latency_s * 0.05,
            stats: Default::default(),
        }
    }

    #[test]
    fn cell_agg_merge_is_exact() {
        let outs: Vec<ReplayOutcome> =
            (0..100).map(|i| synthetic_outcome(0.01 * (i + 1) as f64, i)).collect();
        let mut whole = CellAgg::default();
        for o in &outs {
            whole.record_completed(o);
        }
        for split in [0usize, 1, 37, 50, 99, 100] {
            let mut a = CellAgg::default();
            let mut b = CellAgg::default();
            for o in &outs[..split] {
                a.record_completed(o);
            }
            for o in &outs[split..] {
                b.record_completed(o);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {split} diverged");
        }
    }

    #[test]
    fn quantizers_are_stable() {
        assert_eq!(CellAgg::quantize_latency_ns(1.5), 1_500_000_000);
        assert_eq!(CellAgg::quantize_availability_ppm(0.0, 2.0), 1_000_000);
        assert_eq!(CellAgg::quantize_availability_ppm(1.0, 2.0), 500_000);
        assert_eq!(CellAgg::quantize_availability_ppm(0.0, 0.0), 1_000_000);
    }

    #[test]
    fn failed_devices_land_in_outcome_counts() {
        let mut agg = CellAgg::default();
        agg.record_failed(&RunOutcome::Livelock { layer: 1, tile_jobs: 1, cut_period: None });
        agg.record_failed(&RunOutcome::Nontermination { description: "x".into() });
        assert_eq!(agg.devices, 2);
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.livelocked, 1);
        assert_eq!(agg.nonterminated, 1);
        assert_eq!(agg.latency_ns.count, 0, "failed devices carry no latency sample");
    }

    #[test]
    fn task_tiling_covers_every_device_once() {
        // tiny synthetic workload so the campaign is cheap
        let w = Workload {
            name: "synthetic".into(),
            activities: vec![crate::workload::Activity::Cpu { cycles: 100 }],
            jobs: 0,
            nominal_latency_s: 0.0,
        };
        let campaign = FleetCampaign {
            population: PopulationSpec {
                harvests: vec![Harvest::Constant { label: "strong (8 mW)", watts: 8.0e-3 }],
                variants: vec![DeviceVariant::nominal()],
                devices_per_cell: 23,
                seed: 1,
            },
            shard_size: 5, // 23 = 4*5 + 3: exercises the ragged tail shard
        };
        let report = campaign.run(&[w]);
        assert_eq!(report.devices, 23);
        assert_eq!(report.shards, 5);
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].agg.devices, 23);
        assert_eq!(report.cells[0].agg.completed, 23);
    }
}
