//! Workload record/replay: one traced inference, replayed fleet-wide.
//!
//! Simulating 100k+ devices through the full engine would re-run the same
//! functional compute (GEMMs, requantization) 100k times even though the
//! *numbers* are identical on every device — only the *timing/energy*
//! trajectory differs. So the fleet records the engine's device-activity
//! stream once per model (via the trace sink, under continuous power where
//! nothing fails) and replays just the activities against each sampled
//! simulator.
//!
//! Replay is exact, not approximate: [`replay`] mirrors the engine's
//! commit/retry protocol instruction for instruction — blocking
//! reads/writes/CPU work retry internally inside the simulator, accelerator
//! jobs loop `read → job → recover(recovery_bytes)` until they commit, and
//! the same retry cap guards against livelock. The
//! `replay_matches_full_engine_*` tests pin bit-identical latency and
//! `SimStats` against [`infer`] under failing supplies.
//!
//! Recording inverts the trace exactly: a [`TraceEvent::NvmRead`]
//! immediately followed by its [`TraceEvent::JobCommit`] is the engine's
//! `commit_job` read+job pair and fuses into one [`Activity::Job`];
//! standalone reads/writes/CPU work map 1:1. Job CPU cycles are recovered
//! from the committed `cpu_s` through the recorder's [`TimingModel`]
//! (exact: the committed time is `cycles · cpu_cycle_s`).

use iprune_device::sim::{Commit, DeviceSim, JobCost, SimError};
use iprune_device::timing::TimingModel;
use iprune_device::trace::SimStats;
use iprune_device::PowerStrength;
use iprune_faults::RunOutcome;
use iprune_hawaii::deploy::DeployedModel;
use iprune_hawaii::exec::{infer, EngineError, ExecMode};
use iprune_models::GraphOp;
use iprune_obs::{drain_shared, MemorySink, TraceEvent};
use iprune_tensor::Tensor;

/// Mirror of the engine's per-job retry cap (`MAX_RETRIES_PER_JOB` in
/// `iprune_hawaii::exec`): a job that fails this often can never commit
/// under a periodic failure pattern and is reported as a livelock.
pub const MAX_RETRIES_PER_JOB: u32 = 10_000;

/// One recorded device activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activity {
    /// Blocking NVM read (tile inputs, bias words) — retried internally.
    Read {
        /// Transfer size in bytes.
        bytes: usize,
    },
    /// Blocking NVM write outside progress preservation.
    Write {
        /// Transfer size in bytes.
        bytes: usize,
    },
    /// Blocking CPU work (pooling, requantization index math).
    Cpu {
        /// CPU cycles.
        cycles: usize,
    },
    /// One committed accelerator job with its paired input fetch and
    /// recovery footprint — replayed through the engine's retry protocol.
    Job {
        /// Bytes fetched before each attempt (0 for write-back jobs).
        read_bytes: usize,
        /// The accelerator job cost.
        cost: JobCost,
        /// Bytes re-fetched by `recover` after a failed attempt.
        recovery_bytes: usize,
        /// Layer id owning the job (livelock reporting).
        layer: usize,
    },
}

/// A recorded inference workload: the model's full device-activity stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload label (model name).
    pub name: String,
    /// The activity stream, in engine order.
    pub activities: Vec<Activity>,
    /// Number of accelerator jobs in the stream.
    pub jobs: u64,
    /// Nominal (continuous-power) latency of the recording run.
    pub nominal_latency_s: f64,
}

/// What one device did with the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// End-to-end inference latency on this device (s).
    pub latency_s: f64,
    /// Natural power failures suffered.
    pub power_cycles: u64,
    /// Job re-executions (failed attempts) across the run.
    pub retries: u64,
    /// Time spent off, waiting for the capacitor to refill (s).
    pub charging_s: f64,
    /// Longest single off-time (s) — the worst stall, vs `charging_s`
    /// which sums them all.
    pub max_stall_s: f64,
    /// Full simulator statistics.
    pub stats: SimStats,
}

/// Records `dm`'s activity stream by tracing one intermittent-mode
/// inference under continuous power (where no failure can perturb the
/// stream).
///
/// # Panics
///
/// Panics if the engine fails under continuous bench power — that would be
/// a bug, not a fleet outcome.
pub fn record_workload(dm: &DeployedModel, input: &Tensor) -> Workload {
    let sink = MemorySink::shared();
    let mut sim = DeviceSim::new(PowerStrength::Continuous, 0);
    sim.set_trace_sink(sink.clone());
    let out = infer(dm, input, &mut sim, ExecMode::Intermittent)
        .expect("recording run under continuous power cannot fail");
    let events = drain_shared(&sink);
    let timing = sim.timing().clone();
    let activities = events_to_activities(dm, &events, &timing);
    let jobs = activities.iter().filter(|a| matches!(a, Activity::Job { .. })).count() as u64;
    assert_eq!(jobs, out.jobs, "every committed job must be recovered from the trace");
    Workload { name: dm.info.name.to_string(), activities, jobs, nominal_latency_s: out.latency_s }
}

/// Inverts a failure-free trace into the activity stream that produced it.
fn events_to_activities(
    dm: &DeployedModel,
    events: &[TraceEvent],
    timing: &TimingModel,
) -> Vec<Activity> {
    let mut acts = Vec::new();
    // recovery footprint of the layer currently executing (engine recovery
    // re-fetches per-layer state, see `DeployedLayer::recovery_bytes`)
    let mut recovery_bytes = 0usize;
    let mut layer = 0usize;
    // a pending NvmRead fuses with an immediately following JobCommit
    let mut pending_read: Option<usize> = None;
    for ev in events {
        match ev {
            TraceEvent::LayerStart { op, .. } => {
                if let Some(e) = pending_read.take() {
                    acts.push(Activity::Read { bytes: e });
                }
                match &dm.info.graph[*op as usize] {
                    GraphOp::Conv { layer_id, .. } | GraphOp::Fc { layer_id, .. } => {
                        layer = *layer_id;
                        recovery_bytes = dm.layers[*layer_id].recovery_bytes();
                    }
                    _ => {}
                }
            }
            TraceEvent::NvmRead { bytes, .. } => {
                if let Some(e) = pending_read.take() {
                    acts.push(Activity::Read { bytes: e });
                }
                pending_read = Some(*bytes as usize);
            }
            TraceEvent::JobCommit { cpu_s, write_bytes, macs, .. } => {
                let read_bytes = pending_read.take().unwrap_or(0);
                // exact inverse of `TimingModel::cpu_s`
                let cpu_cycles = (cpu_s / timing.cpu_cycle_s).round() as usize;
                acts.push(Activity::Job {
                    read_bytes,
                    cost: JobCost {
                        lea_macs: *macs as usize,
                        preserve_bytes: *write_bytes as usize,
                        cpu_cycles,
                    },
                    recovery_bytes,
                    layer,
                });
            }
            TraceEvent::NvmWrite { bytes, .. } => {
                if let Some(e) = pending_read.take() {
                    acts.push(Activity::Read { bytes: e });
                }
                acts.push(Activity::Write { bytes: *bytes as usize });
            }
            TraceEvent::CpuWork { cycles, .. } => {
                if let Some(e) = pending_read.take() {
                    acts.push(Activity::Read { bytes: e });
                }
                acts.push(Activity::Cpu { cycles: *cycles as usize });
            }
            _ => {}
        }
    }
    if let Some(e) = pending_read.take() {
        acts.push(Activity::Read { bytes: e });
    }
    acts
}

/// Replays a recorded workload on `sim`, mirroring the engine's
/// commit/retry protocol exactly.
///
/// # Errors
///
/// Returns the structured [`RunOutcome`] of the failure: `Livelock` when a
/// job exceeds the retry cap, `Nontermination` when an activity can never
/// fit in one power cycle's energy budget.
pub fn replay(w: &Workload, sim: &mut DeviceSim) -> Result<ReplayOutcome, RunOutcome> {
    let t0 = sim.now();
    let mut retries = 0u64;
    for act in &w.activities {
        match *act {
            Activity::Read { bytes } => sim.run_read(bytes).map_err(sim_outcome)?,
            Activity::Write { bytes } => sim.run_write(bytes).map_err(sim_outcome)?,
            Activity::Cpu { cycles } => sim.run_cpu(cycles).map_err(sim_outcome)?,
            Activity::Job { read_bytes, cost, recovery_bytes, layer } => {
                let mut job_retries = 0u32;
                loop {
                    sim.run_read(read_bytes).map_err(sim_outcome)?;
                    match sim.run_job(cost).map_err(sim_outcome)? {
                        Commit::Committed => break,
                        Commit::PowerFailed => {
                            sim.recover(recovery_bytes).map_err(sim_outcome)?;
                            retries += 1;
                            job_retries += 1;
                            if job_retries > MAX_RETRIES_PER_JOB {
                                // job-granular commit: the atomic span is one job
                                return Err(RunOutcome::Livelock {
                                    layer,
                                    tile_jobs: 1,
                                    cut_period: None,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    let stats = sim.stats().clone();
    Ok(ReplayOutcome {
        latency_s: sim.now() - t0,
        power_cycles: stats.power_cycles,
        retries,
        charging_s: stats.charging_s,
        max_stall_s: sim.max_stall_s(),
        stats,
    })
}

/// Maps a simulator error onto the shared campaign outcome vocabulary.
fn sim_outcome(e: SimError) -> RunOutcome {
    RunOutcome::from_engine_error(&EngineError::Sim(e), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iprune_device::power::{PowerTrace, Supply};
    use iprune_device::sim::DeviceSim;
    use iprune_hawaii::deploy::deploy;
    use iprune_models::zoo::App;

    fn har_workload() -> (DeployedModel, Tensor) {
        let mut model = App::Har.build();
        let ds = App::Har.dataset(4, 42);
        let dm = deploy(&mut model, &ds, 2);
        let x = ds.sample(0);
        (dm, x)
    }

    #[test]
    fn recording_inverts_the_trace() {
        let (dm, x) = har_workload();
        let w = record_workload(&dm, &x);
        assert_eq!(w.name, dm.info.name);
        assert!(w.jobs > 0, "no jobs recovered");
        assert!(w.nominal_latency_s > 0.0);
        // write-back jobs carry no read; chunk jobs do
        let with_read = w
            .activities
            .iter()
            .filter(|a| matches!(a, Activity::Job { read_bytes, .. } if *read_bytes > 0))
            .count();
        let without_read = w
            .activities
            .iter()
            .filter(|a| matches!(a, Activity::Job { read_bytes, .. } if *read_bytes == 0))
            .count();
        assert!(with_read > 0, "chunk jobs must fuse their input fetch");
        assert!(without_read > 0, "write-back jobs have no paired read");
        // every job knows a real recovery footprint
        assert!(w
            .activities
            .iter()
            .all(|a| !matches!(a, Activity::Job { recovery_bytes, .. } if *recovery_bytes == 0)));
    }

    /// The fleet's fidelity oracle: replay must be bit-identical to the
    /// full engine in time and statistics, including under supplies that
    /// fail mid-run.
    #[test]
    fn replay_matches_full_engine_bit_for_bit() {
        let (dm, x) = har_workload();
        let w = record_workload(&dm, &x);
        let supplies = [
            Supply::from(PowerStrength::Continuous),
            Supply::from(PowerStrength::Strong),
            Supply::from(PowerStrength::Weak),
            Supply::Trace(PowerTrace::solar(8.0e-3, 2.0, 64, 3)),
        ];
        for supply in supplies {
            for seed in [0u64, 9] {
                let mut engine_sim = DeviceSim::with_supply(supply.clone(), seed);
                let out = infer(&dm, &x, &mut engine_sim, ExecMode::Intermittent)
                    .expect("engine run failed");
                let mut replay_sim = DeviceSim::with_supply(supply.clone(), seed);
                let rep = replay(&w, &mut replay_sim).expect("replay failed");
                let tag = format!("supply {supply:?} seed {seed}");
                assert_eq!(rep.latency_s.to_bits(), out.latency_s.to_bits(), "{tag}: latency");
                assert_eq!(rep.stats, out.stats, "{tag}: SimStats");
                assert_eq!(rep.retries, out.retries, "{tag}: retries");
                assert_eq!(rep.power_cycles, out.power_cycles, "{tag}: power cycles");
                assert_eq!(
                    rep.max_stall_s.to_bits(),
                    engine_sim.max_stall_s().to_bits(),
                    "{tag}: worst stall"
                );
            }
        }
    }

    #[test]
    fn impossible_energy_budget_reports_nontermination() {
        let (dm, x) = har_workload();
        let w = record_workload(&dm, &x);
        // a 2 µF capacitor buffers ~2 µJ — far below any job window
        let mut spec = iprune_device::DeviceSpec::msp430fr5994();
        spec.capacitance_f = 2.0e-6;
        let mut sim = DeviceSim::with_models_and_supply(
            spec,
            TimingModel::default(),
            iprune_device::energy::EnergyModel::default(),
            Supply::from(PowerStrength::Weak),
            1,
        );
        match replay(&w, &mut sim) {
            Err(RunOutcome::Nontermination { .. }) => {}
            other => panic!("expected nontermination, got {other:?}"),
        }
    }
}
