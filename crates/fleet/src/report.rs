//! Deterministic fleet reports.
//!
//! One JSON row per (workload × harvest × variant) cell, every metric an
//! integer (nanoseconds, parts-per-million, counts) derived from the exact
//! streaming aggregates — so the *structural* lines of the report are
//! byte-identical at any thread count and any shard size. The single
//! host-dependent line is `"wall_s"`, emitted on its own line so CI can
//! `grep -v` it before byte-comparing.

use crate::agg::StreamStat;
use crate::campaign::CellAgg;
use std::fmt::Write as _;

/// One cell of the fleet report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRow {
    /// Workload (model) name.
    pub workload: String,
    /// Harvest-profile label.
    pub harvest: String,
    /// Device-variant name.
    pub variant: String,
    /// The cell's merged aggregate.
    pub agg: CellAgg,
}

/// A complete fleet-campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Master campaign seed.
    pub seed: u64,
    /// Devices per cell.
    pub devices_per_cell: u64,
    /// Shard size used for the fan-out.
    pub shard_size: u64,
    /// Total shards executed.
    pub shards: u64,
    /// Total devices simulated.
    pub devices: u64,
    /// Per-cell rows, in (workload, harvest, variant) order.
    pub cells: Vec<CellRow>,
    /// Host wall-clock of the fan-out (the one nondeterministic field).
    pub wall_s: f64,
}

/// Renders one metric's summary object: count, min/mean/max and the three
/// fleet percentiles, all integers.
fn stat_json(s: &StreamStat) -> String {
    format!(
        "{{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"min\": {}, \"mean\": {}, \"max\": {}}}",
        s.quantile_ppm(500_000),
        s.quantile_ppm(900_000),
        s.quantile_ppm(990_000),
        s.min_or_zero(),
        s.mean(),
        s.max,
    )
}

impl FleetReport {
    /// The structural JSON lines — everything except `wall_s`. Used by the
    /// determinism tests; [`Self::to_json`] splices the wall-clock in.
    pub fn structural_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"fleet\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"devices\": {},", self.devices);
        let _ = writeln!(out, "  \"devices_per_cell\": {},", self.devices_per_cell);
        let _ = writeln!(out, "  \"shard_size\": {},", self.shard_size);
        let _ = writeln!(out, "  \"shards\": {},", self.shards);
        let _ = writeln!(out, "  \"cells_n\": {},", self.cells.len());
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let a = &c.agg;
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"harvest\": \"{}\", \"variant\": \"{}\", \
                 \"devices\": {}, \"completed\": {}, \"livelock\": {}, \"nontermination\": {}, \
                 \"reboots\": {}, \"latency_ns\": {}, \"availability_ppm\": {}, \
                 \"power_cycles\": {}, \"retries\": {}, \"max_stall_ns\": {}}}",
                c.workload,
                c.harvest,
                c.variant,
                a.devices,
                a.completed,
                a.livelocked,
                a.nonterminated,
                // every power cycle ends in exactly one reboot
                a.power_cycles.sum,
                stat_json(&a.latency_ns),
                stat_json(&a.availability_ppm),
                stat_json(&a.power_cycles),
                stat_json(&a.retries),
                stat_json(&a.max_stall_ns),
            );
            out.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Full report JSON: the structural lines plus the host-dependent
    /// `"wall_s"` line (kept on its own line for CI's `grep -v`).
    pub fn to_json(&self) -> String {
        let wall = format!("  \"wall_s\": {:.3},\n  \"cells\": [", self.wall_s);
        self.structural_json().replacen("  \"cells\": [", &wall, 1)
    }

    /// Human summary: one line per cell.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} devices over {} cells ({} shards of {}, seed {})",
            self.devices,
            self.cells.len(),
            self.shards,
            self.shard_size,
            self.seed
        );
        for c in &self.cells {
            let a = &c.agg;
            let _ = writeln!(
                out,
                "  {:<10} {:<14} {:<10} ok {:>6}  ll {:>4}  nt {:>4}  \
                 p50 {:>9.3} ms  p99 {:>9.3} ms  avail {:>6.2} %  cycles p50 {}",
                c.workload,
                c.harvest,
                c.variant,
                a.completed,
                a.livelocked,
                a.nonterminated,
                a.latency_ns.quantile_ppm(500_000) as f64 / 1e6,
                a.latency_ns.quantile_ppm(990_000) as f64 / 1e6,
                a.availability_ppm.quantile_ppm(500_000) as f64 / 1e4,
                a.power_cycles.quantile_ppm(500_000),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> FleetReport {
        let mut agg = CellAgg::default();
        for i in 0..10u64 {
            agg.latency_ns.record(1_000_000 + i * 1000);
            agg.availability_ppm.record(900_000 + i);
            agg.power_cycles.record(i);
            agg.retries.record(i);
            agg.max_stall_ns.record(10_000 + i);
            agg.devices += 1;
            agg.completed += 1;
        }
        FleetReport {
            seed: 7,
            devices_per_cell: 10,
            shard_size: 4,
            shards: 3,
            devices: 10,
            cells: vec![CellRow {
                workload: "har-tiny".into(),
                harvest: "strong (8 mW)".into(),
                variant: "nominal".into(),
                agg,
            }],
            wall_s: 0.5,
        }
    }

    #[test]
    fn wall_clock_is_confined_to_its_own_line() {
        let r = tiny_report();
        let json = r.to_json();
        let wall_lines: Vec<&str> = json.lines().filter(|l| l.contains("\"wall_s\"")).collect();
        assert_eq!(wall_lines.len(), 1, "wall_s must be a single dedicated line");
        let stripped: String =
            json.lines().filter(|l| !l.contains("\"wall_s\"")).map(|l| format!("{l}\n")).collect();
        assert_eq!(stripped, r.structural_json(), "everything else is structural");
    }

    #[test]
    fn cells_render_one_line_each() {
        let r = tiny_report();
        let json = r.structural_json();
        assert_eq!(json.lines().filter(|l| l.contains("\"workload\"")).count(), 1);
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"reboots\": 45"), "reboots = total power cycles");
        assert!(json.contains("\"max_stall_ns\""), "worst-stall stat must be reported");
        assert!(r.summary().contains("har-tiny"));
    }
}
