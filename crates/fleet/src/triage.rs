//! Streaming anomaly triage over fleet campaigns, with automatic trace
//! drill-down.
//!
//! A fleet report says a cell's p99 blew up; triage says **which devices**
//! and **why**, and hands back an engine trace for each. Three stages:
//!
//! 1. **Fences** — each cell's merged aggregate (pass 1, the ordinary
//!    [`FleetCampaign::run`]) yields a robust quantile baseline
//!    ([`CellBaseline`]) that [`CellFences`] scales into outlier fences.
//!    Fences are derived once from the *merged* aggregate, so they are
//!    identical no matter how pass 1 was sharded.
//! 2. **Scan** — pass 2 re-replays every device over the same shard
//!    tiling and classifies its [`DeviceHealth`] against the cell fences
//!    with exact-integer rules ([`iprune_obs::telemetry::classify`]).
//!    Because a device's verdict depends only on its own replay (a pure
//!    function of global coordinates) and its cell's fences, the flagged
//!    set — and the whole structural report — is byte-identical at any
//!    thread count and any shard size. Each shard also nominates its
//!    earliest healthy completed device; per-cell minima merge exactly.
//! 3. **Drill-down** — the top-K flagged devices (by integer severity,
//!    ties broken by `(cell, device)`) are re-run through the **full
//!    engine** with the `obs` trace sink installed, producing JSONL +
//!    Chrome traces, an [`Attribution`] audited against the device's
//!    replayed `SimStats` via [`Attribution::reconcile`], and a per-layer
//!    attribution diff against the cell's healthy reference device.
//!
//! The report follows the fleet convention: every structural field is an
//! integer or a fixed string, `wall_s` lives on its own line for CI's
//! `grep -v`, and `structural_json()` is pinned byte-identical across
//! thread counts 1/2/8 by a root test.

use crate::campaign::{CellAgg, FleetCampaign};
use crate::population::{PopulationSpec, SampledDevice};
use crate::report::FleetReport;
use crate::workload::{replay, Workload};
use iprune_device::sim::DeviceSim;
use iprune_device::trace::SimStats;
use iprune_hawaii::deploy::DeployedModel;
use iprune_hawaii::exec::{infer, ExecMode};
use iprune_obs::attr::StatsTotals;
use iprune_obs::telemetry::{
    classify, severity, AnomalyCause, CellBaseline, CellFences, DeviceHealth, FenceConfig, N_CAUSES,
};
use iprune_obs::{drain_shared, metrics, to_chrome_json, to_jsonl, Attribution, MemorySink};
use iprune_tensor::{par, Tensor};
use std::fmt::Write as _;
use std::path::PathBuf;

/// One workload plus the deployed model and input that recorded it —
/// needed because drill-down re-runs the *full engine*, not the replay.
#[derive(Clone, Copy)]
pub struct TriageEntry<'a> {
    /// The recorded activity stream replayed fleet-wide.
    pub workload: &'a Workload,
    /// The deployed model the workload was recorded from.
    pub dm: &'a DeployedModel,
    /// The recording input.
    pub input: &'a Tensor,
}

/// Triage policy.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Fence policy applied to every cell baseline.
    pub fences: FenceConfig,
    /// How many flagged devices get a full-engine trace drill-down.
    pub top_k: usize,
    /// Where anomaly traces are written (`None`: no files; the report
    /// still carries the deterministic trace names).
    pub trace_dir: Option<PathBuf>,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self { fences: FenceConfig::default(), top_k: 8, trace_dir: None }
    }
}

/// Quantile baseline of one cell's merged aggregate.
pub fn baseline_of(agg: &CellAgg) -> CellBaseline {
    CellBaseline {
        latency_p99_ns: agg.latency_ns.quantile_ppm(990_000),
        reboots_p99: agg.power_cycles.quantile_ppm(990_000),
        retries_p99: agg.retries.quantile_ppm(990_000),
        max_stall_p99_ns: agg.max_stall_ns.quantile_ppm(990_000),
        availability_p01_ppm: agg.availability_ppm.quantile_ppm(10_000),
    }
}

/// One flagged device (scan output).
#[derive(Debug, Clone)]
struct Candidate {
    cell: usize,
    device: u64,
    health: DeviceHealth,
    causes: Vec<AnomalyCause>,
    severity: u64,
}

/// Per-cell triage summary row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageCellRow {
    /// Workload (model) name.
    pub workload: String,
    /// Harvest-profile label.
    pub harvest: String,
    /// Device-variant name.
    pub variant: String,
    /// The fences every device in the cell was tested against.
    pub fences: CellFences,
    /// Devices flagged in this cell.
    pub flagged: u64,
    /// Flag counts per cause, in [`AnomalyCause::ALL`] order.
    pub cause_counts: [u64; N_CAUSES],
    /// Earliest healthy (completed, unflagged) device index, if any.
    pub healthy_ref: Option<u64>,
}

/// One drilled-down anomaly.
#[derive(Debug, Clone)]
pub struct AnomalyRow {
    /// Global cell index (row index into the fleet report).
    pub cell: usize,
    /// Device index within the cell.
    pub device: u64,
    /// Why it was flagged, in [`AnomalyCause::ALL`] order.
    pub causes: Vec<AnomalyCause>,
    /// Integer severity score (see `iprune_obs::telemetry::severity`).
    pub severity: u64,
    /// The device's health record.
    pub health: DeviceHealth,
    /// Deterministic trace base name (`<workload>_c<cell>_d<device>`);
    /// `<base>.jsonl` / `<base>.chrome.json` exist when a trace dir was
    /// configured.
    pub trace: String,
    /// Whether the drill-down trace's attribution reconciled with the
    /// device's replayed `SimStats`.
    pub reconciled: bool,
    /// Layer with the largest time excess over the healthy reference
    /// (over the anomaly's own largest layer when the cell has no healthy
    /// device).
    pub hot_layer: Option<String>,
    /// That layer's excess in nanoseconds (0 when `hot_layer` is None).
    pub hot_excess_ns: u64,
}

/// The triage report: per-cell flag summaries plus the drilled top-K.
#[derive(Debug, Clone)]
pub struct TriageReport {
    /// Master campaign seed.
    pub seed: u64,
    /// Total devices scanned.
    pub devices: u64,
    /// Shard size used for the scan fan-out.
    pub shard_size: u64,
    /// Drill-down budget.
    pub top_k: usize,
    /// Total flagged devices across all cells.
    pub flagged: u64,
    /// Per-cell rows, in fleet-report order.
    pub cells: Vec<TriageCellRow>,
    /// The drilled anomalies, severity-descending.
    pub anomalies: Vec<AnomalyRow>,
    /// Host wall-clock of scan + drill-down (the one nondeterministic
    /// field).
    pub wall_s: f64,
}

/// Builds the health record of one replayed device. For failures the
/// simulator's state at the verdict is the record: time simulated so far,
/// failed-attempt count, and the livelock flag from the structured
/// outcome.
fn health_of(
    result: &Result<crate::workload::ReplayOutcome, iprune_faults::RunOutcome>,
    sim: &DeviceSim,
) -> DeviceHealth {
    match result {
        Ok(out) => DeviceHealth {
            completed: true,
            latency_ns: CellAgg::quantize_latency_ns(out.latency_s),
            availability_ppm: CellAgg::quantize_availability_ppm(out.charging_s, out.latency_s),
            reboots: out.power_cycles,
            retries: out.retries,
            livelock: false,
            max_stall_ns: CellAgg::quantize_latency_ns(out.max_stall_s),
        },
        Err(outcome) => {
            let stats = sim.stats();
            let elapsed = sim.now();
            DeviceHealth {
                completed: false,
                latency_ns: CellAgg::quantize_latency_ns(elapsed),
                availability_ppm: CellAgg::quantize_availability_ppm(stats.charging_s, elapsed),
                reboots: stats.power_cycles,
                retries: stats.jobs_failed,
                livelock: outcome.is_livelock(),
                max_stall_ns: CellAgg::quantize_latency_ns(sim.max_stall_s()),
            }
        }
    }
}

/// Scan result of one shard.
struct ShardScan {
    flagged: Vec<Candidate>,
    /// Earliest completed, unflagged device in the shard's range.
    first_healthy: Option<u64>,
}

/// Replays one shard's devices against its cell's fences.
fn scan_shard(
    w: &Workload,
    pop: &PopulationSpec,
    cell: usize,
    h: usize,
    v: usize,
    devices: std::ops::Range<u64>,
    fences: &CellFences,
) -> ShardScan {
    let mut out = ShardScan { flagged: Vec::new(), first_healthy: None };
    for d in devices {
        let device = pop.sample(cell as u64, h, v, d);
        let mut sim = device.build_sim();
        let result = replay(w, &mut sim);
        let health = health_of(&result, &sim);
        let causes = classify(&health, fences);
        if causes.is_empty() {
            if out.first_healthy.is_none() && health.completed {
                out.first_healthy = Some(d);
            }
        } else {
            let sev = severity(&health, fences);
            out.flagged.push(Candidate { cell, device: d, health, causes, severity: sev });
        }
    }
    out
}

/// One device's full-engine drill-down: trace, attribution, reconcile
/// verdict against a fresh replay's `SimStats`.
struct DrillDown {
    attr: Attribution,
    events_jsonl: String,
    events_chrome: String,
    reconciled: bool,
}

fn drill_down(entry: &TriageEntry<'_>, device: &SampledDevice) -> DrillDown {
    // full engine with the trace sink installed
    let sink = MemorySink::shared();
    let mut traced = device.build_sim();
    traced.set_trace_sink(sink.clone());
    let _ = infer(entry.dm, entry.input, &mut traced, ExecMode::Intermittent);
    let events = drain_shared(&sink);

    // an independent replay of the recorded workload on the same device;
    // replay ≡ engine bit-for-bit, so the trace must account for exactly
    // the replayed statistics — the audit that closes the loop between
    // the cheap fleet path and the real engine
    let mut replayed = device.build_sim();
    let replay_stats: SimStats = match replay(entry.workload, &mut replayed) {
        Ok(out) => out.stats,
        Err(_) => replayed.stats().clone(),
    };

    let attr = Attribution::from_events(&events);
    let reconciled = attr.reconcile(&StatsTotals::from(&replay_stats)).is_ok();
    DrillDown {
        attr,
        events_jsonl: to_jsonl(&events),
        events_chrome: to_chrome_json(&events),
        reconciled,
    }
}

/// Per-layer time of an attribution, as `(label, total_ns)` rows in table
/// order (layer rows only — op-less catch-all rows are skipped).
fn layer_ns(attr: &Attribution) -> Vec<(String, u64)> {
    attr.rows()
        .iter()
        .filter(|r| r.op.is_some())
        .map(|r| (r.label.clone(), CellAgg::quantize_latency_ns(r.total_s())))
        .collect()
}

/// The layer with the largest excess of `anomaly` over `healthy`
/// (`healthy = None` compares against zero).
fn hottest_layer(
    anomaly: &[(String, u64)],
    healthy: Option<&Vec<(String, u64)>>,
) -> (Option<String>, u64) {
    let mut best: Option<(String, u64)> = None;
    for (label, ns) in anomaly {
        let base = healthy
            .and_then(|rows| rows.iter().find(|(l, _)| l == label).map(|(_, n)| *n))
            .unwrap_or(0);
        let excess = ns.saturating_sub(base);
        if best.as_ref().map(|(_, b)| excess > *b).unwrap_or(excess > 0) {
            best = Some((label.clone(), excess));
        }
    }
    match best {
        Some((l, e)) => (Some(l), e),
        None => (None, 0),
    }
}

/// Renders the per-layer diff table written next to an anomaly's trace.
fn render_diff(anomaly: &[(String, u64)], healthy: Option<&Vec<(String, u64)>>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>14} {:>14} {:>14}",
        "layer", "anomaly_ns", "healthy_ns", "excess_ns"
    );
    for (label, ns) in anomaly {
        let base = healthy
            .and_then(|rows| rows.iter().find(|(l, _)| l == label).map(|(_, n)| *n))
            .unwrap_or(0);
        let _ =
            writeln!(out, "{:<24} {:>14} {:>14} {:>14}", label, ns, base, ns.saturating_sub(base));
    }
    out
}

/// Runs the triage pass over a campaign whose pass-1 report is `fleet`.
///
/// `entries` must be the same workloads (in the same order) the fleet
/// report was produced from; the population/shard geometry comes from
/// `campaign`.
///
/// # Panics
///
/// Panics when the entry count does not match the report's cell grid, or
/// when a configured trace dir cannot be created or written.
pub fn run_triage(
    campaign: &FleetCampaign,
    entries: &[TriageEntry<'_>],
    fleet: &FleetReport,
    cfg: &TriageConfig,
) -> TriageReport {
    assert!(!entries.is_empty(), "triage needs at least one workload entry");
    let pop = &campaign.population;
    let n_cells = entries.len() * pop.harvests.len() * pop.variants.len();
    assert_eq!(fleet.cells.len(), n_cells, "fleet report does not match the triage entries");
    for (e, w) in entries.iter().zip(fleet.cells.iter().step_by(n_cells / entries.len())) {
        assert_eq!(e.workload.name, w.workload, "workload order must match the fleet report");
    }

    let t0 = std::time::Instant::now();

    // fences once per cell, from the merged pass-1 aggregates — identical
    // for every shard and thread of the scan below
    let fences: Vec<CellFences> = fleet
        .cells
        .iter()
        .map(|c| CellFences::from_baseline(&baseline_of(&c.agg), &cfg.fences))
        .collect();

    // pass 2: the same (cell × shard) tiling as FleetCampaign::run
    struct Task {
        cell: usize,
        w: usize,
        h: usize,
        v: usize,
        first: u64,
        count: u64,
    }
    let shards_per_cell = pop.devices_per_cell.div_ceil(campaign.shard_size);
    let mut tasks = Vec::with_capacity(n_cells * shards_per_cell as usize);
    let mut cell = 0usize;
    for w in 0..entries.len() {
        for h in 0..pop.harvests.len() {
            for v in 0..pop.variants.len() {
                for s in 0..shards_per_cell {
                    let first = s * campaign.shard_size;
                    let count = campaign.shard_size.min(pop.devices_per_cell - first);
                    tasks.push(Task { cell, w, h, v, first, count });
                }
                cell += 1;
            }
        }
    }
    let scans = par::par_map(tasks.len(), |i| {
        let t = &tasks[i];
        scan_shard(
            entries[t.w].workload,
            pop,
            t.cell,
            t.h,
            t.v,
            t.first..t.first + t.count,
            &fences[t.cell],
        )
    });

    // fold shard scans per cell in task order: candidate lists concatenate
    // in device order, healthy references merge by min — both exact
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut healthy_ref: Vec<Option<u64>> = vec![None; n_cells];
    for (t, scan) in tasks.iter().zip(&scans) {
        candidates.extend(scan.flagged.iter().cloned());
        if let Some(d) = scan.first_healthy {
            healthy_ref[t.cell] = Some(healthy_ref[t.cell].map_or(d, |prev: u64| prev.min(d)));
        }
    }

    // per-cell summary rows
    let mut cells: Vec<TriageCellRow> = fleet
        .cells
        .iter()
        .zip(&fences)
        .zip(&healthy_ref)
        .map(|((c, f), h)| TriageCellRow {
            workload: c.workload.clone(),
            harvest: c.harvest.clone(),
            variant: c.variant.clone(),
            fences: *f,
            flagged: 0,
            cause_counts: [0; N_CAUSES],
            healthy_ref: *h,
        })
        .collect();
    for cand in &candidates {
        let row = &mut cells[cand.cell];
        row.flagged += 1;
        for cause in &cand.causes {
            row.cause_counts[cause.index()] += 1;
        }
    }

    // top-K by (severity desc, cell, device) — a total, partition-free
    // order because candidates arrive in global (cell, device) order
    let flagged_total = candidates.len() as u64;
    candidates.sort_by(|a, b| {
        b.severity.cmp(&a.severity).then(a.cell.cmp(&b.cell)).then(a.device.cmp(&b.device))
    });
    candidates.truncate(cfg.top_k);

    if let Some(dir) = &cfg.trace_dir {
        std::fs::create_dir_all(dir).expect("create triage trace dir");
    }
    let write = |name: &str, body: &str| {
        if let Some(dir) = &cfg.trace_dir {
            std::fs::write(dir.join(name), body).expect("write triage trace");
        }
    };

    // drill-downs: the cell's healthy reference first (once per cell that
    // has drilled anomalies), then every top-K anomaly
    let cells_per_workload = n_cells / entries.len().max(1);
    let entry_of = |cell: usize| &entries[cell / cells_per_workload.max(1)];
    let sample_of = |cell: usize, device: u64| {
        let within = cell % cells_per_workload.max(1);
        let h = within / pop.variants.len();
        let v = within % pop.variants.len();
        pop.sample(cell as u64, h, v, device)
    };

    let mut healthy_layers: Vec<Option<Vec<(String, u64)>>> = vec![None; n_cells];
    for cand in &candidates {
        if healthy_layers[cand.cell].is_some() {
            continue;
        }
        if let Some(d) = healthy_ref[cand.cell] {
            let entry = entry_of(cand.cell);
            let dd = drill_down(entry, &sample_of(cand.cell, d));
            let base = format!("{}_c{}_d{}_healthy", entry.workload.name, cand.cell, d);
            write(&format!("{base}.jsonl"), &dd.events_jsonl);
            healthy_layers[cand.cell] = Some(layer_ns(&dd.attr));
        }
    }

    let mut anomalies = Vec::with_capacity(candidates.len());
    for cand in &candidates {
        let entry = entry_of(cand.cell);
        let dd = drill_down(entry, &sample_of(cand.cell, cand.device));
        let layers = layer_ns(&dd.attr);
        let healthy = healthy_layers[cand.cell].as_ref();
        let (hot_layer, hot_excess_ns) = hottest_layer(&layers, healthy);
        let base = format!("{}_c{}_d{}", entry.workload.name, cand.cell, cand.device);
        write(&format!("{base}.jsonl"), &dd.events_jsonl);
        write(&format!("{base}.chrome.json"), &dd.events_chrome);
        write(&format!("{base}.diff.txt"), &render_diff(&layers, healthy));
        anomalies.push(AnomalyRow {
            cell: cand.cell,
            device: cand.device,
            causes: cand.causes.clone(),
            severity: cand.severity,
            health: cand.health,
            trace: base,
            reconciled: dd.reconciled,
            hot_layer,
            hot_excess_ns,
        });
    }

    metrics::counter("triage.flagged").add(flagged_total);
    metrics::counter("triage.drilldowns").add(anomalies.len() as u64);

    TriageReport {
        seed: pop.seed,
        devices: n_cells as u64 * pop.devices_per_cell,
        shard_size: campaign.shard_size,
        top_k: cfg.top_k,
        flagged: flagged_total,
        cells,
        anomalies,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

fn fences_json(f: &CellFences) -> String {
    format!(
        "{{\"latency_ns\": {}, \"reboots\": {}, \"retries\": {}, \"max_stall_ns\": {}, \"availability_ppm\": {}}}",
        f.latency_ns, f.reboots, f.retries, f.max_stall_ns, f.availability_ppm
    )
}

impl TriageReport {
    /// The structural JSON lines — everything except `wall_s`.
    pub fn structural_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"triage\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"devices\": {},", self.devices);
        let _ = writeln!(out, "  \"shard_size\": {},", self.shard_size);
        let _ = writeln!(out, "  \"top_k\": {},", self.top_k);
        let _ = writeln!(out, "  \"flagged\": {},", self.flagged);
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let causes: Vec<String> = AnomalyCause::ALL
                .iter()
                .map(|cause| format!("\"{}\": {}", cause.name(), c.cause_counts[cause.index()]))
                .collect();
            let _ = write!(
                out,
                "    {{\"workload\": \"{}\", \"harvest\": \"{}\", \"variant\": \"{}\", \
                 \"flagged\": {}, \"causes\": {{{}}}, \"fences\": {}, \"healthy_ref\": {}}}",
                c.workload,
                c.harvest,
                c.variant,
                c.flagged,
                causes.join(", "),
                fences_json(&c.fences),
                c.healthy_ref.map_or("null".to_string(), |d| d.to_string()),
            );
            out.push_str(if i + 1 < self.cells.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"anomalies\": [\n");
        for (i, a) in self.anomalies.iter().enumerate() {
            let causes: Vec<String> =
                a.causes.iter().map(|c| format!("\"{}\"", c.name())).collect();
            let _ = write!(
                out,
                "    {{\"cell\": {}, \"device\": {}, \"severity\": {}, \"causes\": [{}], \
                 \"completed\": {}, \"latency_ns\": {}, \"availability_ppm\": {}, \
                 \"reboots\": {}, \"retries\": {}, \"max_stall_ns\": {}, \"trace\": \"{}\", \
                 \"reconciled\": {}, \"hot_layer\": {}, \"hot_excess_ns\": {}}}",
                a.cell,
                a.device,
                a.severity,
                causes.join(", "),
                a.health.completed,
                a.health.latency_ns,
                a.health.availability_ppm,
                a.health.reboots,
                a.health.retries,
                a.health.max_stall_ns,
                a.trace,
                a.reconciled,
                a.hot_layer.as_ref().map_or("null".to_string(), |l| format!("\"{l}\"")),
                a.hot_excess_ns,
            );
            out.push_str(if i + 1 < self.anomalies.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Full report JSON with the host-dependent `"wall_s"` spliced in on
    /// its own line.
    pub fn to_json(&self) -> String {
        let wall = format!("  \"wall_s\": {:.3},\n  \"cells\": [", self.wall_s);
        self.structural_json().replacen("  \"cells\": [", &wall, 1)
    }

    /// Human summary: flag totals plus a top-K table (the `doctor` view).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "triage: {} of {} devices flagged, {} drilled (seed {})",
            self.flagged,
            self.devices,
            self.anomalies.len(),
            self.seed
        );
        for a in &self.anomalies {
            let c = &self.cells[a.cell];
            let causes: Vec<&str> = a.causes.iter().map(|x| x.name()).collect();
            let _ = writeln!(
                out,
                "  cell {:>3} ({} / {} / {})  device {:>6}  sev {:>10}  [{}]  trace {}{}",
                a.cell,
                c.workload,
                c.harvest,
                c.variant,
                a.device,
                a.severity,
                causes.join(","),
                a.trace,
                match &a.hot_layer {
                    Some(l) => format!("  hot {} (+{} ms)", l, a.hot_excess_ns / 1_000_000),
                    None => String::new(),
                }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_reads_the_right_quantiles() {
        let mut agg = CellAgg::default();
        for i in 0..100u64 {
            agg.latency_ns.record((i + 1) * 1_000_000);
            agg.availability_ppm.record(900_000 + i * 100);
            agg.power_cycles.record(1);
            agg.retries.record(2);
            agg.max_stall_ns.record(5_000_000);
        }
        let b = baseline_of(&agg);
        assert!(b.latency_p99_ns >= b.latency_p99_ns / 2);
        assert_eq!(b.reboots_p99, 1);
        assert_eq!(b.retries_p99, 2);
        assert!(b.availability_p01_ppm <= 900_100, "p01 is the low tail");
    }

    #[test]
    fn hottest_layer_prefers_the_biggest_excess() {
        let anomaly = vec![("conv1".to_string(), 100u64), ("fc1".to_string(), 900u64)];
        let healthy = vec![("conv1".to_string(), 90u64), ("fc1".to_string(), 100u64)];
        let (label, excess) = hottest_layer(&anomaly, Some(&healthy));
        assert_eq!(label.as_deref(), Some("fc1"));
        assert_eq!(excess, 800);
        // without a reference the anomaly's own biggest layer wins
        let (label, excess) = hottest_layer(&anomaly, None);
        assert_eq!(label.as_deref(), Some("fc1"));
        assert_eq!(excess, 900);
        // all-zero rows flag nothing
        assert_eq!(hottest_layer(&[("x".to_string(), 0)], None), (None, 0));
    }

    #[test]
    fn diff_table_lists_every_layer() {
        let anomaly = vec![("conv1".to_string(), 100u64)];
        let table = render_diff(&anomaly, None);
        assert!(table.contains("conv1"));
        assert!(table.contains("excess_ns"));
    }
}
