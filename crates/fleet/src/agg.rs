//! Streaming, mergeable, byte-reproducible aggregators.
//!
//! The implementation lives in [`iprune_obs::agg`] since the serving layer
//! shares it (rolling `LogHist` admission estimates); this module re-exports
//! it so all fleet call sites and downstream users keep their paths.

pub use iprune_obs::agg::{LogHist, StreamStat, BUCKETS, SUB_BITS};
