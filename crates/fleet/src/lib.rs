//! Fleet-scale deployment campaigns (`iprune-fleet`).
//!
//! The rest of the workspace answers "does one intermittent device run the
//! pruned network correctly, and how fast?" This crate answers the
//! *deployment* question: across a **population** of harvesting devices —
//! spread capacitors, thresholds, FRAM speed bins, and per-device weather —
//! what latency does the p99 device see, how often does the fleet reboot,
//! and which (power × hardware) cells livelock or can never finish?
//!
//! Four pieces, composed left to right:
//!
//! 1. **Record/replay** ([`workload`]): one traced inference per model is
//!    inverted into its device-activity stream; replaying the stream
//!    through each sampled simulator is bit-identical to the full engine
//!    (pinned by test) at a tiny fraction of the cost — the trick that
//!    makes 100k-device campaigns feasible.
//! 2. **Population model** ([`population`]): device variants and harvest
//!    profiles sampled deterministically from `(seed, cell, device)` —
//!    never from the execution partition.
//! 3. **Sharded execution** ([`campaign`]): fixed-size shards fan out over
//!    the worker pool; each folds its devices into exact integer
//!    aggregates, merged per cell in shard order. Memory stays O(shards).
//! 4. **Streaming aggregation** ([`agg`]) and **reports** ([`report`]):
//!    count/sum/min/max + sub-bucketed log₂ histograms, all integer, so
//!    `BENCH_fleet.json`'s structural rows are byte-identical at any
//!    thread count and any shard size.
//!
//! Failed devices are classified with the fault subsystem's structured
//! [`RunOutcome`](iprune_faults::RunOutcome) — livelocks and
//! nonterminations are per-cell counters in the report, not strings.
//!
//! On top of the campaign sits **triage** ([`triage`]): a second replay
//! pass classifies every device against exact-integer outlier fences
//! derived from its cell's merged quantiles, and the worst offenders are
//! re-run through the full engine with the trace sink on — per-anomaly
//! traces, audited attributions, and a per-layer diff against a healthy
//! reference device from the same cell.

pub mod agg;
pub mod campaign;
pub mod population;
pub mod report;
pub mod triage;
pub mod workload;

pub use agg::{LogHist, StreamStat};
pub use campaign::{CellAgg, FleetCampaign};
pub use population::{DeviceVariant, Harvest, PopulationSpec, SampledDevice};
pub use report::{CellRow, FleetReport};
pub use triage::{run_triage, AnomalyRow, TriageCellRow, TriageConfig, TriageEntry, TriageReport};
pub use workload::{record_workload, replay, Activity, ReplayOutcome, Workload};
