//! Block Compressed Sparse Row (BSR) weight storage.
//!
//! The paper integrates BSR into HAWAII to store pruned weight matrices
//! (Section III-D): three one-dimensional arrays — the nonzero weight
//! blocks, and two index arrays (block column indices and block-row
//! pointers) that jointly locate each nonzero block in the original matrix.
//! Inference progress is then jointly indicated by the current indices into
//! these arrays plus the preserved job counter.
//!
//! Block shape equals the accelerator-operation granularity chosen by the
//! tile planner: `br` output features × `bc` reduction elements.

use iprune_tensor::quant::QFormat;

/// A quantized weight matrix in BSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix {
    rows: usize,
    cols: usize,
    br: usize,
    bc: usize,
    /// Block-row pointers: `row_ptr[rb]..row_ptr[rb+1]` indexes the nonzero
    /// blocks of block-row `rb` in `col_idx`/`blocks`.
    row_ptr: Vec<u32>,
    /// Block column index of each stored block.
    col_idx: Vec<u32>,
    /// Stored blocks, each `br*bc` values row-major (edge blocks are
    /// zero-padded).
    blocks: Vec<i16>,
    format: QFormat,
}

impl BsrMatrix {
    /// Builds a BSR matrix from a dense row-major i16 matrix, dropping
    /// all-zero blocks.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols` or a block dimension is zero.
    pub fn from_dense(
        dense: &[i16],
        rows: usize,
        cols: usize,
        br: usize,
        bc: usize,
        format: QFormat,
    ) -> Self {
        assert!(br > 0 && bc > 0, "block dims must be positive");
        assert_eq!(dense.len(), rows * cols, "dense matrix size");
        let rbs = rows.div_ceil(br);
        let cbs = cols.div_ceil(bc);
        let mut row_ptr = Vec::with_capacity(rbs + 1);
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        row_ptr.push(0u32);
        let mut buf = vec![0i16; br * bc];
        for rb in 0..rbs {
            for cb in 0..cbs {
                let mut nonzero = false;
                for (bi, slot) in buf.iter_mut().enumerate() {
                    let r = rb * br + bi / bc;
                    let c = cb * bc + bi % bc;
                    let v = if r < rows && c < cols { dense[r * cols + c] } else { 0 };
                    *slot = v;
                    nonzero |= v != 0;
                }
                if nonzero {
                    col_idx.push(cb as u32);
                    blocks.extend_from_slice(&buf);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Self { rows, cols, br, bc, row_ptr, col_idx, blocks, format }
    }

    /// Reconstructs the dense row-major matrix.
    pub fn to_dense(&self) -> Vec<i16> {
        let mut dense = vec![0i16; self.rows * self.cols];
        for rb in 0..self.block_rows() {
            for slot in self.row_ptr[rb]..self.row_ptr[rb + 1] {
                let cb = self.col_idx[slot as usize] as usize;
                let block = self.block(slot as usize);
                for (bi, &v) in block.iter().enumerate() {
                    let r = rb * self.br + bi / self.bc;
                    let c = cb * self.bc + bi % self.bc;
                    if r < self.rows && c < self.cols {
                        dense[r * self.cols + c] = v;
                    }
                }
            }
        }
        dense
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block height (output features per block).
    pub fn block_height(&self) -> usize {
        self.br
    }

    /// Block width (reduction elements per block).
    pub fn block_width(&self) -> usize {
        self.bc
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.rows.div_ceil(self.br)
    }

    /// Number of stored (nonzero) blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of stored blocks in block-row `rb`.
    pub fn row_nnz(&self, rb: usize) -> usize {
        (self.row_ptr[rb + 1] - self.row_ptr[rb]) as usize
    }

    /// Iterates `(slot, block_col)` pairs of block-row `rb`.
    pub fn row_blocks_iter(&self, rb: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.row_ptr[rb]..self.row_ptr[rb + 1])
            .map(move |s| (s as usize, self.col_idx[s as usize] as usize))
    }

    /// The values of stored block `slot` (`br*bc`, row-major).
    pub fn block(&self, slot: usize) -> &[i16] {
        &self.blocks[slot * self.br * self.bc..(slot + 1) * self.br * self.bc]
    }

    /// The fixed-point format of the stored values.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Number of nonzero weight values actually stored (excludes padding
    /// zeros inside kept blocks).
    pub fn nnz_values(&self) -> usize {
        self.blocks.iter().filter(|&&v| v != 0).count()
    }

    /// On-device storage footprint in bytes: 2 bytes per stored block value
    /// plus 2-byte entries for both index arrays.
    pub fn storage_bytes(&self) -> usize {
        self.blocks.len() * 2 + self.col_idx.len() * 2 + self.row_ptr.len() * 2
    }

    /// Bytes of a dense (non-BSR) representation of the same matrix.
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fmt() -> QFormat {
        QFormat::new(12)
    }

    #[test]
    fn dense_roundtrip_small() {
        let dense: Vec<i16> = vec![
            1, 2, 0, 0, //
            3, 4, 0, 0, //
            0, 0, 0, 5, //
            0, 0, 6, 7,
        ];
        let bsr = BsrMatrix::from_dense(&dense, 4, 4, 2, 2, fmt());
        assert_eq!(bsr.nnz_blocks(), 2);
        assert_eq!(bsr.to_dense(), dense);
    }

    #[test]
    fn zero_matrix_has_no_blocks() {
        let bsr = BsrMatrix::from_dense(&[0i16; 24], 4, 6, 2, 3, fmt());
        assert_eq!(bsr.nnz_blocks(), 0);
        assert_eq!(bsr.to_dense(), vec![0i16; 24]);
        assert_eq!(bsr.storage_bytes(), (bsr.block_rows() + 1) * 2);
    }

    #[test]
    fn ragged_edges_are_padded() {
        // 3x5 matrix with 2x2 blocks: edge blocks are partial
        let mut dense = vec![0i16; 15];
        dense[14] = 9; // row 2, col 4 — bottom-right corner
        let bsr = BsrMatrix::from_dense(&dense, 3, 5, 2, 2, fmt());
        assert_eq!(bsr.nnz_blocks(), 1);
        assert_eq!(bsr.to_dense(), dense);
    }

    #[test]
    fn sparse_storage_is_smaller_dense_storage_is_not() {
        let mut dense = vec![0i16; 64 * 64];
        for i in 0..16 {
            dense[i * 64 + i] = 1; // a few diagonal blocks
        }
        let bsr = BsrMatrix::from_dense(&dense, 64, 64, 4, 4, fmt());
        assert!(bsr.storage_bytes() < bsr.dense_bytes() / 4);
        let full: Vec<i16> = (0..64 * 64).map(|i| (i % 7 + 1) as i16).collect();
        let bsr_full = BsrMatrix::from_dense(&full, 64, 64, 4, 4, fmt());
        assert!(bsr_full.storage_bytes() > bsr_full.dense_bytes());
    }

    #[test]
    fn row_iteration_matches_row_ptr() {
        let dense: Vec<i16> = vec![
            1, 0, 0, 2, //
            0, 0, 0, 0, //
            0, 3, 0, 0, //
            0, 0, 0, 0,
        ];
        let bsr = BsrMatrix::from_dense(&dense, 4, 4, 2, 2, fmt());
        let row0: Vec<usize> = bsr.row_blocks_iter(0).map(|(_, cb)| cb).collect();
        assert_eq!(row0, vec![0, 1]);
        let row1: Vec<usize> = bsr.row_blocks_iter(1).map(|(_, cb)| cb).collect();
        assert_eq!(row1, vec![0]);
        assert_eq!(bsr.row_nnz(0), 2);
        assert_eq!(bsr.row_nnz(1), 1);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            rows in 1usize..12,
            cols in 1usize..12,
            br in 1usize..4,
            bc in 1usize..4,
            seed in 0u64..1000,
        ) {
            // sparse pseudo-random matrix
            let dense: Vec<i16> = (0..rows * cols)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
                    if h % 3 == 0 { ((h >> 8) % 200) as i16 - 100 } else { 0 }
                })
                .collect();
            let bsr = BsrMatrix::from_dense(&dense, rows, cols, br, bc, fmt());
            prop_assert_eq!(bsr.to_dense(), dense);
        }

        #[test]
        fn nnz_blocks_bounded_by_grid(
            rows in 1usize..10,
            cols in 1usize..10,
        ) {
            let dense: Vec<i16> = (0..rows * cols).map(|i| (i % 5) as i16).collect();
            let bsr = BsrMatrix::from_dense(&dense, rows, cols, 2, 2, fmt());
            prop_assert!(bsr.nnz_blocks() <= rows.div_ceil(2) * cols.div_ceil(2));
        }
    }
}
