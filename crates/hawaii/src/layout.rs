//! NVM address-space layout for a deployed model.
//!
//! The paper stores "the pruned model, together with the inference engine"
//! in the 512 KB external FRAM (Section IV-A). This module plans that
//! address space explicitly — engine image, per-layer BSR arrays and
//! biases, activation buffers, partial-accumulator scratch, and the
//! footprint slot — and rejects models that do not fit, which is the
//! deploy-time check a real toolchain must perform.

use crate::deploy::DeployedModel;
use iprune_device::DeviceSpec;
use std::error::Error;
use std::fmt;

/// A named contiguous NVM region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name (`"weights[conv1]"`, `"activations[3]"`, …).
    pub name: String,
    /// Start offset in bytes.
    pub offset: usize,
    /// Length in bytes.
    pub bytes: usize,
}

impl Region {
    /// One-past-the-end offset.
    pub fn end(&self) -> usize {
        self.offset + self.bytes
    }
}

/// A complete non-overlapping NVM layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmLayout {
    regions: Vec<Region>,
    capacity: usize,
}

impl NvmLayout {
    /// All regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total bytes allocated.
    pub fn used_bytes(&self) -> usize {
        self.regions.last().map(|r| r.end()).unwrap_or(0)
    }

    /// Bytes left unallocated.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used_bytes()
    }

    /// NVM capacity the layout was planned against.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The region containing `name`, if any.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }
}

/// Layout failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The model plus engine state does not fit the NVM.
    DoesNotFit {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        capacity: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DoesNotFit { needed, capacity } => {
                write!(f, "deployment needs {needed} bytes but the NVM holds only {capacity}")
            }
        }
    }
}

impl Error for LayoutError {}

/// Default size reserved for the inference-engine image (code + constants).
pub const DEFAULT_ENGINE_IMAGE_BYTES: usize = 32 * 1024;

/// Plans the NVM layout of a deployed model on `spec`'s NVM.
///
/// Regions, in order: engine image, footprint slot, per-layer weights
/// (BSR values + indices) and biases, one activation buffer per graph
/// buffer, and the partial-accumulator scratch sized for the largest tile.
///
/// # Errors
///
/// [`LayoutError::DoesNotFit`] if the total exceeds the NVM capacity.
pub fn plan_layout(
    dm: &DeployedModel,
    spec: &DeviceSpec,
    engine_image_bytes: usize,
) -> Result<NvmLayout, LayoutError> {
    let mut regions = Vec::new();
    let mut cursor = 0usize;
    let mut push = |name: String, bytes: usize, cursor: &mut usize| {
        regions.push(Region { name, offset: *cursor, bytes });
        *cursor += bytes;
    };

    push("engine".to_string(), engine_image_bytes, &mut cursor);
    push("footprint".to_string(), 8, &mut cursor); // double-buffered u32

    for dl in &dm.layers {
        let p = &dm.info.prunables[dl.layer_id];
        push(format!("weights[{}]", p.name), dl.bsr.storage_bytes(), &mut cursor);
        push(format!("bias[{}]", p.name), dl.bias.len() * 2, &mut cursor);
    }
    for (i, buf) in dm.info.buffers.iter().enumerate() {
        push(format!("activations[{i}]"), buf.numel() * 2, &mut cursor);
    }
    let scratch =
        dm.layers.iter().map(|dl| 4 * dl.plan.tile.br * dl.plan.tile.strip).max().unwrap_or(0);
    push("partial-scratch".to_string(), scratch, &mut cursor);

    if cursor > spec.nvm_bytes {
        return Err(LayoutError::DoesNotFit { needed: cursor, capacity: spec.nvm_bytes });
    }
    Ok(NvmLayout { regions, capacity: spec.nvm_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::deploy;
    use iprune_models::zoo::App;

    #[test]
    fn all_paper_models_fit_the_512kb_fram() {
        let spec = DeviceSpec::msp430fr5994();
        for app in App::all() {
            let mut model = app.build();
            let ds = app.dataset(2, 1);
            let dm = deploy(&mut model, &ds, 2);
            let layout = plan_layout(&dm, &spec, DEFAULT_ENGINE_IMAGE_BYTES)
                .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(layout.used_bytes() <= spec.nvm_bytes);
            assert!(layout.free_bytes() > 0, "{}", app.name());
            // regions are contiguous and non-overlapping by construction
            let mut cursor = 0;
            for r in layout.regions() {
                assert_eq!(r.offset, cursor, "{}", r.name);
                cursor = r.end();
            }
        }
    }

    #[test]
    fn layout_names_every_layer() {
        let mut model = App::Cks.build();
        let ds = App::Cks.dataset(2, 1);
        let dm = deploy(&mut model, &ds, 2);
        let layout = plan_layout(&dm, &DeviceSpec::msp430fr5994(), 1024).unwrap();
        for p in &dm.info.prunables {
            assert!(layout.region(&format!("weights[{}]", p.name)).is_some());
            assert!(layout.region(&format!("bias[{}]", p.name)).is_some());
        }
        assert!(layout.region("engine").is_some());
        assert!(layout.region("footprint").is_some());
    }

    #[test]
    fn oversized_engine_image_is_rejected() {
        let mut model = App::Sqn.build();
        let ds = App::Sqn.dataset(2, 1);
        let dm = deploy(&mut model, &ds, 2);
        let spec = DeviceSpec::msp430fr5994();
        let err = plan_layout(&dm, &spec, spec.nvm_bytes).unwrap_err();
        match err {
            LayoutError::DoesNotFit { needed, capacity } => {
                assert!(needed > capacity);
            }
        }
    }
}
