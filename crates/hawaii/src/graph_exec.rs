//! Re-export shim: the float graph executor moved to
//! [`iprune_models::graphref`] so the host Q15 evaluator can share it
//! without a dependency cycle. Existing `crate::graph_exec` paths keep
//! working.

pub use iprune_models::graphref::{run_graph, run_graph_logits};
